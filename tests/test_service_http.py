"""The HTTP front end: routes, the error→status contract, versioning.

Servers bind an ephemeral port on localhost with stub job bodies; the
requests here go through raw ``urllib`` so the tests pin the *wire*
contract (status codes, headers, JSON bodies) independently of the
typed client, which gets its own suite in test_service_client.py.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import (
    JobExpired,
    JobFailed,
    ServiceOverloaded,
    SpecError,
    TenantQuotaExceeded,
    UnknownJob,
)
from repro.service import JobEngine, JobSpec, ServiceConfig
from repro.service.http import (
    HttpServiceServer,
    error_payload,
    error_status,
    serve_http,
)
from repro.service.jobs import SCHEMA_VERSION


def _config(**overrides):
    defaults = dict(
        queue_depth=8, workers=2, tenant_cap=1,
        drain_timeout=5.0, journal=False,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _spec(value=0, **kwargs):
    payload = kwargs.pop("payload", {"name": "adpcm", "value": value})
    return JobSpec(kind="squash", payload=payload, **kwargs)


def _echo(spec):
    time.sleep(spec.payload.get("secs", 0.0))
    return {"value": spec.payload.get("value")}


@pytest.fixture
def served(request):
    built = []

    def make(execute_fn=_echo, paused=False, **overrides):
        eng = JobEngine(_config(**overrides), execute_fn=execute_fn)
        eng._dispatch_paused = paused
        eng.start(recover=False)
        srv = serve_http(eng, port=0)
        built.append((eng, srv))
        return eng, srv

    yield make
    for eng, srv in built:
        srv.stop()
        eng.stop(drain_timeout=0.2)


def _call(url, method="GET", body=None):
    """(status, headers, parsed body) of one raw HTTP request."""
    data = None
    if body is not None:
        data = json.dumps(body).encode("utf-8")
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(req, timeout=30.0) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        return exc.code, dict(exc.headers), json.loads(raw or b"{}")


def _submit_body(value=0, **extra):
    body = {
        "schema_version": SCHEMA_VERSION,
        "spec": _spec(value).to_record(),
    }
    body.update(extra)
    return body


class TestErrorContract:
    """Every typed service error maps to one stable status code."""

    CASES = [
        (TenantQuotaExceeded("over", tenant="t"), 429),
        (ServiceOverloaded("full", reason="queue-full"), 503),
        (JobExpired("late", job_id="j"), 410),
        (SpecError("bad", field="kind"), 422),
        (UnknownJob("who", job_id="j"), 404),
        (JobFailed("boom", job_id="j", error_type="ValueError"), 500),
    ]

    @pytest.mark.parametrize(
        "exc,status", CASES, ids=[type(e).__name__ for e, _ in CASES]
    )
    def test_status_mapping(self, exc, status):
        assert error_status(exc) == status

    def test_subclass_wins_over_base(self):
        # TenantQuotaExceeded IS a ServiceOverloaded; the mapping must
        # resolve the most specific class, not the first base match.
        assert error_status(
            TenantQuotaExceeded("over", tenant="t")
        ) == 429

    def test_payload_carries_typed_fields(self):
        payload = error_payload(
            SpecError("bad kind", field="kind")
        )
        assert payload["error"] == "SpecError"
        assert payload["field"] == "kind"
        payload = error_payload(
            ServiceOverloaded("full", reason="queue-full",
                              retry_after=1.5)
        )
        assert payload["reason"] == "queue-full"
        assert payload["retry_after"] == 1.5


class TestRoutes:
    def test_health(self, served):
        _, srv = served()
        status, _, body = _call(srv.url + "/v1/health")
        assert status == 200
        assert body["ok"] is True
        assert body["schema_version"] == SCHEMA_VERSION
        assert body["stats"]["state"] == "running"

    def test_submit_status_result_roundtrip(self, served):
        _, srv = served()
        status, _, body = _call(
            srv.url + "/v1/jobs", "POST", _submit_body(value=41)
        )
        assert status == 202
        job_id = body["id"]
        assert body["schema_version"] == SCHEMA_VERSION
        status, _, body = _call(
            srv.url + f"/v1/jobs/{job_id}/result?timeout=30"
        )
        assert status == 200
        assert body["result"] == {"value": 41}
        status, _, body = _call(srv.url + f"/v1/jobs/{job_id}")
        assert status == 200
        assert body["state"] == "done"

    def test_submit_with_client_id_and_listing(self, served):
        _, srv = served()
        status, _, body = _call(
            srv.url + "/v1/jobs", "POST",
            _submit_body(value=1, id="job-fixed-id"),
        )
        assert status == 202 and body["id"] == "job-fixed-id"
        _call(srv.url + "/v1/jobs/job-fixed-id/result?timeout=30")
        status, _, body = _call(srv.url + "/v1/jobs")
        assert status == 200
        assert any(job["id"] == "job-fixed-id" for job in body["jobs"])

    def test_unknown_job_is_404(self, served):
        _, srv = served()
        status, _, body = _call(srv.url + "/v1/jobs/nope")
        assert status == 404
        assert body["error"] == "UnknownJob"
        assert body["job_id"] == "nope"

    def test_overload_is_503_with_retry_after_header(self, served):
        _, srv = served(paused=True, queue_depth=1)
        _call(srv.url + "/v1/jobs", "POST", _submit_body(value=0))
        status, headers, body = _call(
            srv.url + "/v1/jobs", "POST", _submit_body(value=1)
        )
        assert status == 503
        assert body["error"] == "ServiceOverloaded"
        assert body["reason"] == "queue-full"
        assert body["retry_after"] > 0
        assert int(headers["Retry-After"]) >= 1

    def test_spec_error_is_422_naming_the_field(self, served):
        _, srv = served()
        record = _spec().to_record()
        record["kind"] = "transmogrify"
        status, _, body = _call(
            srv.url + "/v1/jobs", "POST",
            {"schema_version": SCHEMA_VERSION, "spec": record},
        )
        assert status == 422
        assert body["error"] == "SpecError"
        assert body["field"] == "kind"

    def test_missing_spec_is_422(self, served):
        _, srv = served()
        status, _, body = _call(srv.url + "/v1/jobs", "POST", {})
        assert status == 422
        assert body["field"] == "spec"

    def test_malformed_body_is_400(self, served):
        _, srv = served()
        req = urllib.request.Request(
            srv.url + "/v1/jobs", data=b"not json{", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10.0)
        assert exc.value.code == 400

    def test_result_timeout_is_504(self, served):
        _, srv = served(paused=True)
        status, _, body = _call(
            srv.url + "/v1/jobs", "POST", _submit_body(value=0)
        )
        job_id = body["id"]
        status, _, body = _call(
            srv.url + f"/v1/jobs/{job_id}/result?timeout=0.1"
        )
        assert status == 504
        assert body["error"] == "Timeout"

    def test_bad_timeout_is_422(self, served):
        _, srv = served()
        status, _, body = _call(
            srv.url + "/v1/jobs/x/result?timeout=soon"
        )
        assert status == 422
        assert body["field"] == "timeout"

    def test_job_failure_is_500_with_error_type(self, served):
        def _boom(spec):
            raise ValueError("kaput")

        _, srv = served(execute_fn=_boom)
        status, _, body = _call(
            srv.url + "/v1/jobs", "POST", _submit_body(value=0)
        )
        status, _, body = _call(
            srv.url + f"/v1/jobs/{body['id']}/result?timeout=30"
        )
        assert status == 500
        assert body["error"] == "JobFailed"
        assert body["error_type"] == "ValueError"

    def test_expired_deadline_is_410(self, served):
        _, srv = served(paused=True)
        record = JobSpec(
            kind="squash", payload={"name": "adpcm"}, deadline=0.001
        ).to_record()
        status, _, body = _call(
            srv.url + "/v1/jobs", "POST",
            {"schema_version": SCHEMA_VERSION, "spec": record},
        )
        job_id = body["id"]
        time.sleep(0.05)
        status, _, body = _call(
            srv.url + f"/v1/jobs/{job_id}/result?timeout=30"
        )
        assert status == 410
        assert body["error"] == "JobExpired"

    def test_cancel_queued_job(self, served):
        eng, srv = served(paused=True)
        status, _, body = _call(
            srv.url + "/v1/jobs", "POST", _submit_body(value=0)
        )
        job_id = body["id"]
        status, _, body = _call(
            srv.url + f"/v1/jobs/{job_id}", "DELETE"
        )
        assert status == 200 and body["cancelled"] is True
        status, _, body = _call(srv.url + f"/v1/jobs/{job_id}")
        assert body["state"] == "cancelled"

    def test_unknown_route_is_404_and_bad_method_405(self, served):
        _, srv = served()
        status, _, _ = _call(srv.url + "/v2/jobs")
        assert status == 404
        status, _, _ = _call(srv.url + "/v1/jobs/x", "POST", {})
        assert status == 405


class TestSchemaVersion:
    def test_unknown_schema_version_rejected_naming_field(self, served):
        _, srv = served()
        status, _, body = _call(
            srv.url + "/v1/jobs", "POST",
            _submit_body(value=0, schema_version=99),
        )
        assert status == 422
        assert body["error"] == "SpecError"
        assert body["field"] == "schema_version"

    def test_v1_unversioned_spec_still_accepted(self, served):
        _, srv = served()
        record = _spec(value=5).to_record()
        record.pop("schema_version", None)
        status, _, body = _call(
            srv.url + "/v1/jobs", "POST", {"spec": record}
        )
        assert status == 202
        status, _, body = _call(
            srv.url + f"/v1/jobs/{body['id']}/result?timeout=30"
        )
        assert body["result"] == {"value": 5}

    def test_envelope_version_applies_when_spec_lacks_one(self, served):
        _, srv = served()
        record = _spec(value=5).to_record()
        record.pop("schema_version", None)
        status, _, body = _call(
            srv.url + "/v1/jobs", "POST",
            {"schema_version": 99, "spec": record},
        )
        assert status == 422
        assert body["field"] == "schema_version"


class TestServerLifecycle:
    def test_context_manager_and_ephemeral_port(self):
        eng = JobEngine(_config(), execute_fn=_echo)
        eng.start(recover=False)
        try:
            with HttpServiceServer(eng, port=0) as srv:
                assert srv.port > 0
                status, _, _ = _call(srv.url + "/v1/health")
                assert status == 200
            # Stopped: the port no longer answers.
            with pytest.raises((urllib.error.URLError, OSError)):
                urllib.request.urlopen(srv.url + "/v1/health",
                                       timeout=2.0)
        finally:
            eng.stop(drain_timeout=0.2)

    def test_settings_resolve_host_and_port(self):
        from repro import settings

        eng = JobEngine(_config(), execute_fn=_echo)
        eng.start(recover=False)
        try:
            with settings.use_settings(service_http_port=0):
                with HttpServiceServer(eng) as srv:
                    assert srv.host == "127.0.0.1"
                    assert srv.port > 0
        finally:
            eng.stop(drain_timeout=0.2)
