"""The CodecModel layer: context-conditioned streams are exactly as
decodable as order-0 ones, on every backend, with sealed tables.

Property tests drive random symbol streams through the encoder and all
three registered decode backends under ``baseline``, ``ctx1``, and
``ctx1+reg``, requiring identical items (including from a codec
re-parsed out of its own serialised table words) and identical error
shapes on truncated or corrupted streams.  Separate unit tests pin the
cost-model guarantee (a context variant never produces a larger blob
than ``baseline``), the per-context seal checks, the image-format-v3
round trip, the variant-registry fallback, and both CodecModel fault
kinds of the injection harness.
"""

from __future__ import annotations

import dataclasses
import random
import warnings

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro.compress import vector
from repro.compress.codec import (
    CODEC_VARIANTS,
    ProgramCodec,
    codec_variant,
    resolve_codec_variant,
)
from repro.compress.model import (
    MAX_CONTEXTS,
    StreamModel,
    context_bits,
    context_domain,
)
from repro.compress.streams import OP_SENTINEL, CodecInstr, codec_fields
from repro.core.integrity import (
    ContextIntegrity,
    ImageIntegrity,
    blob_integrity,
    check_context_seals,
)
from repro.errors import CodecTableError
from repro.faultinject.inject import (
    CONTEXT_FAULT_KINDS,
    apply_fault,
    plan_fault,
)
from repro.isa.fields import FIELD_WIDTHS, FieldKind

VARIANTS = ("baseline", "ctx1", "ctx1+reg")


def _opcode_table():
    table = []
    for op in range(64):
        if op == OP_SENTINEL:
            continue
        try:
            table.append((op, codec_fields(op)))
        except ValueError:
            continue
    return table


OPCODES = _opcode_table()


@st.composite
def instr_strategy(draw):
    op, kinds = draw(st.sampled_from(OPCODES))
    fields = tuple(
        draw(st.integers(0, (1 << FIELD_WIDTHS[kind]) - 1))
        for kind in kinds
    )
    return CodecInstr(opcode=op, fields=fields)


@st.composite
def regions_strategy(draw, max_regions=5, max_instrs=12):
    return draw(
        st.lists(
            st.lists(instr_strategy(), min_size=0, max_size=max_instrs),
            min_size=1,
            max_size=max_regions,
        )
    )


def _error_shape(exc: BaseException):
    return (type(exc), getattr(exc, "bit_offset", None), str(exc))


def _decode_or_error(fn):
    try:
        return ("ok", fn())
    except Exception as exc:  # noqa: BLE001 - shape-compared below
        return ("error", _error_shape(exc))


def _decode_all(codec, words, offsets, backend):
    return [
        codec.decode_region(words, off, backend=backend) for off in offsets
    ]


def _descriptor(**kw):
    """A SquashDescriptor with every unused field at a neutral value."""
    from repro.core.costmodel import CostModel
    from repro.core.descriptor import (
        BufferStrategy,
        RestoreStubScheme,
        SquashDescriptor,
    )

    base = dict(
        strategy=BufferStrategy.OVERWRITE,
        restore_scheme=RestoreStubScheme.RUNTIME,
        cost=CostModel(),
        decomp_base=0,
        decomp_words=0,
        offset_table_addr=0,
        table_addr=0,
        table_words=0,
        stream_addr=0,
        stream_words=0,
        stub_area_base=0,
        stub_area_words=0,
        stub_capacity=0,
        buffer_base=0,
        buffer_words=0,
    )
    base.update(kw)
    return SquashDescriptor(**base)


# -- backend identity under every variant ------------------------------------


@pytest.mark.parametrize("variant", VARIANTS)
@given(regions=regions_strategy())
@hyp_settings(max_examples=40, deadline=None)
def test_all_backends_decode_identically(variant, regions):
    codec, blob = ProgramCodec.build(regions, codec_variant(variant))
    words = list(blob.stream_words)
    offsets = list(blob.region_bit_offsets)
    reference = _decode_all(codec, words, offsets, "reference")
    assert _decode_all(codec, words, offsets, "table") == reference
    assert _decode_all(codec, words, offsets, "vector") == reference
    # The decoded items are the encoded items.
    assert [items for items, _bits in reference] == [
        list(region) for region in regions
    ]


@pytest.mark.parametrize("variant", VARIANTS)
@given(regions=regions_strategy(max_regions=4, max_instrs=10))
@hyp_settings(max_examples=25, deadline=None)
def test_reparsed_codec_decodes_identically(variant, regions):
    """A codec re-parsed from its own serialised table words is the
    same decoder: same layouts, same models, same decodes."""
    codec, blob = ProgramCodec.build(regions, codec_variant(variant))
    reparsed = ProgramCodec.from_table_words(blob.table_words)
    words = list(blob.stream_words)
    offsets = list(blob.region_bit_offsets)
    assert set(reparsed.models) == set(codec.models)
    for backend in ("reference", "table", "vector"):
        assert _decode_all(reparsed, words, offsets, backend) == _decode_all(
            codec, words, offsets, backend
        )


@pytest.mark.skipif(not vector.HAVE_NUMPY, reason="requires numpy")
@given(regions=regions_strategy(max_regions=4, max_instrs=10))
@hyp_settings(max_examples=25, deadline=None)
def test_ctx1_vector_batch_matches_table(regions):
    """ctx1 stays on the true vector LUT machine (one bank per opcode
    context), and the batch path agrees with the table path."""
    codec, blob = ProgramCodec.build(regions, codec_variant("ctx1"))
    words = list(blob.stream_words)
    offsets = list(blob.region_bit_offsets)
    table = _decode_all(codec, words, offsets, "table")
    assert vector.decode_batch([(codec, words, offsets)])[0] == table


# -- error parity under ctx1 -------------------------------------------------


@pytest.mark.parametrize("variant", ("ctx1", "ctx1+reg"))
@given(regions=regions_strategy(max_regions=3, max_instrs=8), data=st.data())
@hyp_settings(max_examples=25, deadline=None)
def test_truncated_stream_error_parity(variant, regions, data):
    codec, blob = ProgramCodec.build(regions, codec_variant(variant))
    words = list(blob.stream_words)
    if len(words) < 2:
        return
    cut = data.draw(st.integers(0, len(words) - 1))
    truncated = words[:cut]
    for off in blob.region_bit_offsets:
        results = [
            _decode_or_error(
                lambda b=backend, o=off: codec.decode_region(
                    truncated, o, backend=b
                )
            )
            for backend in ("reference", "table", "vector")
        ]
        assert results[1] == results[0]
        assert results[2] == results[0]


@pytest.mark.parametrize("variant", ("ctx1", "ctx1+reg"))
@given(
    regions=regions_strategy(max_regions=3, max_instrs=8),
    data=st.data(),
)
@hyp_settings(max_examples=25, deadline=None)
def test_corrupt_stream_error_parity(variant, regions, data):
    codec, blob = ProgramCodec.build(regions, codec_variant(variant))
    words = list(blob.stream_words)
    if not words:
        return
    flip = data.draw(st.integers(0, len(words) - 1))
    corrupt = list(words)
    corrupt[flip] ^= 0xFFFFFFFF
    for off in blob.region_bit_offsets:
        results = [
            _decode_or_error(
                lambda b=backend, o=off: codec.decode_region(
                    corrupt, o, backend=b
                )
            )
            for backend in ("reference", "table", "vector")
        ]
        assert results[1] == results[0]
        assert results[2] == results[0]


# -- cost model guarantee ----------------------------------------------------


@given(regions=regions_strategy())
@hyp_settings(max_examples=40, deadline=None)
def test_context_variants_never_larger_than_baseline(regions):
    """The cost-driven context selection falls back to order-0 whenever
    conditioning does not pay for its own mapping + table overhead, so
    a context variant's blob is never bigger than baseline's."""
    _, base = ProgramCodec.build(regions, codec_variant("baseline"))
    base_bits = base.table_bits + base.stream_bits
    for variant in ("ctx1", "ctx1+reg"):
        _, blob = ProgramCodec.build(regions, codec_variant(variant))
        assert blob.table_bits + blob.stream_bits <= base_bits


# -- model layer validation --------------------------------------------------


def test_stream_model_context_routing():
    from repro.compress.canonical import CanonicalCode

    tables = tuple(
        CanonicalCode.from_lengths({0: 1, 1 + i: 1}) for i in range(3)
    )
    mapping = tuple(i % 3 for i in range(context_domain(FieldKind.OPCODE)))
    model = StreamModel(
        kind=FieldKind.OPCODE, tables=tables, mapping=mapping
    )
    assert model.conditioned
    assert model.n_contexts == 3
    for prev in (0, 5, OP_SENTINEL):
        assert model.context_of(prev) == mapping[prev]


def test_context_bits_always_encode_out_of_range():
    """ctx_bits = bit_length(n) leaves headroom, so every mapping can
    hold at least one out-of-range value -- which is what makes the
    index-corrupt fault always expressible and always detectable."""
    for n in range(1, MAX_CONTEXTS + 1):
        assert (1 << context_bits(n)) > n


def test_mapping_out_of_range_is_typed_table_error():
    _, blob = _ctx1_blob()
    # Layouts are recovered by the parser; reparse to locate the
    # mapping bits of the conditioned stream.
    parsed = ProgramCodec.from_table_words(blob.table_words)
    layout = next(
        lo for lo in parsed.table_layouts.values() if lo.n_contexts > 1
    )
    from repro.faultinject.inject import _write_table_bits

    words = list(blob.table_words)
    _write_table_bits(
        words, 0, layout.mapping_start_bit, layout.ctx_bits,
        layout.n_contexts,
    )
    with pytest.raises(CodecTableError) as err:
        ProgramCodec.from_table_words(words)
    assert "context index" in str(err.value)
    assert "[context" in str(err.value)


# -- per-context seals -------------------------------------------------------


def _ctx1_blob():
    """A workload with hard opcode bigram structure, so the cost model
    actually conditions the opcode stream under ctx1."""
    pattern = [
        CodecInstr(opcode=0x08, fields=(1, 2, 40)),
        CodecInstr(opcode=0x10, fields=(26, 3)),
        CodecInstr(opcode=0x09, fields=(4, 5, 6)),
        CodecInstr(opcode=0x00, fields=(2,)),
    ]
    regions = [pattern * 12 for _ in range(4)]
    codec, blob = ProgramCodec.build(regions, codec_variant("ctx1"))
    assert codec.models, "fixture must produce a conditioned stream"
    return codec, blob


def test_blob_integrity_carries_per_context_records():
    codec, blob = _ctx1_blob()
    integ = blob_integrity(blob)
    assert integ.contexts
    assert [
        (r.kind, r.ctx, r.start_bit, r.end_bit) for r in integ.contexts
    ] == list(blob.context_spans)
    # Seals verify against the clean table area.
    check_context_seals(blob.table_words, integ)


def test_corrupt_seal_raises_with_context_id():
    _, blob = _ctx1_blob()
    integ = blob_integrity(blob)
    victim = max(range(len(integ.contexts)),
                 key=lambda i: integ.contexts[i].ctx)
    record = integ.contexts[victim]
    integ.contexts[victim] = dataclasses.replace(
        record, crc=record.crc ^ 1
    )
    with pytest.raises(CodecTableError) as err:
        check_context_seals(blob.table_words, integ)
    assert f"[context {record.ctx}]" in str(err.value)
    assert FieldKind(record.kind).name in str(err.value)


def test_seal_span_outside_table_area_is_rejected():
    _, blob = _ctx1_blob()
    integ = blob_integrity(blob)
    integ.contexts[0] = dataclasses.replace(
        integ.contexts[0], end_bit=len(blob.table_words) * 32 + 1
    )
    with pytest.raises(CodecTableError):
        check_context_seals(blob.table_words, integ)


def test_old_integrity_json_without_contexts_parses():
    """Integrity dicts written before the contexts field existed (image
    descriptors on disk) still round-trip."""
    from repro.core.descriptor import (
        descriptor_from_dict,
        descriptor_to_dict,
    )

    _, blob = _ctx1_blob()
    integ = blob_integrity(blob)
    desc = _descriptor(
        table_words=len(blob.table_words),
        stream_words=len(blob.stream_words),
        integrity=integ,
    )
    payload = descriptor_to_dict(desc)
    # New-format round trip keeps typed records.
    again = descriptor_from_dict(payload)
    assert again.integrity.contexts == integ.contexts
    # Old-format payload: no contexts key at all.
    payload["integrity"].pop("contexts")
    legacy = descriptor_from_dict(payload)
    assert legacy.integrity.contexts == []


# -- image format v3 ---------------------------------------------------------


def test_image_v3_round_trips_codec_contexts(tmp_path):
    from repro.program.image import LoadedImage, Segment
    from repro.program.imagefile import load_image, save_image

    image = LoadedImage(
        memory=[i * 7 & 0xFFFFFFFF for i in range(64)],
        base=0x1000,
        entry_pc=0x1004,
        segments=[Segment("text", 0x1000, 64)],
    )
    records = [
        ContextIntegrity(
            kind=0, ctx=0, start_bit=0, end_bit=96, crc=0xDEADBEEF
        ),
        ContextIntegrity(
            kind=3, ctx=2, start_bit=96, end_bit=200, crc=0x12345678
        ),
    ]
    path = tmp_path / "ctx.img"
    save_image(image, path, contexts=records)
    loaded = load_image(path)
    assert loaded.memory == image.memory
    assert loaded.codec_contexts == [
        (0, 0, 0, 96, 0xDEADBEEF),
        (3, 2, 96, 200, 0x12345678),
    ]


def test_image_v3_without_contexts(tmp_path):
    from repro.program.image import LoadedImage
    from repro.program.imagefile import load_image, save_image

    image = LoadedImage(memory=[1, 2, 3], base=0, entry_pc=0)
    path = tmp_path / "plain.img"
    save_image(image, path)
    assert load_image(path).codec_contexts == []


# -- variant registry --------------------------------------------------------


def test_registry_lists_context_variants():
    names = set(CODEC_VARIANTS.names())
    assert {"baseline", "ctx1", "ctx1+reg"} <= names


def test_baseline_is_order0_huffman():
    config = codec_variant("baseline")
    assert config.coder == "huffman"
    assert not config.context_kinds
    assert config == codec_variant("huffman")


def test_unknown_variant_warns_once_and_falls_back():
    from repro.compress import codec as codec_mod
    from repro.obs.metrics import get_registry

    def fallbacks():
        snap = get_registry().snapshot()
        return snap.get("counters", {}).get("codec.variant_fallback", 0)

    name = "no-such-variant-xyzzy"
    codec_mod._VARIANT_WARNED.discard(name)
    before = fallbacks()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        first = resolve_codec_variant(name)
        second = resolve_codec_variant(name)
    assert first == codec_variant("baseline")
    assert second == codec_variant("baseline")
    assert len(caught) == 1  # warned once, not per call
    assert name in str(caught[0].message)
    after = fallbacks()
    assert after == before + 2  # but every fallback is counted
    codec_mod._VARIANT_WARNED.discard(name)


def test_effective_codec_precedence():
    from repro import settings
    from repro.core.config import SquashConfig

    assert SquashConfig().effective_codec() == codec_variant("baseline")
    with settings.use_settings(codec_variant="ctx1"):
        assert (
            SquashConfig().effective_codec() == codec_variant("ctx1")
        )
        # The explicit config field wins over the settings knob.
        assert (
            SquashConfig(codec_variant="baseline").effective_codec()
            == codec_variant("baseline")
        )


# -- CodecModel fault kinds --------------------------------------------------


def _fault_fixture():
    """A descriptor + image pair shaped like a squashed table area."""
    from repro.program.image import LoadedImage

    codec, blob = _ctx1_blob()
    integ = blob_integrity(blob)
    memory = list(blob.table_words) + list(blob.stream_words)
    image = LoadedImage(memory=memory, base=0x2000, entry_pc=0x2000)
    desc = _descriptor(
        table_addr=0x2000,
        table_words=len(blob.table_words),
        stream_addr=0x2000 + len(blob.table_words),
        stream_words=len(blob.stream_words),
        offset_table_addr=0x2000 + len(memory),
        integrity=integ,
    )
    return codec, image, desc


def test_plan_covers_both_context_kinds():
    assert CONTEXT_FAULT_KINDS == (
        "context-seal-corrupt", "context-index-corrupt",
    )


def test_seal_fault_is_caught_by_seal_check():
    _, image, desc = _fault_fixture()
    rng = random.Random(7)
    spec = plan_fault("context-seal-corrupt", desc, rng, image)
    faulty_image, faulty_desc = apply_fault(image, desc, spec)
    # The image itself is untouched; the descriptor's seal lies.
    assert faulty_image.memory == image.memory
    start = desc.table_addr - image.base
    table = faulty_image.memory[start : start + desc.table_words]
    with pytest.raises(CodecTableError) as err:
        check_context_seals(table, faulty_desc.integrity)
    assert "[context" in str(err.value)
    # The clean descriptor still verifies.
    check_context_seals(table, desc.integrity)


def test_index_fault_is_caught_by_the_parser():
    from repro.core.integrity import check_area_crc, words_crc

    _, image, desc = _fault_fixture()
    rng = random.Random(11)
    spec = plan_fault("context-index-corrupt", desc, rng, image)
    faulty_image, faulty_desc = apply_fault(image, desc, spec)
    start = desc.table_addr - image.base
    table = faulty_image.memory[start : start + desc.table_words]
    # Seals and the (recomputed) whole-area CRC both pass: the mapping
    # lies outside every span, so only the parser can catch this.
    check_context_seals(table, faulty_desc.integrity)
    assert faulty_desc.integrity.table_crc == words_crc(table)
    with pytest.raises(CodecTableError) as err:
        ProgramCodec.from_table_words(table)
    assert "context index" in str(err.value)


def test_context_faults_refuse_unconditioned_images():
    from repro.program.image import LoadedImage

    desc = _descriptor(
        table_words=1, stream_addr=1, stream_words=1,
        offset_table_addr=2,
        integrity=ImageIntegrity(
            table_crc=0, stream_crc=0, offset_table_crc=0,
            table_bits=0, stream_bits=0, regions=[], contexts=[],
        ),
    )
    image = LoadedImage(memory=[0, 0], base=0, entry_pc=0)
    rng = random.Random(0)
    with pytest.raises(ValueError):
        plan_fault("context-seal-corrupt", desc, rng, image)
    with pytest.raises(ValueError):
        plan_fault("context-index-corrupt", desc, rng, None)
