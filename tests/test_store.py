"""The unified artifact store: CAS layout, dedup, quotas, eviction
policies, locking, and graceful degradation."""

import errno
import hashlib
import json
import os
import time

import pytest

from repro import settings
from repro.errors import StoreDegraded
from repro.obs.metrics import get_registry
from repro.resilience.cache import CacheStats, read_entry, write_entry
from repro.store import (
    ArtifactStore,
    ManifestEntry,
    StoreLock,
    available_policies,
    eviction_order,
    get_store,
    reset_stores,
)
from repro.store.locks import LockTimeout


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


@pytest.fixture
def store(tmp_path):
    reset_stores()
    yield get_store(tmp_path / "store")
    reset_stores()


class TestRoundTrip:
    def test_put_get_all_namespaces(self, store):
        for ns in ("cell", "stage", "image", "profile"):
            key = _key(ns)
            assert store.put(ns, key, {"ns": ns, "v": 1})
            assert store.get(ns, key, ("ns", "v")) == {"ns": ns, "v": 1}

    def test_miss_returns_none(self, store):
        assert store.get("cell", _key("absent")) is None

    def test_cell_refs_keep_the_legacy_layout(self, store):
        """Pre-store cell caches lived at <root>/<aa>/<digest>.json;
        the store must keep that layout so existing caches, the chaos
        corruption targeting, and rglob-based discovery keep working."""
        key = _key("layout")
        store.put("cell", key, {"x": 1})
        assert (store.root / key[:2] / f"{key}.json").is_file()

    def test_stage_refs_keep_the_legacy_layout(self, store):
        key = _key("stage-layout")
        store.put("stage", key, {"x": 1})
        assert (store.root / "stages" / key[:2] / f"{key}.json").is_file()

    def test_reads_legacy_entries_written_by_write_entry(self, store):
        """A sealed entry published by the pre-store cache writer is a
        first-class store entry."""
        key = _key("legacy")
        write_entry(store.ref_path("cell", key), {"cycles": 42})
        assert store.get("cell", key, ("cycles",)) == {"cycles": 42}

    def test_store_entries_read_back_through_read_entry(self, store):
        key = _key("forward")
        store.put("cell", key, {"cycles": 7})
        assert read_entry(store.ref_path("cell", key), ("cycles",)) == {
            "cycles": 7
        }

    def test_required_keys_enforced(self, store):
        key = _key("keys")
        store.put("cell", key, {"a": 1})
        assert store.get("cell", key, ("a", "b")) is None


class TestDedup:
    def test_identical_content_stored_once(self, store):
        """Two keys carrying byte-identical payloads share one object
        inode — identical stage bundles/images are stored once."""
        store.put("cell", _key("k1"), {"same": True})
        store.put("stage", _key("k2"), {"same": True})
        ino1 = os.stat(store.ref_path("cell", _key("k1"))).st_ino
        ino2 = os.stat(store.ref_path("stage", _key("k2"))).st_ino
        assert ino1 == ino2
        assert len(store._scan_objects()) == 1

    def test_dedup_counted(self, store):
        before = get_registry().counter("store.dedup_saves").value
        store.put("cell", _key("d1"), {"same": 2})
        store.put("cell", _key("d2"), {"same": 2})
        assert get_registry().counter("store.dedup_saves").value == before + 1

    def test_rewrite_same_key_new_content_repoints(self, store):
        key = _key("repoint")
        store.put("cell", key, {"v": 1})
        store.put("cell", key, {"v": 2})
        assert store.get("cell", key) == {"v": 2}

    def test_usage_counts_each_inode_once(self, store):
        store.put("cell", _key("u1"), {"pad": "x" * 100})
        store.put("cell", _key("u2"), {"pad": "x" * 100})
        usage = store.usage_bytes()
        size = os.stat(store.ref_path("cell", _key("u1"))).st_size
        assert usage == size


class TestCorruption:
    def test_corrupt_ref_is_quarantined(self, store):
        key = _key("corrupt")
        store.put("cell", key, {"x": 1})
        path = store.ref_path("cell", key)
        path.write_bytes(b"\x00garbage\x00")
        stats = CacheStats()
        assert store.get("cell", key, ("x",), stats) is None
        assert stats.rejected == 1
        # The slot healed: the corrupt file is gone, a rewrite works.
        assert not path.exists()
        assert store.put("cell", key, {"x": 2})
        assert store.get("cell", key) == {"x": 2}

    def test_hit_preserves_mtime(self, store):
        """Recency bumps ride the atime; the mtime is the resume
        generation stamp and must never move on read."""
        key = _key("mtime")
        store.put("cell", key, {"x": 1})
        path = store.ref_path("cell", key)
        mtime = os.stat(path).st_mtime_ns
        for _ in range(3):
            store.get("cell", key)
        assert os.stat(path).st_mtime_ns == mtime

    def test_hit_advances_atime(self, store):
        key = _key("atime")
        store.put("cell", key, {"x": 1})
        path = store.ref_path("cell", key)
        os.utime(path, ns=(1, os.stat(path).st_mtime_ns))
        store.get("cell", key)
        assert os.stat(path).st_atime_ns > 1


class TestQuota:
    def test_usage_never_exceeds_quota(self, store):
        with settings.use_settings(store_quota_bytes=600):
            for index in range(20):
                store.put(
                    "cell", _key(f"q{index}"),
                    {"i": index, "pad": "y" * 80},
                )
                assert store.usage_bytes() <= 600

    def test_lru_evicts_oldest_first(self, store):
        with settings.use_settings(store_quota_bytes=500):
            keys = [_key(f"lru{i}") for i in range(8)]
            for index, key in enumerate(keys):
                store.put("cell", key, {"i": index, "pad": "z" * 80})
                # Deterministic recency spacing.
                path = store.ref_path("cell", key)
                os.utime(
                    path, ns=(index * 1_000_000, os.stat(path).st_mtime_ns)
                )
            # The most recent keys survive; the oldest were evicted.
            assert store.get("cell", keys[-1]) is not None
            assert store.get("cell", keys[0]) is None

    def test_oversized_entry_rejected_not_degraded(self, store):
        with settings.use_settings(store_quota_bytes=64):
            assert store.put("cell", _key("big"), {"p": "x" * 500}) is False

    def test_no_quota_means_no_lock_file(self, store):
        store.put("cell", _key("nolock"), {"x": 1})
        assert not (store.root / ".store-lock").exists()


class TestPolicies:
    @staticmethod
    def _entry(path, atime_ns, ino=0):
        return ManifestEntry(
            ns="cell", key="k", path=path, size=1, ino=ino,
            atime_ns=atime_ns, mtime_ns=0,
        )

    def test_builtin_policies_registered(self):
        assert "lru" in available_policies()
        assert "coaccess" in available_policies()

    def test_lru_orders_by_atime(self, tmp_path):
        entries = [
            self._entry(tmp_path / "b", 200),
            self._entry(tmp_path / "a", 100),
        ]
        order, known = eviction_order("lru", entries)
        assert known
        assert [e.atime_ns for e in order] == [100, 200]

    def test_coaccess_groups_windows_and_inodes(self, tmp_path):
        from repro.store.policies import COACCESS_WINDOW_NS

        w = COACCESS_WINDOW_NS
        entries = [
            self._entry(tmp_path / "new", 3 * w + 10, ino=5),
            self._entry(tmp_path / "old2", 7, ino=9),
            self._entry(tmp_path / "old1", 3, ino=2),
        ]
        order, known = eviction_order("coaccess", entries)
        assert known
        # Whole oldest window first, grouped by inode.
        assert [e.path.name for e in order] == ["old1", "old2", "new"]

    def test_unknown_policy_falls_back_to_lru(self, tmp_path):
        entries = [self._entry(tmp_path / "x", 5)]
        order, known = eviction_order("not-a-policy", entries)
        assert not known
        assert order == entries

    def test_unknown_policy_warns_at_eviction(self, store):
        with settings.use_settings(
            store_quota_bytes=300, store_policy="bogus"
        ):
            with pytest.warns(RuntimeWarning, match="unknown store"):
                for index in range(8):
                    store.put(
                        "cell", _key(f"p{index}"),
                        {"i": index, "pad": "w" * 80},
                    )
            assert store.usage_bytes() <= 300


class TestLock:
    def test_exclusive_and_reentrant_release(self, tmp_path):
        lock = StoreLock(tmp_path / "lk")
        with lock:
            assert (tmp_path / "lk").exists()
        assert not (tmp_path / "lk").exists()
        lock.release()  # idempotent

    def test_contention_times_out(self, tmp_path):
        path = tmp_path / "lk"
        with StoreLock(path, stale_after=60.0):
            waiter = StoreLock(path, stale_after=60.0, poll=0.001)
            with pytest.raises(LockTimeout):
                waiter.acquire(timeout=0.05)

    def test_dead_holder_is_broken(self, tmp_path):
        path = tmp_path / "lk"
        # A pid that cannot exist: the holder is provably dead.
        path.write_text(json.dumps({"pid": 2**22 + 1, "t": 0}))
        waiter = StoreLock(path, stale_after=60.0, poll=0.001)
        waiter.acquire(timeout=2.0)
        waiter.release()

    def test_stale_age_is_broken_even_with_live_pid(self, tmp_path):
        path = tmp_path / "lk"
        path.write_text(json.dumps({"pid": os.getpid(), "t": 0}))
        os.utime(path, (time.time() - 120, time.time() - 120))
        waiter = StoreLock(path, stale_after=10.0, poll=0.001)
        waiter.acquire(timeout=2.0)
        waiter.release()


class TestDegradation:
    @pytest.fixture
    def failing(self, store, monkeypatch):
        def _boom(*args, **kwargs):
            raise OSError(errno.EACCES, "injected: unwritable store")

        monkeypatch.setattr(ArtifactStore, "_publish", _boom)
        return store

    def test_put_raises_typed_degraded_after_retries(self, failing):
        with settings.use_settings(store_retries=1, store_backoff=0.0):
            with pytest.raises(StoreDegraded) as info:
                failing.put("cell", _key("dead"), {"x": 1})
        assert info.value.reason == "eacces"

    def test_degraded_counted_in_metrics(self, failing):
        before = get_registry().counter("store.degraded").value
        with settings.use_settings(store_retries=0):
            with pytest.raises(StoreDegraded):
                failing.put("cell", _key("dead2"), {"x": 1})
        assert get_registry().counter("store.degraded").value > before

    def test_breaker_opens_and_short_circuits_reads(self, failing):
        with settings.use_settings(
            store_retries=0, store_breaker_threshold=2,
            store_breaker_cooldown=60.0,
        ):
            for index in range(2):
                with pytest.raises(StoreDegraded):
                    failing.put("cell", _key(f"b{index}"), {"x": 1})
            with pytest.raises(StoreDegraded) as info:
                failing.get("cell", _key("b0"))
            assert info.value.reason == "breaker-open"

    def test_breaker_cooldown_expires(self, failing):
        with settings.use_settings(
            store_retries=0, store_breaker_threshold=1,
            store_breaker_cooldown=0.01,
        ):
            with pytest.raises(StoreDegraded):
                failing.put("cell", _key("cool"), {"x": 1})
            time.sleep(0.02)
            # Breaker half-open again: the read proceeds (a miss).
            assert failing.get("cell", _key("cool-miss")) is None

    def test_retry_succeeds_on_transient_failure(self, store, monkeypatch):
        real = ArtifactStore._publish
        calls = {"n": 0}

        def _flaky(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError(errno.ENOSPC, "transient")
            return real(self, *args, **kwargs)

        monkeypatch.setattr(ArtifactStore, "_publish", _flaky)
        with settings.use_settings(store_retries=2, store_backoff=0.0):
            assert store.put("cell", _key("flaky"), {"x": 1})
        assert store.get("cell", _key("flaky")) == {"x": 1}


class TestMaintenance:
    def test_gc_collects_orphan_objects(self, store):
        store.put("cell", _key("live"), {"x": 1})
        orphan = store.object_path(hashlib.sha256(b"orphan").hexdigest())
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_text("dangling")
        report = store.gc(stale_temp_seconds=0.0)
        assert report["orphan_objects"] == 1
        assert not orphan.exists()
        assert store.get("cell", _key("live")) is not None

    def test_gc_removes_stale_temps_and_corrupt_refs(self, store):
        store.put("cell", _key("ok"), {"x": 1})
        bad = store.ref_path("cell", _key("bad"))
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_bytes(b"not an entry")
        tmp = store.root / "objects" / "ab" / ".tmp-999-dead"
        tmp.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text("leftover")
        report = store.gc(stale_temp_seconds=0.0)
        assert report["corrupt_refs"] == 1
        assert report["stale_temps"] >= 1
        assert not bad.exists()
        assert not tmp.exists()

    def test_manifest_snapshot_round_trips(self, store):
        store.put("cell", _key("m1"), {"x": 1})
        store.gc(stale_temp_seconds=0.0)
        snapshot = store.load_manifest()
        assert snapshot is not None
        assert f"cell/{_key('m1')}" in snapshot["entries"]

    def test_manifest_corruption_detected_by_seal(self, store):
        import random

        from repro.faultinject.chaos import corrupt_entry

        store.put("cell", _key("m2"), {"x": 1})
        store.gc(stale_temp_seconds=0.0)
        before = get_registry().counter("store.manifest_rebuilds").value
        corrupt_entry(store.manifest_path, "bitflip", random.Random(0))
        assert store.load_manifest() is None
        assert (
            get_registry().counter("store.manifest_rebuilds").value
            == before + 1
        )
        # gc heals the snapshot.
        store.gc(stale_temp_seconds=0.0)
        assert store.load_manifest() is not None

    def test_verify_reports_health(self, store):
        store.put("cell", _key("v1"), {"x": 1})
        store.put("stage", _key("v2"), {"x": 1})
        bad = store.ref_path("cell", _key("v3"))
        bad.parent.mkdir(parents=True, exist_ok=True)
        bad.write_bytes(b"junk")
        report = store.verify()
        assert report["refs"] == 3
        assert report["ok"] == 2
        assert sum(report["corrupt"].values()) == 1
        assert report["dedup_refs"] == 1
        # verify is read-only: the corrupt ref is still there.
        assert bad.exists()

    def test_stats_shape(self, store):
        store.put("cell", _key("s1"), {"x": 1})
        stats = store.stats()
        assert stats["refs"] == 1
        assert stats["per_namespace"] == {"cell": 1}
        assert stats["objects"] == 1
        assert stats["usage_bytes"] > 0
        assert stats["breaker_open"] is False


class TestFacade:
    def test_api_store_helpers(self, tmp_path):
        import repro.api as api

        reset_stores()
        with settings.use_settings(cache_dir=str(tmp_path / "c")):
            get_store(tmp_path / "c").put("cell", _key("f"), {"x": 1})
            assert api.store_stats()["refs"] == 1
            assert api.store_verify()["ok"] == 1
            assert api.store_gc()["corrupt_refs"] == 0
        reset_stores()

    def test_get_store_caches_per_root(self, tmp_path):
        reset_stores()
        assert get_store(tmp_path) is get_store(tmp_path)
        assert get_store(tmp_path) is not get_store(tmp_path / "other")
        reset_stores()
