"""Huffman length construction and the canonical code of Section 3."""

import itertools
import math

import pytest
from hypothesis import given, strategies as st

from repro.compress.bitstream import BitReader, BitWriter
from repro.compress.canonical import CanonicalCode
from repro.compress.huffman import count_frequencies, huffman_code_lengths


class TestHuffmanLengths:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            huffman_code_lengths({})

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            huffman_code_lengths({"a": 0})

    def test_single_symbol_gets_one_bit(self):
        assert huffman_code_lengths({"a": 10}) == {"a": 1}

    def test_two_symbols(self):
        lengths = huffman_code_lengths({"a": 10, "b": 1})
        assert lengths == {"a": 1, "b": 1}

    def test_skewed_distribution(self):
        lengths = huffman_code_lengths({"a": 100, "b": 10, "c": 1})
        assert lengths["a"] == 1
        assert lengths["b"] == 2
        assert lengths["c"] == 2

    def test_deterministic(self):
        freqs = {i: (i % 7) + 1 for i in range(20)}
        assert huffman_code_lengths(freqs) == huffman_code_lengths(dict(freqs))

    def test_integer_symbols_do_not_collide_with_node_ids(self):
        # symbols 0..n-1 share values with internal node counters
        freqs = {i: i + 1 for i in range(10)}
        lengths = huffman_code_lengths(freqs)
        assert set(lengths) == set(freqs)

    @given(
        st.dictionaries(
            st.integers(0, 100), st.integers(1, 1000), min_size=1, max_size=24
        )
    )
    def test_kraft_equality(self, freqs):
        lengths = huffman_code_lengths(freqs)
        if len(freqs) == 1:
            assert list(lengths.values()) == [1]
            return
        kraft = sum(2.0 ** -l for l in lengths.values())
        assert math.isclose(kraft, 1.0)

    @given(
        st.dictionaries(
            st.integers(0, 60), st.integers(1, 200), min_size=2, max_size=30
        )
    )
    def test_cost_matches_reference(self, freqs):
        """Total cost equals an independent minimal Huffman merger's.

        All Huffman codes (whatever the tie-breaking) achieve the same
        optimal weighted length, so the costs must agree exactly.
        """
        lengths = huffman_code_lengths(freqs)
        cost = sum(freqs[s] * lengths[s] for s in freqs)
        assert cost == _reference_huffman_cost(list(freqs.values()))

    @given(
        st.dictionaries(
            st.integers(0, 60), st.integers(1, 200), min_size=2, max_size=30
        )
    )
    def test_cost_within_entropy_bounds(self, freqs):
        """H <= average length < H + 1 (Huffman's classic bound)."""
        lengths = huffman_code_lengths(freqs)
        total = sum(freqs.values())
        avg = sum(freqs[s] * lengths[s] for s in freqs) / total
        entropy = -sum(
            (f / total) * math.log2(f / total) for f in freqs.values()
        )
        assert entropy - 1e-9 <= avg < entropy + 1.0

    def test_count_frequencies(self):
        assert count_frequencies("aabac") == {"a": 3, "b": 1, "c": 1}


def _reference_huffman_cost(weights: list[int]) -> int:
    """Sum of internal-node weights == total weighted codeword length."""
    import heapq

    heap = list(weights)
    heapq.heapify(heap)
    cost = 0
    while len(heap) > 1:
        a = heapq.heappop(heap)
        b = heapq.heappop(heap)
        cost += a + b
        heapq.heappush(heap, a + b)
    return cost


class TestCanonical:
    def test_paper_example(self):
        """N[2]=3, N[3]=1, N[5]=4 gives b = 0,0,6,14,28 and the
        codewords 00,01,10,110,11100,11101,11110,11111 (Section 3)."""
        code = CanonicalCode(counts=(0, 0, 3, 1, 0, 4), values=tuple(range(8)))
        assert code.first_codewords() == [0, 0, 6, 14, 28]
        words = code.codewords()
        rendered = [
            format(word, f"0{length}b") for word, length in words.values()
        ]
        assert rendered == [
            "00", "01", "10", "110", "11100", "11101", "11110", "11111",
        ]

    def test_codeword_lengths_match_huffman(self):
        freqs = {0: 50, 1: 20, 2: 20, 3: 5, 4: 5}
        lengths = huffman_code_lengths(freqs)
        code = CanonicalCode.from_frequencies(freqs)
        for symbol, (_, length) in code.codewords().items():
            assert length == lengths[symbol]

    def test_prefix_free(self):
        code = CanonicalCode.from_frequencies({i: i + 1 for i in range(9)})
        words = [
            format(word, f"0{length}b")
            for word, length in code.codewords().values()
        ]
        for a, b in itertools.permutations(words, 2):
            assert not b.startswith(a)

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            CanonicalCode(counts=(0, 2), values=(1,))  # totals mismatch
        with pytest.raises(ValueError):
            CanonicalCode(counts=(0, 1, 1), values=(1, 2))  # Kraft violation

    @given(
        st.dictionaries(
            st.integers(0, 255), st.integers(1, 500), min_size=1, max_size=40
        )
    )
    def test_encode_decode_identity(self, freqs):
        code = CanonicalCode.from_frequencies(freqs)
        symbols = list(freqs) * 2
        writer = BitWriter()
        encoder = code.encoder()
        for symbol in symbols:
            word, length = encoder[symbol]
            writer.write_bits(word, length)
        reader = BitReader(writer.to_words())
        assert [code.decode(reader) for _ in symbols] == symbols

    def test_decode_detects_corruption(self):
        # single-symbol code: the only codeword is 0; an all-ones stream
        # is not decodable
        code = CanonicalCode.from_frequencies({7: 3})
        reader = BitReader([0xFFFFFFFF])
        with pytest.raises(ValueError):
            code.decode(reader)

    @given(
        st.dictionaries(
            st.integers(0, 63), st.integers(1, 99), min_size=1, max_size=20
        )
    )
    def test_serialise_roundtrip(self, freqs):
        code = CanonicalCode.from_frequencies(freqs)
        writer = BitWriter()
        code.serialise(writer, value_bits=6)
        assert writer.bit_length == code.serialised_bits(6)
        reader = BitReader(writer.to_words())
        again = CanonicalCode.deserialise(reader, value_bits=6)
        assert again == code

    def test_first_codeword_recurrence(self):
        """b_1 = 0 and b_i = 2(b_{i-1} + N[i-1]) for i >= 2."""
        code = CanonicalCode.from_frequencies(
            {i: 2 ** max(0, 8 - i) for i in range(10)}
        )
        firsts = code.first_codewords()
        b = 0
        for i in range(1, code.max_length + 1):
            if i > 1:
                b = 2 * (b + code.counts[i - 1])
            assert firsts[i - 1] == b
