"""The unified metrics registry and its component mirrors."""

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)


class TestInstruments:
    def test_counter(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_last_write_wins(self):
        g = Gauge()
        g.set(3.5)
        g.set(1.0)
        assert g.value == 1.0

    def test_histogram_summary(self):
        h = Histogram()
        for v in (2.0, 8.0, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 15.0
        assert h.minimum == 2.0
        assert h.maximum == 8.0
        assert h.mean == 5.0

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram().mean == 0.0


class TestRegistry:
    def test_instruments_created_on_demand(self):
        reg = MetricsRegistry()
        reg.inc("a.b")
        reg.inc("a.b", 2)
        reg.set_gauge("g", 7.0)
        reg.observe("h", 1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"a.b": 3}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_same_name_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_snapshot_is_sorted_plain_data(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        assert list(reg.snapshot()["counters"]) == ["a", "z"]

    def test_render_empty(self):
        assert MetricsRegistry().render() == "<no metrics recorded>"

    def test_render_lists_everything(self):
        reg = MetricsRegistry()
        reg.inc("hits", 3)
        reg.set_gauge("depth", 2.0)
        reg.observe("lat", 0.25)
        text = reg.render()
        assert "hits" in text and "3" in text
        assert "depth" in text
        assert "lat" in text and "n=1" in text

    def test_reset(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.reset()
        assert reg.snapshot()["counters"] == {}

    def test_concurrent_increments_are_not_lost(self):
        reg = MetricsRegistry()

        def spin():
            for _ in range(500):
                reg.inc("spins")

        threads = [threading.Thread(target=spin) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("spins").value == 8 * 500

    def test_default_registry_is_a_singleton(self):
        assert get_registry() is get_registry()


class TestComponentMirrors:
    @pytest.fixture(autouse=True)
    def _fresh_registry(self):
        get_registry().reset()
        yield
        get_registry().reset()

    def test_stagecache_counters_mirror(self):
        from repro.analysis import stagecache

        stagecache.reset_counters()
        stagecache._count("memo")
        stagecache._count("memo")
        assert stagecache.STAGE_COUNTERS["memo"] == 2
        assert get_registry().counter("stagecache.memo").value == 2
        stagecache.reset_counters()

    def test_cellcache_stats_mirror(self, tmp_path):
        from repro.resilience.cache import CacheStats, read_entry, write_entry

        stats = CacheStats()
        path = tmp_path / "ab" / "entry.json"
        assert read_entry(path, ("k",), stats) is None  # miss
        write_entry(path, {"k": 1})
        assert read_entry(path, ("k",), stats) == {"k": 1}  # hit
        path.write_text("garbage\nmore garbage\n")
        assert read_entry(path, ("k",), stats) is None  # torn
        reg = get_registry()
        assert reg.counter("cellcache.misses").value == 2
        assert reg.counter("cellcache.hits").value == 1
        assert reg.counter("cellcache.writes").value == 1
        assert reg.counter("cellcache.rejects.torn").value == 1

    def test_pass_manager_mirrors_stage_counters(self):
        from repro.pipeline.manager import PassManager, Stage

        def produce(ctx):
            ctx.count("widgets", 4)
            return "out"

        manager = PassManager([Stage(name="s1", provides="a", fn=produce)])
        manager.run()
        manager.run({"a": "preloaded"})
        reg = get_registry()
        assert reg.counter("pipeline.stage.s1.executed").value == 1
        assert reg.counter("pipeline.stage.s1.reused").value == 1
        assert reg.counter("pipeline.stage.s1.widgets").value == 4
        assert reg.histogram("pipeline.stage.s1.seconds").count == 1

    def test_supervisor_outcomes_mirror(self):
        from repro.resilience.supervisor import (
            Supervisor,
            SupervisorConfig,
            Task,
        )
        from repro.resilience.policy import RetryPolicy

        calls = {"n": 0}

        def flaky(payload):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("first attempt dies")
            return payload

        config = SupervisorConfig(
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0)
        )
        supervisor = Supervisor(flaky, config)
        report = supervisor.run([Task(key="k", payload=42)], parallel=False)
        assert report.results == {"k": 42}
        reg = get_registry()
        assert reg.counter("supervisor.executions").value == 2
        assert reg.counter("supervisor.successes").value == 1
        assert reg.counter("supervisor.failures.error").value == 1

    def test_sweep_rollup_published(self, tmp_path, monkeypatch):
        from repro import settings
        from repro.analysis import parallel as par
        from repro.core.pipeline import SquashConfig

        def fake_cell(kind, name, scale, config):
            return {
                "footprint_total": 1,
                "baseline_words": 2,
                "reduction": 0.5,
            }

        monkeypatch.setattr(par, "_compute_cell", fake_cell)
        monkeypatch.setattr(par, "_warm_stage_bundles", lambda *a, **k: None)
        cells = [
            ("size", "adpcm", 0.2, SquashConfig(theta=0.0)),
            ("size", "gsm", 0.2, SquashConfig(theta=0.0)),
        ]
        with settings.use_settings(cache_dir=str(tmp_path)):
            par.compute_cells(cells, parallel=False)
            rollup = par.last_sweep_rollup()
            assert rollup["cells"] == 2
            assert rollup["computed"] == 2
            assert rollup["benchmarks"]["adpcm"]["computed"] == 1
            # Second pass: everything comes back from the cell cache.
            par.compute_cells(cells, parallel=False)
            assert par.last_sweep_rollup()["cache_hits"] == 2
        reg = get_registry()
        assert reg.counter("sweep.cells.cells").value == 4
        assert reg.counter("sweep.cells.computed").value == 2
        assert reg.counter("sweep.cells.cache_hits").value == 2
        assert reg.counter("sweep.bench.gsm.cells").value == 2
