"""Whole-system equivalence on generated workloads.

The strongest invariant in the repository: squash any generated
program at any θ / strategy / buffer bound, run it on inputs that
exercise code the profile never saw (including longjmp out of
compressed code and indirect calls through rewritten function-pointer
tables), and the outputs must be bit-identical to the uncompressed
program's.
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.costmodel import CostModel
from repro.core.descriptor import BufferStrategy, RestoreStubScheme
from repro.core.pipeline import SquashConfig, squash
from repro.program.layout import layout
from repro.squeeze import squeeze
from repro.vm.machine import Machine
from repro.vm.profiler import collect_profile
from repro.workloads.generator import build_workload
from repro.workloads.inputs import profiling_input, timing_input
from tests.conftest import small_spec


@pytest.fixture(scope="module")
def prepared(small_workload, small_inputs):
    """Squeezed program + profile + baseline timing run."""
    profile_in, timing_in = small_inputs
    squeezed, _ = squeeze(small_workload.program)
    result = layout(squeezed)
    profile = collect_profile(squeezed, result.image, profile_in)
    baseline = Machine(result.image, input_words=timing_in).run(
        max_steps=50_000_000
    )
    return squeezed, profile, baseline, timing_in


THETAS = (0.0, 1e-3, 1e-2, 0.1, 1.0)


@pytest.mark.parametrize("theta", THETAS)
def test_equivalence_across_theta(prepared, theta):
    squeezed, profile, baseline, timing_in = prepared
    result = squash(squeezed, profile, SquashConfig(theta=theta))
    run, _ = result.run(timing_in, max_steps=100_000_000)
    assert run.output == baseline.output
    assert run.exit_code == baseline.exit_code
    assert run.max_stack_depth == baseline.max_stack_depth


@pytest.mark.parametrize("strategy", tuple(BufferStrategy))
@pytest.mark.parametrize("scheme", tuple(RestoreStubScheme))
def test_equivalence_across_strategies(prepared, strategy, scheme):
    squeezed, profile, baseline, timing_in = prepared
    config = SquashConfig(
        theta=1.0, strategy=strategy, restore_scheme=scheme
    )
    result = squash(squeezed, profile, config)
    run, _ = result.run(timing_in, max_steps=100_000_000)
    assert run.output == baseline.output
    assert run.max_stack_depth == baseline.max_stack_depth


@pytest.mark.parametrize("bound", (64, 128, 256, 1024))
def test_equivalence_across_bounds(prepared, bound):
    squeezed, profile, baseline, timing_in = prepared
    config = SquashConfig(
        theta=1.0, cost=CostModel(buffer_bound_bytes=bound)
    )
    result = squash(squeezed, profile, config)
    run, _ = result.run(timing_in, max_steps=100_000_000)
    assert run.output == baseline.output


def test_longjmp_from_compressed_code(prepared, small_workload):
    """Drive the never-executed longjmp handler: an item of its kind
    with the magic payload longjmps out of the runtime buffer back to
    main's setjmp point; the error counter must tick identically."""
    squeezed, profile, _, _ = prepared
    plan = small_workload.plan
    n_kinds = small_workload.n_kinds
    lj_kinds = list(plan.never_kinds)
    # payload & 0xff == 0x5a triggers the longjmp stanza
    crafted = []
    for kind in lj_kinds:
        crafted.append(kind + n_kinds * 0x5A)
        crafted.append(kind + n_kinds * 0x1234)
    crafted = crafted * 2

    base_run = Machine(
        layout(squeezed).image, input_words=crafted
    ).run(max_steps=50_000_000)
    result = squash(squeezed, profile, SquashConfig(theta=1.0))
    run, _ = result.run(crafted, max_steps=100_000_000)
    assert run.output == base_run.output
    assert base_run.output[1] > 0  # the longjmp really happened


def test_never_kinds_inputs_equivalent(prepared, small_workload):
    """Exercise every never-executed handler (switches, fptr calls,
    recursion) through compressed code."""
    squeezed, profile, _, _ = prepared
    n_kinds = small_workload.n_kinds
    import random

    rng = random.Random(99)
    crafted = [
        kind + n_kinds * rng.randrange(1 << 20)
        for kind in small_workload.plan.never_kinds
        for _ in range(5)
    ]
    base_run = Machine(
        layout(squeezed).image, input_words=crafted
    ).run(max_steps=50_000_000)
    result = squash(
        squeezed, profile,
        SquashConfig(theta=1.0, cost=CostModel(buffer_bound_bytes=128)),
    )
    run, _ = result.run(crafted, max_steps=100_000_000)
    assert run.output == base_run.output


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    seed=st.integers(0, 10_000),
    theta=st.sampled_from((0.0, 1e-2, 1.0)),
    bound=st.sampled_from((96, 512)),
)
def test_random_workloads_equivalent(seed, theta, bound):
    """Property: any seeded workload squashes to an equivalent binary."""
    spec = small_spec(
        name=f"prop{seed}",
        seed=seed,
        target_input_size=2600,
        target_squeeze_size=1800,
        profile_items=400,
        timing_items=600,
    )
    workload = build_workload(spec, calibrate=False, filler_budget=1700)
    squeezed, _ = squeeze(workload.program)
    result = layout(squeezed)
    profile = collect_profile(
        squeezed, result.image, profiling_input(workload)
    )
    timing_in = timing_input(workload)
    baseline = Machine(result.image, input_words=timing_in).run(
        max_steps=50_000_000
    )
    config = SquashConfig(
        theta=theta, cost=CostModel(buffer_bound_bytes=bound)
    )
    squashed = squash(squeezed, profile, config)
    run, _ = squashed.run(timing_in, max_steps=100_000_000)
    assert run.output == baseline.output
    assert run.exit_code == baseline.exit_code
    assert run.max_stack_depth == baseline.max_stack_depth
