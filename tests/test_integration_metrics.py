"""Quantitative shape checks against the paper's claims (small scale)."""

import dataclasses

import pytest

from repro.core.costmodel import CostModel
from repro.core.descriptor import BufferStrategy, RestoreStubScheme
from repro.core.pipeline import SquashConfig, squash
from repro.program.layout import layout
from repro.squeeze import squeeze
from repro.vm.machine import Machine
from repro.vm.profiler import collect_profile


@pytest.fixture(scope="module")
def prepared(small_workload, small_inputs):
    profile_in, timing_in = small_inputs
    squeezed, stats = squeeze(small_workload.program)
    result = layout(squeezed)
    profile = collect_profile(squeezed, result.image, profile_in)
    baseline = Machine(result.image, input_words=timing_in).run(
        max_steps=50_000_000
    )
    return squeezed, profile, baseline, timing_in, stats


def test_squeeze_reduction_band(prepared):
    """Table 1's shape: squeeze takes off roughly 30% (here, whatever
    the spec's targets encode -- about a third)."""
    *_, stats = prepared
    assert 0.2 < stats.reduction < 0.45


def test_reduction_monotone_in_theta(prepared):
    squeezed, profile, *_ = prepared
    reductions = [
        squash(squeezed, profile, SquashConfig(theta=theta)).reduction
        for theta in (0.0, 1e-2, 0.1, 1.0)
    ]
    for lower, higher in zip(reductions, reductions[1:]):
        assert higher >= lower - 0.005  # monotone modulo tiny noise


def test_cold_mass_compressed_at_theta_one(prepared):
    squeezed, profile, *_ = prepared
    result = squash(squeezed, profile, SquashConfig(theta=1.0))
    # unswitch-chain blocks are new labels; they replaced same-size code
    compressed = sum(
        profile.sizes.get(l, 2) for l in result.info.compressed_blocks
    )
    assert compressed / squeezed.code_size > 0.6


def test_overhead_grows_with_theta(prepared):
    squeezed, profile, baseline, timing_in, _ = prepared
    cycles = []
    for theta in (0.0, 1e-2, 1.0):
        result = squash(squeezed, profile, SquashConfig(theta=theta))
        run, _ = result.run(timing_in, max_steps=200_000_000)
        cycles.append(run.cycles)
    assert cycles[0] <= cycles[1] <= cycles[2]
    assert cycles[0] / baseline.cycles < 1.2  # near-zero at θ=0


def test_gamma_band(prepared):
    """Section 3: compressed size ≈ 66% of original.  Our synthetic
    code lands in the same region (tables included)."""
    squeezed, profile, *_ = prepared
    result = squash(squeezed, profile, SquashConfig(theta=1.0))
    assert 0.45 < result.info.gamma_measured < 0.8


def test_decompress_once_footprint_larger(prepared):
    """Section 2.2's argument for rejecting option 2: never discarding
    decompressed code needs much more memory."""
    squeezed, profile, *_ = prepared
    config = SquashConfig(theta=1.0)
    overwrite = squash(squeezed, profile, config)
    once = squash(
        squeezed,
        profile,
        dataclasses.replace(config, strategy=BufferStrategy.DECOMPRESS_ONCE),
    )
    assert (
        once.footprint.runtime_buffer
        > 5 * overwrite.footprint.runtime_buffer
    )
    assert once.footprint.total > overwrite.footprint.total


def test_no_calls_compresses_less(prepared):
    """Section 2.2's argument for rejecting option 1: refusing blocks
    with calls severely limits compressible code."""
    squeezed, profile, *_ = prepared
    config = SquashConfig(theta=1.0)
    overwrite = squash(squeezed, profile, config)
    no_calls = squash(
        squeezed,
        profile,
        dataclasses.replace(config, strategy=BufferStrategy.NO_CALLS),
    )
    size = lambda r: sum(
        profile.sizes.get(l, 2) for l in r.info.compressed_blocks
    )
    assert size(no_calls) < size(overwrite)


def test_runtime_stub_scheme_uses_less_space_than_compile_time(prepared):
    """Section 2.2: compile-time restore stubs are a large fraction of
    the never-compressed code; the runtime scheme's reserved area is
    small and bounded."""
    squeezed, profile, *_ = prepared
    config = SquashConfig(theta=1.0)
    runtime_r = squash(squeezed, profile, config)
    ct = squash(
        squeezed,
        profile,
        dataclasses.replace(
            config, restore_scheme=RestoreStubScheme.COMPILE_TIME
        ),
    )
    assert runtime_r.footprint.stub_area < ct.footprint.stub_area


def test_max_live_stubs_small(prepared):
    """Paper: at most 9 concurrent restore stubs even at θ=0.01."""
    squeezed, profile, _, timing_in, _ = prepared
    result = squash(squeezed, profile, SquashConfig(theta=1.0))
    _, runtime = result.run(timing_in, max_steps=200_000_000)
    assert runtime.stats.max_live_stubs <= 9


def test_buffer_bound_sweep_has_interior_optimum(prepared):
    """Figure 3: too-small and too-large buffer bounds both lose."""
    squeezed, profile, *_ = prepared
    sizes = {}
    for bound in (32, 128, 512, 4096):
        config = SquashConfig(
            theta=1.0, cost=CostModel(buffer_bound_bytes=bound)
        )
        sizes[bound] = squash(squeezed, profile, config).footprint.total
    best = min(sizes, key=sizes.get)
    assert best in (128, 512)


def test_packing_saves_space(prepared):
    squeezed, profile, *_ = prepared
    config = SquashConfig(theta=1.0)
    packed = squash(squeezed, profile, config)
    unpacked = squash(
        squeezed, profile, dataclasses.replace(config, pack=False)
    )
    assert packed.footprint.total <= unpacked.footprint.total
    assert len(packed.info.regions) <= len(unpacked.info.regions)


def test_unswitching_enables_compression(prepared):
    squeezed, profile, *_ = prepared
    config = SquashConfig(theta=1.0)
    with_unswitch = squash(squeezed, profile, config)
    without = squash(
        squeezed, profile, dataclasses.replace(config, unswitch=False)
    )
    assert (
        with_unswitch.info.unswitch.unswitched_blocks > 0
    )
    size = lambda r: sum(
        profile.sizes.get(l, 0) for l in r.info.compressed_blocks
    )
    assert size(without) <= size(with_unswitch)
