"""CFG and call-graph queries."""

from repro.isa import assemble
from repro.program import (
    BasicBlock,
    DataObject,
    Function,
    JumpTableInfo,
    Program,
    block_predecessors,
    block_successors,
    call_graph,
    cfg_to_networkx,
    reachable_blocks,
)


def diamond_program() -> Program:
    program = Program("p")
    fn = Function("main")
    fn.add_block(
        BasicBlock(
            "m.a",
            instrs=assemble("beq r1, 0"),
            branch_target="m.c",
            fallthrough="m.b",
        )
    )
    fn.add_block(BasicBlock("m.b", instrs=assemble("nop"), fallthrough="m.d"))
    fn.add_block(BasicBlock("m.c", instrs=assemble("nop"), fallthrough="m.d"))
    fn.add_block(BasicBlock("m.d", instrs=assemble("halt")))
    program.add_function(fn)
    return program


def test_successors_diamond():
    program = diamond_program()
    fn = program.functions["main"]
    assert block_successors(program, fn.blocks["m.a"]) == ["m.c", "m.b"]
    assert block_successors(program, fn.blocks["m.b"]) == ["m.d"]
    assert block_successors(program, fn.blocks["m.d"]) == []


def test_predecessors():
    program = diamond_program()
    preds = block_predecessors(program)
    assert sorted(preds["m.d"]) == ["m.b", "m.c"]
    assert preds["m.a"] == []


def test_jump_table_successors():
    program = diamond_program()
    fn = program.functions["main"]
    block = BasicBlock("m.sw", instrs=assemble("jmp (r4)"))
    block.jump_table = JumpTableInfo("tab")
    fn.blocks["m.b"].fallthrough = "m.sw"
    fn.add_block(block)
    program.add_data(
        DataObject(
            "tab", words=[0, 0], relocs={0: "m.c", 1: "m.d"},
            is_jump_table=True,
        )
    )
    program.validate()
    assert block_successors(program, block) == ["m.c", "m.d"]


def test_reachability_follows_calls():
    program = diamond_program()
    callee = Function("callee")
    callee.add_block(BasicBlock("c.a", instrs=assemble("ret")))
    program.add_function(callee)
    dead = Function("dead")
    dead.add_block(BasicBlock("d.a", instrs=assemble("ret")))
    program.add_function(dead)

    block = program.functions["main"].blocks["m.b"]
    block.instrs = assemble("bsr r26, 0")
    block.call_targets[0] = "callee"

    live = reachable_blocks(program)
    assert "c.a" in live
    assert "d.a" not in live
    assert {"m.a", "m.b", "m.c", "m.d"} <= live


def test_reachability_includes_address_taken():
    program = diamond_program()
    fp = Function("fp_target")
    fp.add_block(BasicBlock("fp.a", instrs=assemble("ret")))
    program.add_function(fp)
    assert "fp.a" not in reachable_blocks(program)
    program.address_taken.add("fp_target")
    assert "fp.a" in reachable_blocks(program)


def test_call_graph_direct_and_indirect():
    program = diamond_program()
    for name in ("f", "g"):
        fn = Function(name)
        fn.add_block(BasicBlock(f"{name}.a", instrs=assemble("ret")))
        program.add_function(fn)
    block = program.functions["main"].blocks["m.b"]
    block.instrs = assemble("bsr r26, 0\njsr r26, (r4)")
    block.call_targets[0] = "f"
    block.fallthrough = "m.d"
    program.address_taken.add("g")

    graph = call_graph(program)
    assert graph["main"] == {"f", "g"}  # g via the indirect call
    assert graph["f"] == set()


def test_cfg_to_networkx():
    program = diamond_program()
    graph = cfg_to_networkx(program, program.functions["main"])
    assert set(graph.nodes) == {"m.a", "m.b", "m.c", "m.d"}
    assert graph.has_edge("m.a", "m.b")
    assert graph.has_edge("m.a", "m.c")
    assert graph.nodes["m.a"]["size"] == 1
