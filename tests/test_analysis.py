"""Statistics helpers, rendering, and the experiment drivers."""

import math

import pytest

from repro.analysis import (
    FIG6_THETAS,
    FIG7_THETAS,
    THETA_SCALE,
    ascii_table,
    bar_chart,
    geometric_mean,
    map_theta,
)
from repro.analysis.experiments import (
    compression_ratio_stats,
    fig3_rows,
    fig4_rows,
    fig6_rows,
    restore_stub_stats,
    table1_rows,
)
from repro.analysis.stats import arithmetic_mean, percent

SCALE = 0.2
NAME = ("adpcm",)


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([4, 1]) == pytest.approx(2.0)
        assert geometric_mean([7]) == pytest.approx(7.0)

    def test_geometric_mean_errors(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_geometric_vs_arithmetic(self):
        values = [0.5, 2.0, 8.0]
        assert geometric_mean(values) <= arithmetic_mean(values)

    def test_percent(self):
        assert percent(0.137) == "13.7%"
        assert percent(0.5, digits=0) == "50%"


class TestReport:
    def test_ascii_table(self):
        text = ascii_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert lines[-1].startswith("bb")

    def test_bar_chart(self):
        text = bar_chart(["x", "yy"], [1.0, 2.0])
        assert "#" in text
        assert "2.000" in text

    def test_bar_chart_mismatch(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])


class TestThetaMapping:
    def test_fixed_points(self):
        assert map_theta(0.0) == 0.0
        assert map_theta(1.0) == 1.0

    def test_scaling_and_saturation(self):
        assert map_theta(1e-5) == pytest.approx(1e-5 * THETA_SCALE)
        assert map_theta(0.5) == 1.0

    def test_grids_monotone(self):
        for grid in (FIG6_THETAS, FIG7_THETAS):
            assert list(grid) == sorted(grid)
            assert grid[0] == 0.0


class TestDrivers:
    def test_table1(self):
        rows = table1_rows(names=NAME, scale=SCALE)
        row = rows[0]
        assert row.name == "adpcm"
        assert abs(row.input_size - row.paper_input) <= 10
        assert (
            abs(row.squeeze_size - row.paper_squeeze)
            <= row.paper_squeeze * 0.02
        )
        assert 0 < row.reduction < 0.6
        assert row.paper_reduction == pytest.approx(
            1 - 11690 / 18228, rel=1e-2
        )

    def test_fig6_rows_monotone(self):
        rows = fig6_rows(names=NAME, scale=SCALE, thetas=(0.0, 1e-2, 1.0))
        reductions = [row.reduction for row in rows]
        assert reductions == sorted(reductions)
        assert all(not math.isnan(r) for r in reductions)

    def test_fig4_rows(self):
        rows = fig4_rows(names=NAME, scale=SCALE, thetas=(0.0, 1.0))
        assert rows[0].cold_fraction < rows[1].cold_fraction
        assert rows[1].cold_fraction == pytest.approx(1.0)
        for row in rows:
            assert row.compressible_fraction <= row.cold_fraction + 1e-9

    def test_fig3_rows(self):
        rows = fig3_rows(
            names=NAME, scale=SCALE, bounds=(128, 512), thetas=(0.0,)
        )
        assert len(rows) == 2
        for row in rows:
            assert 0.5 < row.relative_size < 1.2

    def test_compression_stats(self):
        rows = compression_ratio_stats(NAME, scale=SCALE)
        row = rows[0]
        assert 0.4 < row.ratio < 0.9
        assert row.stream_ratio < row.ratio  # tables cost extra

    def test_restore_stub_stats(self):
        rows = restore_stub_stats(NAME, scale=SCALE, theta_paper=1e-2)
        row = rows[0]
        assert row.max_live_stubs <= 9
        assert 0 < row.compile_time_fraction < 1.0
        assert row.stubs_created == row.stubs_freed
