"""Supervisor contract: retries, crashes, timeouts, breaker, policy.

Pool tests pass an explicit ``workers=2``: the supervision contract is
only meaningful against disposable workers, and CI hosts may report a
single CPU.
"""

import time
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.errors import BreakerOpen, CellFailure, SquashError
from repro.resilience import (
    CircuitBreaker,
    RetryPolicy,
    Supervisor,
    SupervisorConfig,
    Task,
    get_pool_manager,
)
from tests._supervised_workers import work

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_cap=0.05)


def _config(**overrides):
    defaults = dict(workers=2, retry=FAST_RETRY)
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def _tasks(*payloads, cls=""):
    return [
        Task(key=i, payload=payload, cls=cls, label=f"task-{i}")
        for i, payload in enumerate(payloads)
    ]


class TestHappyPath:
    def test_parallel_results(self):
        tasks = _tasks(*({"op": "ok", "value": i} for i in range(4)))
        report = Supervisor(work, _config()).run(tasks)
        assert report.ok
        assert report.results == {0: 0, 1: 1, 2: 2, 3: 3}
        assert report.executions == 4
        assert report.pool_rebuilds == 0

    def test_serial_results(self):
        tasks = _tasks(*({"op": "ok", "value": i} for i in range(3)))
        report = Supervisor(work, _config()).run(tasks, parallel=False)
        assert report.ok and report.results == {0: 0, 1: 1, 2: 2}

    def test_on_result_fires_per_success(self):
        seen = []
        tasks = _tasks(*({"op": "ok", "value": i * 10} for i in range(3)))
        sup = Supervisor(
            work, _config(), on_result=lambda t, r: seen.append((t.key, r))
        )
        sup.run(tasks, parallel=False)
        assert sorted(seen) == [(0, 0), (1, 10), (2, 20)]

    def test_duplicate_keys_rejected(self):
        tasks = [Task(key=1, payload={}), Task(key=1, payload={})]
        with pytest.raises(ValueError):
            Supervisor(work, _config()).run(tasks)


class TestRetries:
    def test_transient_failure_retried_to_success(self, tmp_path):
        payload = {
            "op": "fail_until", "path": str(tmp_path / "c"), "n": 2,
        }
        report = Supervisor(work, _config()).run(_tasks(payload))
        assert report.ok
        assert report.results[0] == "recovered"
        errors = [e for e in report.events if e.kind == "error"]
        assert len(errors) == 2
        assert all(e.retried for e in errors)
        assert all(e.error_type == "RuntimeError" for e in errors)

    def test_exhaustion_is_one_typed_cellfailure(self):
        report = Supervisor(
            work, _config(retry=RetryPolicy(max_attempts=2, backoff_base=0.0))
        ).run(_tasks({"op": "always_fail"}), parallel=False)
        assert not report.ok
        failure = report.failures[0]
        assert isinstance(failure, CellFailure)
        assert isinstance(failure, SquashError)  # typed, catchable family
        assert isinstance(failure.__cause__, ValueError)
        assert "task-0" in str(failure)
        assert report.executions == 2
        assert not report.events[-1].retried

    def test_sibling_results_survive_a_lost_cell(self):
        tasks = _tasks({"op": "always_fail"}, {"op": "ok", "value": 7})
        report = Supervisor(
            work, _config(retry=RetryPolicy(max_attempts=1))
        ).run(tasks)
        assert report.results == {1: 7}
        assert set(report.failures) == {0}


class TestCrashIsolation:
    def test_worker_death_costs_one_rebuild_not_the_sweep(self, tmp_path):
        tasks = _tasks(
            {"op": "exit_until", "path": str(tmp_path / "c"), "n": 1},
            *({"op": "ok", "value": i} for i in range(3)),
        )
        report = Supervisor(work, _config()).run(tasks)
        assert report.ok
        assert report.results[0] == "survived"
        assert report.pool_rebuilds >= 1
        crashes = [e for e in report.events if e.kind == "crash"]
        assert crashes and all(e.retried for e in crashes)

    def test_broken_pool_at_submit_time_is_replaced(self):
        """A worker death can surface synchronously: ``pool.submit``
        itself raises ``BrokenProcessPool`` when the crash lands while
        later tasks are still being queued.  The supervisor must treat
        that like an in-flight break — replace the pool and run the
        never-submitted task on the replacement, unscathed."""
        Supervisor(work, _config()).run(_tasks({"op": "ok", "value": 0}))
        _fingerprint, pool = get_pool_manager()._parked[2]
        real_submit, fired = pool.submit, []

        def submit_once_broken(fn, *args, **kwargs):
            if not fired:
                fired.append(True)
                raise BrokenProcessPool("worker died before submit")
            return real_submit(fn, *args, **kwargs)

        pool.submit = submit_once_broken
        tasks = _tasks(*({"op": "ok", "value": i} for i in range(2)))
        report = Supervisor(work, _config()).run(tasks)
        assert report.ok
        assert report.results == {0: 0, 1: 1}
        assert report.pool_rebuilds == 1
        assert report.executions == 2  # the failed submit never ran

    def test_crashes_have_their_own_generous_cap(self):
        policy = RetryPolicy(max_attempts=2, crash_cap_factor=4)
        assert policy.crash_cap == 8  # bystanders absorb blast radius


class TestTimeouts:
    def test_hung_task_times_out_and_recovers(self, tmp_path):
        tasks = _tasks(
            {
                "op": "sleep_until", "path": str(tmp_path / "c"),
                "n": 1, "secs": 30.0,
            },
            {"op": "ok", "value": 1},
        )
        start = time.monotonic()
        report = Supervisor(work, _config(deadline=1.0)).run(tasks)
        assert time.monotonic() - start < 20.0  # never waits the sleep out
        assert report.ok
        assert report.results[0] == "awake"
        kinds = {e.kind for e in report.events}
        assert "timeout" in kinds
        assert report.pool_rebuilds >= 1


class TestBreaker:
    def test_breaker_opens_and_skips_typed(self):
        tasks = _tasks(*({"op": "always_fail"} for _ in range(3)), cls="bad")
        tasks += [Task(key="g", payload={"op": "ok", "value": 5}, cls="good")]
        report = Supervisor(
            work,
            _config(retry=RetryPolicy(max_attempts=1), breaker_threshold=2),
        ).run(tasks, parallel=False)
        assert report.results == {"g": 5}  # other classes unaffected
        skipped = [
            f for f in report.failures.values() if f.reason == "breaker-open"
        ]
        assert skipped
        assert all(isinstance(f.__cause__, BreakerOpen) for f in skipped)
        assert report.executions == 3  # the skipped task never ran

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("x")
        breaker.record_success("x")
        breaker.record_failure("x")
        assert not breaker.is_open("x")
        breaker.record_failure("x")
        assert breaker.is_open("x")
        assert breaker.open_classes == ("x",)

    def test_zero_threshold_never_opens(self):
        breaker = CircuitBreaker(threshold=0)
        for _ in range(100):
            breaker.record_failure("x")
        assert not breaker.is_open("x")


class TestInterrupt:
    def test_keyboard_interrupt_discards_lease_and_reraises(self):
        """Ctrl-C mid-sweep must propagate, cancel the in-flight
        futures, and hand the lease back through discard — never park
        a mid-task pool warm for the next run to inherit."""
        from repro.obs.metrics import get_registry
        from repro.resilience.workerpool import reset_pool_manager

        reset_pool_manager()
        metrics = get_registry()
        discards_before = metrics.counter("pool.discards").value
        interrupts_before = metrics.counter(
            "supervisor.interrupted"
        ).value

        def interrupt(task, result):
            raise KeyboardInterrupt

        tasks = _tasks(*({"op": "ok", "value": i} for i in range(4)))
        sup = Supervisor(work, _config(), on_result=interrupt)
        try:
            with pytest.raises(KeyboardInterrupt):
                sup.run(tasks)
            assert get_pool_manager().parked_count() == 0
            assert (
                metrics.counter("pool.discards").value
                == discards_before + 1
            )
            assert (
                metrics.counter("supervisor.interrupted").value
                == interrupts_before + 1
            )
        finally:
            reset_pool_manager()

    def test_serial_interrupt_propagates(self):
        def interrupt(task, result):
            raise KeyboardInterrupt

        sup = Supervisor(
            work, _config(), on_result=interrupt
        )
        with pytest.raises(KeyboardInterrupt):
            sup.run(_tasks({"op": "ok", "value": 1}), parallel=False)


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy()
        assert policy.delay("cell-a", 2) == policy.delay("cell-a", 2)
        assert policy.delay("cell-a", 2) != policy.delay("cell-b", 2)

    def test_delay_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base=0.1, backoff_factor=2.0, backoff_cap=0.5, jitter=0.0
        )
        delays = [policy.delay("k", attempt) for attempt in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_cap=1.0, jitter=0.25)
        for attempt in range(1, 20):
            delay = policy.delay("k", attempt)
            assert 0.75 <= delay <= 1.25

    def test_zero_base_means_no_wait(self):
        assert RetryPolicy(backoff_base=0.0).delay("k", 3) == 0.0


class TestEnvConfig:
    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_DEADLINE", "12.5")
        monkeypatch.setenv("REPRO_CELL_RETRIES", "5")
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "3")
        config = SupervisorConfig.from_env()
        assert config.deadline == 12.5
        assert config.retry.max_attempts == 5
        assert config.breaker_threshold == 3

    def test_malformed_env_falls_back_silently(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_DEADLINE", "soon")
        monkeypatch.setenv("REPRO_CELL_RETRIES", "many")
        config = SupervisorConfig.from_env()
        assert config.deadline is None
        assert config.retry.max_attempts == 3
