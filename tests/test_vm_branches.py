"""Differential tests: every branch condition against a Python model."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import assemble
from repro.program import BasicBlock, Function, Program
from repro.program.layout import layout
from repro.vm.machine import Machine

U32 = (1 << 32) - 1


def _signed(value: int) -> int:
    return value - (1 << 32) if value >= (1 << 31) else value


#: mnemonic -> Python predicate on the (unsigned) register value.
BRANCH_MODEL = {
    "beq": lambda v: v == 0,
    "bne": lambda v: v != 0,
    "blt": lambda v: _signed(v) < 0,
    "ble": lambda v: _signed(v) <= 0,
    "bgt": lambda v: _signed(v) > 0,
    "bge": lambda v: _signed(v) >= 0,
    "blbc": lambda v: (v & 1) == 0,
    "blbs": lambda v: (v & 1) == 1,
}


def run_branch(mnemonic: str, value: int) -> bool:
    """Execute one conditional branch on *value*; True if taken."""
    program = Program("t")
    fn = Function("main")
    fn.add_block(
        BasicBlock(
            "m.a",
            instrs=assemble(f"sys read\nadd r0, r31, r9\n{mnemonic} r9, 0"),
            branch_target="m.taken",
            fallthrough="m.not",
        )
    )
    fn.add_block(
        BasicBlock("m.not", instrs=assemble("addi r31, 0, r16\nsys exit"))
    )
    fn.add_block(
        BasicBlock("m.taken", instrs=assemble("addi r31, 1, r16\nsys exit"))
    )
    program.add_function(fn)
    machine = Machine(layout(program).image, input_words=[value])
    return machine.run(max_steps=100).exit_code == 1


INTERESTING = [
    0, 1, 2, (1 << 31) - 1, 1 << 31, (1 << 31) + 1, U32, U32 - 1, 0x5555,
]


@pytest.mark.parametrize("mnemonic", sorted(BRANCH_MODEL))
@pytest.mark.parametrize("value", INTERESTING)
def test_branch_against_model(mnemonic, value):
    assert run_branch(mnemonic, value) == BRANCH_MODEL[mnemonic](value)


@given(
    mnemonic=st.sampled_from(sorted(BRANCH_MODEL)),
    value=st.integers(0, U32),
)
def test_branch_property(mnemonic, value):
    assert run_branch(mnemonic, value) == BRANCH_MODEL[mnemonic](value)


class TestIndirectControl:
    def test_jsr_saves_link_and_jumps(self):
        program = Program("t")
        fn = Function("main")
        block = BasicBlock(
            "m.a",
            instrs=assemble(
                "ldah r4, 0(r31)\nlda r4, 0(r4)\nldw r4, 0(r4)\n"
                "jsr r26, (r4)\nadd r0, r31, r16\nsys exit"
            ),
            data_refs={0: "T", 1: "T"},
        )
        fn.add_block(block)
        program.add_function(fn)
        target = Function("target")
        target.add_block(
            BasicBlock("t.a", instrs=assemble("addi r31, 42, r0\nret"))
        )
        program.add_function(target)
        program.address_taken.add("target")
        from repro.program import DataObject

        program.add_data(DataObject("T", words=[0], relocs={0: "target"}))
        machine = Machine(layout(program).image)
        run = machine.run(max_steps=200)
        assert run.exit_code == 42

    def test_ret_through_alternate_register(self):
        program = Program("t")
        fn = Function("main")
        block = BasicBlock(
            "m.a",
            instrs=assemble("bsr r25, 0\nadd r0, r31, r16\nsys exit"),
        )
        block.call_targets[0] = "helper"
        fn.add_block(block)
        program.add_function(fn)
        helper = Function("helper")
        helper.add_block(
            BasicBlock(
                "h.a", instrs=assemble("addi r31, 9, r0\nret (r25)")
            )
        )
        program.add_function(helper)
        machine = Machine(layout(program).image)
        assert machine.run(max_steps=100).exit_code == 9

    def test_jmp_does_not_link_with_zero_ra(self):
        program = Program("t")
        fn = Function("main")
        fn.add_block(
            BasicBlock(
                "m.a",
                instrs=assemble(
                    "addi r31, 7, r26\n"
                    "ldah r4, 0(r31)\nlda r4, 0(r4)\nldw r4, 0(r4)\n"
                    "jmp (r4)"
                ),
                data_refs={1: "T", 2: "T"},
            )
        )
        fn.add_block(
            BasicBlock(
                "m.done",
                instrs=assemble("add r26, r31, r16\nsys exit"),
            )
        )
        program.add_function(fn)
        from repro.program import DataObject

        program.add_data(
            DataObject("T", words=[0], relocs={0: "m.done"})
        )
        machine = Machine(layout(program).image)
        # r26 must still hold 7: the jmp used ra = zero
        assert machine.run(max_steps=100).exit_code == 7


class TestAddressFormation:
    @given(st.integers(0, (1 << 15) - 1), st.integers(0, 100))
    def test_lda_ldah_compose(self, lo, hi):
        program = Program("t")
        fn = Function("main")
        fn.add_block(
            BasicBlock(
                "m.a",
                instrs=assemble(
                    f"ldah r1, {hi}(r31)\nlda r1, {lo}(r1)\n"
                    "add r1, r31, r16\nsys exit"
                ),
            )
        )
        program.add_function(fn)
        machine = Machine(layout(program).image)
        run = machine.run(max_steps=100)
        assert run.exit_code == ((hi << 16) + lo) & U32
