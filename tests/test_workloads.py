"""The workload generator: structure, sizes, determinism, features."""

import pytest

from repro.program.layout import layout
from repro.squeeze import squeeze
from repro.vm.machine import Machine
from repro.workloads.generator import build_workload
from repro.workloads.inputs import make_input, profiling_input, timing_input
from repro.workloads.mediabench import (
    MEDIABENCH,
    mediabench_spec,
)
from repro.workloads.spec import KindPlan, WorkloadSpec
from tests.conftest import small_spec


class TestSpec:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(
                name="x", seed=1,
                target_input_size=100, target_squeeze_size=200,
            )
        with pytest.raises(ValueError):
            small_spec(ladder_boost=(1, 2))

    def test_kind_plan_partitions(self):
        plan = KindPlan.from_spec(small_spec())
        kinds = (
            list(plan.hot_kinds)
            + list(plan.ladder_kinds)
            + list(plan.timing_only_kinds)
            + list(plan.never_kinds)
        )
        assert kinds == list(range(plan.n_kinds))

    def test_mediabench_specs(self):
        for name in MEDIABENCH:
            spec = mediabench_spec(name)
            assert spec.name == name
        with pytest.raises(KeyError):
            mediabench_spec("quake")

    def test_mediabench_scale(self):
        spec = mediabench_spec("gsm", scale=0.25)
        full = mediabench_spec("gsm")
        assert spec.target_input_size == int(full.target_input_size * 0.25)


class TestGenerator:
    def test_program_validates(self, small_workload):
        small_workload.program.validate()

    def test_input_size_on_target(self, small_workload):
        spec = small_workload.spec
        assert (
            abs(small_workload.program.code_size - spec.target_input_size)
            <= 6
        )

    def test_squeeze_size_near_target(self, small_workload):
        spec = small_workload.spec
        squeezed, _ = squeeze(small_workload.program)
        tolerance = max(10, spec.target_squeeze_size // 100)
        assert (
            abs(squeezed.code_size - spec.target_squeeze_size) <= tolerance
        )

    def test_deterministic(self):
        a = build_workload(small_spec(), filler_budget=2500)
        b = build_workload(small_spec(), filler_budget=2500)
        assert a.program.code_size == b.program.code_size
        for (_, block_a), (_, block_b) in zip(
            a.program.all_blocks(), b.program.all_blocks()
        ):
            assert block_a.label == block_b.label
            assert block_a.instrs == block_b.instrs

    def test_different_seeds_differ(self):
        a = build_workload(small_spec(seed=1), filler_budget=2500)
        b = build_workload(small_spec(seed=2), filler_budget=2500)
        blocks_a = [bl.instrs for _, bl in a.program.all_blocks()]
        blocks_b = [bl.instrs for _, bl in b.program.all_blocks()]
        assert blocks_a != blocks_b

    def test_features_present(self, small_workload):
        program = small_workload.program
        assert any(
            block.jump_table is not None
            for _, block in program.all_blocks()
        )
        assert program.address_taken  # function-pointer table
        assert any(
            fn.calls_setjmp for fn in program.functions.values()
        )
        assert any(
            fn.has_indirect_call for fn in program.functions.values()
        )
        assert "rec" in program.functions

    def test_planted_junk_is_reclaimed(self, small_workload):
        _, stats = squeeze(small_workload.program)
        assert stats.nops.nops_removed > 50
        assert stats.dead.stores_removed > 30
        assert stats.unreachable.functions_removed >= 1
        assert stats.abstraction.fragments_abstracted >= 1

    def test_runs_to_completion(self, small_workload, small_inputs):
        profile_in, _ = small_inputs
        machine = Machine(
            layout(small_workload.program).image, input_words=profile_in
        )
        run = machine.run(max_steps=20_000_000)
        assert run.exit_code == 0
        assert len(run.output) == 2  # checksum + error count
        assert run.output[1] == 0  # no longjmp on the profile input


class TestInputs:
    def test_modes_validated(self, small_workload):
        with pytest.raises(ValueError):
            make_input(small_workload, "bogus")

    def test_ladder_counts_exact(self, small_workload):
        spec = small_workload.spec
        plan = small_workload.plan
        items = profiling_input(small_workload)
        n_kinds = small_workload.n_kinds
        for position, kind in enumerate(plan.ladder_kinds):
            count = sum(1 for item in items if item % n_kinds == kind)
            assert count == spec.ladder_counts[position]

    def test_timing_only_kinds_absent_from_profile(self, small_workload):
        items = profiling_input(small_workload)
        n_kinds = small_workload.n_kinds
        for kind in small_workload.plan.timing_only_kinds:
            assert all(item % n_kinds != kind for item in items)

    def test_timing_only_kinds_present_in_timing(self, small_workload):
        items = timing_input(small_workload)
        n_kinds = small_workload.n_kinds
        for kind in small_workload.plan.timing_only_kinds:
            count = sum(1 for item in items if item % n_kinds == kind)
            assert count == small_workload.spec.timing_only_count

    def test_never_kinds_absent_everywhere(self, small_workload):
        n_kinds = small_workload.n_kinds
        for mode_items in (
            profiling_input(small_workload),
            timing_input(small_workload),
        ):
            for kind in small_workload.plan.never_kinds:
                assert all(item % n_kinds != kind for item in mode_items)

    def test_inputs_deterministic(self, small_workload):
        assert profiling_input(small_workload) == profiling_input(
            small_workload
        )

    def test_timing_larger_than_profile(self, small_workload):
        assert len(timing_input(small_workload)) > len(
            profiling_input(small_workload)
        )

    def test_payloads_bounded(self, small_workload):
        from repro.workloads.generator import PAYLOAD_BITS

        n_kinds = small_workload.n_kinds
        for item in timing_input(small_workload):
            assert item // n_kinds < (1 << PAYLOAD_BITS)
