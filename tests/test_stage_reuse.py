"""Incremental sweep reuse of θ-invariant stage artifacts."""

import dataclasses

import pytest

from repro.analysis import experiments, parallel, stagecache
from repro.program.serialize import program_from_dict, program_to_dict

NAMES = ("adpcm", "gsm")
SCALE = 0.2
THETAS = (0.0, 1e-5, 5e-5)


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    stagecache.reset_counters()
    yield
    stagecache.reset_counters()


class TestBundleRoundTrip:
    def test_program_serialization_is_exact(self):
        from repro.workloads.mediabench import mediabench_program

        squeezed = mediabench_program("adpcm", scale=SCALE).squeezed
        payload = program_to_dict(squeezed)
        again = program_to_dict(program_from_dict(payload))
        assert again == payload

    def test_warm_then_load_round_trips(self, tmp_path):
        bundle = stagecache.warm_bundle(tmp_path, "adpcm", SCALE)
        stagecache.reset_counters()  # also clears the in-process memo
        fresh = stagecache.load_bundle(tmp_path, "adpcm", SCALE)
        assert fresh is not None
        assert stagecache.STAGE_COUNTERS["loaded"] == 1
        again = stagecache.load_bundle(tmp_path, "adpcm", SCALE)
        assert again is fresh
        assert stagecache.STAGE_COUNTERS["memo"] == 1
        assert program_to_dict(fresh.program) == program_to_dict(
            bundle.program
        )
        assert fresh.profile.counts == bundle.profile.counts
        assert fresh.profile.tot_instr_ct == bundle.profile.tot_instr_ct
        assert fresh.baseline_words == bundle.baseline_words
        assert fresh.base_cycles == bundle.base_cycles

    def test_corrupt_bundle_is_a_miss(self, tmp_path):
        stagecache.warm_bundle(tmp_path, "adpcm", SCALE)
        path = stagecache.bundle_path(tmp_path, "adpcm", SCALE)
        path.write_text("not a sealed entry")
        stagecache.reset_counters()
        assert stagecache.load_bundle(tmp_path, "adpcm", SCALE) is None

    def test_reuse_can_be_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_STAGE_REUSE", "0")
        assert not stagecache.stage_reuse_enabled()
        monkeypatch.setenv("REPRO_STAGE_REUSE", "1")
        assert stagecache.stage_reuse_enabled()


class TestSweepReuse:
    def test_size_rows_identical_and_invariant_work_once(self):
        serial = experiments.fig6_rows(NAMES, scale=SCALE, thetas=THETAS)
        stagecache.reset_counters()
        rows = parallel.fig6_rows(
            NAMES, scale=SCALE, thetas=THETAS, parallel=False
        )
        assert rows == serial
        counters = stagecache.STAGE_COUNTERS
        # Squeeze/profile/baseline ran exactly once per benchmark; every
        # other cell of the θ grid reused the bundle.
        assert counters["computed"] == len(NAMES)
        assert counters["memo"] + counters["loaded"] >= len(NAMES) * (
            len(THETAS) - 1
        )

    def test_time_rows_identical_to_serial(self):
        serial = experiments.fig7_time_rows(
            NAMES, scale=SCALE, thetas=(0.0, 1e-5)
        )
        stagecache.reset_counters()
        rows = parallel.fig7_time_rows(
            NAMES, scale=SCALE, thetas=(0.0, 1e-5), parallel=False
        )
        assert rows == serial
        # The θ-invariant bundles were persisted by the size sweeps of
        # other tests' caches or computed here — never more than once
        # per benchmark in-process.
        assert stagecache.STAGE_COUNTERS["computed"] <= len(NAMES)

    def test_second_sweep_loads_persisted_bundles(self):
        parallel.fig6_rows(
            NAMES, scale=SCALE, thetas=(0.0,), parallel=False
        )
        stagecache.reset_counters()
        # New θ: cell cache misses, stage bundles hit from disk.
        rows = parallel.fig6_rows(
            NAMES, scale=SCALE, thetas=(1e-4,), parallel=False
        )
        assert len(rows) == len(NAMES)
        assert stagecache.STAGE_COUNTERS["computed"] == 0
        assert (
            stagecache.STAGE_COUNTERS["loaded"]
            + stagecache.STAGE_COUNTERS["memo"]
            >= len(NAMES)
        )

    def test_rows_identical_with_reuse_disabled(
        self, monkeypatch, tmp_path
    ):
        with_reuse = parallel.fig6_rows(
            ("adpcm",), scale=SCALE, thetas=(0.0, 1e-5), parallel=False
        )
        monkeypatch.setenv("REPRO_STAGE_REUSE", "0")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "off"))
        stagecache.reset_counters()
        without = parallel.fig6_rows(
            ("adpcm",), scale=SCALE, thetas=(0.0, 1e-5), parallel=False
        )
        assert without == with_reuse
        assert stagecache.STAGE_COUNTERS["computed"] == 0

    def test_nonstandard_text_base_rederives_baseline(self):
        from repro.analysis.parallel import _compute_cell
        from repro.core.pipeline import SquashConfig

        stagecache.warm_bundle(parallel.cache_dir(), "adpcm", SCALE)
        config = dataclasses.replace(
            SquashConfig(theta=0.0), text_base=0x30000
        )
        cell = _compute_cell("size", "adpcm", SCALE, config)
        result = experiments.squash_benchmark("adpcm", SCALE, config)
        assert cell["baseline_words"] == result.baseline_words
        assert cell["footprint_total"] == result.footprint.total
