"""Module-level worker behaviours for supervisor tests.

Pool workers import tasks by reference, so these must live in a real
module, not a test body.  Attempt counting goes through a file because
retries of one task may land in different worker processes; the
supervisor never runs two attempts of the same task concurrently, so a
plain read-modify-write is race-free.
"""

from __future__ import annotations

import os
import pathlib
import time


def _bump(path: str) -> int:
    """Previous value of the counter at *path*, then increment it."""
    p = pathlib.Path(path)
    count = int(p.read_text()) if p.exists() else 0
    p.write_text(str(count + 1))
    return count


def work(payload: dict):
    op = payload["op"]
    if op == "ok":
        return payload.get("value")
    if op == "pid":
        return os.getpid()
    if op == "fail_until":
        if _bump(payload["path"]) < payload["n"]:
            raise RuntimeError(f"transient failure of {payload['path']}")
        return "recovered"
    if op == "exit_until":
        if _bump(payload["path"]) < payload["n"]:
            os._exit(9)
        return "survived"
    if op == "sleep_until":
        if _bump(payload["path"]) < payload["n"]:
            time.sleep(payload["secs"])
        return "awake"
    if op == "always_fail":
        raise ValueError("permanent failure")
    raise AssertionError(f"unknown op {op!r}")
