"""Cold-code identification (Section 5)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.coldcode import cold_code_stats, identify_cold_blocks
from repro.vm.profiler import Profile


def make_profile(spec: dict[str, tuple[int, int]]) -> Profile:
    """spec: label -> (size, freq)."""
    sizes = {label: size for label, (size, _) in spec.items()}
    counts = {label: freq for label, (_, freq) in spec.items()}
    tot = sum(size * freq for size, freq in spec.values())
    return Profile(counts=counts, sizes=sizes, tot_instr_ct=tot)


BASIC = make_profile(
    {
        "dead": (10, 0),
        "rare": (10, 1),
        "warm": (10, 50),
        "hot": (10, 1000),
    }
)


def test_theta_zero_marks_only_never_executed():
    result = identify_cold_blocks(BASIC, 0.0)
    assert result.cold == {"dead"}
    assert result.cutoff == 0
    assert result.cold_weight == 0


def test_theta_one_marks_everything():
    result = identify_cold_blocks(BASIC, 1.0)
    assert result.cold == set(BASIC.counts)


def test_threshold_admits_whole_frequency_classes():
    # budget must cover the entire freq-1 class or none of it
    tot = BASIC.tot_instr_ct
    just_below = 9 / tot
    just_above = 11 / tot
    assert identify_cold_blocks(BASIC, just_below).cold == {"dead"}
    assert identify_cold_blocks(BASIC, just_above).cold == {"dead", "rare"}


def test_weight_is_size_times_freq():
    profile = make_profile({"a": (3, 2), "b": (100, 2), "hot": (1, 10000)})
    # budget 6: admits the freq-2 class only if 6 + 200 <= budget
    result = identify_cold_blocks(profile, 6 / profile.tot_instr_ct)
    assert result.cold == set()  # class weight 206 exceeds 6
    result = identify_cold_blocks(profile, 206 / profile.tot_instr_ct)
    assert result.cold == {"a", "b"}


def test_invalid_theta_rejected():
    with pytest.raises(ValueError):
        identify_cold_blocks(BASIC, -0.1)
    with pytest.raises(ValueError):
        identify_cold_blocks(BASIC, 1.5)


def test_budget_reported():
    result = identify_cold_blocks(BASIC, 0.5)
    assert result.budget == pytest.approx(0.5 * BASIC.tot_instr_ct)


@given(st.floats(0, 1), st.floats(0, 1))
def test_monotone_in_theta(t1, t2):
    lo, hi = sorted((t1, t2))
    cold_lo = identify_cold_blocks(BASIC, lo).cold
    cold_hi = identify_cold_blocks(BASIC, hi).cold
    assert cold_lo <= cold_hi


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=4),
        st.tuples(st.integers(1, 50), st.integers(0, 1000)),
        min_size=1,
        max_size=30,
    ),
    st.floats(0, 1),
)
def test_cold_weight_within_budget(spec, theta):
    profile = make_profile(spec)
    result = identify_cold_blocks(profile, theta)
    weight = sum(
        profile.sizes[l] * profile.counts[l] for l in result.cold
    )
    assert weight <= result.budget + 1e-9
    assert weight == result.cold_weight


def test_stats_fractions():
    stats = cold_code_stats(BASIC, 0.0, compressible={"dead"})
    assert stats.total_code == 40
    assert stats.cold_fraction == pytest.approx(0.25)
    assert stats.compressible_fraction == pytest.approx(0.25)


def test_stats_compressible_subset():
    stats = cold_code_stats(BASIC, 1.0, compressible={"dead", "rare"})
    assert stats.cold_fraction == 1.0
    assert stats.compressible_fraction == pytest.approx(0.5)
