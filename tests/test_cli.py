"""The command-line interface."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    assert code == 0
    return capsys.readouterr().out


def test_table1(capsys):
    out = run_cli(capsys, "table1", "--names", "adpcm", "--scale", "0.2")
    assert "Table 1" in out
    assert "adpcm" in out


def test_fig4(capsys):
    out = run_cli(capsys, "fig4", "--names", "adpcm", "--scale", "0.2")
    assert "cold" in out
    assert "compressible" in out


def test_fig6(capsys):
    out = run_cli(capsys, "fig6", "--names", "adpcm", "--scale", "0.2")
    assert "reduction" in out


def test_squash_with_run(capsys):
    out = run_cli(
        capsys, "squash", "--names", "adpcm", "--scale", "0.2",
        "--theta", "0.01", "--run",
    )
    assert "regions" in out
    assert "outputs match" in out


def test_ratio(capsys):
    out = run_cli(capsys, "ratio", "--names", "adpcm", "--scale", "0.2")
    assert "stream only" in out


def test_safe(capsys):
    out = run_cli(capsys, "safe", "--names", "adpcm", "--scale", "0.2")
    assert "safe functions" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_jobs_empty_journal(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    out = run_cli(capsys, "jobs")
    assert "journal is empty" in out


def test_submit_serve_jobs_round_trip(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    out = run_cli(
        capsys, "submit", "squash", "--names", "adpcm",
        "--scale", "0.2", "--theta", "0.0001",
        "--tenant", "cli-test",
    )
    assert "submitted" in out
    run_cli(capsys, "serve", "--max-jobs", "1", "--idle-exit", "10")
    out = run_cli(capsys, "jobs")
    assert "done" in out
    assert "cli-test" in out


def test_submit_rejects_unknown_kind(capsys, monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    assert main(["submit", "frobnicate"]) == 2
    assert "unknown job kind" in capsys.readouterr().out
