"""Region formation and packing (Section 4)."""

from repro.core.costmodel import CostModel
from repro.core.regions import (
    RegionContext,
    entry_blocks,
    form_regions,
    pack_regions,
)
from repro.isa import assemble
from repro.program import BasicBlock, Function, Program


def chain_program(n_blocks: int = 10, block_size: int = 6) -> Program:
    """main calls f; f is a straight chain of blocks."""
    program = Program("p")
    main = Function("main")
    block = BasicBlock("m.a", instrs=assemble("bsr r26, 0\nhalt"))
    block.call_targets[0] = "f"
    main.add_block(block)
    program.add_function(main)

    body = "\n".join("addi r1, 1, r1" for _ in range(block_size - 1))
    f = Function("f")
    for index in range(n_blocks):
        label = f"f.b{index}"
        is_last = index == n_blocks - 1
        f.add_block(
            BasicBlock(
                label,
                instrs=assemble(body + ("\nret" if is_last else "\nnop")),
                fallthrough=None if is_last else f"f.b{index + 1}",
            )
        )
    program.add_function(f)
    program.validate()
    return program


def all_f_blocks(program):
    return {label for label in program.functions["f"].blocks}


class TestFormation:
    def test_regions_partition_compressible(self):
        program = chain_program()
        compressible = all_f_blocks(program)
        regions = form_regions(program, compressible, CostModel())
        seen = set()
        for region in regions:
            for label in region.blocks:
                assert label not in seen, "regions must be disjoint"
                seen.add(label)
        assert seen <= compressible

    def test_buffer_bound_respected(self):
        program = chain_program(n_blocks=40)
        compressible = all_f_blocks(program)
        cost = CostModel(buffer_bound_bytes=64)  # 16 instructions
        ctx = RegionContext.build(program)
        regions = form_regions(program, compressible, cost, ctx)
        assert len(regions) >= 2
        for region in regions:
            blocks = set(region.blocks)
            expanded = (
                sum(ctx.sizes[b] for b in blocks)
                + sum(ctx.calls_in[b] for b in blocks)
                + 1
            )
            assert expanded <= cost.buffer_bound_instrs

    def test_single_function_pre_packing(self):
        program = chain_program()
        block = BasicBlock("g.a", instrs=assemble("ret"))
        g = Function("g")
        g.add_block(block)
        program.add_function(g)
        compressible = all_f_blocks(program) | {"g.a"}
        ctx = RegionContext.build(program)
        regions = form_regions(program, compressible, CostModel(), ctx)
        for region in regions:
            functions = {ctx.block_func[label] for label in region.blocks}
            assert len(functions) == 1

    def test_unprofitable_tree_rejected(self):
        # a tiny isolated block: entry stub (2 words) vs (1-γ)*1 savings
        program = chain_program(n_blocks=1, block_size=2)
        compressible = all_f_blocks(program)
        regions = form_regions(program, compressible, CostModel())
        assert regions == []

    def test_empty_compressible_set(self):
        program = chain_program()
        assert form_regions(program, set(), CostModel()) == []


class TestEntryBlocks:
    def test_called_entry_needs_stub(self):
        program = chain_program()
        ctx = RegionContext.build(program)
        blocks = all_f_blocks(program)
        entries = entry_blocks(blocks, ctx)
        assert "f.b0" in entries  # called from main
        assert "f.b5" not in entries  # interior fallthrough only

    def test_partition_boundary_needs_stub(self):
        program = chain_program()
        ctx = RegionContext.build(program)
        # split the chain: second half entered from the first
        first = {f"f.b{i}" for i in range(5)}
        second = {f"f.b{i}" for i in range(5, 10)}
        assert "f.b5" in entry_blocks(second, ctx)
        entries_first = entry_blocks(first, ctx)
        assert entries_first == {"f.b0"}

    def test_program_entry_needs_stub(self, mini_program):
        ctx = RegionContext.build(mini_program)
        entries = entry_blocks({"main.entry"}, ctx)
        assert "main.entry" in entries


def packable_program() -> Program:
    """A bound-filling cold function plus a cold caller with two small
    private helpers.

    With the buffer bound already reached by ``big``, merging ``a``
    with its helpers carries no buffer-growth penalty and saves the
    helpers' entry stubs (their only caller joins the region) plus a
    restore stub per call -- the Section 4 packing scenario."""
    program = Program("p")
    main = Function("main")
    block = BasicBlock("m.a", instrs=assemble("bsr r26, 0\nbsr r26, 0\nhalt"))
    block.call_targets = {0: "a", 1: "big"}
    main.add_block(block)
    program.add_function(main)

    body = "\n".join("addi r1, 1, r1" for _ in range(119))
    big = Function("big")
    big.add_block(BasicBlock("big.a", instrs=assemble(body + "\nret")))
    program.add_function(big)

    a = Function("a")
    a_block = BasicBlock(
        "a.entry",
        instrs=assemble(
            "subi r30, 1, r30\nstw r26, 0(r30)\n"
            "addi r1, 1, r1\naddi r1, 2, r1\naddi r1, 3, r1\n"
            "bsr r26, 0\nbsr r26, 0\n"
            "ldw r26, 0(r30)\naddi r30, 1, r30\nret"
        ),
        call_targets={5: "h0", 6: "h1"},
    )
    a.add_block(a_block)
    program.add_function(a)

    for name in ("h0", "h1"):
        helper = Function(name)
        ops = "\n".join(f"addi r1, {k + 2}, r1" for k in range(9))
        helper.add_block(
            BasicBlock(f"{name}.entry", instrs=assemble(ops + "\nret"))
        )
        program.add_function(helper)
    program.validate()
    return program


def packable_compressible(program: Program) -> set[str]:
    return {
        block.label
        for fn_name in ("big", "a", "h0", "h1")
        for block in program.functions[fn_name].blocks.values()
    }


class TestPacking:
    def test_packing_merges_adjacent_regions(self):
        program = packable_program()
        compressible = packable_compressible(program)
        cost = CostModel(buffer_bound_bytes=512)  # 128 instructions
        ctx = RegionContext.build(program)
        regions = form_regions(program, compressible, cost, ctx)
        assert len(regions) == 4  # big, a, h0, h1
        packed = pack_regions(program, regions, cost, ctx)
        assert len(packed) == 2  # big | a+h0+h1

    def test_packing_respects_bound(self):
        program = chain_program(n_blocks=40)
        compressible = all_f_blocks(program)
        cost = CostModel(buffer_bound_bytes=128)
        ctx = RegionContext.build(program)
        regions = form_regions(program, compressible, cost, ctx)
        packed = pack_regions(program, regions, cost, ctx)
        for region in packed:
            blocks = set(region.blocks)
            expanded = (
                sum(ctx.sizes[b] for b in blocks)
                + sum(ctx.calls_in[b] for b in blocks)
                + 1
            )
            assert expanded <= cost.buffer_bound_instrs

    def test_packing_reindexes(self):
        program = chain_program(n_blocks=40)
        compressible = all_f_blocks(program)
        cost = CostModel(buffer_bound_bytes=96)
        regions = form_regions(program, compressible, cost)
        packed = pack_regions(program, regions, cost)
        assert [r.index for r in packed] == list(range(len(packed)))

    def test_packing_reduces_entry_stubs(self):
        program = packable_program()
        compressible = packable_compressible(program)
        ctx = RegionContext.build(program)
        cost = CostModel(buffer_bound_bytes=512)
        regions = form_regions(program, compressible, cost, ctx)
        before = sum(
            len(entry_blocks(set(r.blocks), ctx)) for r in regions
        )
        packed = pack_regions(program, regions, cost, ctx)
        after = sum(
            len(entry_blocks(set(r.blocks), ctx)) for r in packed
        )
        # h0/h1 lose their stubs once their only caller joins the region
        assert after == before - 2

    def test_region_contains(self):
        program = chain_program()
        regions = form_regions(
            program, all_f_blocks(program), CostModel()
        )
        region = regions[0]
        assert region.blocks[0] in region
        assert "nope" not in region
