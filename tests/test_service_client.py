"""The typed ServiceClient: one API over local, spool, and HTTP.

Stub job bodies throughout; the suite pins the *client* contract —
handle round trips, typed error parity across transports, and the
retry loop honouring the service's retry-after hints end to end over
both the spool and HTTP transports (satellite of the phase-2 issue).
"""

import threading
import time

import pytest

from repro.errors import (
    JobFailed,
    ServiceOverloaded,
    SpecError,
    TenantQuotaExceeded,
    UnknownJob,
)
from repro.service import (
    JobEngine,
    JobHandle,
    JobJournal,
    JobSpec,
    ServiceClient,
    ServiceConfig,
    serve_forever,
    serve_http,
)


def _config(**overrides):
    defaults = dict(
        queue_depth=8, workers=2, tenant_cap=1,
        drain_timeout=5.0, journal=False,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _spec(value=0, **kwargs):
    return JobSpec(
        kind="squash", payload={"name": "adpcm", "value": value},
        **kwargs,
    )


def _echo(spec):
    time.sleep(spec.payload.get("secs", 0.0))
    return {"value": spec.payload.get("value")}


@pytest.fixture
def engine():
    built = []

    def make(execute_fn=_echo, paused=False, journal=None, **overrides):
        eng = JobEngine(
            _config(**overrides), execute_fn=execute_fn,
            journal=journal,
        )
        eng._dispatch_paused = paused
        eng.start(recover=False)
        built.append(eng)
        return eng

    yield make
    for eng in built:
        eng.stop(drain_timeout=0.2)


@pytest.fixture
def serving(engine, tmp_path):
    """A spool-serving engine on a background thread, plus its root."""
    threads = []
    stops = []

    def make(**overrides):
        eng = engine(journal=JobJournal(tmp_path), **overrides)
        stop = threading.Event()
        thread = threading.Thread(
            target=serve_forever,
            args=(eng, tmp_path),
            kwargs=dict(poll_interval=0.01, should_stop=stop.is_set,
                        fanout=False),
            daemon=True,
        )
        thread.start()
        threads.append(thread)
        stops.append(stop)
        return eng

    yield make
    for stop in stops:
        stop.set()
    for thread in threads:
        thread.join(timeout=10.0)


class TestTargets:
    def test_unknown_target_is_typed(self):
        with pytest.raises(SpecError) as exc:
            ServiceClient("carrier-pigeon")
        assert exc.value.field == "target"

    def test_transport_names(self, engine, tmp_path):
        assert ServiceClient("local", engine=engine()).transport == "local"
        assert ServiceClient("spool", root=tmp_path).transport == "spool"
        assert ServiceClient("http://x:1").transport == "http"


class TestLocalTransport:
    def test_handle_round_trip(self, engine):
        with ServiceClient("local", engine=engine()) as client:
            handle = client.submit(kind="squash",
                                   payload={"name": "adpcm", "value": 3})
            assert isinstance(handle, JobHandle)
            assert handle.result(timeout=10.0) == {"value": 3}
            assert handle.status()["state"] == "done"

    def test_spec_and_fields_are_exclusive(self, engine):
        with ServiceClient("local", engine=engine()) as client:
            with pytest.raises(SpecError):
                client.submit(_spec(), kind="squash")

    def test_client_side_validation_fails_fast(self, engine):
        eng = engine()
        with ServiceClient("local", engine=eng) as client:
            with pytest.raises(SpecError) as exc:
                client.submit(kind="squash", payload={"name": "doom"})
            assert exc.value.field == "name"
        assert eng.stats()["jobs"] == 0

    def test_unknown_job_by_raw_id(self, engine):
        with ServiceClient("local", engine=engine()) as client:
            with pytest.raises(UnknownJob):
                client.status("never-submitted")

    def test_cancel_queued_job(self, engine):
        eng = engine(paused=True)
        with ServiceClient("local", engine=eng) as client:
            handle = client.submit(_spec(value=1))
            assert handle.cancel() is True
            assert handle.status()["state"] == "cancelled"
            with pytest.raises(JobFailed) as exc:
                client.result(handle.id, timeout=5.0)
            assert "cancelled" in str(exc.value)

    def test_submit_retries_on_shed_then_raises(self, engine):
        eng = engine(paused=True, queue_depth=1)
        with ServiceClient(
            "local", engine=eng, retries=2, retry_floor=0.01
        ) as client:
            client.submit(_spec(value=0))
            started = time.monotonic()
            with pytest.raises(ServiceOverloaded):
                client.submit(_spec(value=1))
            # Two absorbed sheds, each floored at 0.01s of backoff.
            assert time.monotonic() - started >= 0.02


class TestSpoolTransport:
    def test_round_trip_and_spooled_status(self, serving, tmp_path):
        serving()
        with ServiceClient("spool", root=tmp_path) as client:
            handle = client.submit(_spec(value=11))
            assert handle.result(timeout=10.0) == {"value": 11}
            assert handle.status()["state"] == "done"

    def test_status_before_pickup_is_spooled(self, tmp_path):
        # No server at all: the request sits in the spool.
        with ServiceClient("spool", root=tmp_path) as client:
            handle = client.submit(_spec(value=1))
            assert handle.status()["state"] == "spooled"
            with pytest.raises(UnknownJob):
                client.status("never-spooled")

    def test_cancel_withdraws_spooled_request(self, tmp_path):
        with ServiceClient("spool", root=tmp_path) as client:
            handle = client.submit(_spec(value=1))
            assert handle.cancel() is True
            assert handle.status()["state"] == "cancelled"
            assert handle.cancel() is False  # already gone

    def test_retry_loop_honours_journaled_retry_after(
        self, serving, tmp_path
    ):
        """End-to-end over the spool: the first submission is shed
        (journaled with the retry-after hint), the client backs off
        and resubmits, and the resubmission completes once the queue
        has drained."""
        eng = serving(queue_depth=1, workers=1, paused=True)
        with ServiceClient(
            "spool", root=tmp_path, retries=4, retry_floor=0.05
        ) as client:
            filler = client.submit(_spec(value=0))
            # Wait until the serving thread has admitted the filler so
            # the next submission overflows the depth-1 queue.
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if filler.status()["state"] != "spooled":
                    break
                time.sleep(0.01)
            handle = client.submit(_spec(value=7))
            shed_id = handle.id
            retries_before = _client_retries()

            def unfreeze():
                time.sleep(0.3)
                eng._dispatch_paused = False
                eng._loop.call_soon_threadsafe(eng._wake.set)

            threading.Thread(target=unfreeze, daemon=True).start()
            assert handle.result(timeout=30.0) == {"value": 7}
            # The shed id was burned; the handle moved to a fresh one.
            assert handle.id != shed_id
            assert _client_retries() > retries_before

    def test_retry_exhaustion_is_typed(self, serving, tmp_path):
        serving(queue_depth=1, workers=1, paused=True)
        with ServiceClient(
            "spool", root=tmp_path, retries=1, retry_floor=0.01
        ) as client:
            filler = client.submit(_spec(value=0))
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if filler.status()["state"] != "spooled":
                    break
                time.sleep(0.01)
            handle = client.submit(_spec(value=1))
            with pytest.raises(ServiceOverloaded) as exc:
                handle.result(timeout=10.0)
            assert exc.value.retry_after > 0


def _client_retries() -> int:
    from repro.obs.metrics import get_registry

    return get_registry().counter("service.client.retries").value


@pytest.fixture
def http_url(engine):
    servers = []

    def make(**overrides):
        eng = engine(**overrides)
        srv = serve_http(eng, port=0)
        servers.append(srv)
        return eng, srv.url

    yield make
    for srv in servers:
        srv.stop()


class TestHttpTransport:
    def test_round_trip(self, http_url):
        _, url = http_url()
        with ServiceClient(url) as client:
            handle = client.submit(_spec(value=23))
            assert handle.result(timeout=10.0) == {"value": 23}
            assert handle.status()["state"] == "done"

    def test_typed_errors_cross_the_wire(self, http_url):
        _, url = http_url()
        with ServiceClient(url) as client:
            with pytest.raises(UnknownJob) as exc:
                client.status("nope")
            assert exc.value.job_id == "nope"
            with pytest.raises(UnknownJob):
                client.result("nope", timeout=5.0)

    def test_server_side_spec_error_reconstructed(self, http_url):
        _, url = http_url()
        with ServiceClient(url) as client:
            # Bypass client-side validation to prove the server's 422
            # comes back as the same typed SpecError.
            spec = _spec(value=0)
            object.__setattr__(spec, "schema_version", 99)
            with pytest.raises(SpecError) as exc:
                client._transport.submit(spec)
            assert exc.value.field == "schema_version"

    def test_retry_loop_honours_http_retry_after(self, http_url):
        """End-to-end over HTTP: 503 sheds carry the retry-after hint
        in the body; the client absorbs them and the submission lands
        once dispatch resumes and the queue drains."""
        eng, url = http_url(paused=True, queue_depth=1, workers=1)
        with ServiceClient(url, retries=8, retry_floor=0.05) as client:
            client.submit(_spec(value=0))

            def unfreeze():
                time.sleep(0.3)
                eng._dispatch_paused = False
                eng._loop.call_soon_threadsafe(eng._wake.set)

            threading.Thread(target=unfreeze, daemon=True).start()
            retries_before = _client_retries()
            handle = client.submit(_spec(value=9))
            assert handle.result(timeout=30.0) == {"value": 9}
            assert _client_retries() > retries_before

    def test_quota_shed_is_never_retried(self, http_url, monkeypatch):
        eng, url = http_url()

        calls = []

        def quota_submit(spec, job_id=None):
            calls.append(1)
            raise TenantQuotaExceeded(
                "over budget", tenant=spec.tenant,
                usage_bytes=10, quota_bytes=5, retry_after=0.01,
            )

        monkeypatch.setattr(eng, "submit", quota_submit)
        with ServiceClient(url, retries=5, retry_floor=0.01) as client:
            with pytest.raises(TenantQuotaExceeded) as exc:
                client.submit(_spec(value=0, tenant="hog"))
            assert exc.value.tenant == "hog"
            assert exc.value.usage_bytes == 10
        assert len(calls) == 1

    def test_cancel_over_http(self, http_url):
        eng, url = http_url(paused=True)
        with ServiceClient(url) as client:
            handle = client.submit(_spec(value=1))
            assert handle.cancel() is True
            assert handle.status()["state"] == "cancelled"
