"""Crash-safe cache entries: sealing, corruption detection, atomicity."""

import json
import random

import pytest

from repro.faultinject.chaos import corrupt_entry
from repro.resilience import CacheStats, read_entry, seal_text, write_entry

KEYS = ("cycles", "base_cycles", "relative_time")
ENTRY = {"cycles": 482208, "base_cycles": 400000, "relative_time": 1.205}


def _write(tmp_path, obj=ENTRY):
    path = tmp_path / "ab" / "abc123.json"
    write_entry(path, obj)
    return path


class TestRoundtrip:
    def test_write_then_read(self, tmp_path):
        path = _write(tmp_path)
        stats = CacheStats()
        assert read_entry(path, KEYS, stats) == ENTRY
        assert stats.hits == 1
        assert stats.rejected == 0

    def test_entry_is_sealed_two_lines(self, tmp_path):
        path = _write(tmp_path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert lines[1].startswith("crc32:")
        assert json.loads(lines[0]) == ENTRY

    def test_no_temp_files_left_behind(self, tmp_path):
        path = _write(tmp_path)
        assert [p.name for p in path.parent.iterdir()] == [path.name]

    def test_missing_file_is_a_plain_miss(self, tmp_path):
        stats = CacheStats()
        assert read_entry(tmp_path / "nope.json", KEYS, stats) is None
        assert stats.misses == 1
        assert stats.rejected == 0

    def test_legacy_sealless_entry_accepted(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps(ENTRY))
        stats = CacheStats()
        assert read_entry(path, KEYS, stats) == ENTRY
        assert stats.hits == 1

    def test_seal_text_roundtrip(self):
        payload = json.dumps({"a": 1})
        text = seal_text(payload)
        body, seal = text.splitlines()
        assert body == payload
        assert seal.startswith("crc32:") and len(seal) == len("crc32:") + 8


class TestZeroLengthEntry:
    """Regression: a zero-length file (a crash between create and
    write, or a racing truncation) must be a clean reject — mmap of an
    empty file raises ValueError, which used to escape the read path
    when the mmap threshold was low."""

    def test_empty_file_rejects_without_raising(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_bytes(b"")
        stats = CacheStats()
        assert read_entry(path, KEYS, stats) is None
        assert stats.rejects == {"torn": 1}

    def test_empty_file_safe_even_on_the_mmap_path(
        self, tmp_path, monkeypatch
    ):
        from repro.resilience import cache

        monkeypatch.setattr(cache, "MMAP_MIN_BYTES", 0)
        path = tmp_path / "empty.json"
        path.write_bytes(b"")
        stats = CacheStats()
        assert read_entry(path, KEYS, stats) is None
        assert stats.rejects == {"torn": 1}

    def test_mmap_path_still_reads_real_entries(
        self, tmp_path, monkeypatch
    ):
        from repro.obs.metrics import get_registry
        from repro.resilience import cache

        monkeypatch.setattr(cache, "MMAP_MIN_BYTES", 1)
        path = _write(tmp_path)
        before = get_registry().counter("cellcache.mmap_reads").value
        assert read_entry(path, KEYS) == ENTRY
        assert get_registry().counter("cellcache.mmap_reads").value > before


class TestCorruptionDetected:
    """Every corruption mode must read as 'absent', never raise, and be
    tallied under the right reject reason."""

    def _reject_reason(self, path):
        stats = CacheStats()
        assert read_entry(path, KEYS, stats) is None
        assert stats.rejected == 1
        return next(iter(stats.rejects))

    def test_truncated_json(self, tmp_path):
        path = _write(tmp_path)
        path.write_bytes(path.read_bytes()[:10])  # a torn write
        assert self._reject_reason(path) == "torn"

    def test_garbage_bytes(self, tmp_path):
        path = _write(tmp_path)
        path.write_bytes(b"\x00\xffnot json at all\x1b")
        assert self._reject_reason(path) == "torn"

    def test_payload_bitflip_under_intact_seal(self, tmp_path):
        path = _write(tmp_path)
        corrupt_entry(path, "bitflip", random.Random(0))
        assert self._reject_reason(path) == "seal-mismatch"

    def test_valid_json_missing_keys(self, tmp_path):
        path = _write(tmp_path, {"cycles": 1})  # sealed, parseable, short
        assert self._reject_reason(path) == "missing-keys"

    def test_resealed_bogus_entry(self, tmp_path):
        path = _write(tmp_path)
        corrupt_entry(path, "missing-keys", random.Random(0))
        assert self._reject_reason(path) == "missing-keys"

    def test_non_dict_payload(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(seal_text(json.dumps([1, 2, 3])))
        assert self._reject_reason(path) == "torn"

    def test_bad_seal_digits(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps(ENTRY) + "\ncrc32:zzzzzzzz\n")
        assert self._reject_reason(path) == "torn"

    def test_unknown_corruption_mode_rejected(self, tmp_path):
        path = _write(tmp_path)
        with pytest.raises(ValueError):
            corrupt_entry(path, "frobnicate", random.Random(0))


class TestAtomicity:
    def test_rewrite_replaces_entry(self, tmp_path):
        path = _write(tmp_path)
        write_entry(path, {"cycles": 1, "base_cycles": 1, "relative_time": 1.0})
        assert read_entry(path, KEYS)["cycles"] == 1
        assert [p.name for p in path.parent.iterdir()] == [path.name]

    def test_concurrent_writers_use_distinct_temp_names(self, tmp_path):
        # The temp name embeds pid + random token; two writers of the
        # same cell can never collide on it.  Simulate the collision
        # window by pre-creating a same-named entry and rewriting it.
        path = _write(tmp_path)
        for _ in range(8):
            write_entry(path, ENTRY)
        assert read_entry(path, KEYS) == ENTRY
