"""The service engine: admission, shedding, priorities, fairness,
deadlines, drain.

Engine tests run journal-less (``ServiceConfig(journal=False)``) with
stub job bodies so they exercise the scheduling contract, not the
squash pipeline; one integration test at the bottom runs a real squash
job and proves byte-identity against the direct facade call.
"""

import threading
import time

import pytest

from repro import settings
from repro.errors import (
    JobExpired,
    ServiceOverloaded,
    SpecError,
    SquashError,
    UnknownJob,
)
from repro.service import JobEngine, JobSpec, ServiceConfig


def _config(**overrides):
    defaults = dict(
        queue_depth=8, workers=2, tenant_cap=1,
        drain_timeout=5.0, journal=False,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _spec(value=0, tenant="default", priority="batch", deadline=None,
          **payload):
    payload.setdefault("name", "adpcm")
    payload["value"] = value
    return JobSpec(
        kind="squash", payload=payload, tenant=tenant,
        priority=priority, deadline=deadline,
    )


def _echo(spec):
    time.sleep(spec.payload.get("secs", 0.0))
    return {"value": spec.payload.get("value")}


def _resume(engine):
    engine._dispatch_paused = False
    engine._loop.call_soon_threadsafe(engine._wake.set)


@pytest.fixture
def engine(request):
    built = []

    def make(execute_fn=_echo, paused=False, **overrides):
        eng = JobEngine(_config(**overrides), execute_fn=execute_fn)
        eng._dispatch_paused = paused
        eng.start(recover=False)
        built.append(eng)
        return eng

    yield make
    for eng in built:
        eng.stop(drain_timeout=0.2)


class TestAdmission:
    def test_submit_runs_and_returns_result(self, engine):
        eng = engine()
        job = eng.submit(_spec(value=7))
        assert eng.result(job.id, timeout=10.0) == {"value": 7}
        assert eng.status(job.id)["state"] == "done"

    def test_invalid_spec_is_typed(self, engine):
        eng = engine()
        with pytest.raises(SpecError):
            eng.submit(JobSpec(kind="transmogrify"))
        with pytest.raises(SpecError):
            eng.submit(JobSpec(kind="squash", payload={"name": "doom"}))
        with pytest.raises(SpecError):
            eng.submit(_spec(priority="urgent"))
        with pytest.raises(SpecError):
            eng.submit(_spec(deadline=-1.0))

    def test_queue_full_sheds_typed_with_retry_after(self, engine):
        eng = engine(paused=True, queue_depth=3)
        accepted = [eng.submit(_spec(value=i)) for i in range(3)]
        with pytest.raises(ServiceOverloaded) as exc:
            eng.submit(_spec(value=99))
        assert exc.value.reason == "queue-full"
        assert exc.value.retry_after > 0
        assert isinstance(exc.value, SquashError)
        # Shedding never loses accepted work: everything admitted
        # before the shed still completes.
        _resume(eng)
        for index, job in enumerate(accepted):
            assert eng.result(job.id, timeout=10.0) == {"value": index}

    def test_unknown_job_is_typed(self, engine):
        eng = engine()
        with pytest.raises(UnknownJob) as exc:
            eng.status("no-such-job")
        assert isinstance(exc.value, KeyError)
        assert isinstance(exc.value, SquashError)
        with pytest.raises(UnknownJob):
            eng.result("no-such-job")


class TestScheduling:
    def test_interactive_runs_before_batch_backlog(self, engine):
        order = []

        def tracking(spec):
            order.append(spec.payload["value"])
            return {}

        eng = engine(execute_fn=tracking, paused=True, workers=1)
        for index in range(3):
            eng.submit(_spec(value=("batch", index)))
        vip = eng.submit(
            _spec(value=("vip", 0), priority="interactive")
        )
        _resume(eng)
        eng.result(vip.id, timeout=10.0)
        assert order[0] == ("vip", 0)

    def test_tenant_round_robin_prevents_starvation(self, engine):
        order = []

        def tracking(spec):
            order.append(spec.tenant)
            return {}

        eng = engine(execute_fn=tracking, paused=True, workers=1)
        hog = [
            eng.submit(_spec(value=i, tenant="hog")) for i in range(4)
        ]
        mouse = [
            eng.submit(_spec(value=i, tenant="mouse")) for i in range(2)
        ]
        _resume(eng)
        for job in hog + mouse:
            eng.result(job.id, timeout=10.0)
        # Round-robin interleaves the mouse between the hog's jobs
        # instead of running the whole hog backlog first.
        assert order.index("mouse") <= 1
        assert [t for t in order[:4] if t == "mouse"] == ["mouse"] * 2

    def test_tenant_cap_limits_concurrency(self, engine):
        running = []
        peak = []
        lock = threading.Lock()

        def tracking(spec):
            with lock:
                running.append(spec.tenant)
                peak.append(running.count("greedy"))
            time.sleep(0.05)
            with lock:
                running.remove(spec.tenant)
            return {}

        eng = engine(
            execute_fn=tracking, paused=True, workers=4, tenant_cap=1
        )
        jobs = [
            eng.submit(_spec(value=i, tenant="greedy")) for i in range(4)
        ]
        _resume(eng)
        for job in jobs:
            eng.result(job.id, timeout=10.0)
        assert max(peak) == 1  # cap 1: never two greedy jobs at once


class TestDeadlines:
    def test_queued_job_expires_typed(self, engine):
        eng = engine(paused=True)
        job = eng.submit(_spec(deadline=0.02))
        with pytest.raises(JobExpired) as exc:
            eng.result(job.id, timeout=10.0)
        assert exc.value.job_id == job.id
        assert eng.status(job.id)["state"] == "expired"

    def test_deadline_tightens_cell_deadline(self, engine):
        def observing(spec):
            return {"cell_deadline": settings.current().cell_deadline}

        eng = engine(execute_fn=observing)
        job = eng.submit(_spec(deadline=30.0))
        observed = eng.result(job.id, timeout=10.0)["cell_deadline"]
        assert observed is not None
        assert 0 < observed <= 30.0
        # No job deadline: the configured cell deadline is untouched.
        job = eng.submit(_spec())
        assert (
            eng.result(job.id, timeout=10.0)["cell_deadline"]
            == settings.current().cell_deadline
        )

    def test_job_finishing_late_is_expired_not_late(self, engine):
        eng = engine()
        job = eng.submit(_spec(secs=0.3, deadline=0.05))
        with pytest.raises(JobExpired, match="deadline"):
            eng.result(job.id, timeout=10.0)
        assert eng.status(job.id)["result"] is None  # discarded

    def test_effective_cell_deadline_takes_the_minimum(self, engine):
        eng = engine()
        job = eng.submit(_spec(deadline=1000.0))
        eng.result(job.id, timeout=10.0)
        with settings.use_settings(cell_deadline=5.0):
            assert eng.effective_cell_deadline(job) == 5.0
        with settings.use_settings(cell_deadline=None):
            remaining = eng.effective_cell_deadline(job)
            assert remaining is not None and remaining < 1000.0


class TestDrain:
    def test_drain_requeues_and_sheds_new_submissions(self, engine):
        eng = engine(paused=True, workers=1)
        jobs = [eng.submit(_spec(value=i)) for i in range(3)]
        caught = []

        def waiter():
            try:
                eng.result(jobs[0].id, timeout=10.0)
            except BaseException as exc:  # noqa: BLE001 - recorded
                caught.append(exc)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        report = eng.drain(timeout=0.1)
        assert report["requeued"] == 3
        for job in jobs:
            assert eng.status(job.id)["state"] == "requeued"
        thread.join(timeout=5.0)
        assert caught and isinstance(caught[0], ServiceOverloaded)
        assert caught[0].reason == "draining"
        with pytest.raises(ServiceOverloaded) as exc:
            eng.submit(_spec())
        assert exc.value.reason == "draining"

    def test_stopped_engine_sheds_typed(self):
        eng = JobEngine(_config(), execute_fn=_echo)
        eng.start(recover=False)
        eng.stop(drain_timeout=0.2)
        with pytest.raises(ServiceOverloaded) as exc:
            eng.submit(_spec())
        assert exc.value.reason == "stopped"


class TestRealExecution:
    def test_squash_job_is_byte_identical_to_direct_call(self):
        import repro.api as api
        from repro.service.jobs import _image_digest

        eng = JobEngine(_config(workers=1)).start(recover=False)
        try:
            job = eng.submit(JobSpec(
                kind="squash",
                payload={"name": "adpcm", "theta": 1e-4, "scale": 0.2},
            ))
            result = eng.result(job.id, timeout=300.0)
        finally:
            eng.stop(drain_timeout=0.5)
        direct = api.squash_benchmark(
            "adpcm", 0.2, api.SquashConfig(theta=1e-4)
        )
        assert result["image_digest"] == _image_digest(direct)
        assert result["baseline_words"] == direct.baseline_words
        assert result["reduction"] == direct.reduction
