"""The split-stream dictionary coder (future-work alternative)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress.bitstream import BitReader, BitWriter
from repro.compress.codec import CodecConfig, ProgramCodec
from repro.compress.dictionary import DictionaryCode
from repro.compress.streams import codec_to_instruction, instruction_to_codec
from repro.isa import assemble


class TestDictionaryCode:
    def test_basic_roundtrip(self):
        code = DictionaryCode.from_frequencies(
            {5: 100, 9: 50, 200: 1}, value_bits=8
        )
        writer = BitWriter()
        encoder = code.encoder()
        for symbol in (5, 9, 200, 5, 123):  # 123 unseen -> escape
            word, length = encoder[symbol]
            writer.write_bits(word, length)
        reader = BitReader(writer.to_words())
        assert [code.decode(reader) for _ in range(5)] == [5, 9, 200, 5, 123]

    def test_escape_costs_more(self):
        code = DictionaryCode.from_frequencies({1: 10, 2: 10}, value_bits=8)
        encoder = code.encoder()
        _, in_dict = encoder[1]
        _, escaped = encoder[77]
        assert escaped == in_dict + 8

    def test_width_minimises_total_bits(self):
        # one dominant value: width 1 wins (1 bit per occurrence)
        skewed = {0: 10_000, **{i: 1 for i in range(1, 40)}}
        code = DictionaryCode.from_frequencies(skewed, value_bits=8)
        assert code.width <= 3

        # uniform over many values: a wide dictionary wins
        uniform = {i: 100 for i in range(60)}
        code = DictionaryCode.from_frequencies(uniform, value_bits=16)
        assert code.width >= 6

    def test_validation(self):
        with pytest.raises(ValueError):
            DictionaryCode(width=0, values=(), value_bits=8)
        with pytest.raises(ValueError):
            DictionaryCode(width=1, values=(1, 2), value_bits=8)  # > 2^1-1
        with pytest.raises(ValueError):
            DictionaryCode(width=3, values=(1, 1), value_bits=8)
        with pytest.raises(ValueError):
            DictionaryCode.from_frequencies({}, value_bits=8)

    def test_out_of_range_symbol_rejected(self):
        code = DictionaryCode.from_frequencies({1: 5}, value_bits=8)
        with pytest.raises(KeyError):
            code.encoder()[1 << 8]

    def test_corrupt_index_detected(self):
        code = DictionaryCode(width=3, values=(7,), value_bits=8)
        writer = BitWriter()
        writer.write_bits(5, 3)  # index 5: not escape (7), not in dict
        with pytest.raises(ValueError, match="corrupt"):
            code.decode(BitReader(writer.to_words()))

    @given(
        st.dictionaries(
            st.integers(0, 255), st.integers(1, 500), min_size=1, max_size=40
        ),
        st.lists(st.integers(0, 255), min_size=1, max_size=60),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, freqs, symbols):
        code = DictionaryCode.from_frequencies(freqs, value_bits=8)
        writer = BitWriter()
        encoder = code.encoder()
        for symbol in symbols:
            word, length = encoder[symbol]
            writer.write_bits(word, length)
        reader = BitReader(writer.to_words())
        assert [code.decode(reader) for _ in symbols] == symbols

    def test_serialise_roundtrip(self):
        code = DictionaryCode.from_frequencies(
            {i: i + 1 for i in range(20)}, value_bits=6
        )
        writer = BitWriter()
        code.serialise(writer, value_bits=6)
        assert writer.bit_length == code.serialised_bits(6)
        again = DictionaryCode.deserialise(
            BitReader(writer.to_words()), value_bits=6
        )
        assert again == code


SAMPLE = assemble(
    "addi r31, 0, r9\nadd r9, r0, r9\nldw r1, 4(r2)\nstw r1, 8(r2)\n"
    "beq r1, 5\nbsr r26, -3\nret\nsys write"
)


class TestDictCodec:
    def test_program_codec_with_dict_coder(self):
        items = [instruction_to_codec(i) for i in SAMPLE] * 4
        _, blob = ProgramCodec.build(
            [items, items[:5]], CodecConfig(coder="dict")
        )
        codec = ProgramCodec.from_table_words(blob.table_words)
        assert codec.coder == "dict"
        for index, region in enumerate([items, items[:5]]):
            decoded, _ = codec.decode_region(
                blob.stream_words, blob.region_bit_offsets[index]
            )
            assert [codec_to_instruction(i) for i in decoded] == [
                codec_to_instruction(i) for i in region
            ]

    def test_unknown_coder_rejected(self):
        with pytest.raises(ValueError, match="coder"):
            CodecConfig(coder="zstd")

    def test_huffman_beats_dict_on_stream_size(self):
        items = [instruction_to_codec(i) for i in SAMPLE] * 20
        _, huff = ProgramCodec.build([items])
        _, dictionary = ProgramCodec.build(
            [items], CodecConfig(coder="dict")
        )
        assert huff.stream_bits <= dictionary.stream_bits

    def test_pipeline_equivalence_with_dict(
        self, mini_program, mini_profile, mini_baseline
    ):
        import dataclasses

        from repro.core.pipeline import SquashConfig, squash
        from tests.conftest import MINI_TIMING_INPUT

        config = dataclasses.replace(
            SquashConfig(theta=1.0), codec=CodecConfig(coder="dict")
        )
        result = squash(mini_program, mini_profile, config)
        run, _ = result.run(MINI_TIMING_INPUT, max_steps=10_000_000)
        assert run.output == mini_baseline.output
