"""Decoder robustness: corrupt streams must fail loudly, never hang
or silently return wrong instructions that then execute as garbage."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress.bitstream import BitReader
from repro.compress.codec import CodecConfig, ProgramCodec
from repro.compress.streams import instruction_to_codec
from repro.isa import assemble

SAMPLE = assemble(
    "addi r31, 0, r9\nadd r9, r0, r9\nldw r1, 4(r2)\nstw r1, 8(r2)\n"
    "beq r1, 5\nbsr r26, -3\nret\nsys write\nnop"
)


@pytest.fixture(scope="module")
def built():
    items = [instruction_to_codec(i) for i in SAMPLE] * 3
    codec, blob = ProgramCodec.build([items])
    return codec, blob, items


def test_wrong_bit_offset_raises_or_misdecodes_boundedly(built):
    """Decoding from a wrong offset must terminate: either an error or
    a (wrong) item list -- never an unbounded loop past the stream."""
    codec, blob, _ = built
    for offset in (1, 3, 7, 13):
        try:
            items, bits = codec.decode_region(blob.stream_words, offset)
        except (ValueError, EOFError):
            continue
        assert bits <= blob.stream_bits + 64


def test_truncated_stream_raises(built):
    codec, blob, _ = built
    truncated = blob.stream_words[: max(1, len(blob.stream_words) // 4)]
    with pytest.raises((EOFError, ValueError, IndexError)):
        codec.decode_region(truncated, blob.region_bit_offsets[0])


def test_truncated_tables_raise(built):
    _, blob, _ = built
    with pytest.raises((EOFError, ValueError)):
        ProgramCodec.from_table_words(blob.table_words[:1])


@given(flip=st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_single_bitflip_never_hangs(built, flip):
    """Flip one bit anywhere in the stream; decoding must terminate
    (decoders over complete prefix codes can misdecode, but the
    sentinel/length bounds keep them finite)."""
    codec, blob, _ = built
    position = flip % blob.stream_bits
    words = list(blob.stream_words)
    word_index, bit_index = divmod(position, 32)
    words[word_index] ^= 1 << (31 - bit_index)
    try:
        items, bits = codec.decode_region(
            words, blob.region_bit_offsets[0]
        )
        assert bits <= blob.stream_bits + 64
    except (ValueError, EOFError, IndexError):
        pass  # loud failure is fine


def test_bitflip_in_tables_is_loud_or_consistent(built):
    codec, blob, items = built
    for word_index in range(len(blob.table_words)):
        words = list(blob.table_words)
        words[word_index] ^= 1 << 7
        try:
            reparsed = ProgramCodec.from_table_words(words)
            reparsed.decode_region(
                blob.stream_words, blob.region_bit_offsets[0]
            )
        except (ValueError, EOFError, IndexError):
            continue


def test_sentinel_only_region_roundtrips():
    codec, blob = ProgramCodec.build([[]])
    reparsed = ProgramCodec.from_table_words(blob.table_words)
    items, bits = reparsed.decode_region(blob.stream_words, 0)
    assert items == []
    assert bits >= 1


def test_dict_coder_robust_to_truncation():
    items = [instruction_to_codec(i) for i in SAMPLE] * 3
    codec, blob = ProgramCodec.build([items], CodecConfig(coder="dict"))
    truncated = blob.stream_words[:1]
    with pytest.raises((EOFError, ValueError, IndexError)):
        codec.decode_region(truncated, 0)
