"""The pass manager, artifact store, stage report, and registries."""

import pytest

from repro.pipeline.manager import (
    ArtifactStore,
    PassManager,
    PipelineError,
    Stage,
    StageReport,
)
from repro.pipeline.registry import Registry, RegistryError


class TestRegistry:
    def test_register_and_get(self):
        reg = Registry("widget")
        reg.register("a", 1)
        assert reg.get("a") == 1
        assert "a" in reg
        assert reg.names() == ("a",)

    def test_register_as_decorator(self):
        reg = Registry("widget")

        @reg.register("f")
        def f():
            return 42

        assert reg.get("f") is f

    def test_unknown_name_lists_registered(self):
        reg = Registry("widget")
        reg.register("a", 1)
        reg.register("b", 2)
        with pytest.raises(RegistryError, match="unknown widget 'c'"):
            reg.get("c")
        with pytest.raises(RegistryError, match="a, b"):
            reg.get("c")

    def test_error_is_value_and_key_error(self):
        # Pre-registry call sites catch ValueError/KeyError; both must
        # keep working.
        reg = Registry("widget")
        with pytest.raises(ValueError):
            reg.get("nope")
        with pytest.raises(KeyError):
            reg.get("nope")

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.register("a", 1)
        with pytest.raises(RegistryError, match="duplicate widget"):
            reg.register("a", 2)


def _linear_stages():
    return [
        Stage("one", "a", lambda ctx: 1),
        Stage("two", "b", lambda ctx, a: a + 1, requires=("a",)),
        Stage("three", "c", lambda ctx, b: b * 2, requires=("b",)),
    ]


class TestPassManager:
    def test_runs_in_dependency_order(self):
        # Declared out of order on purpose.
        stages = list(reversed(_linear_stages()))
        store, report = PassManager(stages).run()
        assert store["c"] == 4
        assert [t.name for t in report.stages] == ["one", "two", "three"]

    def test_preloaded_artifact_skips_stage(self):
        store, report = PassManager(_linear_stages()).run({"a": 10})
        assert store["b"] == 11
        assert report.timing("one").reused
        assert report.executed() == ["two", "three"]

    def test_counters_reach_report(self):
        def fn(ctx):
            ctx.count("things", 3)
            ctx.count("things", 2)
            return None

        _, report = PassManager([Stage("s", "x", fn)]).run()
        assert report.counter("s", "things") == 5
        assert report.merged_counters() == {"s.things": 5}

    def test_cycle_detected(self):
        stages = [
            Stage("one", "a", lambda ctx, b: b, requires=("b",)),
            Stage("two", "b", lambda ctx, a: a, requires=("a",)),
        ]
        with pytest.raises(PipelineError, match="cycle"):
            PassManager(stages).order()

    def test_missing_requirement_detected(self):
        stages = [Stage("one", "a", lambda ctx, z: z, requires=("z",))]
        with pytest.raises(PipelineError, match="unsatisfiable"):
            PassManager(stages).order()

    def test_duplicate_provider_rejected(self):
        stages = [
            Stage("one", "a", lambda ctx: 1),
            Stage("two", "a", lambda ctx: 2),
        ]
        with pytest.raises(PipelineError, match="two providers"):
            PassManager(stages)

    def test_missing_artifact_error_names_available(self):
        store = ArtifactStore({"present": 1})
        with pytest.raises(PipelineError, match="never produced"):
            store["absent"]

    def test_report_render_marks_reused(self):
        _, report = PassManager(_linear_stages()).run({"a": 10})
        rendered = report.render()
        assert "reused" in rendered
        assert "total" in rendered

    def test_report_to_dict_round_trip_fields(self):
        _, report = PassManager(_linear_stages()).run()
        payload = report.to_dict()
        assert payload["total_seconds"] == pytest.approx(
            report.total_seconds
        )
        assert [s["name"] for s in payload["stages"]] == [
            "one", "two", "three",
        ]


class TestStageReport:
    def test_timing_unknown_stage(self):
        with pytest.raises(KeyError):
            StageReport().timing("nope")


class TestSquashStages:
    def test_squash_dag_orders_and_reports(
        self, mini_program, mini_profile
    ):
        from repro.core.pipeline import SquashConfig
        from repro.pipeline.stages import run_squash_pipeline

        emitted, report, store = run_squash_pipeline(
            mini_program, mini_profile, SquashConfig(theta=1.0)
        )
        assert [t.name for t in report.stages] == [
            "cold", "plan", "classify", "layout", "encode", "emit",
        ]
        assert emitted.image.memory
        assert store["emitted"] is emitted
        assert report.counter("plan", "regions") == len(
            emitted.info.regions
        )

    def test_source_program_not_mutated(self, mini_program, mini_profile):
        from repro.core.pipeline import SquashConfig
        from repro.pipeline.stages import run_squash_pipeline
        from repro.program.serialize import program_to_dict

        before = program_to_dict(mini_program)
        run_squash_pipeline(
            mini_program, mini_profile, SquashConfig(theta=1.0)
        )
        assert program_to_dict(mini_program) == before


class TestRegisteredPlugins:
    def test_region_strategies_registered(self):
        from repro.core.plan import REGION_STRATEGIES

        assert set(REGION_STRATEGIES.names()) == {"dfs", "whole_function"}

    def test_buffer_and_restore_policies_registered(self):
        from repro.core.classify import BUFFER_STRATEGIES, RESTORE_SCHEMES

        assert set(BUFFER_STRATEGIES.names()) == {
            "no_calls", "decompress_once", "overwrite",
        }
        assert set(RESTORE_SCHEMES.names()) == {"compile_time", "runtime"}

    def test_codec_variants_registered(self):
        from repro.compress.codec import CODEC_VARIANTS, codec_variant

        assert "huffman" in CODEC_VARIANTS
        assert "mtf+huffman" in CODEC_VARIANTS
        assert codec_variant("huffman").coder == "huffman"
        assert codec_variant("dict").coder == "dict"
        assert codec_variant("mtf+huffman").mtf_kinds

    def test_squeeze_passes_registered(self):
        from repro.squeeze.pipeline import (
            DEFAULT_SQUEEZE_ORDER,
            SQUEEZE_PASSES,
        )

        assert set(SQUEEZE_PASSES.names()) >= {
            "unreachable", "nops", "dead", "abstraction",
        }
        assert [name for name, _ in DEFAULT_SQUEEZE_ORDER] == [
            "unreachable", "nops", "dead", "abstraction",
        ]


class TestArtifactFingerprints:
    def test_program_fingerprint_stable_and_content_addressed(
        self, mini_program
    ):
        from repro.pipeline.artifacts import program_fingerprint

        first = program_fingerprint(mini_program)
        assert first == program_fingerprint(mini_program)
        copy = mini_program.copy()
        assert program_fingerprint(copy) == first

    def test_config_fingerprint_tracks_values(self):
        from repro.core.pipeline import SquashConfig
        from repro.pipeline.artifacts import config_fingerprint

        a = config_fingerprint(SquashConfig(theta=0.0))
        b = config_fingerprint(SquashConfig(theta=0.5))
        assert a != b
        assert a == config_fingerprint(SquashConfig(theta=0.0))
