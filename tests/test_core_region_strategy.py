"""The alternative whole-function region construction (Section 9's
future work) and the pathological timing-input case (Section 7's `li`
anecdote)."""

import dataclasses

import pytest

from repro.core.costmodel import CostModel
from repro.core.pipeline import SquashConfig, squash
from repro.core.regions import (
    RegionContext,
    form_regions_whole_function,
)
from tests.conftest import MINI_TIMING_INPUT
from tests.test_core_regions import (
    all_f_blocks,
    chain_program,
    packable_program,
    packable_compressible,
)


class TestWholeFunctionStrategy:
    def test_small_function_becomes_one_region(self):
        program = chain_program(n_blocks=10, block_size=6)
        compressible = all_f_blocks(program)
        regions = form_regions_whole_function(
            program, compressible, CostModel()
        )
        assert len(regions) == 1
        assert set(regions[0].blocks) == compressible

    def test_oversized_function_falls_back_to_dfs(self):
        program = chain_program(n_blocks=60, block_size=6)  # 360 instrs
        compressible = all_f_blocks(program)
        cost = CostModel(buffer_bound_bytes=512)  # 128 instructions
        regions = form_regions_whole_function(program, compressible, cost)
        assert len(regions) >= 3
        ctx = RegionContext.build(program)
        for region in regions:
            blocks = set(region.blocks)
            expanded = (
                sum(ctx.sizes[b] for b in blocks)
                + sum(ctx.calls_in[b] for b in blocks)
                + 1
            )
            assert expanded <= cost.buffer_bound_instrs

    def test_partially_cold_function_falls_back(self):
        program = chain_program(n_blocks=10, block_size=6)
        compressible = all_f_blocks(program) - {"f.b0"}
        regions = form_regions_whole_function(
            program, compressible, CostModel()
        )
        covered = {label for r in regions for label in r.blocks}
        assert covered <= compressible

    def test_indices_sequential(self):
        program = packable_program()
        regions = form_regions_whole_function(
            program, packable_compressible(program), CostModel()
        )
        assert [r.index for r in regions] == list(range(len(regions)))

    @pytest.mark.parametrize("strategy", ["dfs", "whole_function"])
    def test_pipeline_equivalence(
        self, mini_program, mini_profile, mini_baseline, strategy
    ):
        config = dataclasses.replace(
            SquashConfig(theta=1.0), region_strategy=strategy
        )
        result = squash(mini_program, mini_profile, config)
        run, _ = result.run(MINI_TIMING_INPUT, max_steps=10_000_000)
        assert run.output == mini_baseline.output

    def test_unknown_strategy_rejected(self, mini_program, mini_profile):
        config = dataclasses.replace(
            SquashConfig(), region_strategy="bogus"
        )
        with pytest.raises(ValueError, match="region strategy"):
            squash(mini_program, mini_profile, config)


class TestPathologicalTimingInput:
    """Section 7: 'the execution speed of compressed code can suffer
    dramatically if the timing inputs cause a large number of calls to
    the decompressor' -- e.g. a cycle that is cold in the profile but
    hot in the timing run (the SPECint li anecdote)."""

    def craft(self, small_workload):
        """An input hammering one kind that the profile never saw."""
        kind = small_workload.plan.never_kinds[-2]
        n_kinds = small_workload.n_kinds
        return [kind + n_kinds * (p * 97 % (1 << 20)) for p in range(400)]

    def test_profile_cold_timing_hot_is_slow(
        self, small_workload, small_inputs
    ):
        from repro.program.layout import layout
        from repro.squeeze import squeeze
        from repro.vm.machine import Machine
        from repro.vm.profiler import collect_profile

        profile_in, _ = small_inputs
        squeezed, _ = squeeze(small_workload.program)
        base_layout = layout(squeezed)
        profile = collect_profile(squeezed, base_layout.image, profile_in)

        hammer = self.craft(small_workload)
        baseline = Machine(
            base_layout.image, input_words=hammer
        ).run(max_steps=100_000_000)

        # Small buffer: the hot-but-profile-cold handler spans several
        # regions, so every visit ping-pongs the decompressor.
        config = SquashConfig(
            theta=0.0, cost=CostModel(buffer_bound_bytes=128)
        )
        result = squash(squeezed, profile, config)
        run, runtime = result.run(hammer, max_steps=200_000_000)
        assert run.output == baseline.output
        slowdown = run.cycles / baseline.cycles
        assert slowdown > 2.0, (
            "profile-cold/timing-hot cycles should hurt badly"
        )
        assert runtime.stats.decompressions > len(hammer)

        # The regular timing input at the same setting is far cheaper.
        _, timing_in = small_inputs
        normal_base = Machine(
            base_layout.image, input_words=timing_in
        ).run(max_steps=100_000_000)
        normal_run, _ = result.run(timing_in, max_steps=200_000_000)
        assert (
            normal_run.cycles / normal_base.cycles < slowdown / 2
        )
