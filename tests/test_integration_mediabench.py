"""MediaBench-level integration checks (small scale)."""

import pytest

from repro.analysis.experiments import squash_benchmark
from repro.core.pipeline import SquashConfig
from repro.workloads.mediabench import mediabench_program

SCALE = 0.2


def test_unknown_table_benchmarks_exclude_blocks():
    """epic and mpeg2dec are configured with an unknown-extent jump
    table (Section 6.2's binary-rewriting hazard); squash must exclude
    the dispatch block and its targets rather than compress them."""
    result = squash_benchmark("epic", SCALE, SquashConfig(theta=1.0))
    excluded = result.info.unswitch.excluded
    assert excluded, "epic's unknown table should force exclusions"
    assert excluded.isdisjoint(result.info.compressed_blocks)

    clean = squash_benchmark("adpcm", SCALE, SquashConfig(theta=1.0))
    assert not clean.info.unswitch.excluded


def test_unswitching_happens_on_every_benchmark():
    for name in ("adpcm", "gsm"):
        result = squash_benchmark(name, SCALE, SquashConfig(theta=1.0))
        assert result.info.unswitch.unswitched_blocks >= 1
        assert result.info.unswitch.reclaimed_words >= 4


def test_mediabench_program_deterministic():
    a = mediabench_program("g721_dec", scale=SCALE)
    b = mediabench_program("g721_dec", scale=SCALE)
    assert a is b  # cached
    # and the underlying build is seed-deterministic
    from repro.workloads.generator import build_workload
    from repro.workloads.mediabench import mediabench_spec

    spec = mediabench_spec("g721_dec", scale=SCALE)
    x = build_workload(spec, calibrate=False, filler_budget=2000)
    y = build_workload(spec, calibrate=False, filler_budget=2000)
    assert [
        (bl.label, bl.instrs) for _, bl in x.program.all_blocks()
    ] == [(bl.label, bl.instrs) for _, bl in y.program.all_blocks()]


def test_profiles_differ_between_benchmarks():
    a = mediabench_program("adpcm", scale=SCALE)
    b = mediabench_program("gsm", scale=SCALE)
    assert a.profile.tot_instr_ct != b.profile.tot_instr_ct or (
        a.profile.counts != b.profile.counts
    )


def test_setjmp_functions_never_compressed():
    """main calls setjmp in every generated program; even at θ=1 its
    blocks must stay out of the compressed set (Section 2.2)."""
    result = squash_benchmark("gsm", SCALE, SquashConfig(theta=1.0))
    bench = mediabench_program("gsm", scale=SCALE)
    for fn in bench.squeezed.functions.values():
        if fn.calls_setjmp:
            for label in fn.blocks:
                assert label not in result.info.compressed_blocks


def test_every_region_fits_its_buffer():
    result = squash_benchmark("jpeg_enc", SCALE, SquashConfig(theta=1.0))
    desc = result.descriptor
    for region in desc.regions:
        assert region.expanded_size <= desc.buffer_words


def test_tag_fields_fit_sixteen_bits():
    """Region indices and buffer offsets travel in 16-bit tag halves
    (Section 2.3); the rewriter must stay inside them."""
    result = squash_benchmark("pgp", SCALE, SquashConfig(theta=1.0))
    desc = result.descriptor
    assert len(desc.regions) < (1 << 16)
    for stub in desc.entry_stubs:
        assert 0 <= stub.offset < (1 << 16)
        assert 0 <= stub.region < (1 << 16)
