"""Byte-equivalence of the staged pipeline against pre-refactor golden
digests.

``tests/golden/squash_golden.json`` was captured from the monolithic
rewriter before it was split into pass-manager stages: for every
benchmark × θ cell it pins the SHA-256 of the emitted image (segments
and memory words), the footprint, the baseline size, the modelled cycle
count of the timing run, and the output digest.  The staged pipeline
must reproduce all of them exactly — refactors of the stage modules
are only mechanical if this suite stays green.

``REPRO_CODEC_VARIANT`` reruns the same grid against that variant's
own golden file (``squash_golden_<variant>.json``, e.g. the pinned
``ctx1`` digests), so CI proves both that ``baseline`` is untouched
and that context-conditioned codecs are reproducible.

Regenerate (only after an intentional output change)::

    PYTHONPATH=src python tests/golden/capture_squash_golden.py
    PYTHONPATH=src python tests/golden/capture_squash_golden.py \\
        --variant ctx1
"""

import hashlib
import json
import pathlib

import pytest

from repro import settings
from repro.analysis.experiments import map_theta, squash_benchmark
from repro.core.pipeline import SquashConfig
from repro.workloads.mediabench import MEDIABENCH, mediabench_program

#: Codec variant under test (the REPRO_CODEC_VARIANT knob); "" and
#: "baseline" both mean the pre-CodecModel pipeline and share the
#: original golden file.
VARIANT = settings.current().codec_variant
_SUFFIX = "" if VARIANT in ("", "baseline") else f"_{VARIANT}"
GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "golden" / f"squash_golden{_SUFFIX}.json"
)
GOLDEN = json.loads(GOLDEN_PATH.read_text())
SCALE = GOLDEN["scale"]
THETAS = tuple(GOLDEN["thetas"])


@pytest.fixture(autouse=True, scope="module")
def _tracing_armed():
    """Run the whole golden grid with the trace layer enabled.

    The digests were captured before the observability layer existed,
    so a green grid here proves tracing observes without perturbing:
    byte-identical images and identical modelled cycles, all 11
    benchmarks x 4 thetas.
    """
    from repro.obs.trace import get_tracer

    tracer = get_tracer()
    was = tracer.enabled
    tracer.enable()
    yield
    tracer.enabled = was


def image_digest(image) -> str:
    h = hashlib.sha256()
    h.update(image.base.to_bytes(8, "little"))
    h.update(image.entry_pc.to_bytes(8, "little"))
    for seg in image.segments:
        h.update(f"{seg.name}:{seg.start}:{seg.size};".encode())
    for w in image.memory:
        h.update((w & 0xFFFFFFFF).to_bytes(4, "little"))
    return h.hexdigest()


def output_digest(output) -> str:
    return hashlib.sha256(
        b"".join((w & 0xFFFFFFFF).to_bytes(4, "little") for w in output)
    ).hexdigest()


def test_golden_covers_full_grid():
    assert len(GOLDEN["cells"]) == len(MEDIABENCH) * len(THETAS)


@pytest.mark.parametrize("name", MEDIABENCH)
def test_staged_pipeline_matches_golden(name):
    bench = mediabench_program(name, scale=SCALE)
    for theta_paper in THETAS:
        config = SquashConfig(
            theta=map_theta(theta_paper), codec_variant=VARIANT
        )
        result = squash_benchmark(name, SCALE, config)
        want = GOLDEN["cells"][f"{name}@{theta_paper}"]
        cell = f"{name}@{theta_paper}"
        assert image_digest(result.image) == want["image_sha256"], cell
        assert result.footprint.total == want["footprint_total"], cell
        assert result.baseline_words == want["baseline_words"], cell
        run, _ = result.run(bench.timing_input, max_steps=500_000_000)
        assert run.cycles == want["cycles"], cell
        assert output_digest(run.output) == want["output_sha256"], cell
        assert run.exit_code == want["exit_code"], cell


def test_tracing_was_live_during_grid():
    """The grid above must actually have exercised the armed tracer —
    otherwise the zero-perturbation claim is vacuous."""
    from repro.obs.trace import get_tracer

    assert get_tracer().events("runtime"), (
        "no runtime trace events were recorded while the golden grid "
        "ran with tracing enabled"
    )
