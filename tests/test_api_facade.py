"""The repro.api facade: surface snapshot, behaviour, deprecations."""

import warnings

import pytest

import repro
import repro.api as api

SCALE = 0.2
THETA = 1e-4


class TestSurface:
    def test_api_all_is_the_pinned_surface(self):
        """The facade surface is a compatibility contract — growing it
        is fine, but every change must be deliberate (update this
        snapshot in the same commit)."""
        assert sorted(api.__all__) == [
            "LoadedSquash",
            "RunOutcome",
            "RunSpec",
            "SquashConfig",
            "SquashResult",
            "SweepSpec",
            "load_squashed",
            "run",
            "squash",
            "squash_benchmark",
            "store_gc",
            "store_stats",
            "store_verify",
            "sweep",
            "verify",
        ]

    def test_package_root_reexports_snapshot(self):
        assert sorted(repro._EXPORTS) == [
            "ArtifactStore",
            "BufferStrategy",
            "LoadedSquash",
            "MEDIABENCH",
            "Machine",
            "MetricsRegistry",
            "PassManager",
            "Profile",
            "RunOutcome",
            "RunResult",
            "RunSpec",
            "Settings",
            "SquashConfig",
            "SquashResult",
            "Stage",
            "StageReport",
            "StoreDegraded",
            "SweepSpec",
            "Tracer",
            "collect_profile",
            "current_settings",
            "enable_tracing",
            "get_registry",
            "get_store",
            "get_tracer",
            "load_squashed",
            "mediabench_program",
            "mediabench_spec",
            "run",
            "squash",
            "squash_benchmark",
            "squeeze",
            "store_gc",
            "store_stats",
            "store_verify",
            "sweep",
            "use_settings",
            "verify",
        ]

    def test_root_squash_is_the_facade(self):
        assert repro.squash is api.squash
        assert repro.run is api.run
        assert repro.sweep is api.sweep
        assert repro.verify is api.verify

    def test_every_root_export_resolves(self):
        for name in repro._EXPORTS:
            assert getattr(repro, name) is not None

    def test_unknown_root_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestDeprecations:
    def test_core_pipeline_squash_import_warns_and_aliases(self):
        import repro.core.pipeline as pipeline

        with pytest.warns(DeprecationWarning, match="repro.api.squash"):
            legacy = pipeline.squash
        assert legacy is pipeline.squash_program

    def test_core_package_alias_is_silent(self):
        """repro.core re-exports squash without tripping the shim."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core import squash as core_squash
        assert core_squash.__name__ == "squash_program"


@pytest.fixture(scope="module")
def squashed():
    from repro.analysis.experiments import map_theta

    return api.squash_benchmark(
        "adpcm", SCALE, api.SquashConfig(theta=map_theta(THETA))
    )


class TestBehaviour:
    def test_run_squash_result(self, squashed):
        from repro.workloads.mediabench import mediabench_program

        bench = mediabench_program("adpcm", scale=SCALE)
        outcome = api.run(
            squashed,
            api.RunSpec(input_words=tuple(bench.timing_input),
                        max_steps=500_000_000),
        )
        assert isinstance(outcome, api.RunOutcome)
        assert outcome.exit_code == 0
        assert outcome.cycles > 0
        assert outcome.output
        assert outcome.runtime_stats["decompressions"] >= 0

    def test_run_from_saved_prefix_matches_in_memory(self, squashed,
                                                     tmp_path):
        from repro.workloads.mediabench import mediabench_program

        bench = mediabench_program("adpcm", scale=SCALE)
        spec = api.RunSpec(input_words=tuple(bench.timing_input),
                           max_steps=500_000_000)
        direct = api.run(squashed, spec)
        squashed.save(tmp_path / "adpcm")
        reloaded = api.run(str(tmp_path / "adpcm"), spec)
        assert reloaded.cycles == direct.cycles
        assert reloaded.output == direct.output

    def test_run_rejects_foreign_target(self):
        with pytest.raises(TypeError, match="SquashResult"):
            api.run(object())

    def test_verify_round_trip(self, squashed, tmp_path):
        squashed.save(tmp_path / "img")
        report = api.verify(tmp_path / "img")
        assert report.ok, report

    def test_sweep_kind_validated(self):
        with pytest.raises(ValueError, match="unknown sweep kind"):
            api.sweep(api.SweepSpec(names=("adpcm",), kind="bogus"))

    def test_sweep_size_rows(self):
        rows = api.sweep(
            api.SweepSpec(names=("adpcm",), scale=SCALE, thetas=(THETA,))
        )
        (row,) = rows
        assert row.name == "adpcm"
        assert row.theta_paper == THETA
        # At scale 0.2 the stub overhead can outweigh the savings, so
        # only sanity-check the band, not the sign.
        assert -1.0 < row.reduction < 1.0

    def test_sweep_parallel_serial_rows_agree(self, tmp_path):
        from repro import settings

        spec = api.SweepSpec(names=("adpcm",), scale=SCALE, thetas=(THETA,))
        serial = api.sweep(spec)
        with settings.use_settings(cache_dir=str(tmp_path)):
            fanned = api.sweep(
                api.SweepSpec(names=("adpcm",), scale=SCALE,
                              thetas=(THETA,), parallel=True)
            )
        assert [(r.name, r.reduction) for r in serial] == [
            (r.name, r.reduction) for r in fanned
        ]
