"""The repro.api facade: surface snapshot, behaviour, deprecations."""

import warnings

import pytest

import repro
import repro.api as api

SCALE = 0.2
THETA = 1e-4


class TestSurface:
    def test_api_all_is_the_pinned_surface(self):
        """The facade surface is a compatibility contract — growing it
        is fine, but every change must be deliberate (update this
        snapshot in the same commit)."""
        assert sorted(api.__all__) == [
            "JobHandle",
            "JobSpec",
            "LoadedSquash",
            "RunOutcome",
            "RunSpec",
            "ServiceClient",
            "SquashConfig",
            "SquashResult",
            "SweepSpec",
            "job_result",
            "job_status",
            "load_squashed",
            "run",
            "squash",
            "squash_benchmark",
            "store_gc",
            "store_stats",
            "store_verify",
            "submit",
            "sweep",
            "verify",
        ]

    def test_package_root_reexports_snapshot(self):
        assert sorted(repro._EXPORTS) == [
            "ArtifactStore",
            "BufferStrategy",
            "JobEngine",
            "JobExpired",
            "JobHandle",
            "JobSpec",
            "LoadedSquash",
            "MEDIABENCH",
            "Machine",
            "MetricsRegistry",
            "PassManager",
            "Profile",
            "RunOutcome",
            "RunResult",
            "RunSpec",
            "ServiceClient",
            "ServiceOverloaded",
            "Settings",
            "SpecError",
            "SquashConfig",
            "SquashResult",
            "Stage",
            "StageReport",
            "StoreDegraded",
            "SweepSpec",
            "TenantQuotaExceeded",
            "Tracer",
            "collect_profile",
            "current_settings",
            "enable_tracing",
            "get_registry",
            "get_store",
            "get_tracer",
            "job_result",
            "job_status",
            "load_squashed",
            "mediabench_program",
            "mediabench_spec",
            "run",
            "squash",
            "squash_benchmark",
            "squeeze",
            "store_gc",
            "store_stats",
            "store_verify",
            "submit",
            "sweep",
            "use_settings",
            "verify",
        ]

    def test_root_squash_is_the_facade(self):
        assert repro.squash is api.squash
        assert repro.run is api.run
        assert repro.sweep is api.sweep
        assert repro.verify is api.verify

    def test_every_root_export_resolves(self):
        for name in repro._EXPORTS:
            assert getattr(repro, name) is not None

    def test_unknown_root_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist


class TestDeprecations:
    def test_core_pipeline_squash_import_warns_and_aliases(self):
        import repro.core.pipeline as pipeline

        with pytest.warns(DeprecationWarning, match="repro.api.squash"):
            legacy = pipeline.squash
        assert legacy is pipeline.squash_program

    def test_core_package_alias_is_silent(self):
        """repro.core re-exports squash without tripping the shim."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.core import squash as core_squash
        assert core_squash.__name__ == "squash_program"

    def test_api_submit_shim_warns_once(self):
        """The pre-client job functions warn toward ServiceClient —
        exactly once per process, not per call."""
        from repro.errors import SpecError

        api._DEPRECATION_WARNED.discard("submit")
        with pytest.warns(DeprecationWarning,
                          match="ServiceClient.submit"):
            with pytest.raises(SpecError):
                # Both a spec and fields: rejected before any engine
                # is spun up, so the shim test stays cheap.
                api.submit(api.JobSpec(kind="squash", payload={}),
                           kind="squash")
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with pytest.raises(SpecError):
                api.submit(api.JobSpec(kind="squash", payload={}),
                           kind="squash")

    def test_client_surface_resolves_lazily(self):
        from repro.service.client import JobHandle, ServiceClient

        assert api.ServiceClient is ServiceClient
        assert api.JobHandle is JobHandle
        assert repro.ServiceClient is ServiceClient


class TestErrorPaths:
    """Malformed specs come back as typed SpecError, not stack spew."""

    def test_unknown_benchmark_name(self):
        from repro.errors import SpecError, SquashError

        with pytest.raises(SpecError, match="unknown benchmark") as exc:
            api.squash_benchmark("quake3")
        assert exc.value.field == "name"
        assert isinstance(exc.value, SquashError)
        assert isinstance(exc.value, ValueError)

    def test_bad_scale(self):
        from repro.errors import SpecError

        with pytest.raises(SpecError, match="scale") as exc:
            api.squash_benchmark("adpcm", scale=-1.0)
        assert exc.value.field == "scale"

    def test_run_rejects_bad_max_steps(self, squashed):
        from repro.errors import SpecError

        with pytest.raises(SpecError, match="max_steps"):
            api.run(squashed, api.RunSpec(max_steps=0))
        with pytest.raises(SpecError, match="max_steps"):
            api.run(squashed, api.RunSpec(max_steps="lots"))

    def test_run_rejects_non_integer_inputs(self, squashed):
        from repro.errors import SpecError

        with pytest.raises(SpecError, match="input_words") as exc:
            api.run(squashed, api.RunSpec(input_words=(1, "two", 3)))
        assert exc.value.field == "input_words"
        with pytest.raises(SpecError, match="input_words"):
            api.run(squashed, api.RunSpec(input_words=42))

    def test_sweep_rejects_unknown_names(self):
        from repro.errors import SpecError

        with pytest.raises(SpecError, match="unknown benchmark") as exc:
            api.sweep(api.SweepSpec(names=("adpcm", "doom")))
        assert exc.value.field == "names"

    def test_sweep_rejects_bad_thetas(self):
        from repro.errors import SpecError

        with pytest.raises(SpecError, match="thetas"):
            api.sweep(api.SweepSpec(names=("adpcm",), thetas=(-0.5,)))

    def test_sweep_kind_error_is_typed(self):
        from repro.errors import SpecError

        with pytest.raises(SpecError) as exc:
            api.sweep(api.SweepSpec(names=("adpcm",), kind="bogus"))
        assert exc.value.field == "kind"


@pytest.fixture(scope="module")
def squashed():
    from repro.analysis.experiments import map_theta

    return api.squash_benchmark(
        "adpcm", SCALE, api.SquashConfig(theta=map_theta(THETA))
    )


class TestBehaviour:
    def test_run_squash_result(self, squashed):
        from repro.workloads.mediabench import mediabench_program

        bench = mediabench_program("adpcm", scale=SCALE)
        outcome = api.run(
            squashed,
            api.RunSpec(input_words=tuple(bench.timing_input),
                        max_steps=500_000_000),
        )
        assert isinstance(outcome, api.RunOutcome)
        assert outcome.exit_code == 0
        assert outcome.cycles > 0
        assert outcome.output
        assert outcome.runtime_stats["decompressions"] >= 0

    def test_run_from_saved_prefix_matches_in_memory(self, squashed,
                                                     tmp_path):
        from repro.workloads.mediabench import mediabench_program

        bench = mediabench_program("adpcm", scale=SCALE)
        spec = api.RunSpec(input_words=tuple(bench.timing_input),
                           max_steps=500_000_000)
        direct = api.run(squashed, spec)
        squashed.save(tmp_path / "adpcm")
        reloaded = api.run(str(tmp_path / "adpcm"), spec)
        assert reloaded.cycles == direct.cycles
        assert reloaded.output == direct.output

    def test_run_rejects_foreign_target(self):
        with pytest.raises(TypeError, match="SquashResult"):
            api.run(object())

    def test_verify_round_trip(self, squashed, tmp_path):
        squashed.save(tmp_path / "img")
        report = api.verify(tmp_path / "img")
        assert report.ok, report

    def test_sweep_kind_validated(self):
        with pytest.raises(ValueError, match="unknown sweep kind"):
            api.sweep(api.SweepSpec(names=("adpcm",), kind="bogus"))

    def test_sweep_size_rows(self):
        rows = api.sweep(
            api.SweepSpec(names=("adpcm",), scale=SCALE, thetas=(THETA,))
        )
        (row,) = rows
        assert row.name == "adpcm"
        assert row.theta_paper == THETA
        # At scale 0.2 the stub overhead can outweigh the savings, so
        # only sanity-check the band, not the sign.
        assert -1.0 < row.reduction < 1.0

    def test_sweep_parallel_serial_rows_agree(self, tmp_path):
        from repro import settings

        spec = api.SweepSpec(names=("adpcm",), scale=SCALE, thetas=(THETA,))
        serial = api.sweep(spec)
        with settings.use_settings(cache_dir=str(tmp_path)):
            fanned = api.sweep(
                api.SweepSpec(names=("adpcm",), scale=SCALE,
                              thetas=(THETA,), parallel=True)
            )
        assert [(r.name, r.reduction) for r in serial] == [
            (r.name, r.reduction) for r in fanned
        ]
