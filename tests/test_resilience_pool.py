"""Persistent worker pool: reuse, invalidation, and supervisor safety.

The :class:`~repro.resilience.workerpool.PoolManager` must hand warm
workers to consecutive supervised runs (same worker PIDs), yet never
reuse a pool across a fingerprint change (settings, ``REPRO_*``
environment, working directory), a broken executor, or with
``REPRO_POOL_PERSIST=0``.
"""

from __future__ import annotations

import pytest

from repro import settings
from repro.obs.metrics import get_registry
from repro.resilience import (
    RetryPolicy,
    Supervisor,
    SupervisorConfig,
    Task,
    get_pool_manager,
    pool_fingerprint,
    reset_pool_manager,
)
from tests._supervised_workers import work

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.01, backoff_cap=0.05)


@pytest.fixture(autouse=True)
def fresh_manager():
    reset_pool_manager()
    yield
    reset_pool_manager()


def _config(**overrides):
    defaults = dict(workers=2, retry=FAST_RETRY)
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def _pid_tasks(count=4):
    return [
        Task(key=i, payload={"op": "pid"}, label=f"pid-{i}")
        for i in range(count)
    ]


def _pool_counters():
    counters = get_registry().snapshot()["counters"]
    return {k: v for k, v in counters.items() if k.startswith("pool.")}


class TestWarmReuse:
    def test_consecutive_runs_share_worker_processes(self):
        before = _pool_counters()
        first = Supervisor(work, _config()).run(_pid_tasks())
        second = Supervisor(work, _config()).run(_pid_tasks())
        assert first.ok and second.ok
        # Same long-lived worker processes served both runs.  (A fresh
        # pool would share no PIDs; the first run may observe only a
        # subset of the pool when a worker spawns slowly under load,
        # so subset-in-either-direction is the wrong shape to pin.)
        assert set(second.results.values()) & set(first.results.values())
        after = _pool_counters()
        assert (
            after.get("pool.acquire.reuse", 0)
            - before.get("pool.acquire.reuse", 0)
        ) >= 1

    def test_pool_parked_between_runs(self):
        Supervisor(work, _config()).run(_pid_tasks())
        assert get_pool_manager().parked_count() == 1

    def test_different_worker_counts_get_distinct_pools(self):
        Supervisor(work, _config(workers=2)).run(_pid_tasks())
        Supervisor(work, _config(workers=3)).run(_pid_tasks())
        assert get_pool_manager().parked_count() == 2


class TestInvalidation:
    def test_env_change_invalidates_fingerprint(self, monkeypatch):
        first = pool_fingerprint()
        monkeypatch.setenv("REPRO_CHAOS_SPEC", '{"seed": 1}')
        assert pool_fingerprint() != first

    def test_settings_override_invalidates_fingerprint(self):
        first = pool_fingerprint()
        with settings.use_settings(vm_watchdog=123456):
            assert pool_fingerprint() != first
        assert pool_fingerprint() == first

    def test_env_change_forces_fresh_workers(self, monkeypatch):
        first = Supervisor(work, _config()).run(_pid_tasks())
        monkeypatch.setenv("REPRO_CHAOS_SPEC", '{"seed": 7}')
        second = Supervisor(work, _config()).run(_pid_tasks())
        assert first.ok and second.ok
        assert not (
            set(first.results.values()) & set(second.results.values())
        )

    def test_persist_off_never_parks(self):
        with settings.use_settings(pool_persist=False):
            Supervisor(work, _config()).run(_pid_tasks())
            assert get_pool_manager().parked_count() == 0


class TestBrokenPools:
    def test_crashed_pool_is_not_reused(self, tmp_path):
        tasks = [
            Task(
                key=0,
                payload={
                    "op": "exit_until", "path": str(tmp_path / "c"), "n": 1,
                },
                label="crasher",
            ),
            Task(key=1, payload={"op": "ok", "value": 1}),
        ]
        report = Supervisor(work, _config()).run(tasks)
        assert report.ok
        assert report.pool_rebuilds >= 1
        # The replacement pool (healthy) is parked; the broken one died.
        assert get_pool_manager().parked_count() == 1
        follow_up = Supervisor(work, _config()).run(_pid_tasks())
        assert follow_up.ok

    def test_hung_pool_is_killed_not_parked(self, tmp_path):
        tasks = [
            Task(
                key=0,
                payload={
                    "op": "sleep_until",
                    "path": str(tmp_path / "c"),
                    "n": 1,
                    "secs": 30.0,
                },
                label="sleeper",
            ),
            Task(key=1, payload={"op": "ok", "value": 1}),
        ]
        report = Supervisor(work, _config(deadline=1.0)).run(tasks)
        assert report.ok
        assert report.results[0] == "awake"
        follow_up = Supervisor(work, _config()).run(_pid_tasks())
        assert follow_up.ok
