"""The cross-runtime region decode cache never changes modelled costs.

The cache memoizes host-side decode work per (blob digest, bit offset);
the guest is still charged the full per-bit/per-instruction decode cost
from the stored bit count, so ``RunResult.cycles`` and every runtime
counter must be identical with the cache on or off.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.costmodel import CostModel
from repro.core.pipeline import SquashConfig, squash
from repro.core.runtime import (
    clear_region_decode_cache,
    region_decode_cache_info,
)
from tests.conftest import MINI_TIMING_INPUT

SMALL_BUFFER = SquashConfig(
    theta=1.0, cost=CostModel(buffer_bound_bytes=48)
)


@pytest.fixture(scope="module")
def multi_region(mini_program, mini_profile):
    return squash(mini_program, mini_profile, SMALL_BUFFER)


def _run(result, region_cache):
    run, runtime = result.run(
        MINI_TIMING_INPUT, max_steps=10_000_000, region_cache=region_cache
    )
    return run, runtime.stats


def test_cycles_identical_with_and_without_cache(multi_region):
    clear_region_decode_cache()
    run_off, stats_off = _run(multi_region, region_cache=False)
    run_cold, stats_cold = _run(multi_region, region_cache=True)
    run_warm, stats_warm = _run(multi_region, region_cache=True)

    for run in (run_cold, run_warm):
        assert run.cycles == run_off.cycles
        assert run.steps == run_off.steps
        assert run.output == run_off.output
        assert run.exit_code == run_off.exit_code
    for stats in (stats_cold, stats_warm):
        assert stats == stats_off

    info = region_decode_cache_info()
    assert info["entries"] > 0
    assert info["hits"] > 0  # the warm run decoded nothing bit-by-bit
    from repro.compress.codec import resolve_decode_backend

    if resolve_decode_backend() == "vector":
        # One miss batch-decodes the whole offset table, so a single
        # miss can account for every entry of the blob.
        assert info["misses"] <= info["entries"]
    else:
        assert info["misses"] == info["entries"]


def test_cache_not_shared_across_different_blobs(
    mini_program, mini_profile
):
    """A second image with different compressed bytes gets its own
    entries (keys include the blob digest, not just the bit offset)."""
    clear_region_decode_cache()
    a = squash(mini_program, mini_profile, SMALL_BUFFER)
    b = squash(
        mini_program,
        mini_profile,
        dataclasses.replace(
            SMALL_BUFFER, cost=CostModel(buffer_bound_bytes=64)
        ),
    )
    run_a, _ = _run(a, region_cache=True)
    run_b, _ = _run(b, region_cache=True)
    clear_region_decode_cache()
    run_a2, _ = _run(a, region_cache=False)
    run_b2, _ = _run(b, region_cache=False)
    assert run_a.output == run_a2.output
    assert run_b.output == run_b2.output
    assert run_a.cycles == run_a2.cycles
    assert run_b.cycles == run_b2.cycles
