"""Concurrent multi-process store writers.

Two real processes race the same store root: once on *identical*
fingerprints (every put is a dedup/EEXIST race) and once on *distinct*
fingerprints under a quota (every put is an admission/eviction race).
The O_EXCL loser-reuses-winner discipline is also pinned
deterministically in-process.
"""

import hashlib
import os
import pathlib
import subprocess
import sys
import textwrap
import time

from repro import settings
from repro.obs.metrics import get_registry
from repro.store import get_store, reset_stores

WRITER = textwrap.dedent(
    """
    import hashlib, pathlib, sys, time
    from repro.store import get_store

    root, mode, seed, count = (
        sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4])
    )
    store = get_store(root)
    start = pathlib.Path(root) / ".start"
    deadline = time.monotonic() + 30.0
    while not start.exists():
        if time.monotonic() > deadline:
            raise SystemExit("no start marker")
        time.sleep(0.001)
    for index in range(count):
        if mode == "same":
            key = hashlib.sha256(f"shared-{index}".encode()).hexdigest()
            obj = {"i": index, "pad": "x" * 64}
        else:
            key = hashlib.sha256(
                f"w{seed}-{index}".encode()
            ).hexdigest()
            obj = {"w": seed, "i": index, "pad": "x" * 256}
        store.put("cell", key, obj)
        got = store.get("cell", key)
        assert got is None or got == obj, (key, got)
    print("OK")
    """
)


def _spawn_writers(tmp_path, root, mode, count, extra_env=None):
    script = tmp_path / "writer.py"
    script.write_text(WRITER)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(
        pathlib.Path(__file__).resolve().parent.parent / "src"
    )
    env.pop("REPRO_STORE_QUOTA_BYTES", None)
    env.update(extra_env or {})
    procs = [
        subprocess.Popen(
            [sys.executable, str(script), str(root), mode, str(seed),
             str(count)],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True,
        )
        for seed in (1, 2)
    ]
    root.mkdir(parents=True, exist_ok=True)
    (root / ".start").write_text("go")
    return procs


def _join(procs):
    outputs = []
    for proc in procs:
        out, _ = proc.communicate(timeout=120)
        outputs.append((proc.returncode, out))
    return outputs


def _physical_usage(root):
    """On-disk bytes under *root*, each inode counted once, ignoring
    the start marker and the lock."""
    seen, total = set(), 0
    for dirpath, _, names in os.walk(root):
        for name in names:
            if name in (".start", ".store-lock"):
                continue
            path = os.path.join(dirpath, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue
            if stat.st_ino not in seen:
                seen.add(stat.st_ino)
                total += stat.st_size
    return total


class TestRacingProcesses:
    def test_identical_fingerprints_converge_to_one_object(self, tmp_path):
        root = tmp_path / "store"
        procs = _spawn_writers(tmp_path, root, "same", 40)
        for code, out in _join(procs):
            assert code == 0, out
        reset_stores()
        store = get_store(root)
        report = store.verify()
        assert report["refs"] == 40
        assert report["ok"] == 40, report
        assert sum(report["corrupt"].values()) == 0
        # Both writers published every key with identical bytes: each
        # key converged to exactly one object, whoever won the race.
        assert report["objects"] == 40
        for index in range(40):
            key = hashlib.sha256(f"shared-{index}".encode()).hexdigest()
            assert store.get("cell", key) == {"i": index, "pad": "x" * 64}
        # No temp files survived the race.
        assert not list(root.rglob(".tmp-*"))
        reset_stores()

    def test_distinct_fingerprints_respect_quota(self, tmp_path):
        quota = 24 * 1024
        root = tmp_path / "store"
        procs = _spawn_writers(
            tmp_path, root, "distinct", 40,
            extra_env={"REPRO_STORE_QUOTA_BYTES": str(quota)},
        )
        peak = 0
        while any(proc.poll() is None for proc in procs):
            peak = max(peak, _physical_usage(root))
            time.sleep(0.002)
        for code, out in _join(procs):
            assert code == 0, out
        peak = max(peak, _physical_usage(root))
        assert peak <= quota, f"peak usage {peak} exceeded quota {quota}"
        reset_stores()
        store = get_store(root)
        report = store.verify()
        assert sum(report["corrupt"].values()) == 0, report
        assert report["ok"] == report["refs"] > 0
        with settings.use_settings(store_quota_bytes=quota):
            assert store.usage_bytes() <= quota
        reset_stores()


class TestExclRaceLoser:
    def test_loser_of_object_excl_race_reuses_winner(
        self, tmp_path, monkeypatch
    ):
        """Force the EEXIST branch: the object is already published
        (the winner), but the loser's existence probe says otherwise,
        so it writes a temp and loses the link race — and must end up
        pointing at the winner's inode with no leftovers."""
        import json

        from repro.resilience.cache import seal_text

        reset_stores()
        store = get_store(tmp_path / "store")
        obj = {"winner": True, "pad": "w" * 32}
        payload = seal_text(json.dumps(obj, sort_keys=True)).encode()
        content = hashlib.sha256(payload).hexdigest()
        obj_path = store.object_path(content)
        obj_path.parent.mkdir(parents=True, exist_ok=True)
        obj_path.write_bytes(payload)  # the winner's publication

        real_exists = pathlib.Path.exists
        monkeypatch.setattr(
            pathlib.Path,
            "exists",
            lambda self: False if self == obj_path else real_exists(self),
        )
        key = hashlib.sha256(b"loser-key").hexdigest()
        before = get_registry().counter("store.dedup_saves").value
        assert store.put("cell", key, obj)
        monkeypatch.undo()

        assert store.get("cell", key) == obj
        ref = store.ref_path("cell", key)
        assert os.stat(ref).st_ino == os.stat(obj_path).st_ino
        assert get_registry().counter("store.dedup_saves").value > before
        assert not list(store.root.rglob(".tmp-*"))
        reset_stores()

    def test_second_writer_same_content_links_winner(self, tmp_path):
        reset_stores()
        store = get_store(tmp_path / "store")
        obj = {"same": "content"}
        key_a = hashlib.sha256(b"first").hexdigest()
        key_b = hashlib.sha256(b"second").hexdigest()
        assert store.put("cell", key_a, obj)
        assert store.put("cell", key_b, obj)
        ino_a = os.stat(store.ref_path("cell", key_a)).st_ino
        ino_b = os.stat(store.ref_path("cell", key_b)).st_ino
        assert ino_a == ino_b
        assert store.verify()["dedup_refs"] == 1
        reset_stores()
