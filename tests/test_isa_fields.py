"""Field-kind widths, signedness, and bit conversions."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.fields import (
    FIELD_WIDTHS,
    FieldKind,
    check_field,
    field_is_signed,
    field_max,
    field_min,
    from_bits,
    to_bits,
)


def test_every_kind_has_a_width():
    assert set(FIELD_WIDTHS) == set(FieldKind)


def test_widths_fill_formats():
    # opcode + branch format = 32 bits, etc.
    w = FIELD_WIDTHS
    assert w[FieldKind.OPCODE] + w[FieldKind.RA] + w[FieldKind.BDISP] == 32
    assert (
        w[FieldKind.OPCODE]
        + w[FieldKind.RA]
        + w[FieldKind.RB]
        + w[FieldKind.MDISP]
        == 32
    )
    assert (
        w[FieldKind.OPCODE]
        + w[FieldKind.RA]
        + w[FieldKind.RB]
        + w[FieldKind.SBZ]
        + w[FieldKind.FUNC]
        + w[FieldKind.RC]
        == 32
    )
    assert w[FieldKind.OPCODE] + w[FieldKind.PALF] == 32


def test_signedness():
    assert field_is_signed(FieldKind.BDISP)
    assert field_is_signed(FieldKind.MDISP)
    assert field_is_signed(FieldKind.IMM16)
    assert not field_is_signed(FieldKind.RA)
    assert not field_is_signed(FieldKind.LIT8)
    assert not field_is_signed(FieldKind.OPCODE)


def test_ranges_signed():
    assert field_min(FieldKind.MDISP) == -(1 << 15)
    assert field_max(FieldKind.MDISP) == (1 << 15) - 1
    assert field_min(FieldKind.BDISP) == -(1 << 20)
    assert field_max(FieldKind.BDISP) == (1 << 20) - 1


def test_ranges_unsigned():
    assert field_min(FieldKind.RA) == 0
    assert field_max(FieldKind.RA) == 31
    assert field_max(FieldKind.LIT8) == 255
    assert field_max(FieldKind.PALF) == (1 << 26) - 1


def test_check_field_rejects_out_of_range():
    with pytest.raises(ValueError):
        check_field(FieldKind.RA, 32)
    with pytest.raises(ValueError):
        check_field(FieldKind.RA, -1)
    with pytest.raises(ValueError):
        check_field(FieldKind.MDISP, 1 << 15)
    with pytest.raises(ValueError):
        check_field(FieldKind.LIT8, -3)


def test_check_field_accepts_bounds():
    assert check_field(FieldKind.MDISP, -(1 << 15)) == -(1 << 15)
    assert check_field(FieldKind.MDISP, (1 << 15) - 1) == (1 << 15) - 1
    assert check_field(FieldKind.RA, 0) == 0
    assert check_field(FieldKind.RA, 31) == 31


def test_to_bits_two_complement():
    assert to_bits(FieldKind.MDISP, -1) == 0xFFFF
    assert to_bits(FieldKind.BDISP, -1) == (1 << 21) - 1
    assert to_bits(FieldKind.MDISP, 5) == 5


def test_from_bits_sign_extension():
    assert from_bits(FieldKind.MDISP, 0xFFFF) == -1
    assert from_bits(FieldKind.MDISP, 0x7FFF) == 0x7FFF
    assert from_bits(FieldKind.MDISP, 0x8000) == -(1 << 15)
    assert from_bits(FieldKind.RA, 31) == 31


def test_from_bits_rejects_wide_patterns():
    with pytest.raises(ValueError):
        from_bits(FieldKind.RA, 32)
    with pytest.raises(ValueError):
        from_bits(FieldKind.RA, -1)


@st.composite
def kind_and_value(draw):
    kind = draw(st.sampled_from(list(FieldKind)))
    value = draw(
        st.integers(min_value=field_min(kind), max_value=field_max(kind))
    )
    return kind, value


@given(kind_and_value())
def test_bits_roundtrip(kv):
    kind, value = kv
    assert from_bits(kind, to_bits(kind, value)) == value


@given(kind_and_value())
def test_bits_fit_width(kv):
    kind, value = kv
    assert 0 <= to_bits(kind, value) < (1 << FIELD_WIDTHS[kind])
