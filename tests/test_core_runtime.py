"""The runtime decompressor and CreateStub machinery."""

import dataclasses

import pytest

from repro.core.costmodel import CostModel
from repro.core.descriptor import BufferStrategy, RestoreStubScheme
from repro.core.pipeline import SquashConfig, squash
from repro.core.runtime import SquashRuntime, StubAreaOverflow
from repro.isa import decode
from tests.conftest import MINI_TIMING_INPUT

SMALL_BUFFER = SquashConfig(
    theta=1.0, cost=CostModel(buffer_bound_bytes=48)
)


@pytest.fixture(scope="module")
def multi_region(mini_program, mini_profile):
    """Squashed with a small buffer: multiple regions, real restore
    stubs on the timing run."""
    return squash(mini_program, mini_profile, SMALL_BUFFER)


def test_buffer_holds_decoded_region(multi_region):
    machine, runtime = multi_region.make_machine(MINI_TIMING_INPUT)
    machine.run(max_steps=5_000_000)
    desc = multi_region.descriptor
    assert runtime.current_region is not None
    region = desc.region(runtime.current_region)
    # every word in the used part of the buffer decodes
    for slot in range(region.expanded_size):
        decode(machine.mem[desc.buffer_base + slot])


def test_restore_stub_lifecycle(multi_region):
    machine, runtime = multi_region.make_machine(MINI_TIMING_INPUT)
    machine.run(max_steps=5_000_000)
    stats = runtime.stats
    assert stats.createstub_calls > 0
    assert stats.stubs_created > 0
    assert stats.stubs_created == stats.stubs_freed  # all returned
    assert stats.restore_invocations >= stats.stubs_created
    assert stats.max_live_stubs >= 1
    assert runtime._live_stubs == {}


def test_stub_reuse_counts(multi_region):
    machine, runtime = multi_region.make_machine(MINI_TIMING_INPUT)
    machine.run(max_steps=5_000_000)
    stats = runtime.stats
    assert (
        stats.createstub_calls
        == stats.stubs_created + stats.stub_reuses
    )


def test_decompression_cost_charged(multi_region):
    machine, runtime = multi_region.make_machine(MINI_TIMING_INPUT)
    run = machine.run(max_steps=5_000_000)
    stats = runtime.stats
    assert stats.decompressions > 0
    assert stats.bits_decoded > 0
    assert stats.instrs_materialised > 0
    assert stats.decomp_cycles > 0
    assert run.cycles >= run.steps  # cycles = steps + service cost


def test_buffer_caching_reduces_decompressions(
    mini_program, mini_profile, mini_baseline
):
    cached = squash(mini_program, mini_profile, SMALL_BUFFER)
    uncached = squash(
        mini_program,
        mini_profile,
        dataclasses.replace(SMALL_BUFFER, buffer_caching=False),
    )
    run_c, rt_c = cached.run(MINI_TIMING_INPUT, max_steps=10_000_000)
    run_u, rt_u = uncached.run(MINI_TIMING_INPUT, max_steps=10_000_000)
    assert run_c.output == run_u.output == mini_baseline.output
    assert rt_u.stats.decompressions > rt_c.stats.decompressions
    assert rt_c.stats.buffer_hits > 0
    assert rt_u.stats.buffer_hits == 0
    assert run_u.cycles > run_c.cycles


def test_stub_area_overflow_detected(mini_program, mini_profile):
    config = dataclasses.replace(
        SMALL_BUFFER,
        cost=CostModel(buffer_bound_bytes=48, stub_area_capacity=0),
    )
    result = squash(mini_program, mini_profile, config)
    machine, _ = result.make_machine(MINI_TIMING_INPUT)
    with pytest.raises(StubAreaOverflow):
        machine.run(max_steps=5_000_000)


def test_decompress_once_materialises_each_region_once(
    mini_program, mini_profile, mini_baseline
):
    config = dataclasses.replace(
        SMALL_BUFFER, strategy=BufferStrategy.DECOMPRESS_ONCE
    )
    result = squash(mini_program, mini_profile, config)
    run, runtime = result.run(MINI_TIMING_INPUT, max_steps=10_000_000)
    assert run.output == mini_baseline.output
    assert runtime.stats.decompressions <= len(result.descriptor.regions)
    assert runtime.stats.createstub_calls == 0


def test_compile_time_scheme_runs(mini_program, mini_profile, mini_baseline):
    config = dataclasses.replace(
        SMALL_BUFFER, restore_scheme=RestoreStubScheme.COMPILE_TIME
    )
    result = squash(mini_program, mini_profile, config)
    run, runtime = result.run(MINI_TIMING_INPUT, max_steps=10_000_000)
    assert run.output == mini_baseline.output
    assert runtime.stats.createstub_calls == 0
    assert runtime.stats.restore_invocations > 0


def test_runtime_parses_codec_from_image_memory(multi_region):
    """The decompressor's tables come from image memory, not from the
    rewriter's in-process objects."""
    machine, runtime = multi_region.make_machine(MINI_TIMING_INPUT)
    machine.run(max_steps=5_000_000)
    assert runtime._codec is not None
    # compare against a fresh parse of the blob
    from repro.compress.codec import ProgramCodec

    blob = multi_region.info.blob
    assert (
        ProgramCodec.from_table_words(blob.table_words).codes
        == runtime._codec.codes
    )


def test_services_cover_all_registers(multi_region):
    runtime = SquashRuntime(multi_region.descriptor)
    services = runtime.services()
    base = multi_region.descriptor.decomp_base
    assert set(services) == {base + r for r in range(32)}


def test_expanded_size_matches_descriptor(multi_region):
    machine, runtime = multi_region.make_machine(MINI_TIMING_INPUT)
    machine.run(max_steps=5_000_000)
    for region_index, (words, _) in runtime._expanded_cache.items():
        region = multi_region.descriptor.region(region_index)
        assert len(words) + 1 == region.expanded_size
