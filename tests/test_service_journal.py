"""The crash-safe job journal and the filesystem spool transport."""

import json
import threading
import time

import pytest

from repro.errors import ServiceOverloaded, StoreDegraded
from repro.obs.metrics import get_registry
from repro.service import (
    JobEngine,
    JobJournal,
    JobSpec,
    ServiceConfig,
    SpoolClient,
    new_job_id,
    spool_dir,
)
from repro.service.jobs import Job
from repro.service.spool import _drain_spool

_METRICS = get_registry()


def _config(**overrides):
    defaults = dict(
        queue_depth=8, workers=2, tenant_cap=2, drain_timeout=5.0,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def _spec(value=0, **kwargs):
    return JobSpec(
        kind="squash", payload={"name": "adpcm", "value": value},
        **kwargs,
    )


def _echo(spec):
    time.sleep(spec.payload.get("secs", 0.0))
    return {"value": spec.payload.get("value")}


def _engine(tmp_path, execute_fn=_echo, **overrides):
    return JobEngine(
        _config(**overrides),
        journal=JobJournal(tmp_path),
        execute_fn=execute_fn,
    )


class TestJournal:
    def test_record_round_trips_each_transition(self, tmp_path):
        journal = JobJournal(tmp_path)
        job = Job(id=new_job_id(), spec=_spec(value=3))
        for state in ("queued", "running", "done"):
            job.state = state
            if state == "done":
                job.result = {"value": 3}
            assert journal.record(job)
            record = journal.load(job.id)
            assert record["state"] == state
        assert record["result"] == {"value": 3}
        assert record["spec"]["kind"] == "squash"
        assert journal.load_all() == {job.id: record}

    def test_recover_returns_only_non_terminal_jobs(self, tmp_path):
        journal = JobJournal(tmp_path)
        states = ("queued", "running", "requeued", "done", "failed",
                  "expired", "shed")
        ids = {}
        for state in states:
            job = Job(id=new_job_id(), spec=_spec(), state=state)
            journal.record(job)
            ids[state] = job.id
        recovered = journal.recover()
        assert sorted(job.id for job in recovered) == sorted(
            ids[state] for state in ("queued", "running", "requeued")
        )
        assert all(job.recovered for job in recovered)
        assert all(job.state == "queued" for job in recovered)

    def test_engine_restart_finishes_killed_jobs(self, tmp_path):
        """The SIGKILL contract in miniature: records a dead service
        left mid-flight are re-enqueued on the next start and driven
        to a terminal state."""
        journal = JobJournal(tmp_path)
        dead = [
            Job(id=new_job_id(), spec=_spec(value=1), state="queued"),
            Job(id=new_job_id(), spec=_spec(value=2), state="running"),
        ]
        for job in dead:
            journal.record(job)
        engine = _engine(tmp_path)
        engine.start(recover=True)
        try:
            for job, value in zip(dead, (1, 2)):
                assert engine.result(job.id, timeout=10.0) == {
                    "value": value
                }
                status = engine.status(job.id)
                assert status["state"] == "done"
                assert status["recovered"]
        finally:
            engine.stop(drain_timeout=0.5)

    def test_dead_store_degrades_journal_not_jobs(self, tmp_path):
        engine = _engine(tmp_path)

        def dead_put(ns, key, value, tenant=None):
            raise StoreDegraded("disk is gone", reason="enospc")

        engine.journal._store.put = dead_put
        degraded_before = _METRICS.counter(
            "service.journal_degraded"
        ).value
        engine.start(recover=False)
        try:
            job = engine.submit(_spec(value=9))
            assert engine.result(job.id, timeout=10.0) == {"value": 9}
        finally:
            engine.stop(drain_timeout=0.5)
        assert (
            _METRICS.counter("service.journal_degraded").value
            > degraded_before
        )


class TestSpool:
    def test_round_trip_submit_wait(self, tmp_path):
        client = SpoolClient(tmp_path)
        job_id = client.submit(_spec(value=5))
        assert (spool_dir(tmp_path) / f"{job_id}.json").exists()
        engine = _engine(tmp_path)
        engine.start(recover=False)
        try:
            _drain_spool(engine, spool_dir(tmp_path))
            record = client.wait(job_id, timeout=10.0)
        finally:
            engine.stop(drain_timeout=0.5)
        assert record["state"] == "done"
        assert record["result"] == {"value": 5}
        assert not (spool_dir(tmp_path) / f"{job_id}.json").exists()

    def test_shed_spool_request_gets_typed_answer(self, tmp_path):
        # The drain scan admits in sorted-filename order; pin the ids
        # so the overflow victim is deterministic.
        client = SpoolClient(tmp_path)
        ids = sorted(new_job_id() for _ in range(3))
        for i, job_id in enumerate(ids):
            client.submit(_spec(value=i), job_id=job_id)
        engine = _engine(tmp_path, queue_depth=1, workers=1)
        engine._dispatch_paused = True
        engine.start(recover=False)
        try:
            _drain_spool(engine, spool_dir(tmp_path))
            with pytest.raises(ServiceOverloaded):
                client.wait(ids[-1], timeout=10.0)
        finally:
            engine.stop(drain_timeout=0.2)

    def test_crash_window_duplicate_is_deduplicated(self, tmp_path):
        """A SIGKILL between journaling and unlinking re-presents the
        request file; the journal record deduplicates it."""
        client = SpoolClient(tmp_path)
        job_id = client.submit(_spec(value=1))
        engine = _engine(tmp_path)
        engine.start(recover=False)
        try:
            assert _drain_spool(engine, spool_dir(tmp_path)) == 1
            engine.result(job_id, timeout=10.0)
            # Re-present the same request, as a crash would.
            client.submit(_spec(value=1), job_id=job_id)
            assert _drain_spool(engine, spool_dir(tmp_path)) == 0
        finally:
            engine.stop(drain_timeout=0.5)
        assert not (spool_dir(tmp_path) / f"{job_id}.json").exists()

    def test_torn_request_is_quarantined(self, tmp_path):
        spool = spool_dir(tmp_path)
        spool.mkdir(parents=True)
        (spool / "torn.json").write_text("{not json")
        engine = _engine(tmp_path)
        engine.start(recover=False)
        try:
            assert _drain_spool(engine, spool) == 0
        finally:
            engine.stop(drain_timeout=0.2)
        assert not (spool / "torn.json").exists()
        assert (spool / "torn.rejected").exists()

    def test_invalid_spec_is_journaled_failed(self, tmp_path):
        spool = spool_dir(tmp_path)
        spool.mkdir(parents=True)
        job_id = new_job_id()
        (spool / f"{job_id}.json").write_text(json.dumps({
            "id": job_id,
            "spec": {"kind": "squash", "payload": {"name": "doom"}},
        }))
        engine = _engine(tmp_path)
        engine.start(recover=False)
        try:
            _drain_spool(engine, spool)
            record = engine.journal.load(job_id)
        finally:
            engine.stop(drain_timeout=0.2)
        assert record["state"] == "failed"
        assert record["error"][0] == "SpecError"

    def test_serve_forever_exits_on_should_stop(self, tmp_path):
        from repro.service import serve_forever

        engine = _engine(tmp_path)
        engine.start(recover=False)
        stop = threading.Event()
        client = SpoolClient(tmp_path)
        job_id = client.submit(_spec(value=4))
        result = {}

        def serve():
            result["terminal"] = serve_forever(
                engine, tmp_path, poll_interval=0.01,
                should_stop=stop.is_set,
            )

        thread = threading.Thread(target=serve)
        thread.start()
        try:
            record = client.wait(job_id, timeout=10.0)
            assert record["state"] == "done"
        finally:
            stop.set()
            thread.join(timeout=10.0)
            engine.stop(drain_timeout=0.5)
        assert not thread.is_alive()
        assert result["terminal"] >= 1
