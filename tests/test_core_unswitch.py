"""Unswitching cold jump tables (Section 6.2)."""

from repro.core.unswitch import unswitch_cold_tables
from repro.isa import assemble
from repro.program import (
    BasicBlock,
    DataObject,
    Function,
    JumpTableInfo,
    Program,
)
from repro.program.layout import layout
from repro.vm.machine import Machine
from repro.vm.profiler import Profile, collect_profile
from repro.workloads.builder import BlockBuilder


def switch_program(extent_known: bool = True) -> Program:
    """Reads a word, dispatches 0..3 through a jump table, writes the
    case id, exits."""
    program = Program("p")
    fn = Function("main")

    entry = BlockBuilder("m.entry")
    entry.emit(assemble("sys read")[0])
    # selector = value & 3 in r9
    from repro.isa.opcodes import AluOp
    entry.ri(AluOp.AND, 0, 3, 9)
    entry.table_jump(9, 4, "tab", extent_known)
    fn.add_block(entry.build())

    for case in range(4):
        fn.add_block(
            BasicBlock(
                f"m.case{case}",
                instrs=assemble(
                    f"addi r31, {10 + case}, r16\nsys write\nbr 0"
                ),
                branch_target="m.done",
            )
        )
    fn.add_block(BasicBlock("m.done", instrs=assemble("halt")))
    program.add_function(fn)
    program.add_data(
        DataObject(
            "tab",
            words=[0] * 4,
            relocs={i: f"m.case{i}" for i in range(4)},
            is_jump_table=True,
        )
    )
    program.validate()
    return program


def profile_of(program, input_words):
    result = layout(program)
    return collect_profile(program, result.image, input_words)


def run(program, input_words):
    machine = Machine(layout(program).image, input_words=input_words)
    return machine.run(max_steps=10_000)


def test_unswitch_removes_table_and_preserves_behaviour():
    program = switch_program()
    expected = [run(program, [k]).output for k in range(4)]

    cold = {b.label for _, b in program.all_blocks()}
    profile = profile_of(program, [0])
    result = unswitch_cold_tables(program, cold, profile)

    assert result.unswitched_blocks == 1
    assert result.reclaimed_words == 4
    assert "tab" not in program.data
    program.validate()
    for k in range(4):
        assert run(program, [k]).output == expected[k]


def test_unswitch_creates_chain_blocks():
    program = switch_program()
    cold = {b.label for _, b in program.all_blocks()}
    profile = profile_of(program, [0])
    result = unswitch_cold_tables(program, cold, profile)
    # n-1 test blocks plus a final unconditional block
    assert len(result.new_blocks) == 4
    for label in result.new_blocks:
        assert label in cold
        assert profile.counts[label] == profile.counts["m.entry"]


def test_hot_table_left_alone():
    program = switch_program()
    profile = profile_of(program, [0])
    result = unswitch_cold_tables(program, set(), profile)
    assert result.unswitched_blocks == 0
    assert "tab" in program.data


def test_unknown_extent_excludes():
    program = switch_program(extent_known=False)
    cold = {b.label for _, b in program.all_blocks()}
    profile = profile_of(program, [0])
    result = unswitch_cold_tables(program, cold, profile)
    assert result.unswitched_blocks == 0
    assert "m.entry" in result.excluded
    for case in range(4):
        assert f"m.case{case}" in result.excluded
    assert "tab" in program.data  # still needed


def test_nonmatching_idiom_excluded():
    program = switch_program()
    profile = profile_of(program, [0])
    # break the idiom: clobber the add (the program is no longer run)
    block = program.functions["main"].blocks["m.entry"]
    block.instrs[-3] = assemble("add r4, r4, r4")[0]
    cold = {b.label for _, b in program.all_blocks()}
    result = unswitch_cold_tables(program, cold, profile)
    assert result.unswitched_blocks == 0
    assert "m.entry" in result.excluded


def test_unswitched_block_count_survives_squash(mini_profile):
    """After unswitching, the blocks are compressible end to end."""
    program = switch_program()
    expected = [run(program, [k]).output for k in range(4)]

    from repro.core.pipeline import SquashConfig, squash

    profile = profile_of(program, [0])
    result = squash(program, profile, SquashConfig(theta=1.0))
    assert result.info.unswitch.unswitched_blocks == 1
    for k in range(4):
        run_result, _ = result.run([k])
        assert run_result.output == expected[k]
