"""VM hang guard: WatchdogExpired semantics and cycle-model neutrality."""

import pytest

from repro.errors import SquashError, WatchdogExpired
from repro.isa import assemble
from repro.program import BasicBlock, Function, Program
from repro.program.layout import layout
from repro.vm.machine import FuelExhausted, Machine, MachineFault

from tests.conftest import MINI_TIMING_INPUT


def _spin_image():
    """An image that branches to itself forever."""
    program = Program("t")
    fn = Function("main")
    fn.add_block(
        BasicBlock("m.a", instrs=assemble("br 0"), branch_target="m.a")
    )
    program.add_function(fn)
    return layout(program).image


class TestWatchdog:
    def test_runaway_loop_trips_watchdog(self):
        machine = Machine(_spin_image(), watchdog=100)
        with pytest.raises(WatchdogExpired):
            machine.run(max_steps=1_000_000)

    def test_watchdog_is_squash_error_not_machine_fault(self):
        # A watchdog trip is a supervision event (the cell retries),
        # not a modelled machine fault.
        assert issubclass(WatchdogExpired, SquashError)
        assert not issubclass(WatchdogExpired, MachineFault)

    def test_fuel_still_wins_when_smaller(self):
        machine = Machine(_spin_image(), watchdog=1_000_000)
        with pytest.raises(FuelExhausted):
            machine.run(max_steps=100)

    def test_zero_watchdog_disables_the_guard(self):
        machine = Machine(_spin_image(), watchdog=0)
        with pytest.raises(FuelExhausted):
            machine.run(max_steps=500)

    def test_env_var_arms_the_guard(self, monkeypatch):
        monkeypatch.setenv("REPRO_VM_WATCHDOG", "100")
        machine = Machine(_spin_image())
        assert machine.watchdog == 100
        with pytest.raises(WatchdogExpired):
            machine.run(max_steps=1_000_000)

    def test_malformed_env_never_crashes_a_healthy_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_VM_WATCHDOG", "soon")
        machine = Machine(_spin_image())
        assert machine.watchdog == 0
        with pytest.raises(FuelExhausted):
            machine.run(max_steps=500)

    def test_budget_spans_run_calls(self):
        # The watchdog guards the machine's lifetime, not one run().
        machine = Machine(_spin_image(), watchdog=1000)
        with pytest.raises(FuelExhausted):
            machine.run(max_steps=600)
        with pytest.raises(WatchdogExpired):
            machine.run(max_steps=600)

    def test_service_loop_burns_surcharge(self):
        # A handler that never advances pc models a wedged runtime
        # service: guest steps stay ~0, but the per-invocation
        # surcharge trips the watchdog anyway.
        image = _spin_image()
        calls = []
        machine = Machine(
            image,
            services={image.entry_pc: lambda m: calls.append(1)},
            watchdog=640,
        )
        with pytest.raises(WatchdogExpired):
            machine.run(max_steps=1_000_000)
        assert 1 <= len(calls) <= 10
        assert machine.steps == 0  # no guest step ever retired


class TestCycleNeutrality:
    def test_guarded_run_is_cycle_identical(self, mini_layout):
        plain = Machine(
            mini_layout.image, input_words=MINI_TIMING_INPUT
        ).run(max_steps=2_000_000)
        guarded = Machine(
            mini_layout.image, input_words=MINI_TIMING_INPUT,
            watchdog=1 << 40,
        ).run(max_steps=2_000_000)
        assert guarded.cycles == plain.cycles
        assert guarded.steps == plain.steps
        assert guarded.output == plain.output
        assert guarded.exit_code == plain.exit_code
