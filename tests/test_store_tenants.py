"""Per-tenant store accounting: markers, quotas, scoped eviction,
and the gc paths that keep the attribution tree honest."""

import hashlib
import json
import os
import time

import pytest

from repro import settings
from repro.errors import TenantQuotaExceeded
from repro.resilience.cache import seal_text
from repro.store import get_store, reset_stores


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


def _obj(tag: str) -> dict:
    # Fixed-length distinct payloads: every entry costs the same bytes
    # so quota arithmetic in the tests stays exact.
    return {"v": hashlib.sha256(tag.encode()).hexdigest()}


def _entry_size() -> int:
    return len(
        seal_text(json.dumps(_obj("x"), sort_keys=True)).encode("utf-8")
    )


@pytest.fixture
def store(tmp_path):
    reset_stores()
    yield get_store(tmp_path / "store")
    reset_stores()


class TestAccounting:
    def test_put_with_tenant_marks_and_accounts(self, store):
        assert store.put("cell", _key("a1"), _obj("a1"), tenant="alice")
        assert store.tenants() == ["alice"]
        (ref,) = store.tenant_refs("alice")
        assert (ref.ns, ref.key) == ("cell", _key("a1"))
        assert store.tenant_usage("alice") == _entry_size()
        assert store.tenant_usage("bob") == 0

    def test_usage_counts_each_inode_once(self, store):
        # Dedup'd content: two refs, one object, one object's bytes.
        store.put("cell", _key("d1"), _obj("same"), tenant="alice")
        store.put("stage", _key("d2"), _obj("same"), tenant="alice")
        assert len(store.tenant_refs("alice")) == 2
        assert store.tenant_usage("alice") == _entry_size()

    def test_untenanted_writes_stay_unattributed(self, store):
        store.put("cell", _key("anon"), _obj("anon"))
        assert store.tenants() == []

    def test_hostile_tenant_name_is_hashed(self, store):
        store.put("cell", _key("h"), _obj("h"), tenant="../../etc")
        (name,) = store.tenants()
        assert name.startswith("t-")
        assert "/" not in name

    def test_stats_reports_per_tenant_usage(self, store):
        store.put("cell", _key("s1"), _obj("s1"), tenant="alice")
        store.put("cell", _key("s2"), _obj("s2"), tenant="bob")
        tenants = store.stats()["tenants"]
        assert tenants == {
            "alice": _entry_size(), "bob": _entry_size(),
        }


class TestTenantQuota:
    def test_over_quota_evicts_only_own_refs(self, store):
        size = _entry_size()
        with settings.use_settings(tenant_quota_bytes=2 * size):
            store.put("cell", _key("b1"), _obj("b1"), tenant="bob")
            store.put("cell", _key("h1"), _obj("h1"), tenant="hog")
            store.put("cell", _key("h2"), _obj("h2"), tenant="hog")
            # Hog's third write must evict one of hog's own entries...
            assert store.put(
                "cell", _key("h3"), _obj("h3"), tenant="hog"
            )
        assert len(store.tenant_refs("hog")) == 2
        assert store.get("cell", _key("h3")) is not None
        # ...and never bob's.
        assert store.get("cell", _key("b1")) == _obj("b1")
        assert store.tenant_usage("bob") == size

    def test_unsatisfiable_write_is_typed(self, store):
        size = _entry_size()
        with settings.use_settings(tenant_quota_bytes=size // 2):
            with pytest.raises(TenantQuotaExceeded) as exc:
                store.put("cell", _key("big"), _obj("big"),
                          tenant="hog")
        assert exc.value.tenant == "hog"
        assert exc.value.quota_bytes == size // 2
        assert store.get("cell", _key("big")) is None

    def test_quota_ignores_other_tenants_bytes(self, store):
        size = _entry_size()
        with settings.use_settings(tenant_quota_bytes=2 * size):
            store.put("cell", _key("m1"), _obj("m1"), tenant="mouse")
            store.put("cell", _key("m2"), _obj("m2"), tenant="mouse")
            # Mouse is at its own cap; a different tenant still fits.
            assert store.put(
                "cell", _key("o1"), _obj("o1"), tenant="other"
            )
        assert len(store.tenant_refs("mouse")) == 2

    def test_global_eviction_never_victimizes_other_tenants(self, store):
        size = _entry_size()
        with settings.use_settings(store_quota_bytes=3 * size):
            store.put("cell", _key("m1"), _obj("m1"), tenant="mouse")
            store.put("cell", _key("g1"), _obj("g1"), tenant="hog")
            store.put("cell", _key("g2"), _obj("g2"), tenant="hog")
            # The store is full; hog's next write needs an eviction,
            # and the victim must come from hog's refs, not mouse's.
            assert store.put(
                "cell", _key("g3"), _obj("g3"), tenant="hog"
            )
        assert store.get("cell", _key("m1")) == _obj("m1")
        assert store.get("cell", _key("g3")) is not None
        assert len(store.tenant_refs("hog")) == 2


class TestGc:
    def test_aged_rejected_spool_files_collected(self, store):
        """Regression: quarantined ``.rejected`` spool files used to
        live forever — gc must age them out."""
        spool = store.root / "spool"
        spool.mkdir(parents=True)
        old = spool / "torn-request.json.rejected"
        old.write_text("{ torn")
        stale = time.time() - 7200.0
        os.utime(old, (stale, stale))
        fresh = spool / "recent.json.rejected"
        fresh.write_text("{ torn")
        report = store.gc(rejected_age_seconds=3600.0)
        assert report["rejected_spool"] == 1
        assert not old.exists()
        assert fresh.exists()  # still inside the quarantine window

    def test_stale_tenant_markers_pruned(self, store):
        store.put("cell", _key("live"), _obj("live"), tenant="alice")
        store._mark_tenant("alice", "cell", _key("ghost"))
        report = store.gc()
        assert report["stale_markers"] == 1
        (ref,) = store.tenant_refs("alice")
        assert ref.key == _key("live")
