"""Shared fixtures: a handcrafted mini-program and small workloads."""

from __future__ import annotations

import pytest

from repro.isa import assemble
from repro.program import BasicBlock, Function, Program
from repro.program.layout import layout
from repro.vm.machine import Machine
from repro.vm.profiler import collect_profile
from repro.workloads.inputs import profiling_input, timing_input
from repro.workloads.generator import build_workload
from repro.workloads.spec import WorkloadSpec


def build_mini_program() -> Program:
    """A small program with a hot loop, cold call chains (f -> g, f
    recursive), used across the core tests.

    Input protocol: reads words until EOF; item == 0 takes the cold
    path (call f), anything else the hot path; writes a checksum.
    """
    program = Program("mini")
    main = Function("main")
    main.add_block(
        BasicBlock(
            "main.entry",
            instrs=assemble("addi r31, 0, r9"),
            fallthrough="main.loop",
        )
    )
    main.add_block(
        BasicBlock(
            "main.loop",
            instrs=assemble("sys read\nbeq r1, 0"),
            fallthrough="main.chk",
            branch_target="main.done",
        )
    )
    main.add_block(
        BasicBlock(
            "main.chk",
            instrs=assemble("beq r0, 0"),
            fallthrough="main.hot",
            branch_target="main.coldcall",
        )
    )
    main.add_block(
        BasicBlock(
            "main.hot",
            instrs=assemble(
                "add r9, r0, r9\nmuli r9, 3, r9\nxori r9, 7, r9"
            ),
            fallthrough="main.loop",
        )
    )
    cold = BasicBlock(
        "main.coldcall",
        instrs=assemble("addi r31, 17, r16\nbsr r26, 0\nadd r9, r0, r9"),
        fallthrough="main.loop",
    )
    cold.call_targets[1] = "f"
    main.add_block(cold)
    main.add_block(
        BasicBlock(
            "main.done",
            instrs=assemble(
                "add r9, r31, r16\nsys write\naddi r31, 0, r16\nsys exit"
            ),
        )
    )
    program.add_function(main)

    f = Function("f")
    f_entry = BasicBlock(
        "f.entry",
        instrs=assemble(
            "subi r30, 4, r30\nstw r26, 0(r30)\nstw r16, 1(r30)\n"
            "bsr r26, 0\naddi r0, 1, r0"
        ),
        fallthrough="f.mid",
    )
    f_entry.call_targets[3] = "g"
    f.add_block(f_entry)
    f.add_block(
        BasicBlock(
            "f.mid",
            instrs=assemble(
                "ldw r16, 1(r30)\nsubi r16, 1, r16\nble r16, 0"
            ),
            fallthrough="f.rec",
            branch_target="f.out",
        )
    )
    f_rec = BasicBlock(
        "f.rec",
        instrs=assemble("bsr r26, 0\nadd r0, r0, r0"),
        fallthrough="f.out",
    )
    f_rec.call_targets[0] = "f"
    f.add_block(f_rec)
    f_out = BasicBlock(
        "f.out",
        instrs=assemble(
            "bsr r26, 0\nldw r26, 0(r30)\naddi r30, 4, r30\nret"
        ),
    )
    f_out.call_targets[0] = "g"
    f.add_block(f_out)
    program.add_function(f)

    g = Function("g")
    g.add_block(
        BasicBlock(
            "g.entry",
            instrs=assemble("muli r16, 7, r0\naddi r0, 3, r0\nret"),
        )
    )
    program.add_function(g)
    program.validate()
    return program


#: Inputs for the mini program: profile never takes the cold path,
#: timing does.
MINI_PROFILE_INPUT = [3, 5, 9, 2, 8] * 20
MINI_TIMING_INPUT = [3, 0, 5, 0, 0, 9, 4] * 10


@pytest.fixture(scope="session")
def mini_program() -> Program:
    return build_mini_program()


@pytest.fixture(scope="session")
def mini_layout(mini_program):
    return layout(mini_program)


@pytest.fixture(scope="session")
def mini_profile(mini_program, mini_layout):
    return collect_profile(
        mini_program, mini_layout.image, MINI_PROFILE_INPUT
    )


@pytest.fixture(scope="session")
def mini_baseline(mini_layout):
    machine = Machine(mini_layout.image, input_words=MINI_TIMING_INPUT)
    return machine.run(max_steps=2_000_000)


def small_spec(**overrides) -> WorkloadSpec:
    """A small, fast workload spec for tests."""
    defaults = dict(
        name="small",
        seed=7,
        target_input_size=4200,
        target_squeeze_size=2800,
        profile_items=1200,
        timing_items=1800,
        n_ladder=6,
        ladder_counts=(1, 2, 3, 5, 8, 13),
        ladder_size_fracs=(0.02, 0.02, 0.02, 0.02, 0.02, 0.02),
        ladder_boost=(4, 5, 3, 2, 2, 1.5),
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


@pytest.fixture(scope="session")
def small_workload():
    return build_workload(small_spec())


@pytest.fixture(scope="session")
def small_inputs(small_workload):
    return profiling_input(small_workload), timing_input(small_workload)
