"""End-to-end resilience: cache recovery through the harness, sweep
resume after SIGKILL, deterministic chaos planning, and a small live
chaos sweep that must converge to serial numbers."""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

import repro.analysis.parallel as par
from repro.core.pipeline import SquashConfig
from repro.faultinject import chaos
from repro.faultinject.chaossweep import ChaosSweepReport, run_chaos_sweep
from repro.resilience import CacheStats

SRC = str(pathlib.Path(__file__).resolve().parents[1] / "src")


def _fake_cells(count=4):
    return [
        ("size", "fake", 1.0, SquashConfig(theta=i / 10))
        for i in range(count)
    ]


def _fake_result(i=0):
    return {
        "footprint_total": 100 + i,
        "baseline_words": 200,
        "reduction": 0.5,
    }


@pytest.fixture()
def fake_compute(monkeypatch, tmp_path):
    """Route compute_cells at a counting stand-in and a private cache."""
    calls = []

    def compute(kind, name, scale, config):
        calls.append((kind, name, scale, config))
        return _fake_result(len(calls))

    monkeypatch.setattr(par, "_compute_cell", compute)
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    return calls


class TestHarnessRecovery:
    def test_cache_hit_skips_recompute(self, fake_compute):
        cells = _fake_cells()
        first = par.compute_cells(cells, parallel=False)
        assert len(fake_compute) == len(cells)
        again = par.compute_cells(cells, parallel=False)
        assert len(fake_compute) == len(cells)  # all hits
        assert again == first

    def test_every_corruption_mode_recomputes_cleanly(
        self, fake_compute, tmp_path
    ):
        import random

        cells = _fake_cells(4)
        par.compute_cells(cells, parallel=False)
        modes = ["truncate", "garbage", "bitflip", "missing-keys"]
        for cell, mode in zip(cells, modes):
            chaos.corrupt_entry(
                par.cell_path(tmp_path, cell), mode, random.Random(1)
            )
        stats = CacheStats()
        results = par.compute_cells(cells, parallel=False, stats=stats)
        assert len(results) == 4  # nothing lost, nothing raised
        assert len(fake_compute) == 8  # all four recomputed
        assert stats.rejected == 4
        assert set(stats.rejects) <= {"torn", "seal-mismatch", "missing-keys"}
        # ... and the recomputed entries are good again.
        stats2 = CacheStats()
        par.compute_cells(cells, parallel=False, stats=stats2)
        assert stats2.hits == 4 and stats2.rejected == 0

    def test_entry_with_wrong_keys_for_kind_recomputes(
        self, fake_compute, tmp_path
    ):
        from repro.resilience import write_entry

        (cell,) = _fake_cells(1)
        write_entry(par.cell_path(tmp_path, cell), {"cycles": 1})
        stats = CacheStats()
        par.compute_cells([cell], parallel=False, stats=stats)
        assert stats.rejects == {"missing-keys": 1}
        assert len(fake_compute) == 1

    def test_strict_false_reports_instead_of_raising(
        self, monkeypatch, tmp_path
    ):
        def explode(kind, name, scale, config):
            raise RuntimeError("boom")

        monkeypatch.setattr(par, "_compute_cell", explode)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CELL_RETRIES", "1")
        monkeypatch.setenv("REPRO_CELL_BACKOFF", "0")
        sink = []
        results = par.compute_cells(
            _fake_cells(2), parallel=False, strict=False, report_sink=sink
        )
        assert results == {}
        assert len(sink) == 1 and len(sink[0].failures) == 2

    def test_strict_raises_the_typed_failure(self, monkeypatch, tmp_path):
        from repro.errors import CellFailure

        def explode(kind, name, scale, config):
            raise RuntimeError("boom")

        monkeypatch.setattr(par, "_compute_cell", explode)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_CELL_RETRIES", "1")
        monkeypatch.setenv("REPRO_CELL_BACKOFF", "0")
        with pytest.raises(CellFailure):
            par.compute_cells(_fake_cells(1), parallel=False)

    def test_bad_workers_env_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "many")
        with pytest.warns(RuntimeWarning):
            assert par._workers() == max(1, os.cpu_count() or 1)
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "3")
        assert par._workers() == 3


class TestSigkillResume:
    def test_killed_sweep_resumes_from_cache(self, monkeypatch, tmp_path):
        """SIGKILL a sweep mid-run; the rerun recomputes only the
        unfinished cells and leaves finished entries untouched."""
        script = (
            "import time\n"
            "import repro.analysis.parallel as par\n"
            "from repro.core.pipeline import SquashConfig\n"
            "def slow(kind, name, scale, config):\n"
            "    time.sleep(0.25)\n"
            "    return {'footprint_total': 100, 'baseline_words': 200,\n"
            "            'reduction': 0.5}\n"
            "par._compute_cell = slow\n"
            "cells = [('size', 'fake', 1.0, SquashConfig(theta=i / 10))\n"
            "         for i in range(6)]\n"
            "par.compute_cells(cells, parallel=False)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env["REPRO_CACHE_DIR"] = str(tmp_path)
        child = subprocess.Popen([sys.executable, "-c", script], env=env)
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                done = list(tmp_path.rglob("*.json"))
                if len(done) >= 2 or child.poll() is not None:
                    break
                time.sleep(0.02)
            child.kill()  # SIGKILL: no cleanup, no atexit
        finally:
            child.wait()

        survivors = {
            path: path.stat().st_mtime_ns
            for path in tmp_path.rglob("*.json")
        }
        assert survivors  # the interrupted sweep persisted progress
        assert len(survivors) < 6 or child.returncode == 0

        calls = []

        def compute(kind, name, scale, config):
            calls.append(1)
            return _fake_result()

        monkeypatch.setattr(par, "_compute_cell", compute)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cells = _fake_cells(6)
        results = par.compute_cells(cells, parallel=False)
        assert len(results) == 6
        assert len(calls) == 6 - len(survivors)  # only unfinished cells
        for path, mtime in survivors.items():
            assert path.stat().st_mtime_ns == mtime  # never rewritten


class TestChaosPlanning:
    def test_plan_is_deterministic(self):
        digests = [f"d{i}" for i in range(7)]
        assert chaos.plan_process_chaos(
            digests, 12, seed=5
        ) == chaos.plan_process_chaos(digests, 12, seed=5)

    def test_round_robin_fairness_and_cap(self):
        digests = [f"d{i}" for i in range(5)]
        plan = chaos.plan_process_chaos(digests, 12, seed=0, max_per_cell=3)
        counts = sorted(len(v) for v in plan.values())
        assert sum(counts) == 12
        assert max(counts) - min(counts) <= 1  # fair spread
        assert max(counts) <= 3

    def test_over_capacity_is_an_explicit_error(self):
        with pytest.raises(ValueError):
            chaos.plan_process_chaos(["a", "b"], 7, seed=0, max_per_cell=3)

    def test_max_hangs_zero_excludes_hangs(self):
        plan = chaos.plan_process_chaos(
            [f"d{i}" for i in range(6)], 12, seed=0, max_per_cell=2,
            max_hangs=0,
        )
        assert all(k != "hang" for kinds in plan.values() for k in kinds)

    def test_spec_roundtrips_through_env(self):
        spec = chaos.ChaosSpec(
            seed=3, plan={"d": ["kill", "oom"]},
            hang_seconds=9.0, counter_dir="/tmp/x",
        )
        assert chaos.ChaosSpec.from_env(spec.to_env()) == spec
        assert spec.planned_faults == 2

    def test_inline_kill_degrades_to_typed_error(self, monkeypatch, tmp_path):
        # Outside a pool worker an os._exit would take the driver down;
        # the fault must degrade to a retryable ChaosKill instead.
        spec = chaos.ChaosSpec(
            seed=0, plan={"dig": ["kill"]}, counter_dir=str(tmp_path)
        )
        monkeypatch.setenv(chaos.ENV_SPEC, spec.to_env())
        with pytest.raises(chaos.ChaosKill):
            chaos.maybe_inject("dig")
        # The fault is consumed: the next execution computes normally.
        chaos.maybe_inject("dig")
        assert chaos.fired_counts(tmp_path) == {"kill": 1}

    def test_unplanned_digest_is_a_noop(self, monkeypatch, tmp_path):
        spec = chaos.ChaosSpec(
            seed=0, plan={"dig": ["oom"]}, counter_dir=str(tmp_path)
        )
        monkeypatch.setenv(chaos.ENV_SPEC, spec.to_env())
        chaos.maybe_inject("other")  # no plan: must not raise
        with pytest.raises(MemoryError):
            chaos.maybe_inject("dig")


class TestChaosSweep:
    def test_small_live_sweep_converges(self, tmp_path):
        """A real sweep under kills and OOMs (hangs excluded to keep CI
        fast) must lose nothing and match the serial rows exactly."""
        report = run_chaos_sweep(
            "adpcm", scale=0.2, faults=10, seed=3, workers=2,
            deadline=30.0, cell_sets=("fig6",), max_hangs=0,
            cache_root=str(tmp_path),
        )
        assert report.lost_cells == 0
        assert report.fired_process == report.planned_process
        assert sum(report.cache_rejects.values()) == sum(
            report.planned_cache.values()
        )
        assert report.rows_match
        assert report.ok
        assert "verdict: OK" in report.render()

    def test_cli_wiring(self, monkeypatch, capsys):
        import repro.faultinject
        from repro.cli import main

        good = ChaosSweepReport(
            name="adpcm", scale=0.2, seed=0, faults=5, cells=3,
            rows_match=True,
        )
        monkeypatch.setattr(
            repro.faultinject, "run_chaos_sweep",
            lambda name, **kw: good,
        )
        assert main(["chaossweep", "--names", "adpcm"]) == 0
        assert "verdict: OK" in capsys.readouterr().out

        bad = ChaosSweepReport(
            name="adpcm", scale=0.2, seed=0, faults=5, cells=3,
            rows_match=False, lost_cells=1,
        )
        monkeypatch.setattr(
            repro.faultinject, "run_chaos_sweep",
            lambda name, **kw: bad,
        )
        assert main(["chaossweep", "--names", "adpcm"]) == 1

    def test_report_verdict_requires_full_accounting(self):
        report = ChaosSweepReport(
            name="x", scale=1.0, seed=0, faults=2, cells=1,
            planned_process={"kill": 2}, fired_process={"kill": 1},
            rows_match=True,
        )
        assert not report.process_faults_ok
        assert not report.ok
        assert "MISSING" in report.render()
