"""Procedural abstraction and the full squeeze pipeline."""

from repro.isa import assemble
from repro.program import BasicBlock, Function, Program
from repro.program.layout import layout
from repro.squeeze import abstract_repeats, squeeze
from repro.squeeze.abstraction import ABSTRACT_LINK_REG
from repro.vm.machine import Machine


def program_with_duplicates(copies: int = 3) -> Program:
    """Functions sharing an identical 8-instruction fragment."""
    fragment = (
        "addi r1, 10, r2\nmuli r2, 3, r3\nxori r3, 5, r4\n"
        "subi r4, 1, r1\naddi r1, 10, r2\nmuli r2, 7, r3\n"
        "xori r3, 9, r4\nsubi r4, 2, r1"
    )
    program = Program("p")
    main = Function("main")
    body = ""
    targets = {}
    for index in range(copies):
        targets[len(body.split(chr(10))) - 1 if body else 0] = f"h{index}"
    # simpler: main calls each host once
    instrs = []
    call_targets = {}
    for index in range(copies):
        call_targets[len(instrs)] = f"h{index}"
        instrs.extend(assemble("bsr r26, 0"))
    instrs.extend(assemble("add r1, r31, r16\nsys write\nhalt"))
    main.add_block(
        BasicBlock("m.a", instrs=instrs, call_targets=call_targets)
    )
    program.add_function(main)
    for index in range(copies):
        fn = Function(f"h{index}")
        fn.add_block(
            BasicBlock(
                f"h{index}.a",
                instrs=assemble(
                    "subi r30, 1, r30\nstw r26, 0(r30)\n"
                    + fragment
                    + "\nldw r26, 0(r30)\naddi r30, 1, r30\nret"
                ),
            )
        )
        program.add_function(fn)
    program.validate()
    return program


def run_program(program: Program) -> tuple[list[int], int]:
    machine = Machine(layout(program).image)
    result = machine.run(max_steps=100_000)
    return result.output, result.exit_code


def test_abstraction_finds_duplicates():
    program = program_with_duplicates()
    before = program.code_size
    stats = abstract_repeats(program)
    assert stats.fragments_abstracted >= 1
    assert stats.occurrences_rewritten >= 3
    assert program.code_size < before
    program.validate()


def test_abstraction_preserves_behaviour():
    program = program_with_duplicates()
    expected = run_program(program)
    abstract_repeats(program)
    assert run_program(program) == expected


def test_abstracted_helper_uses_link_register():
    program = program_with_duplicates()
    abstract_repeats(program)
    helpers = [
        fn for name, fn in program.functions.items() if name.startswith("__abs")
    ]
    assert helpers
    for helper in helpers:
        term = helper.entry_block.terminator
        assert term.is_return
        assert term.rb == ABSTRACT_LINK_REG


def test_no_duplicates_no_change():
    program = Program("p")
    fn = Function("main")
    fn.add_block(
        BasicBlock(
            "m.a",
            instrs=assemble(
                "addi r31, 1, r1\nmuli r1, 3, r2\nxori r2, 9, r3\n"
                "subi r3, 2, r4\nhalt"
            ),
        )
    )
    program.add_function(fn)
    stats = abstract_repeats(program)
    assert stats.fragments_abstracted == 0


def test_unprofitable_pair_not_abstracted():
    # two occurrences of a length-4 fragment: savings (2-1)*4-2-1 = 1 > 0,
    # so it IS profitable; but a fragment duplicated once at length 4 with
    # overlap constraints still must not lose code.  Check behaviour only.
    program = program_with_duplicates(copies=2)
    expected = run_program(program)
    abstract_repeats(program)
    assert run_program(program) == expected


class TestPipeline:
    def test_squeeze_reduces_and_preserves(self, small_workload, small_inputs):
        program = small_workload.program
        profile_in, _ = small_inputs
        baseline = Machine(
            layout(program).image, input_words=profile_in
        ).run(max_steps=10_000_000)

        squeezed, stats = squeeze(program)
        assert stats.output_size < stats.input_size
        assert stats.reduction > 0.15  # planted junk reclaimed
        run = Machine(
            layout(squeezed).image, input_words=profile_in
        ).run(max_steps=10_000_000)
        assert run.output == baseline.output
        assert run.exit_code == baseline.exit_code

    def test_squeeze_pass_stats_populated(self, small_workload):
        _, stats = squeeze(small_workload.program)
        assert stats.unreachable.functions_removed > 0
        assert stats.nops.nops_removed > 0
        assert stats.dead.stores_removed > 0
        assert stats.abstraction.fragments_abstracted > 0

    def test_squeeze_does_not_mutate_input(self, small_workload):
        before = small_workload.program.code_size
        squeeze(small_workload.program)
        assert small_workload.program.code_size == before

    def test_squeeze_is_idempotentish(self, small_workload):
        squeezed, _ = squeeze(small_workload.program)
        again, stats = squeeze(squeezed)
        # a second run finds almost nothing new
        assert stats.reduction < 0.02
