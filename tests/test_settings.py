"""Typed settings resolution: defaults, env overrides, precedence."""

import dataclasses

import pytest

from repro import settings


ALL_KNOB_VARS = [env for env, _ in settings.ENV_KNOBS.values()]


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    for name in ALL_KNOB_VARS:
        monkeypatch.delenv(name, raising=False)


class TestDefaults:
    def test_clean_environment_resolves_declared_defaults(self):
        resolved = settings.current()
        assert resolved == settings.Settings()

    def test_every_field_has_an_env_spelling_except_invalid(self):
        fields = {f.name for f in dataclasses.fields(settings.Settings)}
        assert set(settings.ENV_KNOBS) == fields - {"invalid"}

    def test_defaults_document_the_historical_behaviour(self):
        resolved = settings.current()
        assert resolved.bench_workers is None
        assert resolved.cell_retries == 3
        assert resolved.cell_deadline is None
        assert resolved.breaker_threshold == 8
        assert resolved.region_cache is True
        assert resolved.fast_decode is True
        assert resolved.trace is False


class TestEnvParsing:
    @pytest.mark.parametrize("raw", ["0", "", "no", "off", "No", "OFF"])
    def test_falsy_bool_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_REGION_CACHE", raw)
        assert settings.current().region_cache is False

    @pytest.mark.parametrize("raw", ["1", "yes", "on", "anything"])
    def test_truthy_bool_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TRACE", raw)
        assert settings.current().trace is True

    def test_numeric_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "6")
        monkeypatch.setenv("REPRO_CELL_BACKOFF", "0.5")
        monkeypatch.setenv("REPRO_VM_WATCHDOG", "1000")
        resolved = settings.current()
        assert resolved.bench_workers == 6
        assert resolved.cell_backoff == 0.5
        assert resolved.vm_watchdog == 1000

    def test_historical_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_RETRIES", "-3")
        monkeypatch.setenv("REPRO_CELL_BACKOFF", "-1.0")
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "0")
        monkeypatch.setenv("REPRO_VM_WATCHDOG", "-5")
        resolved = settings.current()
        assert resolved.cell_retries == 1
        assert resolved.cell_backoff == 0.0
        assert resolved.bench_workers == 1
        assert resolved.vm_watchdog == 0

    def test_nonpositive_deadline_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_DEADLINE", "0")
        assert settings.current().cell_deadline is None
        monkeypatch.setenv("REPRO_CELL_DEADLINE", "2.5")
        assert settings.current().cell_deadline == 2.5

    def test_malformed_value_keeps_default_and_is_flagged(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "many")
        monkeypatch.setenv("REPRO_CELL_RETRIES", "lots")
        resolved = settings.current()
        assert resolved.bench_workers is None
        assert resolved.cell_retries == 3
        assert resolved.invalid == frozenset(
            {"REPRO_BENCH_WORKERS", "REPRO_CELL_RETRIES"}
        )

    def test_empty_string_reads_as_unset_for_non_bools(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "")
        monkeypatch.setenv("REPRO_CELL_RETRIES", "")
        resolved = settings.current()
        assert resolved.cache_dir is None
        assert resolved.cell_retries == 3
        assert resolved.invalid == frozenset()

    def test_resolution_rereads_environment(self, monkeypatch):
        assert settings.current().vm_watchdog == 0
        monkeypatch.setenv("REPRO_VM_WATCHDOG", "77")
        assert settings.current().vm_watchdog == 77


class TestPrecedence:
    def test_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CELL_RETRIES", "9")
        with settings.use_settings(cell_retries=2) as resolved:
            assert resolved.cell_retries == 2
            assert settings.current().cell_retries == 2
        assert settings.current().cell_retries == 9

    def test_environment_beats_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_STAGE_REUSE", "0")
        assert settings.current().stage_reuse is False

    def test_overrides_nest_latest_wins(self):
        with settings.use_settings(vm_watchdog=10):
            with settings.use_settings(vm_watchdog=20):
                assert settings.current().vm_watchdog == 20
            assert settings.current().vm_watchdog == 10

    def test_partial_override_leaves_other_fields_to_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.75")
        with settings.use_settings(cell_retries=1):
            resolved = settings.current()
            assert resolved.cell_retries == 1
            assert resolved.bench_scale == 0.75

    def test_unknown_field_raises(self):
        with pytest.raises(TypeError, match="unknown settings field"):
            with settings.use_settings(not_a_knob=1):
                pass


class TestConsumers:
    def test_supervisor_config_resolves_from_settings(self, monkeypatch):
        from repro.resilience.supervisor import SupervisorConfig

        monkeypatch.setenv("REPRO_CELL_DEADLINE", "4.0")
        monkeypatch.setenv("REPRO_CELL_RETRIES", "5")
        monkeypatch.setenv("REPRO_BREAKER_THRESHOLD", "11")
        cfg = SupervisorConfig.from_env()
        assert cfg.deadline == 4.0
        assert cfg.retry.max_attempts == 5
        assert cfg.breaker_threshold == 11

    def test_supervisor_config_honours_overrides(self):
        from repro.resilience.supervisor import SupervisorConfig

        with settings.use_settings(cell_retries=1, cell_backoff=0.0):
            cfg = SupervisorConfig.from_settings()
        assert cfg.retry.max_attempts == 1
        assert cfg.retry.backoff_base == 0.0

    def test_cache_dir_resolves_through_settings(self, monkeypatch, tmp_path):
        from repro.analysis.parallel import cache_dir

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cells"))
        assert cache_dir() == tmp_path / "cells"
        with settings.use_settings(cache_dir=str(tmp_path / "other")):
            assert cache_dir() == tmp_path / "other"

    def test_stage_reuse_gate_honours_overrides(self):
        from repro.analysis.stagecache import stage_reuse_enabled

        assert stage_reuse_enabled() is True
        with settings.use_settings(stage_reuse=False):
            assert stage_reuse_enabled() is False

    def test_fast_decode_default_honours_overrides(self):
        from repro.compress.codec import fast_decode_default

        with settings.use_settings(fast_decode=False):
            assert fast_decode_default() is False
        assert fast_decode_default() is True


class TestEffectiveBenchWorkers:
    def test_explicit_setting_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_WORKERS", "6")
        assert settings.effective_bench_workers() == 6

    def test_default_is_the_cpu_count_clamped(self, monkeypatch):
        import os

        expected = max(
            1, min(os.cpu_count() or 1, settings.MAX_DEFAULT_WORKERS)
        )
        assert settings.effective_bench_workers() == expected

    def test_invalid_env_falls_back_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.setenv("REPRO_BENCH_WORKERS", "many")
        resolved = settings.current()
        assert "REPRO_BENCH_WORKERS" in resolved.invalid
        assert settings.effective_bench_workers(resolved) == max(
            1, min(os.cpu_count() or 1, settings.MAX_DEFAULT_WORKERS)
        )

    def test_harness_workers_warn_on_invalid_env(self, monkeypatch):
        from repro.analysis.parallel import _workers

        monkeypatch.setenv("REPRO_BENCH_WORKERS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_BENCH_WORKERS"):
            _workers()


class TestNewKnobs:
    def test_decode_backend_default_and_env(self, monkeypatch):
        assert settings.current().decode_backend == ""
        monkeypatch.setenv("REPRO_DECODE_BACKEND", "vector")
        assert settings.current().decode_backend == "vector"

    def test_pool_persist_default_and_env(self, monkeypatch):
        assert settings.current().pool_persist is True
        monkeypatch.setenv("REPRO_POOL_PERSIST", "0")
        assert settings.current().pool_persist is False


class TestStrictBool:
    """``REPRO_POOL_PERSIST`` is a *strict* boolean: unlike the
    historical knobs (where any unknown spelling reads as truthy), a
    typo is flagged instead of silently flipping behaviour."""

    @pytest.mark.parametrize("raw", ["true", "TRUE", "1", "yes", "on"])
    def test_truthy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_POOL_PERSIST", raw)
        resolved = settings.current()
        assert resolved.pool_persist is True
        assert resolved.invalid == frozenset()

    @pytest.mark.parametrize("raw", ["false", "False", "0", "no", "off"])
    def test_falsy_spellings(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_POOL_PERSIST", raw)
        resolved = settings.current()
        assert resolved.pool_persist is False
        assert resolved.invalid == frozenset()

    @pytest.mark.parametrize("raw", ["maybe", "2", "yep"])
    def test_unknown_spelling_keeps_default_and_is_flagged(
        self, monkeypatch, raw
    ):
        monkeypatch.setenv("REPRO_POOL_PERSIST", raw)
        resolved = settings.current()
        assert resolved.pool_persist is True
        assert "REPRO_POOL_PERSIST" in resolved.invalid

    def test_historical_bools_stay_permissive(self, monkeypatch):
        """Pinned: the old knobs keep anything-not-falsy truthy —
        tightening them would change deployed behaviour."""
        monkeypatch.setenv("REPRO_TRACE", "maybe")
        resolved = settings.current()
        assert resolved.trace is True
        assert resolved.invalid == frozenset()

    def test_pool_release_warns_on_invalid_value(self, monkeypatch):
        from repro.resilience import workerpool

        monkeypatch.setenv("REPRO_POOL_PERSIST", "maybe")
        manager = workerpool.PoolManager()

        class FakePool:
            _broken = True  # never parked, shut down instead

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        lease = workerpool.PoolLease(
            pool=FakePool(), workers=1, fingerprint="fp"
        )
        with pytest.warns(RuntimeWarning, match="REPRO_POOL_PERSIST"):
            assert manager.release(lease) is False


class TestStoreKnobs:
    def test_defaults(self):
        resolved = settings.current()
        assert resolved.store_quota_bytes is None
        assert resolved.store_policy == "lru"
        assert resolved.store_retries == 2
        assert resolved.store_backoff == 0.05
        assert resolved.store_breaker_threshold == 5
        assert resolved.store_breaker_cooldown == 30.0

    def test_env_spellings(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_QUOTA_BYTES", "65536")
        monkeypatch.setenv("REPRO_STORE_POLICY", "coaccess")
        monkeypatch.setenv("REPRO_STORE_RETRIES", "4")
        monkeypatch.setenv("REPRO_STORE_BACKOFF", "0.2")
        monkeypatch.setenv("REPRO_STORE_BREAKER_THRESHOLD", "9")
        monkeypatch.setenv("REPRO_STORE_BREAKER_COOLDOWN", "1.5")
        resolved = settings.current()
        assert resolved.store_quota_bytes == 65536
        assert resolved.store_policy == "coaccess"
        assert resolved.store_retries == 4
        assert resolved.store_backoff == 0.2
        assert resolved.store_breaker_threshold == 9
        assert resolved.store_breaker_cooldown == 1.5

    def test_zero_quota_disables_enforcement(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_QUOTA_BYTES", "0")
        resolved = settings.current()
        assert resolved.store_quota_bytes is None
        assert resolved.invalid == frozenset()

    def test_negative_quota_is_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_QUOTA_BYTES", "-5")
        resolved = settings.current()
        assert resolved.store_quota_bytes is None
        assert "REPRO_STORE_QUOTA_BYTES" in resolved.invalid

    def test_malformed_values_keep_defaults_and_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_QUOTA_BYTES", "lots")
        monkeypatch.setenv("REPRO_STORE_RETRIES", "many")
        resolved = settings.current()
        assert resolved.store_quota_bytes is None
        assert resolved.store_retries == 2
        assert resolved.invalid == frozenset(
            {"REPRO_STORE_QUOTA_BYTES", "REPRO_STORE_RETRIES"}
        )

    def test_negative_retries_clamp_to_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_RETRIES", "-2")
        assert settings.current().store_retries == 0

    def test_store_config_warns_on_invalid_store_vars(self, monkeypatch):
        from repro.store.store import StoreConfig

        monkeypatch.setenv("REPRO_STORE_QUOTA_BYTES", "lots")
        monkeypatch.setenv("REPRO_STORE_BACKOFF", "slow")
        with pytest.warns(RuntimeWarning) as caught:
            cfg = StoreConfig.from_settings()
        message = str(caught[0].message)
        assert "REPRO_STORE_QUOTA_BYTES" in message
        assert "REPRO_STORE_BACKOFF" in message
        assert cfg.quota_bytes is None
        assert cfg.backoff == 0.05

    def test_store_config_silent_when_clean(self, monkeypatch):
        import warnings as warnings_module

        from repro.store.store import StoreConfig

        monkeypatch.setenv("REPRO_STORE_QUOTA_BYTES", "4096")
        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            cfg = StoreConfig.from_settings()
        assert cfg.quota_bytes == 4096

    def test_overrides_beat_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE_POLICY", "coaccess")
        with settings.use_settings(store_policy="lru"):
            assert settings.current().store_policy == "lru"
        assert settings.current().store_policy == "coaccess"
