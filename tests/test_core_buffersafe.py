"""Buffer-safe function analysis (Section 6.1)."""

from repro.core.buffersafe import buffer_safe_functions
from repro.isa import assemble
from repro.program import BasicBlock, Function, Program


def build(calls: dict[str, list[str]], indirect: set[str] = frozenset(),
          address_taken: set[str] = frozenset()) -> Program:
    """Build a program from a call-graph description."""
    program = Program("p")
    for name, callees in calls.items():
        fn = Function(name)
        instrs = []
        call_targets = {}
        for callee in callees:
            call_targets[len(instrs)] = callee
            instrs.extend(assemble("bsr r26, 0"))
        if name in indirect:
            instrs.extend(assemble("jsr r26, (r4)"))
        instrs.extend(assemble("ret"))
        fn.add_block(
            BasicBlock(f"{name}.a", instrs=instrs, call_targets=call_targets)
        )
        program.add_function(fn)
    program.address_taken = set(address_taken)
    program.validate()
    return program


def test_leaf_with_no_compressed_blocks_is_safe():
    program = build({"main": ["leaf"], "leaf": []})
    safe = buffer_safe_functions(program, compressed_blocks=set())
    assert "leaf" in safe


def test_compressed_function_unsafe():
    program = build({"main": ["f"], "f": []})
    safe = buffer_safe_functions(program, compressed_blocks={"f.a"})
    assert "f" not in safe


def test_unsafety_propagates_to_callers():
    program = build({"a": ["b"], "b": ["c"], "c": []})
    safe = buffer_safe_functions(program, compressed_blocks={"c.a"})
    assert "c" not in safe
    assert "b" not in safe
    assert "a" not in safe


def test_safe_chain_stays_safe():
    program = build({"a": ["b"], "b": ["c"], "c": []})
    safe = buffer_safe_functions(program, compressed_blocks=set())
    assert safe == {"a", "b", "c"}


def test_indirect_call_to_unsafe_target():
    program = build(
        {"caller": [], "t1": [], "t2": []},
        indirect={"caller"},
        address_taken={"t1", "t2"},
    )
    safe = buffer_safe_functions(program, compressed_blocks={"t2.a"})
    assert "caller" not in safe  # t2 might be the target
    assert "t1" in safe


def test_indirect_call_all_targets_safe():
    program = build(
        {"caller": [], "t1": []},
        indirect={"caller"},
        address_taken={"t1"},
    )
    safe = buffer_safe_functions(program, compressed_blocks=set())
    assert "caller" in safe


def test_indirect_call_with_no_known_targets_unsafe():
    program = build({"caller": []}, indirect={"caller"})
    safe = buffer_safe_functions(program, compressed_blocks=set())
    assert "caller" not in safe


def test_partially_compressed_function_unsafe():
    program = Program("p")
    fn = Function("f")
    fn.add_block(
        BasicBlock("f.a", instrs=assemble("nop"), fallthrough="f.b")
    )
    fn.add_block(BasicBlock("f.b", instrs=assemble("ret")))
    program.add_function(fn)
    safe = buffer_safe_functions(program, compressed_blocks={"f.b"})
    assert "f" not in safe


def test_recursion_handled():
    program = build({"a": ["a"]})
    assert buffer_safe_functions(program, set()) == {"a"}
    assert buffer_safe_functions(program, {"a.a"}) == set()


def test_mediabench_stats_well_formed():
    """The E9 metrics are meaningful fractions with some safe calls."""
    from repro.analysis.experiments import buffer_safe_stats

    rows = buffer_safe_stats(("gsm", "jpeg_dec"), scale=0.2)
    for row in rows:
        assert 0.0 < row.safe_function_fraction < 1.0
        assert 0.0 < row.safe_call_fraction < 1.0
