"""The vector batch decoder is indistinguishable from the table path.

Property tests drive random codec tables and random region streams
through all three registered backends (``reference``, ``table``,
``vector``) and require identical items and identical consumed bit
counts; truncated and corrupted streams must raise the same
:mod:`repro.errors` type at the same bit offset as the sequential
decoder.  The vector machine may only ever be a faster spelling of the
paper's DECODE loop — never a different decoder.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings as hyp_settings, strategies as st

from repro import settings
from repro.compress import vector
from repro.compress.codec import (
    DECODE_BACKENDS,
    CodecConfig,
    ProgramCodec,
    resolve_decode_backend,
)
from repro.compress.streams import OP_SENTINEL, CodecInstr, codec_fields
from repro.errors import TruncatedStreamError
from repro.isa.fields import FIELD_WIDTHS

pytestmark = pytest.mark.skipif(
    not vector.HAVE_NUMPY, reason="vector backend requires numpy"
)

def _opcode_table():
    table = []
    for op in range(64):
        if op == OP_SENTINEL:
            continue
        try:
            table.append((op, codec_fields(op)))
        except ValueError:
            continue
    return table


OPCODES = _opcode_table()


@st.composite
def instr_strategy(draw):
    op, kinds = draw(st.sampled_from(OPCODES))
    fields = tuple(
        draw(st.integers(0, (1 << FIELD_WIDTHS[kind]) - 1))
        for kind in kinds
    )
    return CodecInstr(opcode=op, fields=fields)


@st.composite
def regions_strategy(draw, max_regions=6, max_instrs=12):
    return draw(
        st.lists(
            st.lists(instr_strategy(), min_size=0, max_size=max_instrs),
            min_size=1,
            max_size=max_regions,
        )
    )


def _decode_all(codec, words, offsets, backend):
    return [
        codec.decode_region(words, off, backend=backend) for off in offsets
    ]


def _error_shape(exc: BaseException):
    return (type(exc), getattr(exc, "bit_offset", None), str(exc))


def _decode_or_error(fn):
    try:
        return ("ok", fn())
    except Exception as exc:  # noqa: BLE001 - shape-compared below
        return ("error", _error_shape(exc))


# -- identity across backends ------------------------------------------------


@given(regions_strategy())
@hyp_settings(max_examples=60, deadline=None)
def test_all_backends_decode_identically(regions):
    codec, blob = ProgramCodec.build(regions, CodecConfig())
    words = list(blob.stream_words)
    offsets = list(blob.region_bit_offsets)
    reference = _decode_all(codec, words, offsets, "reference")
    table = _decode_all(codec, words, offsets, "table")
    batch = vector.decode_batch([(codec, words, offsets)])[0]
    assert table == reference
    assert batch == reference  # items AND consumed bit counts


@given(regions_strategy(max_regions=4, max_instrs=8))
@hyp_settings(max_examples=30, deadline=None)
def test_mtf_variant_decodes_identically(regions):
    config = CodecConfig(
        mtf_kinds=frozenset(
            kind
            for kind in FIELD_WIDTHS
            if kind.name in ("RA", "RB", "RC")
        )
    )
    codec, blob = ProgramCodec.build(regions, config)
    words = list(blob.stream_words)
    offsets = list(blob.region_bit_offsets)
    table = _decode_all(codec, words, offsets, "table")
    batch = vector.decode_batch([(codec, words, offsets)])[0]
    assert batch == table


def test_multi_codec_batch_matches_per_codec_sequential():
    """One decode_batch over several codecs equals per-codec loops."""
    jobs = []
    expected = []
    for seed in range(3):
        regions = [
            [
                CodecInstr(opcode=0x08, fields=(seed, 2, 37 + seed)),
                CodecInstr(opcode=0x10, fields=(26, seed)),
            ],
            [CodecInstr(opcode=0x08, fields=(4, 5, 1000 + seed))] * 5,
        ]
        codec, blob = ProgramCodec.build(regions, CodecConfig())
        words = list(blob.stream_words)
        offsets = list(blob.region_bit_offsets)
        jobs.append((codec, words, offsets))
        expected.append(_decode_all(codec, words, offsets, "table"))
    assert vector.decode_batch(jobs) == expected


def test_dict_coder_falls_back_to_sequential():
    regions = [[CodecInstr(opcode=0x10, fields=(3, 9))] * 4]
    codec, blob = ProgramCodec.build(regions, CodecConfig(coder="dict"))
    words = list(blob.stream_words)
    offsets = list(blob.region_bit_offsets)
    table = _decode_all(codec, words, offsets, "table")
    assert vector.decode_batch([(codec, words, offsets)])[0] == table
    # The dispatcher-level backend degrades identically.
    assert _decode_all(codec, words, offsets, "vector") == table


def test_interning_shares_repeated_instructions():
    """Identical decoded instructions are one shared immutable object
    (CodecInstr is frozen, so sharing is observable only as identity)."""
    regions = [[CodecInstr(opcode=0x10, fields=(1, 2))] * 6]
    codec, blob = ProgramCodec.build(regions, CodecConfig())
    (items, _bits), = vector.decode_batch(
        [(codec, list(blob.stream_words), list(blob.region_bit_offsets))]
    )[0]
    assert len({id(item) for item in items}) == 1
    assert all(item == items[0] for item in items)


# -- error parity ------------------------------------------------------------


@given(regions_strategy(max_regions=4, max_instrs=10), st.data())
@hyp_settings(max_examples=40, deadline=None)
def test_truncated_stream_raises_identically(regions, data):
    """Chopping the stream anywhere yields the same error type at the
    same bit offset from the vector path as from the table path."""
    codec, blob = ProgramCodec.build(regions, CodecConfig())
    words = list(blob.stream_words)
    if len(words) < 2:
        return
    cut = data.draw(st.integers(0, len(words) - 1))
    truncated = words[:cut]
    offsets = list(blob.region_bit_offsets)
    sequential = [
        _decode_or_error(
            lambda off=off: codec.decode_region(
                truncated, off, backend="table"
            )
        )
        for off in offsets
    ]
    failed = [shape for kind, shape in sequential if kind == "error"]
    batch = _decode_or_error(
        lambda: vector.decode_batch([(codec, truncated, offsets)])
    )
    if not failed:
        assert batch[0] == "ok"
        assert batch[1][0] == [
            result for _kind, result in sequential
        ]
        return
    assert batch[0] == "error"
    # The batch raises what an in-order sequential loop raises first.
    assert batch[1] == failed[0]
    assert batch[1][0] is TruncatedStreamError
    assert batch[1][1] is not None  # carries the offending bit offset


def test_corrupt_opcode_raises_identically():
    """A stream of garbage bits produces the same error shape (type
    and message) from both paths, region by region."""
    regions = [
        [CodecInstr(opcode=0x08, fields=(1, 2, 3))] * 3,
        [CodecInstr(opcode=0x10, fields=(7, 8))] * 2,
    ]
    codec, blob = ProgramCodec.build(regions, CodecConfig())
    words = list(blob.stream_words)
    for flip in (0, 1):
        corrupt = list(words)
        corrupt[flip % len(corrupt)] ^= 0xFFFFFFFF
        for off in blob.region_bit_offsets:
            seq = _decode_or_error(
                lambda: codec.decode_region(corrupt, off, backend="table")
            )
            vec = _decode_or_error(
                lambda: codec.decode_region(corrupt, off, backend="vector")
            )
            assert vec == seq


# -- dispatcher / settings ---------------------------------------------------


def test_backend_registry_lists_all_three():
    assert set(DECODE_BACKENDS.names()) >= {
        "reference", "table", "vector",
    }


def test_resolve_precedence():
    # Explicit fast flag wins over everything.
    assert resolve_decode_backend(fast=True, backend="vector") == "table"
    assert resolve_decode_backend(fast=False) == "reference"
    # Then the explicit backend argument.
    assert resolve_decode_backend(backend="vector") == "vector"
    # Then the settings knob.
    with settings.use_settings(decode_backend="vector"):
        assert resolve_decode_backend() == "vector"
    # Finally the legacy fast_decode setting.
    with settings.use_settings(fast_decode=False):
        assert resolve_decode_backend() == "reference"
    with settings.use_settings(fast_decode=True):
        assert resolve_decode_backend() == "table"


def test_env_knob_validates(monkeypatch):
    monkeypatch.setenv("REPRO_DECODE_BACKEND", "warp-drive")
    resolved = settings.current()
    assert resolved.decode_backend == ""  # fell back to the default
    assert "REPRO_DECODE_BACKEND" in resolved.invalid
    monkeypatch.setenv("REPRO_DECODE_BACKEND", "VECTOR")
    assert settings.current().decode_backend == "vector"
