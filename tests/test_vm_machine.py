"""Interpreter semantics: ALU ops, memory, branches, syscalls, faults."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import assemble
from repro.program import BasicBlock, DataObject, Function, Program
from repro.program.layout import layout
from repro.vm.machine import (
    FuelExhausted,
    IllegalInstructionFault,
    Machine,
    MemoryFault,
)

U32 = (1 << 32) - 1


def run_fragment(body: str, input_words=(), data_words=None):
    """Assemble a straight-line fragment ending in halt and run it."""
    program = Program("t")
    fn = Function("main")
    fn.add_block(BasicBlock("m.a", instrs=assemble(body + "\nhalt")))
    program.add_function(fn)
    if data_words is not None:
        program.add_data(DataObject("D", words=list(data_words)))
    result = layout(program)
    machine = Machine(result.image, input_words=input_words)
    run = machine.run(max_steps=100_000)
    return machine, run, result


def regs_after(body: str, **kwargs):
    machine, _, _ = run_fragment(body, **kwargs)
    return machine.regs


class TestAlu:
    def test_add_sub_wraparound(self):
        regs = regs_after(
            "addi r31, 255, r1\nslli r1, 24, r1\nadd r1, r1, r2"
        )
        assert regs[1] == 255 << 24
        assert regs[2] == (2 * (255 << 24)) & U32

    def test_sub_borrow(self):
        regs = regs_after("addi r31, 1, r1\nsubi r31, 1, r2\nsub r31, r1, r3")
        assert regs[2] == U32  # 0 - 1 wraps
        assert regs[3] == U32

    def test_mul(self):
        regs = regs_after("addi r31, 200, r1\nmuli r1, 200, r2")
        assert regs[2] == 40000

    def test_logical(self):
        regs = regs_after(
            "addi r31, 0b1100, r1\nandi r1, 0b1010, r2\n"
            "ori r1, 0b0001, r3\nxori r1, 0b0110, r4"
        )
        assert regs[2] == 0b1000
        assert regs[3] == 0b1101
        assert regs[4] == 0b1010

    def test_shifts(self):
        regs = regs_after(
            "addi r31, 1, r1\nslli r1, 31, r2\nsrli r2, 31, r3\nsrai r2, 31, r4"
        )
        assert regs[2] == 1 << 31
        assert regs[3] == 1
        assert regs[4] == U32  # arithmetic shift of the sign bit

    def test_shift_amount_masked(self):
        regs = regs_after("addi r31, 1, r1\nslli r1, 33, r2")
        assert regs[2] == 2  # 33 & 31 == 1

    def test_signed_compares(self):
        regs = regs_after(
            "subi r31, 1, r1\n"  # r1 = -1
            "addi r31, 1, r2\n"
            "cmplt r1, r2, r3\n"
            "cmple r1, r1, r4\n"
            "cmpeq r1, r2, r5"
        )
        assert regs[3] == 1
        assert regs[4] == 1
        assert regs[5] == 0

    def test_unsigned_compares(self):
        regs = regs_after(
            "subi r31, 1, r1\naddi r31, 1, r2\n"
            "cmpult r1, r2, r3\ncmpule r2, r1, r4"
        )
        assert regs[3] == 0  # 0xffffffff is huge unsigned
        assert regs[4] == 1

    def test_udiv_urem(self):
        regs = regs_after(
            "addi r31, 17, r1\nudivi r1, 5, r2\nuremi r1, 5, r3"
        )
        assert regs[2] == 3
        assert regs[3] == 2

    def test_division_by_zero_yields_zero(self):
        regs = regs_after("addi r31, 17, r1\nudiv r1, r31, r2\nurem r1, r31, r3")
        assert regs[2] == 0
        assert regs[3] == 0

    def test_zero_register_write_discarded(self):
        regs = regs_after("addi r31, 7, r31\nadd r31, r31, r1")
        assert regs[1] == 0


class TestMemory:
    def test_load_store_roundtrip(self):
        machine, _, result = run_fragment(
            "lda r1, 0(r31)\nldah r1, 0(r1)\n"
            "addi r31, 99, r2",
        )
        # direct memory via privileged API
        machine.write_word(machine.heap_base, 1234)
        assert machine.read_word(machine.heap_base) == 1234

    def test_stack_load_store(self):
        regs = regs_after(
            "subi r30, 2, r30\naddi r31, 55, r1\nstw r1, 0(r30)\n"
            "ldw r2, 0(r30)\naddi r30, 2, r30"
        )
        assert regs[2] == 55

    def test_data_segment_access(self):
        program = Program("t")
        fn = Function("main")
        block = BasicBlock(
            "m.a",
            instrs=assemble(
                "ldah r1, 0(r31)\nlda r1, 0(r1)\nldw r2, 1(r1)\n"
                "addi r2, 1, r2\nstw r2, 1(r1)\nhalt"
            ),
        )
        block.data_refs = {0: "D", 1: "D"}
        fn.add_block(block)
        program.add_function(fn)
        program.add_data(DataObject("D", words=[5, 6]))
        result = layout(program)
        machine = Machine(result.image)
        machine.run(max_steps=100)
        addr = result.data_addr["D"]
        assert machine.regs[2] == 7
        assert machine.mem[addr + 1] == 7

    def test_store_to_text_faults(self):
        with pytest.raises(MemoryFault):
            run_fragment("lda r1, 0x1000(r31)\nstw r1, 0(r1)")

    def test_load_out_of_range_faults(self):
        with pytest.raises(MemoryFault):
            run_fragment("subi r31, 1, r1\nldw r2, 0(r1)")

    def test_stack_depth_tracked(self):
        _, run, _ = run_fragment("subi r30, 64, r30\naddi r30, 64, r30")
        assert run.max_stack_depth == 64


class TestControl:
    def test_branches_taken_and_not(self):
        program = Program("t")
        fn = Function("main")
        fn.add_block(
            BasicBlock(
                "m.a",
                instrs=assemble("addi r31, 0, r1\nbeq r1, 0"),
                branch_target="m.c",
                fallthrough="m.b",
            )
        )
        fn.add_block(
            BasicBlock(
                "m.b", instrs=assemble("addi r31, 1, r9\nhalt")
            )
        )
        fn.add_block(
            BasicBlock(
                "m.c", instrs=assemble("addi r31, 2, r9\nhalt")
            )
        )
        program.add_function(fn)
        machine = Machine(layout(program).image)
        machine.run(max_steps=100)
        assert machine.regs[9] == 2  # beq on zero taken

    def test_call_and_return(self):
        program = Program("t")
        main = Function("main")
        block = BasicBlock(
            "m.a", instrs=assemble("addi r31, 5, r16\nbsr r26, 0\nhalt")
        )
        block.call_targets[1] = "double"
        main.add_block(block)
        program.add_function(main)
        callee = Function("double")
        callee.add_block(
            BasicBlock("d.a", instrs=assemble("add r16, r16, r0\nret"))
        )
        program.add_function(callee)
        machine = Machine(layout(program).image)
        machine.run(max_steps=100)
        assert machine.regs[0] == 10

    def test_sentinel_faults(self):
        with pytest.raises(IllegalInstructionFault):
            run_fragment("sentinel")

    def test_fuel_exhaustion(self):
        program = Program("t")
        fn = Function("main")
        fn.add_block(
            BasicBlock(
                "m.a", instrs=assemble("br 0"), branch_target="m.a"
            )
        )
        program.add_function(fn)
        machine = Machine(layout(program).image)
        with pytest.raises(FuelExhausted):
            machine.run(max_steps=100)


class TestSyscalls:
    def test_read_until_eof(self):
        machine, run, _ = run_fragment(
            "sys read\nadd r0, r31, r9\nsys read\nsys read",
            input_words=[11, 22],
        )
        assert machine.regs[9] == 11
        assert machine.regs[1] == 0  # third read hit EOF

    def test_write_and_exit_code(self):
        _, run, _ = run_fragment(
            "addi r31, 42, r16\nsys write\naddi r31, 3, r16\nsys exit"
        )
        assert run.output == [42]
        assert run.exit_code == 3

    def test_halt_is_exit_zero(self):
        _, run, _ = run_fragment("nop")
        assert run.exit_code == 0

    def test_setjmp_longjmp(self):
        program = Program("t")
        fn = Function("main")
        fn.add_block(
            BasicBlock(
                "m.a",
                instrs=assemble(
                    "ldah r16, 0(r31)\nlda r16, 0(r16)\nsys setjmp"
                ),
                fallthrough="m.b",
                data_refs={0: "JB", 1: "JB"},
            )
        )
        fn.add_block(
            BasicBlock(
                "m.b",
                instrs=assemble("bne r0, 0"),
                branch_target="m.done",
                fallthrough="m.c",
            )
        )
        fn.add_block(
            BasicBlock(
                "m.c",
                instrs=assemble(
                    "addi r31, 9, r17\nldah r16, 0(r31)\nlda r16, 0(r16)\n"
                    "sys longjmp"
                ),
                data_refs={1: "JB", 2: "JB"},
            )
        )
        fn.add_block(
            BasicBlock(
                "m.done",
                instrs=assemble("add r0, r31, r16\nsys write\nhalt"),
            )
        )
        program.add_function(fn)
        program.add_data(DataObject("JB", words=[0] * 4))
        machine = Machine(layout(program).image)
        run = machine.run(max_steps=1000)
        assert run.output == [9]  # longjmp value delivered as setjmp result


class TestServices:
    def test_service_trap_intercepts_pc(self):
        program = Program("t")
        fn = Function("main")
        block = BasicBlock("m.a", instrs=assemble("bsr r26, 0\nhalt"))
        block.call_targets[0] = "svc"
        fn.add_block(block)
        program.add_function(fn)
        svc = Function("svc")
        svc.add_block(BasicBlock("s.a", instrs=assemble("ret")))
        program.add_function(svc)
        result = layout(program)

        calls = []

        def handler(machine):
            calls.append(machine.pc)
            machine.regs[9] = 77
            machine.charge(1000)
            machine.pc = machine.regs[26]  # behave like a return

        machine = Machine(
            result.image,
            services={result.func_addr["svc"]: handler},
        )
        run = machine.run(max_steps=100)
        assert calls == [result.func_addr["svc"]]
        assert machine.regs[9] == 77
        assert run.cycles >= 1000

    def test_service_can_exit(self):
        program = Program("t")
        fn = Function("main")
        fn.add_block(BasicBlock("m.a", instrs=assemble("nop\nhalt")))
        program.add_function(fn)
        result = layout(program)

        def handler(machine):
            machine.exit_code = 7

        machine = Machine(result.image, services={result.image.entry_pc: handler})
        run = machine.run(max_steps=10)
        assert run.exit_code == 7


@given(st.integers(0, U32), st.integers(0, U32))
def test_alu_matches_python_model(a, b):
    """Cross-check ADD/SUB/MUL/XOR against Python arithmetic."""
    program = Program("t")
    fn = Function("main")
    fn.add_block(
        BasicBlock(
            "m.a",
            instrs=assemble(
                "sys read\nadd r0, r31, r9\nsys read\nadd r0, r31, r10\n"
                "add r9, r10, r1\nsub r9, r10, r2\nmul r9, r10, r3\n"
                "xor r9, r10, r4\nhalt"
            ),
        )
    )
    program.add_function(fn)
    machine = Machine(layout(program).image, input_words=[a, b])
    machine.run(max_steps=100)
    assert machine.regs[1] == (a + b) & U32
    assert machine.regs[2] == (a - b) & U32
    assert machine.regs[3] == (a * b) & U32
    assert machine.regs[4] == a ^ b
