"""Basic-block profiling."""

from repro.vm.profiler import Profile, collect_profile
from tests.conftest import MINI_PROFILE_INPUT


def test_counts_match_execution(mini_program, mini_layout):
    profile = collect_profile(
        mini_program, mini_layout.image, [3, 4]
    )
    assert profile.counts["main.entry"] == 1
    assert profile.counts["main.loop"] == 3  # two items + EOF pass
    assert profile.counts["main.hot"] == 2
    assert profile.counts["main.done"] == 1
    assert profile.counts["main.coldcall"] == 0
    assert profile.counts["f.entry"] == 0


def test_tot_instr_ct_is_weighted_sum(mini_program, mini_layout):
    profile = collect_profile(mini_program, mini_layout.image, [3, 4])
    expected = sum(
        profile.counts[label] * profile.sizes[label]
        for label in profile.counts
    )
    assert profile.tot_instr_ct == expected
    # and close to the actual step count (inserted layout jumps differ)
    assert abs(profile.tot_instr_ct - profile.run.steps) <= 10


def test_never_executed(mini_program, mini_layout, mini_profile):
    never = mini_profile.never_executed
    assert "f.entry" in never
    assert "g.entry" in never
    assert "main.hot" not in never


def test_weight_and_freq(mini_profile):
    label = "main.hot"
    assert mini_profile.freq(label) > 0
    assert mini_profile.weight(label) == (
        mini_profile.freq(label) * mini_profile.sizes[label]
    )
    assert mini_profile.freq("no.such.block") == 0


def test_scaled():
    profile = Profile(
        counts={"a": 10, "b": 0}, sizes={"a": 4, "b": 2}, tot_instr_ct=40
    )
    scaled = profile.scaled(0.5)
    assert scaled.counts == {"a": 5, "b": 0}
    assert scaled.tot_instr_ct == 20


def test_profile_covers_all_blocks(mini_program, mini_profile):
    labels = {block.label for _, block in mini_program.all_blocks()}
    assert set(mini_profile.counts) == labels
    assert set(mini_profile.sizes) == labels
