"""BasicBlock, Function, and DataObject behaviour."""

import pytest

from repro.isa import Instruction, Op, assemble
from repro.program import BasicBlock, DataObject, Function, JumpTableInfo


def test_block_requires_label():
    with pytest.raises(ValueError):
        BasicBlock("")


def test_block_size_and_terminator():
    block = BasicBlock("b", instrs=assemble("add r1, r2, r3\nret"))
    assert block.size == 2
    assert block.terminator.op is Op.RET
    assert BasicBlock("e").terminator is None


def test_terminator_classification():
    cond = BasicBlock(
        "c", instrs=assemble("beq r1, 0"), branch_target="t", fallthrough="f"
    )
    assert cond.ends_in_cond_branch
    assert not cond.ends_in_uncond_branch
    uncond = BasicBlock("u", instrs=assemble("br 0"), branch_target="t")
    assert uncond.ends_in_uncond_branch
    indirect = BasicBlock("i", instrs=assemble("jmp (r4)"))
    assert indirect.ends_in_indirect_jump


def test_has_call_and_call_sites():
    block = BasicBlock(
        "b",
        instrs=assemble("bsr r26, 0\njsr r26, (r4)\nret"),
        call_targets={0: "f"},
    )
    assert block.has_call
    assert block.call_sites() == [(0, "f"), (1, None)]
    assert not BasicBlock("p", instrs=assemble("nop")).has_call


def test_copy_is_independent():
    block = BasicBlock(
        "b",
        instrs=assemble("bsr r26, 0\nret"),
        call_targets={0: "f"},
        data_refs={},
    )
    clone = block.copy()
    clone.call_targets[0] = "g"
    clone.instrs.append(assemble("nop")[0])
    assert block.call_targets[0] == "f"
    assert block.size == 2


def test_rebuild_remaps_metadata():
    block = BasicBlock(
        "b",
        instrs=assemble("nop\nbsr r26, 0\nnop\nlda r1, 0(r31)\nret"),
        call_targets={1: "f"},
        data_refs={3: "G"},
    )
    block.rebuild([1, 3, 4])  # drop the nops
    assert block.size == 3
    assert block.call_targets == {0: "f"}
    assert block.data_refs == {1: "G"}


def test_rebuild_drops_removed_metadata():
    block = BasicBlock(
        "b",
        instrs=assemble("bsr r26, 0\nret"),
        call_targets={0: "f"},
    )
    block.rebuild([1])
    assert block.call_targets == {}


def test_function_entry_is_first_block():
    fn = Function("f")
    fn.add_block(BasicBlock("f.a", instrs=assemble("nop"), fallthrough="f.b"))
    fn.add_block(BasicBlock("f.b", instrs=assemble("ret")))
    assert fn.entry == "f.a"
    assert fn.entry_block.label == "f.a"
    assert [b.label for b in fn.block_order()] == ["f.a", "f.b"]
    assert fn.size == 2


def test_function_rejects_duplicate_blocks():
    fn = Function("f")
    fn.add_block(BasicBlock("f.a", instrs=assemble("ret")))
    with pytest.raises(ValueError):
        fn.add_block(BasicBlock("f.a", instrs=assemble("ret")))


def test_function_direct_callees_and_setjmp():
    fn = Function("f")
    block = BasicBlock(
        "f.a", instrs=assemble("bsr r26, 0\nsys setjmp\nret"),
        call_targets={0: "g"},
    )
    fn.add_block(block)
    assert fn.direct_callees() == {"g"}
    assert fn.calls_setjmp
    assert not fn.has_indirect_call


def test_function_copy_deep():
    fn = Function("f")
    fn.add_block(BasicBlock("f.a", instrs=assemble("ret")))
    clone = fn.copy()
    clone.blocks["f.a"].instrs.append(assemble("nop")[0])
    assert fn.blocks["f.a"].size == 1


def test_data_object_relocs_validated():
    with pytest.raises(ValueError):
        DataObject("d", words=[0, 0], relocs={5: "x"})
    obj = DataObject("d", words=[1, 2], relocs={1: "f"})
    assert obj.size == 2
    clone = obj.copy()
    clone.relocs[0] = "g"
    assert 0 not in obj.relocs


def test_jump_table_info():
    info = JumpTableInfo("tab")
    assert info.extent_known
    assert not JumpTableInfo("tab", extent_known=False).extent_known
