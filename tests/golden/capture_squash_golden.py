"""Regenerate a squash golden file from the current pipeline.

Run only after an *intentional* change to squash output::

    PYTHONPATH=src python tests/golden/capture_squash_golden.py
    PYTHONPATH=src python tests/golden/capture_squash_golden.py \\
        --variant ctx1

The digests pin the emitted image bytes, footprint, baseline size,
modelled timing-run cycles, and program output for every benchmark ×
θ cell at a fixed scale; ``tests/test_squash_golden.py`` asserts the
pipeline still reproduces them exactly.  Each codec variant gets its
own golden file (``squash_golden.json`` for baseline,
``squash_golden_<variant>.json`` otherwise), so the ``baseline``
digests stay byte-for-byte those of the pre-CodecModel pipeline.
"""

import argparse
import hashlib
import json
import pathlib
import time

from repro.analysis.experiments import map_theta, squash_benchmark
from repro.core.pipeline import SquashConfig
from repro.workloads.mediabench import MEDIABENCH, mediabench_program

SCALE = 0.2
THETAS = (0.0, 1e-5, 5e-5, 1.0)


def golden_path(variant: str) -> pathlib.Path:
    suffix = "" if variant in ("", "baseline") else f"_{variant}"
    return pathlib.Path(__file__).parent / f"squash_golden{suffix}.json"


def image_digest(image) -> str:
    h = hashlib.sha256()
    h.update(image.base.to_bytes(8, "little"))
    h.update(image.entry_pc.to_bytes(8, "little"))
    for seg in image.segments:
        h.update(f"{seg.name}:{seg.start}:{seg.size};".encode())
    for w in image.memory:
        h.update((w & 0xFFFFFFFF).to_bytes(4, "little"))
    return h.hexdigest()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--variant", default="",
        help="codec variant to capture (default: baseline)",
    )
    parser.add_argument(
        "--out", default="",
        help="output path (default: derived from the variant)",
    )
    args = parser.parse_args()
    golden = {"scale": SCALE, "thetas": list(THETAS), "cells": {}}
    if args.variant:
        golden["codec_variant"] = args.variant
    t0 = time.time()
    for name in MEDIABENCH:
        bench = mediabench_program(name, scale=SCALE)
        for theta_paper in THETAS:
            config = SquashConfig(
                theta=map_theta(theta_paper),
                codec_variant=args.variant,
            )
            result = squash_benchmark(name, SCALE, config)
            run, _ = result.run(bench.timing_input, max_steps=500_000_000)
            golden["cells"][f"{name}@{theta_paper}"] = {
                "image_sha256": image_digest(result.image),
                "footprint_total": result.footprint.total,
                "baseline_words": result.baseline_words,
                "cycles": run.cycles,
                "output_sha256": hashlib.sha256(
                    b"".join(
                        (w & 0xFFFFFFFF).to_bytes(4, "little")
                        for w in run.output
                    )
                ).hexdigest(),
                "exit_code": run.exit_code,
            }
        print(name, round(time.time() - t0, 1))
    out = (
        pathlib.Path(args.out) if args.out else golden_path(args.variant)
    )
    out.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print("wrote", len(golden["cells"]), "cells to", out)


if __name__ == "__main__":
    main()
