"""Regenerate ``squash_golden.json`` from the current pipeline.

Run only after an *intentional* change to squash output::

    PYTHONPATH=src python tests/golden/capture_squash_golden.py

The digests pin the emitted image bytes, footprint, baseline size,
modelled timing-run cycles, and program output for every benchmark ×
θ cell at a fixed scale; ``tests/test_squash_golden.py`` asserts the
pipeline still reproduces them exactly.
"""

import hashlib
import json
import pathlib
import time

from repro.analysis.experiments import map_theta, squash_benchmark
from repro.core.pipeline import SquashConfig
from repro.workloads.mediabench import MEDIABENCH, mediabench_program

SCALE = 0.2
THETAS = (0.0, 1e-5, 5e-5, 1.0)


def image_digest(image) -> str:
    h = hashlib.sha256()
    h.update(image.base.to_bytes(8, "little"))
    h.update(image.entry_pc.to_bytes(8, "little"))
    for seg in image.segments:
        h.update(f"{seg.name}:{seg.start}:{seg.size};".encode())
    for w in image.memory:
        h.update((w & 0xFFFFFFFF).to_bytes(4, "little"))
    return h.hexdigest()


def main() -> None:
    golden = {"scale": SCALE, "thetas": list(THETAS), "cells": {}}
    t0 = time.time()
    for name in MEDIABENCH:
        bench = mediabench_program(name, scale=SCALE)
        for theta_paper in THETAS:
            config = SquashConfig(theta=map_theta(theta_paper))
            result = squash_benchmark(name, SCALE, config)
            run, _ = result.run(bench.timing_input, max_steps=500_000_000)
            golden["cells"][f"{name}@{theta_paper}"] = {
                "image_sha256": image_digest(result.image),
                "footprint_total": result.footprint.total,
                "baseline_words": result.baseline_words,
                "cycles": run.cycles,
                "output_sha256": hashlib.sha256(
                    b"".join(
                        (w & 0xFFFFFFFF).to_bytes(4, "little")
                        for w in run.output
                    )
                ).hexdigest(),
                "exit_code": run.exit_code,
            }
        print(name, round(time.time() - t0, 1))
    out = pathlib.Path(__file__).parent / "squash_golden.json"
    out.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print("wrote", len(golden["cells"]), "cells to", out)


if __name__ == "__main__":
    main()
