"""Integrity checking, the error taxonomy, and fault injection."""

import dataclasses

import pytest

from repro.compress.bitstream import BitReader
from repro.compress.canonical import CanonicalCode
from repro.core.costmodel import CostModel
from repro.core.pipeline import SquashConfig, load_squashed, squash
from repro.core.runtime import (
    SquashRuntime,
    StubAreaOverflow,
    clear_region_decode_cache,
)
from repro.core import runtime as runtime_mod
from repro.core.verify import verify_squashed
from repro.errors import (
    BufferOverrunError,
    CodecTableError,
    CorruptBlobError,
    OffsetTableError,
    SquashError,
    TruncatedStreamError,
)
from repro.faultinject import run_sweep
from repro.program.imagefile import (
    ImageFormatError,
    load_image,
    save_image,
)
from repro.vm.machine import Machine
from tests.conftest import MINI_TIMING_INPUT

SMALL_BUFFER = SquashConfig(
    theta=1.0, cost=CostModel(buffer_bound_bytes=48)
)


@pytest.fixture(scope="module")
def squashed(mini_program, mini_profile):
    return squash(mini_program, mini_profile, SMALL_BUFFER)


# -- taxonomy ----------------------------------------------------------------


def test_taxonomy_doubles_as_builtin_errors():
    assert issubclass(CorruptBlobError, ValueError)
    assert issubclass(CodecTableError, ValueError)
    assert issubclass(TruncatedStreamError, EOFError)
    assert issubclass(ImageFormatError, CorruptBlobError)
    for cls in (
        CorruptBlobError, TruncatedStreamError, CodecTableError,
        OffsetTableError, BufferOverrunError, StubAreaOverflow,
    ):
        assert issubclass(cls, SquashError)


def test_error_context_renders():
    exc = CorruptBlobError("bad crc", region=3, bit_offset=17)
    assert "region=3" in str(exc)
    assert "bit_offset=17" in str(exc)
    assert exc.region == 3


def test_with_context_fills_only_missing_fields():
    exc = CorruptBlobError("bad crc", bit_offset=17)
    exc.with_context(region=5, bit_offset=99, fingerprint="abc")
    assert exc.region == 5
    assert exc.bit_offset == 17  # original kept
    assert exc.fingerprint == "abc"
    assert "region=5" in str(exc)


# -- truncation (satellite: both decode paths) -------------------------------


def test_reading_past_eof_raises_truncated():
    reader = BitReader([0xDEADBEEF])
    reader.read_bits(32)
    with pytest.raises(TruncatedStreamError):
        reader.read_bit()
    reader2 = BitReader([0xDEADBEEF], bit_offset=30)
    with pytest.raises(TruncatedStreamError):
        reader2.read_bits(4)
    reader3 = BitReader([0xDEADBEEF])
    with pytest.raises(TruncatedStreamError):
        reader3.skip_bits(33)


def test_peek_still_zero_pads_for_lookahead():
    reader = BitReader([0xFFFFFFFF], bit_offset=24)
    assert reader.peek_bits(16) == 0xFF00


def _tiny_code():
    # symbols 0..3 with skewed frequencies -> codeword lengths 1..3
    return CanonicalCode.from_frequencies({0: 8, 1: 4, 2: 2, 3: 2})


def test_truncated_stream_raises_on_reference_decode():
    code = _tiny_code()
    # A stream ending mid-codeword: one full word of the longest
    # codeword repeated, cut to 32 bits, then read from near the end.
    reader = BitReader([0], bit_offset=31)
    with pytest.raises((TruncatedStreamError, CorruptBlobError)):
        while True:
            code.decode(reader)


def test_truncated_stream_raises_on_fast_decode():
    code = _tiny_code()
    reader = BitReader([0], bit_offset=31)
    with pytest.raises((TruncatedStreamError, CorruptBlobError)):
        while True:
            code.fast_decode(reader)


def test_both_decode_paths_raise_identically(squashed):
    """Reference and fast decode reject the same truncated stream."""
    desc = squashed.descriptor
    image = squashed.image
    start = desc.stream_addr - image.base
    region = desc.regions[0]
    # Keep only the first word of the region's stream.
    first_word = region.bit_offset // 32 + 1
    words = image.memory[start : start + first_word]
    from repro.compress.codec import ProgramCodec

    table = image.memory[
        desc.table_addr - image.base :
        desc.table_addr - image.base + desc.table_words
    ]
    codec = ProgramCodec.from_table_words(table)
    with pytest.raises(SquashError):
        codec.decode_region(words, region.bit_offset, fast=False)
    with pytest.raises(SquashError):
        codec.decode_region(words, region.bit_offset, fast=True)


# -- image file hardening ----------------------------------------------------


def test_imagefile_round_trip(squashed, tmp_path):
    path = tmp_path / "img.img"
    save_image(squashed.image, path)
    loaded = load_image(path)
    assert loaded == squashed.image


def test_imagefile_rejects_bad_magic(tmp_path):
    path = tmp_path / "bad.img"
    path.write_bytes(b"\0" * 64)
    with pytest.raises(ImageFormatError, match="magic"):
        load_image(path)


def test_imagefile_crc_footer_rejects_bitflip(squashed, tmp_path):
    path = tmp_path / "img.img"
    save_image(squashed.image, path)
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0x10
    path.write_bytes(bytes(data))
    with pytest.raises(ImageFormatError, match="CRC"):
        load_image(path)


def test_imagefile_accepts_version1_without_footer(squashed, tmp_path):
    import struct

    path = tmp_path / "img.img"
    save_image(squashed.image, path)
    data = bytearray(path.read_bytes())[:-4]  # strip the footer
    struct.pack_into("<I", data, 4, 1)  # rewrite version
    v1 = tmp_path / "v1.img"
    v1.write_bytes(bytes(data))
    assert load_image(v1) == squashed.image


def test_imagefile_rejects_implausible_count(squashed, tmp_path):
    import struct

    path = tmp_path / "img.img"
    save_image(squashed.image, path)
    data = bytearray(path.read_bytes())[:-4]
    # n_segments sits right after magic/version/base/entry_pc.
    struct.pack_into("<I", data, 16, 0x7FFFFFFF)
    import zlib

    data += struct.pack("<I", zlib.crc32(bytes(data)) & 0xFFFFFFFF)
    path.write_bytes(bytes(data))
    with pytest.raises(ImageFormatError, match="implausible"):
        load_image(path)


# -- save / verify / load round trip -----------------------------------------


def test_clean_image_verifies_and_runs(squashed, tmp_path):
    prefix = tmp_path / "mini"
    squashed.save(prefix)
    report = verify_squashed(prefix)
    assert report.ok, report.render()
    assert "region-decode" in report.passed
    loaded = load_squashed(prefix)
    machine, _ = loaded.make_machine(MINI_TIMING_INPUT)
    run = machine.run(max_steps=5_000_000)
    direct, _ = squashed.run(MINI_TIMING_INPUT, max_steps=5_000_000)
    assert run.output == direct.output
    assert run.cycles == direct.cycles


def _resave_with_stream_flip(squashed, prefix):
    """Flip one bit inside the compressed stream and re-save (so the
    *file* CRC is valid but the *blob* integrity metadata is not)."""
    desc = squashed.descriptor
    image = squashed.image
    memory = list(image.memory)
    memory[desc.stream_addr - image.base] ^= 1 << 7
    tampered = dataclasses.replace(image, memory=memory)
    save_image(tampered, prefix.with_suffix(".img"))


def test_load_squashed_rejects_tampered_stream(squashed, tmp_path):
    prefix = tmp_path / "mini"
    squashed.save(prefix)
    _resave_with_stream_flip(squashed, prefix)
    with pytest.raises(CorruptBlobError):
        load_squashed(prefix)
    # verify reports the same fault structurally, without raising
    report = verify_squashed(prefix)
    assert not report.ok
    assert report.fault.check == "checksums"
    # and the unverified load still works (runtime catches it later)
    loaded = load_squashed(prefix, verify=False)
    machine, _ = loaded.make_machine(MINI_TIMING_INPUT)
    with pytest.raises(CorruptBlobError):
        machine.run(max_steps=5_000_000)


def test_runtime_rejects_corrupt_offset_table(squashed):
    desc = squashed.descriptor
    image = squashed.image
    memory = list(image.memory)
    memory[desc.offset_table_addr - image.base + 1] += 3
    tampered = dataclasses.replace(image, memory=memory)
    runtime = SquashRuntime(desc, region_cache=False)
    machine = Machine(
        tampered, input_words=MINI_TIMING_INPUT,
        services=runtime.services(),
    )
    with pytest.raises((OffsetTableError, CorruptBlobError)):
        machine.run(max_steps=5_000_000)


def test_runtime_rejects_corrupt_codec_tables(squashed):
    desc = squashed.descriptor
    image = squashed.image
    memory = list(image.memory)
    memory[desc.table_addr - image.base] ^= 1 << 3
    tampered = dataclasses.replace(image, memory=memory)
    runtime = SquashRuntime(desc, region_cache=False)
    machine = Machine(
        tampered, input_words=MINI_TIMING_INPUT,
        services=runtime.services(),
    )
    with pytest.raises(CodecTableError):
        machine.run(max_steps=5_000_000)


# -- region decode cache poisoning -------------------------------------------


def test_poisoned_cache_entry_rejected_not_executed(squashed):
    clear_region_decode_cache()
    try:
        machine, _ = squashed.make_machine(
            MINI_TIMING_INPUT, region_cache=True
        )
        clean = machine.run(max_steps=5_000_000)
        cache = runtime_mod._REGION_DECODE_CACHE
        assert cache, "expected cached region decodes"
        for key, (items, bits, seal) in list(cache.items()):
            cache[key] = (items, bits + 64, seal)  # stale seal
        machine, runtime = squashed.make_machine(
            MINI_TIMING_INPUT, region_cache=True
        )
        rerun = machine.run(max_steps=5_000_000)
        assert runtime.stats.cache_rejects > 0
        assert rerun.output == clean.output
        assert rerun.cycles == clean.cycles
    finally:
        clear_region_decode_cache()


# -- stub-area degradation ---------------------------------------------------


def _fill_stub_area(machine, runtime, count_word):
    """Mark every stub slot live, with *count_word* as each slot's
    in-memory usage count."""
    desc = runtime.desc
    runtime.current_region = 0
    for slot in range(desc.stub_capacity):
        key = (0, 1000 + slot)
        runtime._live_stubs[key] = slot
        runtime._slot_key[slot] = key
        machine.write_word(runtime._stub_addr(slot) + 2, count_word)
    runtime._free_slots = []


def test_overflow_reclaims_stale_stubs(squashed):
    machine, runtime = squashed.make_machine(MINI_TIMING_INPUT)
    _fill_stub_area(machine, runtime, count_word=0)
    desc = squashed.descriptor
    runtime._create_stub(machine, 26, desc.buffer_base + 1)
    assert runtime.stats.stub_reclaims == desc.stub_capacity
    assert runtime.stats.stubs_created == 1
    # reclamation itself charges nothing beyond the normal CreateStub
    assert runtime.stats.decomp_cycles == desc.cost.createstub_cycles


def test_overflow_with_live_stubs_still_raises(squashed):
    machine, runtime = squashed.make_machine(MINI_TIMING_INPUT)
    _fill_stub_area(machine, runtime, count_word=1)
    desc = squashed.descriptor
    with pytest.raises(StubAreaOverflow):
        runtime._create_stub(machine, 26, desc.buffer_base + 1)
    assert runtime.stats.stub_reclaims == 0


def test_integrity_checks_charge_no_cycles(squashed):
    """A checked run and an integrity-stripped run are cycle-identical
    (the satellite regression: verification must not perturb
    RunResult.cycles semantics)."""
    checked, rt = squashed.run(
        MINI_TIMING_INPUT, max_steps=5_000_000, region_cache=False
    )
    stripped = dataclasses.replace(squashed.descriptor, integrity=None)
    runtime = SquashRuntime(stripped, region_cache=False)
    machine = Machine(
        squashed.image, input_words=MINI_TIMING_INPUT,
        services=runtime.services(),
    )
    unchecked = machine.run(max_steps=5_000_000)
    assert checked.output == unchecked.output
    assert checked.cycles == unchecked.cycles
    assert checked.steps == unchecked.steps


# -- seeded fault-injection property -----------------------------------------


def test_seeded_fault_sweep_no_silent_misexecution(squashed):
    """Property: every one of N seeded faults is detected or provably
    benign -- never a silent misexecution, never an untyped escape."""
    report = run_sweep(
        squashed, MINI_TIMING_INPUT, faults=120, seed=7,
        max_steps=5_000_000,
    )
    assert report.silent == 0, report.render()
    assert report.escaped == 0, report.render()
    assert report.detected > 0
    assert report.detected + report.benign == 120


def test_single_bit_flips_all_detected_or_benign(squashed):
    """Focused version of the property over pure single-bit flips."""
    kinds = ("bitflip-stream", "bitflip-table", "bitflip-offsets")
    report = run_sweep(
        squashed, MINI_TIMING_INPUT, faults=60, seed=11, kinds=kinds,
        max_steps=5_000_000,
    )
    assert report.ok, report.render()
    assert report.escaped == 0, report.render()


def test_sweep_is_deterministic(squashed):
    a = run_sweep(
        squashed, MINI_TIMING_INPUT, faults=20, seed=3,
        max_steps=5_000_000,
    )
    b = run_sweep(
        squashed, MINI_TIMING_INPUT, faults=20, seed=3,
        max_steps=5_000_000,
    )
    assert (a.detected, a.benign, a.silent, a.escaped) == (
        b.detected, b.benign, b.silent, b.escaped
    )


# -- MediaBench regression (satellite) ---------------------------------------


def test_mediabench_cycles_unchanged_by_integrity_checks():
    from repro.analysis.experiments import squash_benchmark
    from repro.workloads.mediabench import mediabench_program

    config = SquashConfig(theta=0.01).with_buffer_bound(512)
    result = squash_benchmark("adpcm", 0.2, config)
    bench = mediabench_program("adpcm", scale=0.2)
    checked, rt = result.run(
        bench.timing_input, max_steps=500_000_000, region_cache=False
    )
    stripped = dataclasses.replace(result.descriptor, integrity=None)
    runtime = SquashRuntime(stripped, region_cache=False)
    machine = Machine(
        result.image, input_words=bench.timing_input,
        services=runtime.services(),
    )
    unchecked = machine.run(max_steps=500_000_000)
    assert checked.output == unchecked.output
    assert checked.cycles == unchecked.cycles
    # stub accounting is identical too
    assert rt.stats.stubs_created == runtime.stats.stubs_created
    assert rt.stats.stubs_freed == runtime.stats.stubs_freed
    assert rt.stats.stub_reclaims == runtime.stats.stub_reclaims == 0


# -- CLI ---------------------------------------------------------------------


def test_cli_verify_ok_and_fault(squashed, tmp_path, capsys):
    from repro.cli import main

    prefix = tmp_path / "mini"
    squashed.save(prefix)
    assert main(["verify", str(prefix)]) == 0
    out = capsys.readouterr().out
    assert "OK" in out
    _resave_with_stream_flip(squashed, prefix)
    assert main(["verify", str(prefix)]) == 1
    out = capsys.readouterr().out
    assert "FAULT" in out


def test_cli_verify_missing_prefix(capsys):
    from repro.cli import main

    assert main(["verify"]) == 2


def test_cli_faultsweep(capsys):
    from repro.cli import main

    code = main([
        "faultsweep", "--names", "adpcm", "--scale", "0.2",
        "--faults", "10", "--seed", "1",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "verdict: OK" in out
