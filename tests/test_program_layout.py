"""Layout: addresses, fallthrough jumps, relocations, hi/lo splits."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Instruction, Op, assemble, decode
from repro.program import (
    BasicBlock,
    DataObject,
    Function,
    Program,
)
from repro.program.layout import (
    TEXT_BASE,
    branch_displacement,
    layout,
    needs_fallthrough_br,
    resolve_data_ref,
    split_hi_lo,
)


def linear_program() -> Program:
    program = Program("p")
    fn = Function("main")
    fn.add_block(
        BasicBlock("m.a", instrs=assemble("nop\nnop"), fallthrough="m.b")
    )
    fn.add_block(BasicBlock("m.b", instrs=assemble("halt")))
    program.add_function(fn)
    return program


def test_sequential_addresses():
    result = layout(linear_program())
    assert result.block_addr["m.a"] == TEXT_BASE
    assert result.block_addr["m.b"] == TEXT_BASE + 2
    assert result.inserted_jumps == 0
    assert result.image.entry_pc == TEXT_BASE


def test_fallthrough_jump_inserted_when_displaced():
    program = Program("p")
    fn = Function("main")
    # a falls through to c, but b is laid out in between
    fn.add_block(BasicBlock("m.a", instrs=assemble("nop"), fallthrough="m.c"))
    fn.add_block(BasicBlock("m.b", instrs=assemble("halt")))
    fn.add_block(BasicBlock("m.c", instrs=assemble("halt")))
    # make b reachable so validation-by-use is meaningful
    fn.blocks["m.a"].instrs = assemble("beq r1, 0")
    fn.blocks["m.a"].branch_target = "m.b"
    program.add_function(fn)
    result = layout(program)
    assert result.inserted_jumps == 1
    br_addr = result.fallthrough_br_addr["m.a"]
    word = result.image.word(br_addr)
    instr = decode(word)
    assert instr.op is Op.BR
    assert br_addr + 1 + instr.imm == result.block_addr["m.c"]


def test_branch_displacements_resolved():
    program = Program("p")
    fn = Function("main")
    fn.add_block(
        BasicBlock(
            "m.a",
            instrs=assemble("beq r1, 0"),
            branch_target="m.c",
            fallthrough="m.b",
        )
    )
    fn.add_block(BasicBlock("m.b", instrs=assemble("halt")))
    fn.add_block(BasicBlock("m.c", instrs=assemble("halt")))
    program.add_function(fn)
    result = layout(program)
    branch = decode(result.image.word(result.block_addr["m.a"]))
    target = result.block_addr["m.a"] + 1 + branch.imm
    assert target == result.block_addr["m.c"]


def test_call_displacements_resolved():
    program = Program("p")
    fn = Function("main")
    block = BasicBlock("m.a", instrs=assemble("bsr r26, 0\nhalt"))
    block.call_targets[0] = "callee"
    fn.add_block(block)
    program.add_function(fn)
    callee = Function("callee")
    callee.add_block(BasicBlock("c.a", instrs=assemble("ret")))
    program.add_function(callee)
    result = layout(program)
    call = decode(result.image.word(result.block_addr["m.a"]))
    assert result.block_addr["m.a"] + 1 + call.imm == result.func_addr["callee"]


def test_data_after_text_and_relocs():
    program = linear_program()
    program.add_data(DataObject("d", words=[42, 0], relocs={1: "m.b"}))
    result = layout(program)
    data_addr = result.data_addr["d"]
    assert data_addr == TEXT_BASE + 3  # three instructions of text
    assert result.image.word(data_addr) == 42
    assert result.image.word(data_addr + 1) == result.block_addr["m.b"]
    assert result.image.segment("data").size == 2


def test_data_refs_materialised():
    program = linear_program()
    program.add_data(DataObject("G", words=[0] * 4))
    block = program.functions["main"].blocks["m.a"]
    block.instrs = assemble("ldah r1, 0(r31)\nlda r1, 0(r1)")
    block.data_refs = {0: "G", 1: "G"}
    result = layout(program)
    addr = result.data_addr["G"]
    hi = decode(result.image.word(result.block_addr["m.a"]))
    lo = decode(result.image.word(result.block_addr["m.a"] + 1))
    assert ((hi.imm << 16) + lo.imm) & 0xFFFFFFFF == addr


def test_block_heads_and_symbols():
    result = layout(linear_program())
    assert result.image.block_heads[TEXT_BASE] == "m.a"
    assert result.image.symbols["main"] == TEXT_BASE
    assert result.image.symbols["m.b"] == TEXT_BASE + 2


def test_layout_validates_program():
    program = linear_program()
    program.functions["main"].blocks["m.b"].instrs = []
    with pytest.raises(Exception):
        layout(program)


def test_needs_fallthrough_br():
    block = BasicBlock("b", instrs=assemble("nop"), fallthrough="x")
    assert needs_fallthrough_br(block, "y")
    assert not needs_fallthrough_br(block, "x")
    ret = BasicBlock("r", instrs=assemble("ret"))
    assert not needs_fallthrough_br(ret, None)


def test_branch_displacement_helper():
    assert branch_displacement(100, 101) == 0
    assert branch_displacement(100, 100) == -1
    assert branch_displacement(100, 90) == -11


@given(st.integers(0, (1 << 31) - 1))
def test_split_hi_lo_roundtrip(addr):
    hi, lo = split_hi_lo(addr)
    assert ((hi << 16) + lo) == addr
    assert -(1 << 15) <= lo <= (1 << 15) - 1


def test_resolve_data_ref_forms():
    lda = Instruction(Op.LDA, ra=1, rb=1, imm=0)
    ldah = Instruction(Op.LDAH, ra=1, rb=31, imm=0)
    addr = 0x1ABCD
    hi, lo = split_hi_lo(addr)
    assert resolve_data_ref(lda, addr).imm == lo
    assert resolve_data_ref(ldah, addr).imm == hi


def test_custom_text_base():
    result = layout(linear_program(), text_base=0x4000)
    assert result.image.base == 0x4000
    assert result.image.entry_pc == 0x4000


def test_image_helpers():
    result = layout(linear_program())
    image = result.image
    assert image.end == TEXT_BASE + 3
    assert image.segment_of(TEXT_BASE).name == "text"
    assert image.segment_of(999999) is None
    assert image.has_segment("data")
    assert not image.has_segment("compressed")
    with pytest.raises(KeyError):
        image.segment("nope")
    with pytest.raises(IndexError):
        image.word(TEXT_BASE - 1)
    assert image.code_size_words == 3
