"""Instruction encode/decode: roundtrips, sentinel, error cases."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    AluOp,
    Instruction,
    Op,
    SENTINEL_WORD,
    SysOp,
    decode,
    encode,
    sentinel,
)
from repro.isa.encoding import DecodeError, decode_program, encode_program
from repro.isa.opcodes import COND_BRANCH_OPS, Format, OP_FORMAT


def _random_instruction(draw):
    op = draw(
        st.sampled_from([o for o in Op if o is not Op.ILLEGAL])
    )
    fmt = OP_FORMAT[op]
    reg = st.integers(0, 31)
    if fmt is Format.SPC:
        return Instruction(op, imm=draw(st.integers(0, (1 << 26) - 1)))
    if fmt is Format.BRA:
        return Instruction(
            op, ra=draw(reg), imm=draw(st.integers(-(1 << 20), (1 << 20) - 1))
        )
    if fmt in (Format.MEM, Format.MEMI):
        return Instruction(
            op,
            ra=draw(reg),
            rb=draw(reg),
            imm=draw(st.integers(-(1 << 15), (1 << 15) - 1)),
        )
    if fmt is Format.JMP:
        return Instruction(
            op,
            ra=draw(reg),
            rb=draw(reg),
            imm=draw(st.integers(0, (1 << 16) - 1)),  # JHINT is unsigned
        )
    if fmt is Format.OPR:
        return Instruction(
            op,
            ra=draw(reg),
            rb=draw(reg),
            rc=draw(reg),
            func=draw(st.integers(0, 15)),
        )
    assert fmt is Format.OPI
    return Instruction(
        op,
        ra=draw(reg),
        rc=draw(reg),
        func=draw(st.integers(0, 15)),
        imm=draw(st.integers(0, 255)),
    )


random_instruction = st.composite(_random_instruction)()


@given(random_instruction)
def test_encode_decode_roundtrip(instr):
    word = encode(instr)
    assert 0 <= word < (1 << 32)
    assert decode(word) == instr


@given(random_instruction)
def test_encode_opcode_in_top_bits(instr):
    assert encode(instr) >> 26 == int(instr.op)


def test_sentinel_is_all_ones():
    assert encode(sentinel()) == SENTINEL_WORD == 0xFFFFFFFF


def test_decode_rejects_unknown_opcode():
    with pytest.raises(DecodeError):
        decode(0x3E << 26)  # reserved opcode


def test_decode_rejects_out_of_range_word():
    with pytest.raises(DecodeError):
        decode(1 << 32)
    with pytest.raises(DecodeError):
        decode(-1)


def test_decode_rejects_nonzero_sbz():
    # OPR with a non-zero should-be-zero pad.
    word = encode(Instruction(Op.OPR, ra=1, rb=2, rc=3, func=0))
    corrupted = word | (0b101 << 13)
    with pytest.raises(DecodeError):
        decode(corrupted)


def test_distinct_instructions_distinct_words():
    a = encode(Instruction(Op.OPR, ra=1, rb=2, rc=3, func=int(AluOp.ADD)))
    b = encode(Instruction(Op.OPR, ra=1, rb=2, rc=3, func=int(AluOp.SUB)))
    c = encode(Instruction(Op.OPI, ra=1, rc=3, func=int(AluOp.ADD), imm=2))
    assert len({a, b, c}) == 3


def test_program_roundtrip():
    instrs = [
        Instruction(Op.LDA, ra=1, rb=31, imm=100),
        Instruction(Op.BSR, ra=26, imm=-5),
        Instruction(Op.SPC, imm=int(SysOp.EXIT)),
    ]
    assert decode_program(encode_program(instrs)) == instrs


def test_classification_properties():
    assert Instruction(Op.BSR, ra=26, imm=0).is_direct_call
    assert Instruction(Op.BR, ra=26, imm=0).is_direct_call  # BR-with-link
    assert not Instruction(Op.BR, ra=31, imm=0).is_direct_call
    assert Instruction(Op.BR, ra=31, imm=0).is_uncond_branch
    assert Instruction(Op.JSR, ra=26, rb=4).is_indirect_call
    assert Instruction(Op.RET, ra=31, rb=26).is_return
    assert Instruction(Op.JMP, ra=31, rb=4).is_indirect_jump
    for op in COND_BRANCH_OPS:
        assert Instruction(op, ra=1, imm=0).is_cond_branch


def test_fallthrough_properties():
    assert Instruction(Op.BEQ, ra=1, imm=0).has_fallthrough
    assert Instruction(Op.BSR, ra=26, imm=0).has_fallthrough
    assert not Instruction(Op.BR, ra=31, imm=0).has_fallthrough
    assert not Instruction(Op.RET, ra=31, rb=26).has_fallthrough
    assert not Instruction(Op.SPC, imm=int(SysOp.EXIT)).has_fallthrough
    assert not Instruction(Op.SPC, imm=int(SysOp.LONGJMP)).has_fallthrough
    assert Instruction(Op.SPC, imm=int(SysOp.READ)).has_fallthrough


def test_writes_and_reads():
    add = Instruction(Op.OPR, ra=1, rb=2, rc=3, func=int(AluOp.ADD))
    assert add.writes_reg == 3
    assert set(add.reads_regs()) == {1, 2}
    store = Instruction(Op.STW, ra=1, rb=2, imm=0)
    assert store.writes_reg is None
    assert set(store.reads_regs()) == {1, 2}
    load = Instruction(Op.LDW, ra=1, rb=2, imm=0)
    assert load.writes_reg == 1
    assert set(load.reads_regs()) == {2}
    # zero register writes are reported as None
    zadd = Instruction(Op.OPR, ra=1, rb=2, rc=31, func=0)
    assert zadd.writes_reg is None


def test_fields_lists_opcode_first():
    instr = Instruction(Op.LDW, ra=1, rb=2, imm=-4)
    kinds = [kind for kind, _ in instr.fields()]
    from repro.isa.fields import FieldKind

    assert kinds[0] is FieldKind.OPCODE
    assert kinds == [
        FieldKind.OPCODE,
        FieldKind.RA,
        FieldKind.RB,
        FieldKind.MDISP,
    ]
