"""The trace layer: ring buffer, determinism, exporters, CLI."""

import json

import pytest

from repro.obs.trace import (
    TraceEvent,
    Tracer,
    chrome_trace,
    get_tracer,
    write_chrome_trace,
    write_jsonl,
)

SCALE = 0.2
THETA = 1e-4


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit("x", "runtime", ts=1)
        assert tracer.events() == []

    def test_emit_and_read_back(self):
        tracer = Tracer(enabled=True)
        tracer.emit("a", "runtime", ts=10, region=3)
        (event,) = tracer.events()
        assert event.name == "a"
        assert event.ts == 10
        assert event.args == (("region", 3),)

    def test_per_category_sequence_numbers(self):
        tracer = Tracer(enabled=True)
        tracer.emit("a", "runtime", ts=1)
        tracer.emit("b", "pipeline")
        tracer.emit("c", "runtime", ts=2)
        runtime = tracer.events("runtime")
        assert [e.seq for e in runtime] == [0, 1]
        assert [e.seq for e in tracer.events("pipeline")] == [0]

    def test_ring_buffer_drops_oldest_and_counts(self):
        tracer = Tracer(capacity=3, enabled=True)
        for i in range(5):
            tracer.emit(f"e{i}", "runtime", ts=i)
        events = tracer.events()
        assert [e.name for e in events] == ["e2", "e3", "e4"]
        assert tracer.dropped == 2

    def test_span_emits_begin_end_pair(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", "pipeline", provides="a"):
            pass
        begin, end = tracer.events()
        assert (begin.phase, end.phase) == ("B", "E")
        assert begin.name == end.name == "work"
        assert end.ts >= begin.ts

    def test_span_disabled_is_free(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work", "pipeline"):
            pass
        assert tracer.events() == []

    def test_clear_resets_sequences_and_drops(self):
        tracer = Tracer(capacity=1, enabled=True)
        tracer.emit("a", "runtime", ts=1)
        tracer.emit("b", "runtime", ts=2)
        tracer.clear()
        assert tracer.dropped == 0
        tracer.emit("c", "runtime", ts=3)
        assert tracer.events()[0].seq == 0

    def test_default_tracer_is_singleton_and_disabled(self):
        assert get_tracer() is get_tracer()


class TestExporters:
    def _events(self):
        return [
            TraceEvent(
                name="region.decompress", cat="runtime", phase="B",
                ts=100, seq=0, args=(("region", 2),),
            ),
            TraceEvent(
                name="decode_cache.miss", cat="runtime", phase="i",
                ts=100, seq=1,
            ),
        ]

    def test_chrome_trace_shape(self):
        doc = chrome_trace(self._events())
        # Chrome trace-event JSON: top-level traceEvents array whose
        # entries carry name/cat/ph/ts/pid/tid.
        assert set(doc) == {"traceEvents", "displayTimeUnit", "metadata"}
        for event in doc["traceEvents"]:
            assert {"name", "cat", "ph", "ts", "pid", "tid", "args"} <= set(
                event
            )
        assert doc["traceEvents"][1]["s"] == "t"  # instant scope

    def test_chrome_trace_round_trips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self._events())
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 2
        assert doc["traceEvents"][0]["args"] == {"region": 2}

    def test_jsonl_one_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_jsonl(path, self._events())
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert all(json.loads(line)["cat"] == "runtime" for line in lines)

    def test_jsonl_empty_stream(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_jsonl(path, [])
        assert path.read_text() == ""


@pytest.fixture
def armed_tracer():
    tracer = get_tracer()
    was = tracer.enabled
    tracer.enable()
    tracer.clear()
    yield tracer
    tracer.clear()
    tracer.enabled = was


class TestRuntimeEventStream:
    def _traced_run(self, tracer):
        from repro.analysis.experiments import (
            map_theta,
            squash_benchmark,
        )
        from repro.core.pipeline import SquashConfig
        from repro.core.runtime import clear_region_decode_cache
        from repro.workloads.mediabench import mediabench_program

        bench = mediabench_program("adpcm", scale=SCALE)
        config = SquashConfig(theta=map_theta(THETA))
        result = squash_benchmark("adpcm", SCALE, config)
        # The region decode cache is process-global; drop it so every
        # run sees the same cold-cache hit/miss pattern, as a fresh
        # ``repro trace`` invocation would.
        clear_region_decode_cache()
        tracer.clear()
        run, _ = result.run(bench.timing_input, max_steps=500_000_000)
        return run, tracer.events("runtime")

    def test_runtime_events_are_deterministic(self, armed_tracer):
        """Same program, same input: byte-identical event stream."""
        run1, events1 = self._traced_run(armed_tracer)
        run2, events2 = self._traced_run(armed_tracer)
        assert run1.cycles == run2.cycles
        assert events1 == events2
        assert events1, "the squashed run emitted no runtime events"

    def test_runtime_events_are_cycle_stamped_and_ordered(self, armed_tracer):
        _, events = self._traced_run(armed_tracer)
        names = {event.name for event in events}
        assert "vm.run" in names
        assert "region.decompress" in names
        # Runtime timestamps are modelled cycles: integers that never
        # decrease along the per-category sequence.
        assert all(float(e.ts).is_integer() for e in events)
        assert all(
            a.ts <= b.ts and a.seq < b.seq
            for a, b in zip(events, events[1:])
        )

    def test_decompress_spans_pair_up(self, armed_tracer):
        _, events = self._traced_run(armed_tracer)
        begins = [
            e for e in events
            if e.name == "region.decompress" and e.phase == "B"
        ]
        ends = [
            e for e in events
            if e.name == "region.decompress" and e.phase == "E"
        ]
        assert len(begins) == len(ends) > 0


class TestCli:
    def _trace_json(self, capsys, extra=()):
        from repro.cli import main

        code = main(
            ["trace", "adpcm", "--scale", str(SCALE),
             "--theta", str(THETA), *extra]
        )
        out = capsys.readouterr().out
        assert code == 0
        return json.loads(out.splitlines()[0])

    @pytest.fixture(autouse=True)
    def _restore_tracer(self):
        tracer = get_tracer()
        was = tracer.enabled
        yield
        tracer.clear()
        tracer.enabled = was

    def test_trace_command_emits_valid_chrome_json(self, capsys):
        doc = self._trace_json(capsys)
        assert doc["traceEvents"]
        assert all(e["cat"] == "runtime" for e in doc["traceEvents"])

    def test_trace_command_is_deterministic(self, capsys):
        first = self._trace_json(capsys)
        second = self._trace_json(capsys)
        assert first == second

    def test_trace_writes_files(self, capsys, tmp_path):
        from repro.cli import main

        out = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        code = main(
            ["trace", "adpcm", "--scale", str(SCALE),
             "--theta", str(THETA),
             "--out", str(out), "--jsonl", str(jsonl)]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        assert len(doc["traceEvents"]) == len(
            jsonl.read_text().splitlines()
        )

    def test_metrics_command_renders_registry(self, capsys):
        from repro.cli import main
        from repro.obs.metrics import get_registry

        get_registry().reset()
        code = main(["metrics", "adpcm", "--scale", str(SCALE),
                     "--theta", str(THETA)])
        out = capsys.readouterr().out
        assert code == 0
        assert "decode_cache" in out or "pipeline.stage" in out

    def test_metrics_command_json_snapshot(self, capsys):
        from repro.cli import main

        code = main(["metrics", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        snap = json.loads(out)
        assert set(snap) == {"counters", "gauges", "histograms"}

    def test_metrics_rejects_unknown_benchmark(self, capsys):
        from repro.cli import main

        assert main(["metrics", "not-a-benchmark"]) == 2
