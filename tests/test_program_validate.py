"""Program-level IR validation rules."""

import pytest

from repro.isa import assemble
from repro.program import (
    BasicBlock,
    DataObject,
    Function,
    JumpTableInfo,
    Program,
    ValidationError,
)


def valid_program() -> Program:
    program = Program("p")
    fn = Function("main")
    fn.add_block(
        BasicBlock("main.a", instrs=assemble("nop"), fallthrough="main.b")
    )
    fn.add_block(BasicBlock("main.b", instrs=assemble("halt")))
    program.add_function(fn)
    return program


def test_valid_program_passes():
    valid_program().validate()


def test_missing_entry():
    program = valid_program()
    program.entry = "nope"
    with pytest.raises(ValidationError):
        program.validate()


def test_duplicate_labels_across_functions():
    program = valid_program()
    fn = Function("other")
    fn.add_block(BasicBlock("main.a", instrs=assemble("ret")))
    program.add_function(fn)
    with pytest.raises(ValidationError, match="defined in both"):
        program.validate()


def test_empty_block_rejected():
    program = valid_program()
    program.functions["main"].blocks["main.a"].instrs = []
    with pytest.raises(ValidationError, match="empty"):
        program.validate()


def test_mid_block_branch_rejected():
    program = valid_program()
    block = program.functions["main"].blocks["main.a"]
    block.instrs = assemble("br 0\nnop")
    block.branch_target = "main.b"
    block.fallthrough = None
    with pytest.raises(ValidationError, match="not at block end"):
        program.validate()


def test_reserved_register_rejected():
    program = valid_program()
    block = program.functions["main"].blocks["main.a"]
    block.instrs = assemble("add r28, r1, r2")
    with pytest.raises(ValidationError, match="reserved"):
        program.validate()


def test_call_without_target_rejected():
    program = valid_program()
    block = program.functions["main"].blocks["main.a"]
    block.instrs = assemble("bsr r26, 0")
    with pytest.raises(ValidationError, match="no target"):
        program.validate()


def test_call_to_unknown_function_rejected():
    program = valid_program()
    block = program.functions["main"].blocks["main.a"]
    block.instrs = assemble("bsr r26, 0")
    block.call_targets[0] = "ghost"
    with pytest.raises(ValidationError, match="unknown function"):
        program.validate()


def test_call_target_on_non_call_rejected():
    program = valid_program()
    block = program.functions["main"].blocks["main.a"]
    block.call_targets[0] = "main"
    with pytest.raises(ValidationError, match="not a direct call"):
        program.validate()


def test_data_ref_rules():
    program = valid_program()
    block = program.functions["main"].blocks["main.a"]
    block.instrs = assemble("lda r1, 0(r31)")
    block.data_refs[0] = "ghost"
    with pytest.raises(ValidationError, match="unknown symbol"):
        program.validate()
    program.add_data(DataObject("ghost", words=[0]))
    program.validate()
    block.data_refs[0] = "ghost"
    block.instrs = assemble("add r1, r2, r3")
    with pytest.raises(ValidationError, match="not lda/ldah"):
        program.validate()


def test_cond_branch_needs_both_successors():
    program = valid_program()
    block = program.functions["main"].blocks["main.a"]
    block.instrs = assemble("beq r1, 0")
    block.branch_target = "main.b"
    block.fallthrough = None
    with pytest.raises(ValidationError, match="needs branch_target"):
        program.validate()


def test_uncond_branch_needs_target_only():
    program = valid_program()
    block = program.functions["main"].blocks["main.a"]
    block.instrs = assemble("br 0")
    block.branch_target = "main.b"
    block.fallthrough = "main.b"
    with pytest.raises(ValidationError, match="branch_target only"):
        program.validate()


def test_return_block_has_no_successors():
    program = valid_program()
    block = program.functions["main"].blocks["main.a"]
    block.instrs = assemble("ret")
    with pytest.raises(ValidationError, match="no successors"):
        program.validate()


def test_plain_block_needs_fallthrough():
    program = valid_program()
    block = program.functions["main"].blocks["main.b"]
    block.instrs = assemble("nop")
    with pytest.raises(ValidationError, match="falls off the end"):
        program.validate()


def test_successor_must_be_same_function():
    program = valid_program()
    fn = Function("other")
    fn.add_block(BasicBlock("other.x", instrs=assemble("ret")))
    program.add_function(fn)
    program.functions["main"].blocks["main.a"].fallthrough = "other.x"
    with pytest.raises(ValidationError, match="same function"):
        program.validate()


def test_jump_table_rules():
    program = valid_program()
    block = program.functions["main"].blocks["main.a"]
    block.instrs = assemble("jmp (r4)")
    block.fallthrough = None
    block.jump_table = JumpTableInfo("tab")
    with pytest.raises(ValidationError, match="missing or not marked"):
        program.validate()
    program.add_data(
        DataObject(
            "tab", words=[0, 0], relocs={0: "main.b", 1: "main.b"},
            is_jump_table=True,
        )
    )
    program.validate()
    # a slot without a relocation is rejected
    program.data["tab"].relocs.pop(1)
    with pytest.raises(ValidationError, match="non-relocated"):
        program.validate()


def test_address_taken_must_exist():
    program = valid_program()
    program.address_taken.add("ghost")
    with pytest.raises(ValidationError, match="address-taken"):
        program.validate()


def test_duplicate_function_rejected():
    program = valid_program()
    with pytest.raises(ValueError):
        program.add_function(Function("main"))


def test_copy_preserves_everything():
    program = valid_program()
    program.add_data(DataObject("d", words=[7]))
    program.address_taken.add("main")
    clone = program.copy()
    clone.validate()
    assert clone.data["d"].words == [7]
    assert clone.address_taken == {"main"}
    clone.functions["main"].blocks["main.a"].instrs = []
    program.validate()  # original untouched


def test_find_block_and_block_function():
    program = valid_program()
    fn, block = program.find_block("main.b")
    assert fn.name == "main" and block.label == "main.b"
    with pytest.raises(KeyError):
        program.find_block("ghost")
    assert program.block_function() == {
        "main.a": "main",
        "main.b": "main",
    }


def test_sizes():
    program = valid_program()
    program.add_data(DataObject("d", words=[1, 2, 3]))
    assert program.code_size == 2
    assert program.data_size == 3
