"""Store fault injection: ENOSPC budgets, SIGKILL mid-eviction, and
the dead-store recompute fallback (the issue's acceptance scenarios).

Everything here must hold when run as root, where permission bits are
ineffective (CAP_DAC_OVERRIDE): "unwritable store" is modelled as an
ENOSPC storm through the chaos hook, which drives the exact same
retry → breaker → StoreDegraded → recompute ladder.
"""

import hashlib
import os
import pathlib
import subprocess
import sys
import textwrap

import pytest

from repro import settings
from repro.errors import StoreDegraded
from repro.faultinject import chaos
from repro.obs.metrics import get_registry
from repro.store import get_store, reset_stores


def _arm(monkeypatch, tmp_path, **kwargs):
    counters = tmp_path / "chaos-counters"
    spec = chaos.StoreChaosSpec(counter_dir=str(counters), **kwargs)
    monkeypatch.setenv(chaos.ENV_STORE_SPEC, spec.to_env())
    return counters


def _key(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


class TestEnospcBudget:
    def test_budgeted_enospc_degrades_then_recovers(
        self, tmp_path, monkeypatch
    ):
        counters = _arm(monkeypatch, tmp_path, enospc=2)
        reset_stores()
        store = get_store(tmp_path / "store")
        with settings.use_settings(store_retries=0, store_backoff=0.0):
            for index in range(2):
                with pytest.raises(StoreDegraded) as info:
                    store.put("cell", _key(f"e{index}"), {"x": index})
                assert info.value.reason == "enospc"
            # Budget exhausted: the disk is "fixed", writes succeed.
            assert store.put("cell", _key("after"), {"x": 99})
        assert store.get("cell", _key("after")) == {"x": 99}
        assert chaos.fired_counts(counters) == {"enospc": 2}
        reset_stores()

    def test_retries_absorb_a_transient_enospc(self, tmp_path, monkeypatch):
        _arm(monkeypatch, tmp_path, enospc=1)
        reset_stores()
        store = get_store(tmp_path / "store")
        before = get_registry().counter("store.write_retries").value
        with settings.use_settings(store_retries=2, store_backoff=0.0):
            assert store.put("cell", _key("transient"), {"ok": True})
        assert store.get("cell", _key("transient")) == {"ok": True}
        assert get_registry().counter("store.write_retries").value > before
        reset_stores()

    def test_degradation_is_counted(self, tmp_path, monkeypatch):
        _arm(monkeypatch, tmp_path, enospc=1)
        reset_stores()
        store = get_store(tmp_path / "store")
        registry = get_registry()
        degraded = registry.counter("store.degraded").value
        by_reason = registry.counter("store.degraded.enospc").value
        with settings.use_settings(store_retries=0):
            with pytest.raises(StoreDegraded):
                store.put("cell", _key("counted"), {"x": 1})
        assert registry.counter("store.degraded").value == degraded + 1
        assert registry.counter("store.degraded.enospc").value == by_reason + 1
        reset_stores()


KILL_WRITER = textwrap.dedent(
    """
    import hashlib, sys
    from repro.store import get_store

    root, count = sys.argv[1], int(sys.argv[2])
    store = get_store(root)
    for index in range(count):
        key = hashlib.sha256(f"kill-{index}".encode()).hexdigest()
        store.put("cell", key, {"i": index, "pad": "k" * 256})
    print("SURVIVED")  # only reached if the kill never fired
    """
)


class TestSigkillMidEviction:
    def test_store_survives_and_heals(self, tmp_path):
        """A writer SIGKILLed between a victim's ref unlink and its
        object collection leaves the store fully readable: no torn
        entries, an orphan object for gc, a stale lock the next writer
        breaks."""
        quota = 4 * 1024
        root = tmp_path / "store"
        counters = tmp_path / "chaos-counters"
        spec = chaos.StoreChaosSpec(
            kill_evict=1, counter_dir=str(counters), inline_kill_ok=True
        )
        script = tmp_path / "writer.py"
        script.write_text(KILL_WRITER)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(
            pathlib.Path(__file__).resolve().parent.parent / "src"
        )
        env["REPRO_STORE_QUOTA_BYTES"] = str(quota)
        env[chaos.ENV_STORE_SPEC] = spec.to_env()
        proc = subprocess.run(
            [sys.executable, str(script), str(root), "60"],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 137, (proc.returncode, proc.stdout,
                                        proc.stderr)
        assert "SURVIVED" not in proc.stdout
        assert chaos.fired_counts(counters) == {"kill_evict": 1}

        reset_stores()
        store = get_store(root)
        report = store.verify()
        # Readable: every surviving ref is intact, nothing torn.
        assert sum(report["corrupt"].values()) == 0, report
        assert report["ok"] == report["refs"] > 0
        # The interrupted eviction stranded the victim's object.
        assert report["orphan_objects"] >= 1
        # The dead writer's lock is broken, writes resume, gc heals.
        with settings.use_settings(store_quota_bytes=quota):
            assert store.put("cell", _key("resume"), {"x": 1})
            healed = store.gc(stale_temp_seconds=0.0)
            assert store.usage_bytes() <= quota
        assert healed["orphan_objects"] >= 0  # collected here or evicted
        assert store.verify()["orphan_objects"] == 0
        assert store.get("cell", _key("resume")) == {"x": 1}
        reset_stores()


class TestDeadStoreFallback:
    def test_sweep_completes_via_recompute(self, tmp_path, monkeypatch):
        """With the store effectively unwritable (unbounded ENOSPC
        storm), a parallel sweep still completes — every cell is
        recomputed — and produces rows identical to a serial sweep
        with a healthy store."""
        import repro.api as api

        serial_cache = tmp_path / "healthy"
        with settings.use_settings(cache_dir=str(serial_cache)):
            serial = api.sweep(
                api.SweepSpec(names=("adpcm",), scale=0.2, thetas=(1e-4,))
            )

        _arm(monkeypatch, tmp_path, enospc=1000)
        reset_stores()
        registry = get_registry()
        degraded = registry.counter("store.degraded").value
        dead_cache = tmp_path / "dead"
        with settings.use_settings(
            cache_dir=str(dead_cache),
            store_retries=0,
            store_backoff=0.0,
            store_breaker_threshold=2,
            store_breaker_cooldown=60.0,
        ):
            rows = api.sweep(
                api.SweepSpec(
                    names=("adpcm",), scale=0.2, thetas=(1e-4,),
                    parallel=True,
                )
            )
        assert [(r.name, r.theta_paper, r.reduction) for r in rows] == [
            (r.name, r.theta_paper, r.reduction) for r in serial
        ]
        assert registry.counter("store.degraded").value > degraded
        reset_stores()
