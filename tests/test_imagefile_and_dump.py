"""Image file format and the objdump-style listings."""

import pytest

from repro.core.pipeline import (
    SquashConfig,
    load_squashed,
    squash,
)
from repro.analysis.dump import dump_image, dump_region
from repro.program.imagefile import (
    ImageFormatError,
    load_image,
    save_image,
)
from repro.vm.machine import Machine
from tests.conftest import MINI_TIMING_INPUT


class TestImageFile:
    def test_roundtrip_plain_image(self, mini_layout, tmp_path):
        path = tmp_path / "mini.img"
        save_image(mini_layout.image, path)
        again = load_image(path)
        assert again.memory == mini_layout.image.memory
        assert again.base == mini_layout.image.base
        assert again.entry_pc == mini_layout.image.entry_pc
        assert again.symbols == mini_layout.image.symbols
        assert again.block_heads == mini_layout.image.block_heads
        assert [
            (s.name, s.start, s.size) for s in again.segments
        ] == [
            (s.name, s.start, s.size)
            for s in mini_layout.image.segments
        ]

    def test_loaded_image_runs(self, mini_layout, tmp_path):
        path = tmp_path / "mini.img"
        save_image(mini_layout.image, path)
        again = load_image(path)
        a = Machine(mini_layout.image, input_words=[3, 4]).run()
        b = Machine(again, input_words=[3, 4]).run()
        assert a.output == b.output

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.img"
        path.write_bytes(b"\0" * 64)
        with pytest.raises(ImageFormatError, match="magic"):
            load_image(path)

    def test_truncated_rejected(self, mini_layout, tmp_path):
        path = tmp_path / "mini.img"
        save_image(mini_layout.image, path)
        path.write_bytes(path.read_bytes()[:-40])
        with pytest.raises(ImageFormatError):
            load_image(path)


class TestSquashedExecutable:
    def test_save_load_run(
        self, mini_program, mini_profile, mini_baseline, tmp_path
    ):
        result = squash(mini_program, mini_profile, SquashConfig(theta=1.0))
        result.save(tmp_path / "mini")
        loaded = load_squashed(tmp_path / "mini")
        machine, runtime = loaded.make_machine(MINI_TIMING_INPUT)
        run = machine.run(max_steps=10_000_000)
        assert run.output == mini_baseline.output
        assert runtime.stats.decompressions > 0

    def test_descriptor_roundtrip(self, mini_program, mini_profile, tmp_path):
        result = squash(mini_program, mini_profile, SquashConfig(theta=1.0))
        result.save(tmp_path / "mini")
        loaded = load_squashed(tmp_path / "mini")
        assert loaded.descriptor == result.descriptor


class TestDump:
    def test_dump_image_contains_labels_and_code(self, mini_layout):
        text = dump_image(mini_layout.image)
        assert "segment text" in text
        assert "main.loop:" in text
        assert "sys read" in text
        assert "; ->" in text  # branch target annotation

    def test_dump_selected_segments(self, mini_layout):
        text = dump_image(mini_layout.image, segments=("data",))
        assert "segment text" not in text

    def test_dump_truncates(self, mini_layout):
        text = dump_image(mini_layout.image, max_words_per_segment=2)
        assert "more words" in text

    def test_dump_squashed_image(self, mini_program, mini_profile):
        result = squash(mini_program, mini_profile, SquashConfig(theta=1.0))
        text = dump_image(result.image)
        assert "segment entry_stubs" in text
        assert "segment compressed" in text

    def test_dump_region(self, mini_program, mini_profile):
        result = squash(mini_program, mini_profile, SquashConfig(theta=1.0))
        text = dump_region(result.image, result.descriptor, 0)
        assert "region 0" in text
        assert "expands to" in text
        # block labels of the region appear
        region = result.descriptor.regions[0]
        some_label = next(iter(region.block_slots))
        assert some_label in text
