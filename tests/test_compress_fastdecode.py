"""The table-driven decode path agrees bit-for-bit with DECODE.

The paper-verbatim DECODE loop stays the reference implementation;
``CanonicalCode.fast_decode`` (first-level K-bit table + overflow) must
return the same symbol and consume the same number of bits on every
stream, including codes whose longest codeword exceeds the table width.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress.bitstream import BitReader, BitWriter
from repro.compress.canonical import FAST_TABLE_BITS, CanonicalCode
from repro.compress.codec import CodecConfig, ProgramCodec
from repro.compress.streams import CodecInstr
from repro.isa.fields import FieldKind


def _roundtrip_check(code: CanonicalCode, symbols, table_bits=None):
    writer = BitWriter()
    for symbol in symbols:
        code.encode(writer, symbol)
    words = writer.to_words()
    reference = BitReader(words)
    fast = BitReader(words)
    for symbol in symbols:
        assert code.decode(reference) == symbol
        assert code.fast_decode(fast, table_bits) == symbol
        assert fast.bit_pos == reference.bit_pos, (
            "table decode consumed a different number of bits"
        )


@given(
    st.dictionaries(
        st.integers(0, 300),
        st.integers(1, 10_000),
        min_size=1,
        max_size=80,
    ),
    st.data(),
)
@settings(max_examples=150, deadline=None)
def test_fast_decode_matches_reference(frequencies, data):
    code = CanonicalCode.from_frequencies(frequencies)
    alphabet = sorted(frequencies)
    symbols = data.draw(
        st.lists(st.sampled_from(alphabet), min_size=1, max_size=200)
    )
    _roundtrip_check(code, symbols)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_fast_decode_overflow_path(data):
    """Codes deeper than the first-level table exercise the overflow
    path: lengths 1..L-1 plus two codewords of length L-1 satisfy Kraft
    exactly, and table_bits < L forces long codewords through it."""
    depth = data.draw(st.integers(6, 20))
    lengths = {symbol: symbol for symbol in range(1, depth)}
    lengths[depth] = depth - 1  # second codeword at the deepest level
    code = CanonicalCode.from_lengths(lengths)
    table_bits = data.draw(st.integers(1, depth - 2))
    symbols = data.draw(
        st.lists(
            st.sampled_from(sorted(lengths)), min_size=1, max_size=150
        )
    )
    assert code.max_length > table_bits
    _roundtrip_check(code, symbols, table_bits=table_bits)


def test_fast_decode_beyond_default_table_width():
    depth = FAST_TABLE_BITS + 4
    lengths = {symbol: symbol for symbol in range(1, depth)}
    lengths[depth] = depth - 1
    code = CanonicalCode.from_lengths(lengths)
    assert code.max_length == FAST_TABLE_BITS + 3
    _roundtrip_check(code, sorted(lengths) * 5)


def test_single_symbol_code():
    code = CanonicalCode.from_lengths({7: 1})
    _roundtrip_check(code, [7] * 10)


def test_decode_table_cached_per_width():
    code = CanonicalCode.from_frequencies({1: 5, 2: 3, 3: 1})
    assert code.decode_table() is code.decode_table()
    assert code.decode_table(2) is code.decode_table(2)
    assert code.encoder() is code.encoder()


def test_fast_decode_rejects_corrupt_stream():
    # Incomplete codes are rejected at construction, so build a valid
    # 2-symbol code and feed it a stream of ones past the longest code:
    # both decoders must fail rather than loop.
    code = CanonicalCode.from_lengths({0: 1, 1: 1})
    assert code.fast_decode(BitReader([0x80000000])) == 1
    truncated = BitReader([], bit_offset=0)
    with pytest.raises(EOFError):
        code.fast_decode(truncated)


def test_decode_region_fast_flag_equivalent():
    """ProgramCodec.decode_region decodes identically with the table
    path on and off (items and bits consumed)."""
    regions = [
        [
            CodecInstr(opcode=0x08, fields=(1, 2, 37)),
            CodecInstr(opcode=0x10, fields=(26, 4)),
        ],
        [CodecInstr(opcode=0x08, fields=(4, 5, 1000))] * 7,
    ]
    codec, blob = ProgramCodec.build(regions, CodecConfig())
    for offset in blob.region_bit_offsets:
        slow = codec.decode_region(blob.stream_words, offset, fast=False)
        fast = codec.decode_region(blob.stream_words, offset, fast=True)
        assert slow == fast
