"""Assembler and disassembler behaviour."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (
    AluOp,
    AssemblyError,
    Instruction,
    Op,
    assemble,
    disassemble,
    disassemble_one,
)
from repro.isa.assembler import REG_ALIASES


def one(text):
    instrs = assemble(text)
    assert len(instrs) == 1
    return instrs[0]


def test_alu_register_form():
    instr = one("add r1, r2, r3")
    assert instr == Instruction(Op.OPR, ra=1, rb=2, rc=3, func=int(AluOp.ADD))


def test_alu_immediate_form():
    instr = one("xori r4, 200, r5")
    assert instr == Instruction(
        Op.OPI, ra=4, rc=5, func=int(AluOp.XOR), imm=200
    )


def test_all_alu_mnemonics_assemble():
    for alu in AluOp:
        instr = one(f"{alu.name.lower()} r1, r2, r3")
        assert instr.func == int(alu)
        instr = one(f"{alu.name.lower()}i r1, 9, r3")
        assert instr.func == int(alu)


def test_memory_forms():
    assert one("ldw r1, 8(r2)") == Instruction(Op.LDW, ra=1, rb=2, imm=8)
    assert one("stw r1, -4(r30)") == Instruction(Op.STW, ra=1, rb=30, imm=-4)
    assert one("lda r1, 100(r31)") == Instruction(Op.LDA, ra=1, rb=31, imm=100)
    assert one("ldah r1, 2(r31)") == Instruction(Op.LDAH, ra=1, rb=31, imm=2)


def test_branches_with_labels():
    instrs = assemble("loop: addi r1, 1, r1\nbne r1, loop")
    assert instrs[1].imm == -2


def test_forward_label():
    instrs = assemble("beq r1, done\nnop\ndone: nop")
    assert instrs[0].imm == 1


def test_numeric_displacement():
    assert one("br 5").imm == 5
    assert one("bsr r26, -3") == Instruction(Op.BSR, ra=26, imm=-3)


def test_indirect_forms():
    assert one("jmp (r4)") == Instruction(Op.JMP, ra=31, rb=4)
    assert one("jsr r26, (r4)") == Instruction(Op.JSR, ra=26, rb=4)
    assert one("ret") == Instruction(Op.RET, ra=31, rb=26)
    assert one("ret (r25)") == Instruction(Op.RET, ra=31, rb=25)


def test_system_forms():
    assert one("nop").op is Op.SPC
    assert one("halt").imm == 1
    assert one("sys read").imm == 2
    assert one("sys exit").imm == 4
    assert one("sentinel").op is Op.ILLEGAL


def test_register_aliases():
    assert one("add ra, sp, v0").ra == REG_ALIASES["ra"] == 26
    assert one("add zero, a0, s1").rb == 16


def test_comments_and_blank_lines():
    instrs = assemble(
        """
        ; a comment
        add r1, r2, r3  # trailing comment
        # another

        sub r1, r2, r3
        """
    )
    assert len(instrs) == 2


def test_multiple_labels_one_line():
    instrs = assemble("a: b: nop\nbr a\nbr b")
    assert instrs[1].imm == -2
    assert instrs[2].imm == -3


def test_errors():
    with pytest.raises(AssemblyError):
        assemble("frobnicate r1, r2")
    with pytest.raises(AssemblyError):
        assemble("add r1, r2")  # wrong arity
    with pytest.raises(AssemblyError):
        assemble("add r1, r2, r99")  # bad register
    with pytest.raises(AssemblyError):
        assemble("ldw r1, r2")  # not disp(reg)
    with pytest.raises(AssemblyError):
        assemble("x: nop\nx: nop")  # duplicate label
    with pytest.raises(AssemblyError):
        assemble("beq r1, nowhere")  # ValueError -> AssemblyError


def test_error_reports_line_number():
    with pytest.raises(AssemblyError) as exc:
        assemble("nop\nbogus r1")
    assert exc.value.lineno == 2


ROUNDTRIP_SOURCES = [
    "add r1, r2, r3",
    "cmpulti r1, 5, r2",
    "ldw r9, -32(r30)",
    "stw r9, 0(r15)",
    "lda r1, 512(r31)",
    "ldah r1, 8(r1)",
    "beq r5, 10",
    "blbs r7, -1",
    "bsr r26, 100",
    "br 0",
    "jmp (r8)",
    "jsr r26, (r27)",
    "ret",
    "nop",
    "halt",
    "sys write",
    "sentinel",
]


@pytest.mark.parametrize("source", ROUNDTRIP_SOURCES)
def test_disassemble_assemble_roundtrip(source):
    instr = one(source)
    again = one(disassemble_one(instr))
    assert again == instr


def test_disassemble_many():
    instrs = assemble("add r1, r2, r3\nret")
    text = disassemble(instrs)
    assert assemble(text) == instrs


@given(st.integers(-(1 << 20), (1 << 20) - 1))
def test_branch_displacement_roundtrip(disp):
    instr = one(f"beq r1, {disp}")
    assert instr.imm == disp
    assert one(disassemble_one(instr)) == instr
