"""The benchmark never launders a serial run into a parallel claim.

BENCH_decode.json v1 recorded ``os.cpu_count()`` as the fig7 sweep's
worker count regardless of what the sweep actually used.  v2 records
the resolved worker count and refuses the ``parallel`` label for a
one-worker run; these tests pin that provenance contract plus the
digest/percentile helpers behind the decoder section.
"""

from __future__ import annotations

from benchmarks.run_bench import (
    BACKENDS,
    BENCH_VERSION,
    VARIANTS,
    _digest_results,
    _percentile,
    sweep_mode_label,
)
from repro.compress.streams import CodecInstr


def test_version_is_three():
    # v3 split the decoder section per codec variant.
    assert BENCH_VERSION == 3


def test_all_registered_backends_are_measured():
    assert BACKENDS == ("reference", "table", "vector")


def test_decoder_section_covers_both_codec_variants():
    from repro.compress.codec import CODEC_VARIANTS

    assert VARIANTS == ("baseline", "ctx1")
    assert set(VARIANTS) <= set(CODEC_VARIANTS.names())


class TestModeLabel:
    def test_one_worker_is_never_labelled_parallel(self):
        assert sweep_mode_label(1) == "single-worker"

    def test_multi_worker_is_parallel(self):
        assert sweep_mode_label(2) == "parallel"
        assert sweep_mode_label(16) == "parallel"


class TestDigest:
    def _results(self):
        items = [
            CodecInstr(opcode=0x08, fields=(1, 2, 3)),
            CodecInstr(opcode=0x10, fields=(4, 5)),
        ]
        return [(items, 57)]

    def test_digest_is_deterministic(self):
        assert _digest_results(self._results()) == _digest_results(
            self._results()
        )

    def test_digest_sees_items_and_bits(self):
        base = _digest_results(self._results())
        other_bits = [(self._results()[0][0], 58)]
        assert _digest_results(other_bits) != base
        other_items = [
            ([CodecInstr(opcode=0x08, fields=(1, 2, 4))], 57)
        ]
        assert _digest_results(other_items) != base


def test_percentile_bounds():
    samples = [float(i) for i in range(100)]
    assert _percentile(samples, 0.5) == 50.0
    assert _percentile(samples, 0.99) == 99.0
    assert _percentile([3.0], 0.99) == 3.0
