"""The individual squeeze passes: unreachable, nops, dead stores."""

from repro.isa import assemble
from repro.program import (
    BasicBlock,
    DataObject,
    Function,
    JumpTableInfo,
    Program,
)
from repro.squeeze import (
    eliminate_dead_stores,
    remove_nops,
    remove_unreachable,
)


def base_program() -> Program:
    program = Program("p")
    main = Function("main")
    main.add_block(
        BasicBlock("m.a", instrs=assemble("nop\naddi r31, 1, r16\nnop"),
                   fallthrough="m.b")
    )
    main.add_block(BasicBlock("m.b", instrs=assemble("sys exit")))
    program.add_function(main)
    return program


class TestUnreachable:
    def test_removes_uncalled_function(self):
        program = base_program()
        dead = Function("dead")
        dead.add_block(BasicBlock("d.a", instrs=assemble("ret")))
        program.add_function(dead)
        stats = remove_unreachable(program)
        assert stats.functions_removed == 1
        assert "dead" not in program.functions
        program.validate()

    def test_keeps_called_function(self):
        program = base_program()
        live = Function("live")
        live.add_block(BasicBlock("l.a", instrs=assemble("ret")))
        program.add_function(live)
        block = program.functions["main"].blocks["m.a"]
        block.instrs = assemble("bsr r26, 0")
        block.call_targets[0] = "live"
        remove_unreachable(program)
        assert "live" in program.functions

    def test_keeps_address_taken(self):
        program = base_program()
        fp = Function("fp")
        fp.add_block(BasicBlock("fp.a", instrs=assemble("ret")))
        program.add_function(fp)
        program.address_taken.add("fp")
        remove_unreachable(program)
        assert "fp" in program.functions

    def test_removes_unreachable_block(self):
        program = base_program()
        program.functions["main"].add_block(
            BasicBlock("m.orphan", instrs=assemble("halt"))
        )
        stats = remove_unreachable(program)
        assert stats.blocks_removed == 1
        assert "m.orphan" not in program.functions["main"].blocks

    def test_reclaims_orphan_jump_table(self):
        program = base_program()
        program.add_data(
            DataObject("tab", words=[0], relocs={0: "m.b"}, is_jump_table=True)
        )
        stats = remove_unreachable(program)
        assert stats.data_words_reclaimed == 1
        assert "tab" not in program.data

    def test_keeps_used_jump_table(self):
        program = base_program()
        main = program.functions["main"]
        main.blocks["m.a"].fallthrough = "m.sw"
        sw = BasicBlock("m.sw", instrs=assemble("jmp (r4)"))
        sw.jump_table = JumpTableInfo("tab")
        main.add_block(sw)
        program.add_data(
            DataObject("tab", words=[0], relocs={0: "m.b"}, is_jump_table=True)
        )
        remove_unreachable(program)
        assert "tab" in program.data

    def test_dangling_reloc_cleared(self):
        program = base_program()
        ghost = Function("ghost")
        ghost.add_block(BasicBlock("g.a", instrs=assemble("ret")))
        program.add_function(ghost)
        program.add_data(DataObject("d", words=[0], relocs={0: "ghost"}))
        remove_unreachable(program)
        assert program.data["d"].relocs == {}


class TestNops:
    def test_strips_nops(self):
        program = base_program()
        stats = remove_nops(program)
        assert stats.nops_removed == 2
        assert program.functions["main"].blocks["m.a"].size == 1
        program.validate()

    def test_preserves_call_target_indices(self):
        program = base_program()
        callee = Function("callee")
        callee.add_block(BasicBlock("c.a", instrs=assemble("ret")))
        program.add_function(callee)
        block = program.functions["main"].blocks["m.a"]
        block.instrs = assemble("nop\nbsr r26, 0\nnop")
        block.call_targets = {1: "callee"}
        remove_nops(program)
        assert block.call_targets == {0: "callee"}
        program.validate()

    def test_empty_block_removed_and_redirected(self):
        program = base_program()
        main = program.functions["main"]
        main.blocks["m.a"].fallthrough = "m.pad"
        main.add_block(
            BasicBlock("m.pad", instrs=assemble("nop"), fallthrough="m.b")
        )
        remove_nops(program)
        assert "m.pad" not in main.blocks
        assert main.blocks["m.a"].fallthrough == "m.b"
        program.validate()

    def test_chain_of_empty_blocks(self):
        program = base_program()
        main = program.functions["main"]
        main.blocks["m.a"].fallthrough = "m.p1"
        main.add_block(
            BasicBlock("m.p1", instrs=assemble("nop"), fallthrough="m.p2")
        )
        main.add_block(
            BasicBlock("m.p2", instrs=assemble("nop\nnop"), fallthrough="m.b")
        )
        remove_nops(program)
        assert main.blocks["m.a"].fallthrough == "m.b"
        program.validate()

    def test_function_entry_redirected(self):
        program = base_program()
        callee = Function("callee")
        callee.add_block(
            BasicBlock("c.pad", instrs=assemble("nop"), fallthrough="c.a")
        )
        callee.add_block(BasicBlock("c.a", instrs=assemble("ret")))
        program.add_function(callee)
        block = program.functions["main"].blocks["m.a"]
        block.instrs = assemble("bsr r26, 0")
        block.call_targets[0] = "callee"
        remove_nops(program)
        assert program.functions["callee"].entry == "c.a"
        program.validate()


class TestDeadStores:
    def test_removes_unread_write(self):
        program = base_program()
        block = program.functions["main"].blocks["m.a"]
        block.instrs = assemble(
            "addi r31, 9, r8\naddi r31, 1, r16"  # r8 never read
        )
        stats = eliminate_dead_stores(program)
        assert stats.stores_removed == 1
        assert block.size == 1

    def test_keeps_stored_value_chain(self):
        program = base_program()
        block = program.functions["main"].blocks["m.a"]
        block.instrs = assemble(
            "addi r31, 9, r1\naddi r1, 1, r2\n"
            "subi r30, 1, r30\nstw r2, 0(r30)\naddi r31, 0, r16"
        )
        eliminate_dead_stores(program)
        assert block.size == 5  # everything feeds the store

    def test_call_clobber_makes_write_dead(self):
        program = base_program()
        callee = Function("callee")
        callee.add_block(BasicBlock("c.a", instrs=assemble("ret")))
        program.add_function(callee)
        block = program.functions["main"].blocks["m.a"]
        # r1 is caller-save and unread before the call kills it
        block.instrs = assemble(
            "addi r31, 5, r1\nbsr r26, 0\naddi r31, 0, r16"
        )
        block.call_targets = {1: "callee"}
        stats = eliminate_dead_stores(program)
        assert stats.stores_removed == 1

    def test_callee_saved_survives_call(self):
        program = base_program()
        callee = Function("callee")
        callee.add_block(BasicBlock("c.a", instrs=assemble("ret")))
        program.add_function(callee)
        block = program.functions["main"].blocks["m.a"]
        # r9 is callee-save; reading it after the call keeps the write
        block.instrs = assemble(
            "addi r31, 5, r9\nbsr r26, 0\nadd r9, r31, r16"
        )
        block.call_targets = {1: "callee"}
        stats = eliminate_dead_stores(program)
        assert stats.stores_removed == 0

    def test_liveness_across_branches(self):
        program = Program("p")
        fn = Function("main")
        fn.add_block(
            BasicBlock(
                "m.a",
                instrs=assemble("addi r31, 7, r2\nbeq r1, 0"),
                branch_target="m.c",
                fallthrough="m.b",
            )
        )
        fn.add_block(
            BasicBlock("m.b", instrs=assemble("addi r31, 0, r16\nsys exit"))
        )
        # r2 read only on this path: the write must survive
        fn.add_block(
            BasicBlock("m.c", instrs=assemble("add r2, r31, r16\nsys exit"))
        )
        program.add_function(fn)
        stats = eliminate_dead_stores(program)
        assert stats.stores_removed == 0

    def test_terminator_never_removed(self):
        program = base_program()
        block = program.functions["main"].blocks["m.a"]
        block.instrs = assemble("addi r31, 9, r8")  # dead but terminator
        eliminate_dead_stores(program)
        assert block.size == 1
