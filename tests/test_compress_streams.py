"""Stream splitting, MTF, and the program codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compress import (
    CodecConfig,
    CodecInstr,
    MoveToFront,
    OP_SENTINEL,
    OP_XCALLD,
    OP_XCALLI,
    ProgramCodec,
    codec_fields,
    codec_to_instruction,
    instruction_to_codec,
    mtf_decode,
    mtf_encode,
)
from repro.compress.streams import sentinel_item, split_streams
from repro.isa import AluOp, Instruction, Op, assemble
from repro.isa.fields import FieldKind

SAMPLE = assemble(
    """
    addi r31, 0, r9
    add r9, r0, r9
    ldw r1, 4(r2)
    stw r1, 8(r2)
    lda r3, 100(r31)
    ldah r3, 1(r3)
    beq r1, 5
    bsr r26, -3
    jsr r26, (r4)
    jmp (r4)
    ret
    sys write
    nop
    """
)


class TestStreams:
    def test_codec_roundtrip_each_format(self):
        for instr in SAMPLE:
            item = instruction_to_codec(instr)
            assert codec_to_instruction(item) == instr

    def test_pseudo_ops_have_layouts(self):
        assert codec_fields(OP_XCALLD) == (FieldKind.RA, FieldKind.BDISP)
        assert codec_fields(OP_XCALLI) == (FieldKind.RA, FieldKind.RB)
        assert codec_fields(OP_SENTINEL) == ()

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            codec_fields(0x3E)

    def test_pseudo_to_instruction_rejected(self):
        with pytest.raises(ValueError):
            codec_to_instruction(CodecInstr(OP_XCALLD, (26, 0)))

    def test_codec_instr_arity_checked(self):
        with pytest.raises(ValueError):
            CodecInstr(int(Op.LDW), (1,))

    def test_split_streams_shapes(self):
        items = [instruction_to_codec(i) for i in SAMPLE]
        streams = split_streams(items)
        assert len(streams[FieldKind.OPCODE]) == len(SAMPLE)
        # two OPI instructions? one addi -> OPI; one OPR add
        assert FieldKind.LIT8 in streams
        assert FieldKind.MDISP in streams
        assert len(streams[FieldKind.MDISP]) == 2  # ldw + stw
        assert len(streams[FieldKind.BDISP]) == 2  # beq + bsr

    def test_sbz_not_a_stream(self):
        items = [instruction_to_codec(i) for i in SAMPLE]
        streams = split_streams(items)
        assert FieldKind.SBZ not in streams


class TestMtf:
    def test_simple_sequence(self):
        assert mtf_encode([5, 5, 7, 5], [5, 6, 7]) == [0, 0, 2, 1]

    def test_decode_inverse(self):
        alphabet = [3, 1, 4, 1_0, 9]
        values = [9, 9, 3, 4, 10, 3]
        assert mtf_decode(mtf_encode(values, alphabet), alphabet) == values

    def test_duplicate_alphabet_rejected(self):
        with pytest.raises(ValueError):
            MoveToFront([1, 1])

    def test_reset(self):
        mtf = MoveToFront([1, 2, 3])
        mtf.encode_one(3)
        mtf.reset()
        assert mtf.encode_one(1) == 0

    @given(
        st.lists(st.integers(0, 15), min_size=1, max_size=50),
    )
    def test_roundtrip_property(self, values):
        alphabet = sorted(set(values) | {99})
        assert mtf_decode(mtf_encode(values, alphabet), alphabet) == values


def _items_strategy():
    instr = st.sampled_from(SAMPLE)
    xcalld = st.builds(
        lambda ra, disp: CodecInstr(OP_XCALLD, (ra, disp & ((1 << 21) - 1))),
        st.integers(0, 31),
        st.integers(0, (1 << 21) - 1),
    )
    xcalli = st.builds(
        lambda ra, rb: CodecInstr(OP_XCALLI, (ra, rb)),
        st.integers(0, 31),
        st.integers(0, 31),
    )
    item = st.one_of(instr.map(instruction_to_codec), xcalld, xcalli)
    region = st.lists(item, min_size=1, max_size=20)
    return st.lists(region, min_size=1, max_size=6)


class TestProgramCodec:
    @given(_items_strategy())
    @settings(max_examples=40, deadline=None)
    def test_multi_region_roundtrip(self, regions):
        codec, blob = ProgramCodec.build(regions)
        reparsed = ProgramCodec.from_table_words(blob.table_words)
        assert reparsed.codes == codec.codes
        for index, region in enumerate(regions):
            decoded, bits = reparsed.decode_region(
                blob.stream_words, blob.region_bit_offsets[index]
            )
            assert decoded == list(region)
            assert bits > 0

    @given(_items_strategy())
    @settings(max_examples=20, deadline=None)
    def test_mtf_variant_roundtrip(self, regions):
        config = CodecConfig(
            mtf_kinds=frozenset({FieldKind.RA, FieldKind.RB, FieldKind.LIT8})
        )
        _, blob = ProgramCodec.build(regions, config)
        reparsed = ProgramCodec.from_table_words(blob.table_words)
        for index, region in enumerate(regions):
            decoded, _ = reparsed.decode_region(
                blob.stream_words, blob.region_bit_offsets[index]
            )
            assert decoded == list(region)

    def test_regions_decode_independently_out_of_order(self):
        regions = [
            [instruction_to_codec(i) for i in SAMPLE],
            [instruction_to_codec(i) for i in SAMPLE[:4]],
            [instruction_to_codec(i) for i in SAMPLE[4:]],
        ]
        _, blob = ProgramCodec.build(regions)
        codec = ProgramCodec.from_table_words(blob.table_words)
        for index in (2, 0, 1):
            decoded, _ = codec.decode_region(
                blob.stream_words, blob.region_bit_offsets[index]
            )
            assert decoded == regions[index]

    def test_offsets_monotone_and_start_at_zero(self):
        regions = [[sentinel_item()] or []]
        regions = [
            [instruction_to_codec(SAMPLE[0])],
            [instruction_to_codec(SAMPLE[1])],
        ]
        _, blob = ProgramCodec.build(regions)
        offsets = blob.region_bit_offsets
        assert offsets[0] == 0
        assert offsets == sorted(offsets)
        assert blob.stream_bits > offsets[-1]

    def test_compression_beats_raw_on_repetitive_code(self):
        region = [instruction_to_codec(SAMPLE[0])] * 200
        _, blob = ProgramCodec.build([region])
        assert blob.total_words < 200  # far below one word per instr

    def test_blob_sizes_consistent(self):
        regions = [[instruction_to_codec(i) for i in SAMPLE]]
        _, blob = ProgramCodec.build(regions)
        assert len(blob.stream_words) == (blob.stream_bits + 31) // 32
        assert len(blob.table_words) == (blob.table_bits + 31) // 32
        assert blob.total_words == len(blob.table_words) + len(
            blob.stream_words
        )
