"""Multi-host fan-out: claims, leases, reclaim, and row identity."""

import json
import time

import pytest

from repro import settings
from repro.errors import CellFailure
from repro.obs.metrics import get_registry
from repro.service import fanout
from repro.service.fanout import (
    FanoutWorker,
    _done_key,
    engine_id,
    publish_plan,
    try_claim,
    work_plan,
)
from repro.store import get_store

_METRICS = get_registry()

SCALE = 0.2
THETA = 1e-4


def _plan(names=("adpcm",), thetas=(THETA,), kind="size"):
    return {
        "plan": "plan-test",
        "names": list(names),
        "thetas": list(thetas),
        "scale": SCALE,
        "kind": kind,
        "state": "open",
    }


def _claim_path(root, plan_id, name, gen):
    return root / "sweeps" / "claims" / plan_id / f"{name}.g{gen}.claim"


class TestClaims:
    def test_claim_is_exactly_once_per_generation(self, tmp_path):
        store = get_store(tmp_path)
        assert try_claim(store, "p", "adpcm", lease=60.0) == 1
        # The lease is live: nobody else gets a look-in.
        assert try_claim(store, "p", "adpcm", lease=60.0) is None
        marker = _claim_path(tmp_path, "p", "adpcm", 1)
        holder = json.loads(marker.read_text())
        assert holder["engine"] == engine_id()
        assert holder["expires"] > time.time()

    def test_reclaim_only_after_lease_expiry(self, tmp_path):
        store = get_store(tmp_path)
        reclaims = _METRICS.counter("service.fanout.reclaims").value
        assert try_claim(store, "p", "adpcm", lease=0.05) == 1
        assert try_claim(store, "p", "adpcm", lease=0.05) is None
        time.sleep(0.1)
        # The holder is dead (lease lapsed): generation 2 opens.
        assert try_claim(store, "p", "adpcm", lease=60.0) == 2
        assert (
            _METRICS.counter("service.fanout.reclaims").value
            == reclaims + 1
        )

    def test_torn_claim_counts_as_dead(self, tmp_path):
        store = get_store(tmp_path)
        marker = _claim_path(tmp_path, "p", "adpcm", 1)
        marker.parent.mkdir(parents=True)
        marker.write_text("{ not json —")  # writer died mid-crash
        assert try_claim(store, "p", "adpcm", lease=60.0) == 2

    def test_claims_are_per_cell(self, tmp_path):
        store = get_store(tmp_path)
        assert try_claim(store, "p", "adpcm", lease=60.0) == 1
        assert try_claim(store, "p", "gsm", lease=60.0) == 1


class TestWorkPlan:
    def test_done_record_short_circuits_the_claim(self, tmp_path):
        store = get_store(tmp_path)
        plan = _plan()
        store.put("sweep", _done_key(plan["plan"], "adpcm"),
                  {"plan": plan["plan"], "name": "adpcm", "cells": []})
        with settings.use_settings(cache_dir=str(tmp_path)):
            assert work_plan(store, plan, lease=60.0) == 0
        # No claim marker was ever created.
        assert not _claim_path(
            tmp_path, plan["plan"], "adpcm", 1
        ).exists()

    def test_work_plan_computes_and_publishes_the_cell(self, tmp_path):
        store = get_store(tmp_path)
        plan = _plan()
        with settings.use_settings(cache_dir=str(tmp_path)):
            assert work_plan(store, plan, lease=60.0) == 1
        record = store.get("sweep", _done_key(plan["plan"], "adpcm"))
        assert record["engine"] == engine_id()
        (cell,) = record["cells"]
        assert cell["theta_paper"] == THETA
        assert -1.0 < cell["reduction"] < 1.0
        # Going again: the done record, not a recompute.
        with settings.use_settings(cache_dir=str(tmp_path)):
            assert work_plan(store, plan, lease=60.0) == 0

    def test_live_foreign_claim_is_not_contested(self, tmp_path):
        store = get_store(tmp_path)
        plan = _plan()
        marker = _claim_path(tmp_path, plan["plan"], "adpcm", 1)
        marker.parent.mkdir(parents=True)
        marker.write_text(json.dumps({
            "engine": "other-host-1", "expires": time.time() + 60.0,
        }))
        with settings.use_settings(cache_dir=str(tmp_path)):
            assert work_plan(store, plan, lease=60.0) == 0


class TestWorker:
    def test_poll_throttles_store_scans(self, tmp_path, monkeypatch):
        scans = []
        monkeypatch.setattr(
            fanout, "_open_plans", lambda store: scans.append(1) or []
        )
        with settings.use_settings(cache_dir=str(tmp_path)):
            worker = FanoutWorker(tmp_path)
        assert worker.poll() == 0
        assert worker.poll() == 0  # inside the scan interval
        assert len(scans) == 1

    def test_poll_works_an_open_plan(self, tmp_path):
        store = get_store(tmp_path)
        with settings.use_settings(cache_dir=str(tmp_path)):
            plan = publish_plan(store, {
                "names": ["adpcm"], "thetas": [THETA], "scale": SCALE,
            })
            worker = FanoutWorker(tmp_path)
            assert worker.poll() == 1
        record = store.get("sweep", _done_key(plan["plan"], "adpcm"))
        assert record is not None


class TestFanoutSweep:
    def test_rows_identical_to_serial_sweep(self, tmp_path):
        from repro.service.jobs import JobSpec, execute_job

        payload = {
            "names": ["adpcm"], "thetas": [THETA], "scale": SCALE,
        }
        with settings.use_settings(
            cache_dir=str(tmp_path / "serial")
        ):
            serial = execute_job(
                JobSpec(kind="sweep", payload=dict(payload))
            )
        with settings.use_settings(
            cache_dir=str(tmp_path / "fanned")
        ):
            fanned = execute_job(JobSpec(
                kind="sweep", payload=dict(payload, fanout=True)
            ))
        assert fanned["rows"] == serial["rows"]
        assert fanned["rows_digest"] == serial["rows_digest"]
        assert fanned["fanout"]["cells"] == 1
        assert fanned["fanout"]["engines"] == [engine_id()]
        # The plan record is closed so peers stop scanning it.
        store = get_store(tmp_path / "fanned")
        assert store.get("sweep", fanned["plan"])["state"] == "done"

    def test_lost_cells_fail_typed_after_the_budget(
        self, tmp_path, monkeypatch
    ):
        # No engine ever works the plan: collection must give up with
        # a CellFailure naming the missing benchmarks, not hang.
        monkeypatch.setattr(
            fanout, "work_plan", lambda *a, **k: 0
        )
        payload = {
            "names": ["adpcm", "gsm"], "thetas": [THETA],
            "scale": SCALE, "collect_timeout": 0.2,
        }
        with settings.use_settings(cache_dir=str(tmp_path)):
            with pytest.raises(CellFailure) as exc:
                fanout.run_fanout_sweep(payload, poll_interval=0.01)
        assert exc.value.reason == "collect-timeout"
        assert "adpcm" in exc.value.cell
        assert "gsm" in exc.value.cell
