"""Bit-granular I/O."""

import pytest
from hypothesis import given, strategies as st

from repro.compress.bitstream import BitReader, BitWriter


def test_write_read_single_bits():
    writer = BitWriter()
    for bit in (1, 0, 1, 1, 0):
        writer.write_bit(bit)
    reader = BitReader(writer.to_words())
    assert [reader.read_bit() for _ in range(5)] == [1, 0, 1, 1, 0]


def test_msb_first_within_word():
    writer = BitWriter()
    writer.write_bits(1, 1)
    assert writer.to_words()[0] >> 31 == 1


def test_cross_word_value():
    writer = BitWriter()
    writer.write_bits(0, 20)
    writer.write_bits(0xABCDE, 20)  # spans the word boundary
    reader = BitReader(writer.to_words(), bit_offset=20)
    assert reader.read_bits(20) == 0xABCDE


def test_bit_length_tracks():
    writer = BitWriter()
    writer.write_bits(0x3, 2)
    writer.write_bits(0x1F, 5)
    assert writer.bit_length == 7
    assert len(writer.to_words()) == 1


def test_value_too_wide_rejected():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write_bits(4, 2)
    with pytest.raises(ValueError):
        writer.write_bits(-1, 8)
    with pytest.raises(ValueError):
        writer.write_bits(1, -1)


def test_reader_eof():
    writer = BitWriter()
    writer.write_bits(0b101, 3)
    reader = BitReader(writer.to_words()[:0])
    with pytest.raises(EOFError):
        reader.read_bit()


def test_reader_seek_and_pos():
    writer = BitWriter()
    writer.write_bits(0b1010_1010, 8)
    reader = BitReader(writer.to_words())
    reader.read_bits(3)
    assert reader.bit_pos == 3
    reader.seek(1)
    assert reader.read_bit() == 0


def test_append_writer():
    a = BitWriter()
    a.write_bits(0b110, 3)
    b = BitWriter()
    b.write_bits(0xDEADBEEF, 32)
    b.write_bits(0b01, 2)
    a.append_writer(b)
    assert a.bit_length == 37
    reader = BitReader(a.to_words(), bit_offset=3)
    assert reader.read_bits(32) == 0xDEADBEEF
    assert reader.read_bits(2) == 0b01


@given(
    st.lists(
        st.tuples(st.integers(0, (1 << 24) - 1), st.integers(1, 24)),
        min_size=1,
        max_size=60,
    )
)
def test_roundtrip_arbitrary_sequences(pairs):
    writer = BitWriter()
    for value, width in pairs:
        writer.write_bits(value & ((1 << width) - 1), width)
    reader = BitReader(writer.to_words())
    for value, width in pairs:
        assert reader.read_bits(width) == value & ((1 << width) - 1)
    assert reader.bit_pos == writer.bit_length


@given(st.integers(0, 200), st.data())
def test_read_from_arbitrary_offset(prefix_bits, data):
    writer = BitWriter()
    for _ in range(prefix_bits):
        writer.write_bit(data.draw(st.integers(0, 1)))
    payload = data.draw(st.integers(0, (1 << 16) - 1))
    writer.write_bits(payload, 16)
    reader = BitReader(writer.to_words(), bit_offset=prefix_bits)
    assert reader.read_bits(16) == payload


def test_peek_does_not_consume():
    writer = BitWriter()
    writer.write_bits(0b1011_0110, 8)
    reader = BitReader(writer.to_words())
    assert reader.peek_bits(5) == 0b10110
    assert reader.bit_pos == 0
    assert reader.peek_bits(8) == 0b10110110
    reader.skip_bits(3)
    assert reader.peek_bits(5) == 0b10110
    assert reader.read_bits(5) == 0b10110


def test_peek_zero_pads_past_eof_but_skip_raises():
    writer = BitWriter()
    writer.write_bits(0xF, 4)
    reader = BitReader(writer.to_words())
    # the partial final word really holds 32 bits (zero padding)
    assert reader.peek_bits(40) == 0xF << 36
    reader.skip_bits(32)
    with pytest.raises(EOFError):
        reader.skip_bits(1)


def test_peek_across_word_boundaries():
    writer = BitWriter()
    writer.write_bits(0xDEADBEEF, 32)
    writer.write_bits(0xCAFEBABE, 32)
    reader = BitReader(writer.to_words(), bit_offset=28)
    assert reader.peek_bits(8) == 0xFC
    reader.skip_bits(8)
    assert reader.read_bits(28) == 0xAFEBABE


@given(
    st.lists(
        st.tuples(st.integers(0, (1 << 24) - 1), st.integers(1, 24)),
        min_size=1,
        max_size=60,
    )
)
def test_peek_skip_agrees_with_read(pairs):
    writer = BitWriter()
    for value, width in pairs:
        writer.write_bits(value & ((1 << width) - 1), width)
    words = writer.to_words()
    reading = BitReader(words)
    peeking = BitReader(words)
    for value, width in pairs:
        assert peeking.peek_bits(width) == reading.read_bits(width)
        peeking.skip_bits(width)
        assert peeking.bit_pos == reading.bit_pos


@given(
    st.lists(st.tuples(st.integers(0, 255), st.integers(1, 8)), max_size=30),
    st.lists(
        st.tuples(st.integers(0, 255), st.integers(1, 8)), max_size=30
    ),
)
def test_append_writer_aligned_fast_path(head, tail):
    """append_writer is bit-exact whether or not the destination is
    word-aligned (the aligned case takes the word-adoption fast path)."""
    flat = BitWriter()
    other = BitWriter()
    for value, width in tail:
        flat.write_bits(value & ((1 << width) - 1), width)
        other.write_bits(value & ((1 << width) - 1), width)
    aligned = BitWriter()
    aligned.append_writer(other)
    assert aligned.bit_length == flat.bit_length
    assert aligned.to_words() == flat.to_words()

    expect = BitWriter()
    combined = BitWriter()
    for value, width in head:
        expect.write_bits(value & ((1 << width) - 1), width)
        combined.write_bits(value & ((1 << width) - 1), width)
    for value, width in tail:
        expect.write_bits(value & ((1 << width) - 1), width)
    combined.append_writer(other)
    assert combined.bit_length == expect.bit_length
    assert combined.to_words() == expect.to_words()


def test_append_writer_fast_path_keeps_partial_word():
    a = BitWriter()
    b = BitWriter()
    b.write_bits(0xABC, 12)
    a.append_writer(b)  # aligned: adopts b's partial word
    a.write_bits(0x5, 3)  # must continue where b left off
    reader = BitReader(a.to_words())
    assert reader.read_bits(12) == 0xABC
    assert reader.read_bits(3) == 0x5


def test_words_are_32bit():
    writer = BitWriter()
    writer.write_bits((1 << 40) - 1, 40)
    for word in writer.to_words():
        assert 0 <= word < (1 << 32)
