"""Bit-granular I/O."""

import pytest
from hypothesis import given, strategies as st

from repro.compress.bitstream import BitReader, BitWriter


def test_write_read_single_bits():
    writer = BitWriter()
    for bit in (1, 0, 1, 1, 0):
        writer.write_bit(bit)
    reader = BitReader(writer.to_words())
    assert [reader.read_bit() for _ in range(5)] == [1, 0, 1, 1, 0]


def test_msb_first_within_word():
    writer = BitWriter()
    writer.write_bits(1, 1)
    assert writer.to_words()[0] >> 31 == 1


def test_cross_word_value():
    writer = BitWriter()
    writer.write_bits(0, 20)
    writer.write_bits(0xABCDE, 20)  # spans the word boundary
    reader = BitReader(writer.to_words(), bit_offset=20)
    assert reader.read_bits(20) == 0xABCDE


def test_bit_length_tracks():
    writer = BitWriter()
    writer.write_bits(0x3, 2)
    writer.write_bits(0x1F, 5)
    assert writer.bit_length == 7
    assert len(writer.to_words()) == 1


def test_value_too_wide_rejected():
    writer = BitWriter()
    with pytest.raises(ValueError):
        writer.write_bits(4, 2)
    with pytest.raises(ValueError):
        writer.write_bits(-1, 8)
    with pytest.raises(ValueError):
        writer.write_bits(1, -1)


def test_reader_eof():
    writer = BitWriter()
    writer.write_bits(0b101, 3)
    reader = BitReader(writer.to_words()[:0])
    with pytest.raises(EOFError):
        reader.read_bit()


def test_reader_seek_and_pos():
    writer = BitWriter()
    writer.write_bits(0b1010_1010, 8)
    reader = BitReader(writer.to_words())
    reader.read_bits(3)
    assert reader.bit_pos == 3
    reader.seek(1)
    assert reader.read_bit() == 0


def test_append_writer():
    a = BitWriter()
    a.write_bits(0b110, 3)
    b = BitWriter()
    b.write_bits(0xDEADBEEF, 32)
    b.write_bits(0b01, 2)
    a.append_writer(b)
    assert a.bit_length == 37
    reader = BitReader(a.to_words(), bit_offset=3)
    assert reader.read_bits(32) == 0xDEADBEEF
    assert reader.read_bits(2) == 0b01


@given(
    st.lists(
        st.tuples(st.integers(0, (1 << 24) - 1), st.integers(1, 24)),
        min_size=1,
        max_size=60,
    )
)
def test_roundtrip_arbitrary_sequences(pairs):
    writer = BitWriter()
    for value, width in pairs:
        writer.write_bits(value & ((1 << width) - 1), width)
    reader = BitReader(writer.to_words())
    for value, width in pairs:
        assert reader.read_bits(width) == value & ((1 << width) - 1)
    assert reader.bit_pos == writer.bit_length


@given(st.integers(0, 200), st.data())
def test_read_from_arbitrary_offset(prefix_bits, data):
    writer = BitWriter()
    for _ in range(prefix_bits):
        writer.write_bit(data.draw(st.integers(0, 1)))
    payload = data.draw(st.integers(0, (1 << 16) - 1))
    writer.write_bits(payload, 16)
    reader = BitReader(writer.to_words(), bit_offset=prefix_bits)
    assert reader.read_bits(16) == payload


def test_words_are_32bit():
    writer = BitWriter()
    writer.write_bits((1 << 40) - 1, 40)
    for word in writer.to_words():
        assert 0 <= word < (1 << 32)
