"""The squash rewriter: image structure, stubs, footprint identity."""

import pytest

from repro.core.descriptor import BufferStrategy, RestoreStubScheme
from repro.core.pipeline import SquashConfig, squash
from repro.isa import Op, decode
from repro.isa.opcodes import REG_AT
from tests.conftest import MINI_TIMING_INPUT


@pytest.fixture(scope="module")
def squashed(mini_program, mini_profile):
    return squash(mini_program, mini_profile, SquashConfig(theta=0.0))


SEGMENTS = (
    "text",
    "entry_stubs",
    "decompressor",
    "offset_table",
    "stub_area",
    "runtime_buffer",
    "data",
    "compressed",
)


def test_all_segments_present(squashed):
    for name in SEGMENTS:
        assert squashed.image.has_segment(name)


def test_segments_contiguous(squashed):
    segs = sorted(squashed.image.segments, key=lambda s: s.start)
    for a, b in zip(segs, segs[1:]):
        assert a.end == b.start
    assert segs[0].start == squashed.image.base
    assert segs[-1].end == squashed.image.end


def test_footprint_identity(squashed):
    """Reported footprint equals the actual extent of the image's code
    segments plus the jump tables (invariant 5 of DESIGN.md)."""
    fp = squashed.footprint
    seg_total = sum(
        squashed.image.segment(name).size
        for name in SEGMENTS
        if name != "data"
    )
    assert fp.total == seg_total + fp.jump_tables


def test_cold_code_left_text(squashed, mini_program):
    """The cold functions f and g are gone from text."""
    text = squashed.image.segment("text")
    heads = {
        label
        for addr, label in squashed.image.block_heads.items()
        if text.contains(addr)
    }
    assert "f.entry" not in heads
    assert "main.loop" in heads
    # tiny g/coldcall blocks may stay in text (unprofitable to compress)
    assert "main.hot" in heads


def test_entry_stub_layout(squashed):
    """Each entry stub is [bsr $at, decomp_entry($at)] [tag]."""
    desc = squashed.descriptor
    for stub in desc.entry_stubs:
        call = decode(squashed.image.word(stub.addr))
        assert call.op is Op.BSR
        assert call.ra == REG_AT
        target = stub.addr + 1 + call.imm
        assert target == desc.decomp_base + REG_AT
        tag = squashed.image.word(stub.addr + 1)
        assert tag >> 16 == stub.region
        assert tag & 0xFFFF == stub.offset


def test_offset_table_matches_blob(squashed):
    desc = squashed.descriptor
    blob = squashed.info.blob
    for index, offset in enumerate(blob.region_bit_offsets):
        assert squashed.image.word(desc.offset_table_addr + index) == offset
        assert desc.regions[index].bit_offset == offset


def test_compressed_area_contains_blob(squashed):
    desc = squashed.descriptor
    blob = squashed.info.blob
    words = [
        squashed.image.word(desc.table_addr + index)
        for index in range(desc.table_words)
    ]
    assert words == blob.table_words
    words = [
        squashed.image.word(desc.stream_addr + index)
        for index in range(desc.stream_words)
    ]
    assert words == blob.stream_words


def test_region_descriptors_consistent(squashed):
    desc = squashed.descriptor
    for region in desc.regions:
        assert region.expanded_size <= desc.buffer_words
        assert region.base == desc.buffer_base
        for label, slot in region.block_slots.items():
            assert 1 <= slot < region.expanded_size


def test_entry_pc_points_to_text_or_stub(squashed):
    entry = squashed.image.entry_pc
    seg = squashed.image.segment_of(entry)
    assert seg.name in ("text", "entry_stubs")


def test_compression_accounting(squashed):
    """The mini program is tiny, so the per-program Huffman tables
    dominate; the stream itself must still be well under a word per
    instruction."""
    info = squashed.info
    assert info.compressed_original_instrs > 0
    stream_ratio = (info.blob.stream_bits / 32) / info.compressed_original_instrs
    assert stream_ratio < 1.0


def test_rewrite_does_not_mutate_inputs(mini_program, mini_profile):
    before = mini_program.code_size
    counts = dict(mini_profile.counts)
    squash(mini_program, mini_profile, SquashConfig(theta=1.0))
    assert mini_program.code_size == before
    assert mini_profile.counts == counts


def test_no_pack_produces_more_regions(mini_program, mini_profile):
    import dataclasses

    packed = squash(mini_program, mini_profile, SquashConfig(theta=1.0))
    unpacked = squash(
        mini_program,
        mini_profile,
        dataclasses.replace(SquashConfig(theta=1.0), pack=False),
    )
    assert len(unpacked.info.regions) >= len(packed.info.regions)


def test_compile_time_scheme_emits_static_stubs(mini_program, mini_profile):
    config = SquashConfig(
        theta=1.0, restore_scheme=RestoreStubScheme.COMPILE_TIME,
        cost=SquashConfig().cost.with_buffer_bound(64),
    )
    result = squash(mini_program, mini_profile, config)
    desc = result.descriptor
    if desc.compile_time_stubs:
        assert desc.stub_area_words == 3 * len(desc.compile_time_stubs)
        stub = desc.compile_time_stubs[0]
        # stub: [call][bsr $at, decomp][tag]
        middle = decode(result.image.word(stub.addr + 1))
        assert middle.op is Op.BSR and middle.ra == REG_AT
        tag = result.image.word(stub.addr + 2)
        assert tag >> 16 == stub.region
        assert tag & 0xFFFF == stub.return_offset


def test_decompress_once_gives_each_region_an_area(
    mini_program, mini_profile
):
    config = SquashConfig(
        theta=1.0,
        strategy=BufferStrategy.DECOMPRESS_ONCE,
        cost=SquashConfig().cost.with_buffer_bound(64),
    )
    result = squash(mini_program, mini_profile, config)
    desc = result.descriptor
    bases = [r.base for r in desc.regions]
    assert len(set(bases)) == len(bases)  # distinct areas
    assert desc.buffer_words == sum(r.expanded_size for r in desc.regions)


def test_no_calls_strategy_compresses_only_callless_blocks(
    mini_program, mini_profile
):
    config = SquashConfig(theta=1.0, strategy=BufferStrategy.NO_CALLS)
    result = squash(mini_program, mini_profile, config)
    for label in result.info.compressed_blocks:
        _, block = mini_program.find_block(label)
        assert not block.has_call
    assert result.info.xcall_sites == 0


def test_reduction_sign_and_parts(squashed):
    fp = squashed.footprint
    assert fp.never_compressed > 0
    assert fp.decompressor > 0
    assert fp.runtime_buffer > 0
    assert fp.compressed > 0
    # the mini program is tiny: fixed overheads swamp the savings
    assert squashed.reduction < 0.5


def test_runs_after_rewrite(squashed, mini_baseline):
    run, _ = squashed.run(MINI_TIMING_INPUT)
    assert run.output == mini_baseline.output
