"""Descriptors and the cost model."""

import dataclasses

import pytest

from repro.core.costmodel import CostModel
from repro.core.descriptor import (
    BufferStrategy,
    RegionDescriptor,
    RestoreStubScheme,
    SquashDescriptor,
)


def make_descriptor(**overrides) -> SquashDescriptor:
    defaults = dict(
        strategy=BufferStrategy.OVERWRITE,
        restore_scheme=RestoreStubScheme.RUNTIME,
        cost=CostModel(),
        decomp_base=0x2000,
        decomp_words=360,
        offset_table_addr=0x2200,
        table_addr=0x3000,
        table_words=10,
        stream_addr=0x300A,
        stream_words=50,
        stub_area_base=0x2300,
        stub_area_words=64,
        stub_capacity=16,
        buffer_base=0x2400,
        buffer_words=128,
        regions=[
            RegionDescriptor(
                index=0, bit_offset=0, expanded_size=40, base=0x2400,
                block_slots={"f.a": 1},
            ),
            RegionDescriptor(
                index=1, bit_offset=333, expanded_size=128, base=0x2400,
            ),
        ],
    )
    defaults.update(overrides)
    return SquashDescriptor(**defaults)


def test_region_lookup():
    desc = make_descriptor()
    assert desc.region(1).bit_offset == 333
    with pytest.raises(IndexError):
        desc.region(5)


def test_address_range_queries():
    desc = make_descriptor()
    assert desc.in_buffer(0x2400)
    assert desc.in_buffer(0x2400 + 127)
    assert not desc.in_buffer(0x2400 + 128)
    assert desc.in_stub_area(0x2300)
    assert not desc.in_stub_area(0x2300 + 64)


def test_region_at():
    desc = make_descriptor()
    regions = [
        RegionDescriptor(index=0, bit_offset=0, expanded_size=10, base=100),
        RegionDescriptor(index=1, bit_offset=9, expanded_size=10, base=110),
    ]
    desc = make_descriptor(regions=regions)
    assert desc.region_at(105).index == 0
    assert desc.region_at(110).index == 1
    assert desc.region_at(99) is None


def test_stub_word_constants():
    # paper: runtime stubs cost "an additional 8 bytes" (2 words) over
    # compile-time stubs for the usage count machinery
    assert (
        SquashDescriptor.RESTORE_STUB_WORDS
        - SquashDescriptor.CT_STUB_WORDS
    ) * 4 == 4  # count word (the key word is our bookkeeping)


class TestCostModel:
    def test_defaults_match_paper(self):
        cost = CostModel()
        assert cost.buffer_bound_bytes == 512  # paper's empirical K
        assert cost.entry_stub_words == 2  # Section 4's constant
        assert 0.6 < cost.gamma < 0.7  # "approximately 66%"

    def test_buffer_bound_instrs(self):
        assert CostModel(buffer_bound_bytes=512).buffer_bound_instrs == 128
        assert CostModel(buffer_bound_bytes=64).buffer_bound_instrs == 16

    def test_with_buffer_bound(self):
        cost = CostModel().with_buffer_bound(256)
        assert cost.buffer_bound_bytes == 256
        assert cost.gamma == CostModel().gamma  # other fields kept

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CostModel().gamma = 0.5


def test_strategies_and_schemes_enumerate():
    assert {s.value for s in BufferStrategy} == {
        "no_calls", "decompress_once", "overwrite",
    }
    assert {s.value for s in RestoreStubScheme} == {
        "compile_time", "runtime",
    }
