"""End-to-end squash correctness on the handcrafted mini program.

These are the invariants the whole system stands on: for every θ,
buffer strategy, restore-stub scheme, and buffer bound, the squashed
program's observable behaviour (output words, exit code) is identical
to the original's, and the data call stack never grows (Section 2.2:
"the call stack of the original and compressed program are exactly the
same size at any point").
"""

import dataclasses

import pytest

from repro.core.costmodel import CostModel
from repro.core.descriptor import BufferStrategy, RestoreStubScheme
from repro.core.pipeline import SquashConfig, squash
from tests.conftest import MINI_TIMING_INPUT

THETAS = (0.0, 1.0)
STRATEGIES = tuple(BufferStrategy)
SCHEMES = tuple(RestoreStubScheme)


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("scheme", SCHEMES)
def test_equivalence_matrix(
    mini_program, mini_profile, mini_baseline, theta, strategy, scheme
):
    config = SquashConfig(
        theta=theta, strategy=strategy, restore_scheme=scheme
    )
    result = squash(mini_program, mini_profile, config)
    run, _ = result.run(MINI_TIMING_INPUT, max_steps=10_000_000)
    assert run.output == mini_baseline.output
    assert run.exit_code == mini_baseline.exit_code
    assert run.max_stack_depth == mini_baseline.max_stack_depth


@pytest.mark.parametrize("bound", (32, 48, 64, 96, 128, 512))
def test_equivalence_across_buffer_bounds(
    mini_program, mini_profile, mini_baseline, bound
):
    config = SquashConfig(
        theta=1.0, cost=CostModel(buffer_bound_bytes=bound)
    )
    result = squash(mini_program, mini_profile, config)
    run, _ = result.run(MINI_TIMING_INPUT, max_steps=10_000_000)
    assert run.output == mini_baseline.output
    assert run.max_stack_depth == mini_baseline.max_stack_depth


def test_equivalence_without_caching(
    mini_program, mini_profile, mini_baseline
):
    config = dataclasses.replace(
        SquashConfig(theta=1.0, cost=CostModel(buffer_bound_bytes=48)),
        buffer_caching=False,
    )
    result = squash(mini_program, mini_profile, config)
    run, _ = result.run(MINI_TIMING_INPUT, max_steps=20_000_000)
    assert run.output == mini_baseline.output


def test_equivalence_with_mtf_codec(
    mini_program, mini_profile, mini_baseline
):
    from repro.compress.codec import CodecConfig
    from repro.isa.fields import FieldKind

    config = dataclasses.replace(
        SquashConfig(theta=1.0),
        codec=CodecConfig(
            mtf_kinds=frozenset(
                {FieldKind.RA, FieldKind.RB, FieldKind.RC}
            )
        ),
    )
    result = squash(mini_program, mini_profile, config)
    run, _ = result.run(MINI_TIMING_INPUT, max_steps=10_000_000)
    assert run.output == mini_baseline.output


def test_empty_input_still_works(mini_program, mini_profile):
    result = squash(mini_program, mini_profile, SquashConfig(theta=1.0))
    run, _ = result.run([])
    assert run.exit_code == 0


def test_profile_input_replay(mini_program, mini_profile, mini_layout):
    """Running the squashed binary on the *profiling* input (all hot)
    must also match, with no decompression at θ=0 beyond start-up."""
    from tests.conftest import MINI_PROFILE_INPUT
    from repro.vm.machine import Machine

    baseline = Machine(
        mini_layout.image, input_words=MINI_PROFILE_INPUT
    ).run(max_steps=10_000_000)
    result = squash(mini_program, mini_profile, SquashConfig(theta=0.0))
    run, runtime = result.run(MINI_PROFILE_INPUT, max_steps=10_000_000)
    assert run.output == baseline.output
    assert runtime.stats.decompressions == 0


def test_theta_zero_overhead_is_zero_on_profile_path(
    mini_program, mini_profile, mini_layout
):
    from tests.conftest import MINI_PROFILE_INPUT
    from repro.vm.machine import Machine

    baseline = Machine(
        mini_layout.image, input_words=MINI_PROFILE_INPUT
    ).run(max_steps=10_000_000)
    result = squash(mini_program, mini_profile, SquashConfig(theta=0.0))
    run, _ = result.run(MINI_PROFILE_INPUT, max_steps=10_000_000)
    # identical cycle count modulo layout-inserted jumps
    assert abs(run.cycles - baseline.cycles) <= baseline.cycles * 0.02


def test_save_preserves_dotted_prefix(
    mini_program, mini_profile, tmp_path
):
    """`with_suffix` would mangle `adpcm.theta1e-5` into `adpcm.img`;
    save must append suffixes, never substitute them."""
    from repro.core.pipeline import load_squashed

    result = squash(mini_program, mini_profile, SquashConfig(theta=1.0))
    prefix = tmp_path / "adpcm.theta1e-5"
    image_path, meta_path = result.save(prefix)
    assert image_path.endswith("adpcm.theta1e-5.img")
    assert meta_path.endswith("adpcm.theta1e-5.json")

    # Two dotted prefixes in one directory must not collide.
    other = squash(mini_program, mini_profile, SquashConfig(theta=0.0))
    other.save(tmp_path / "adpcm.theta0")
    names = sorted(p.name for p in tmp_path.iterdir())
    assert names == [
        "adpcm.theta0.img", "adpcm.theta0.json",
        "adpcm.theta1e-5.img", "adpcm.theta1e-5.json",
    ]

    # The offline integrity checker resolves the same paths.
    from repro.core.verify import verify_squashed

    report = verify_squashed(prefix)
    assert report.ok, report.fault

    loaded = load_squashed(prefix)
    run, _ = result.run(MINI_TIMING_INPUT, max_steps=10_000_000)
    machine, _ = loaded.make_machine(MINI_TIMING_INPUT)
    reloaded = machine.run(max_steps=10_000_000)
    assert reloaded.output == run.output
    assert reloaded.exit_code == run.exit_code


def test_rewrite_config_is_squash_config():
    """One source of truth for every knob: RewriteConfig must be the
    same class, not a hand-copied twin."""
    from repro.core.config import RewriteConfig
    from repro.core.rewriter import RewriteConfig as ViaShim

    assert RewriteConfig is SquashConfig
    assert ViaShim is SquashConfig


def test_squash_accepts_precomputed_baseline(mini_program, mini_profile):
    """The sweep harness passes the θ-invariant baseline size through;
    the result must be identical to deriving it in-call."""
    derived = squash(mini_program, mini_profile, SquashConfig(theta=1.0))
    passed = squash(
        mini_program,
        mini_profile,
        SquashConfig(theta=1.0),
        baseline_words=derived.baseline_words,
    )
    assert passed.baseline_words == derived.baseline_words
    assert passed.footprint == derived.footprint
    assert passed.image.memory == derived.image.memory


def test_stage_report_attached(mini_program, mini_profile):
    result = squash(mini_program, mini_profile, SquashConfig(theta=1.0))
    assert result.stage_report is not None
    assert result.stage_report.executed() == [
        "cold", "plan", "classify", "layout", "encode", "emit",
    ]
    assert result.stage_report.total_seconds > 0
