"""Profile-analysis utilities."""

import pytest

from repro.analysis.profiles import (
    eighty_twenty,
    frequency_classes,
    profile_report,
)
from repro.core.coldcode import identify_cold_blocks
from repro.vm.profiler import Profile


def make_profile() -> Profile:
    counts = {"dead": 0, "rare": 1, "warm": 40, "hot": 5000}
    sizes = {"dead": 30, "rare": 10, "warm": 10, "hot": 10}
    tot = sum(counts[l] * sizes[l] for l in counts)
    return Profile(counts=counts, sizes=sizes, tot_instr_ct=tot)


def test_classes_sorted_coldest_first():
    classes = frequency_classes(make_profile())
    assert [c.freq for c in classes] == [0, 1, 40, 5000]


def test_class_weights():
    classes = frequency_classes(make_profile())
    assert classes[0].weight == 0
    assert classes[1].weight == 10
    assert classes[2].weight == 400


def test_theta_needed_matches_coldcode():
    """θ_needed of a class is exactly the threshold at which Section
    5's algorithm admits it."""
    profile = make_profile()
    for cls in frequency_classes(profile):
        if cls.theta_needed > 1.0:
            continue
        admitted = identify_cold_blocks(profile, cls.theta_needed)
        assert admitted.cutoff >= cls.freq
        if cls.theta_needed > 0:
            below = identify_cold_blocks(
                profile, cls.theta_needed * 0.999
            )
            assert below.cutoff < cls.freq


def test_cumulative_static_reaches_one():
    classes = frequency_classes(make_profile())
    assert classes[-1].cumulative_static_fraction == pytest.approx(1.0)


def test_eighty_twenty_shape(mini_profile):
    static80, dynamic20 = eighty_twenty(mini_profile)
    assert 0 < static80 < 0.6  # hot code is a small static fraction
    assert dynamic20 > 0.8     # a small static slice covers most work


def test_report_renders(mini_profile):
    text = profile_report(mini_profile)
    assert "dynamic" in text
    assert "θ to compress" in text


def test_report_truncates():
    counts = {f"b{i}": i for i in range(40)}
    sizes = {label: 2 for label in counts}
    tot = sum(counts[l] * 2 for l in counts)
    profile = Profile(counts=counts, sizes=sizes, tot_instr_ct=tot)
    text = profile_report(profile, max_rows=5)
    assert "..." in text


def test_workload_profile_is_eighty_twenty(small_workload, small_inputs):
    """The generated workloads obey the 80-20 rule the paper's whole
    premise rests on."""
    from repro.program.layout import layout
    from repro.squeeze import squeeze
    from repro.vm.profiler import collect_profile

    profile_in, _ = small_inputs
    squeezed, _ = squeeze(small_workload.program)
    profile = collect_profile(
        squeezed, layout(squeezed).image, profile_in
    )
    static80, dynamic20 = eighty_twenty(profile)
    assert static80 < 0.2   # ≥80% of time in <20% of code
    assert dynamic20 > 0.9
