"""Footprint accounting (Section 2.1's space bookkeeping)."""

import pytest

from repro.core.metrics import (
    Footprint,
    baseline_code_words,
    squashed_footprint,
)
from repro.core.pipeline import SquashConfig, squash
from repro.program.layout import layout


def make_footprint(**overrides) -> Footprint:
    defaults = dict(
        never_compressed=1000,
        entry_stubs=100,
        decompressor=360,
        offset_table=50,
        stub_area=64,
        runtime_buffer=128,
        compressed=2000,
        jump_tables=16,
    )
    defaults.update(overrides)
    return Footprint(**defaults)


def test_total_is_sum_of_parts():
    fp = make_footprint()
    assert fp.total == 1000 + 100 + 360 + 50 + 64 + 128 + 2000 + 16


def test_reduction_vs():
    fp = make_footprint()
    assert fp.reduction_vs(fp.total) == 0.0
    assert fp.reduction_vs(2 * fp.total) == pytest.approx(0.5)
    assert fp.reduction_vs(0) == 0.0


def test_reduction_can_be_negative():
    fp = make_footprint()
    assert fp.reduction_vs(fp.total // 2) < 0


def test_squashed_footprint_reads_segments(mini_program, mini_profile):
    result = squash(mini_program, mini_profile, SquashConfig(theta=1.0))
    fp = squashed_footprint(result.image, jump_table_words=0)
    assert fp == result.footprint
    assert fp.never_compressed == result.image.segment("text").size
    assert fp.compressed == result.image.segment("compressed").size


def test_baseline_counts_text_plus_tables(mini_program):
    result = layout(mini_program)
    words = baseline_code_words(result, mini_program)
    assert words == result.image.segment("text").size  # no tables here


def test_baseline_includes_jump_tables():
    from tests.test_core_unswitch import switch_program

    program = switch_program()
    result = layout(program)
    words = baseline_code_words(result, program)
    assert words == result.image.segment("text").size + 4


def test_footprint_immutable():
    fp = make_footprint()
    with pytest.raises(Exception):
        fp.never_compressed = 0


def test_footprint_matches_image_extent(small_workload, small_inputs):
    """Invariant 5: reported footprint == physical extent of the
    squashed image's code segments plus jump tables."""
    from repro.squeeze import squeeze
    from repro.vm.profiler import collect_profile

    profile_in, _ = small_inputs
    squeezed, _ = squeeze(small_workload.program)
    base = layout(squeezed)
    profile = collect_profile(squeezed, base.image, profile_in)
    result = squash(squeezed, profile, SquashConfig(theta=0.0))
    code_extent = sum(
        seg.size for seg in result.image.segments if seg.name != "data"
    )
    assert (
        result.footprint.total
        == code_extent + result.footprint.jump_tables
    )
