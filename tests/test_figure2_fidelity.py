"""Word-level fidelity to Figure 2 of the paper.

Checks the exact machine code the decompressor materialises: the
single ``bsr $ra, g`` of a protected call becomes the two-instruction
``bsr $ra, CreateStub ; br g`` sequence in the buffer; the restore stub
built by CreateStub carries the call's register, the tag
``<index(f), offset+1>``, and a usage count; and re-entering a region
through an entry stub lands at the stub's tag offset.
"""

import pytest

from repro.core.costmodel import CostModel
from repro.core.pipeline import SquashConfig, squash
from repro.isa import Op, decode
from repro.isa.opcodes import REG_RA
from tests.conftest import MINI_TIMING_INPUT

SMALL = SquashConfig(theta=1.0, cost=CostModel(buffer_bound_bytes=48))


@pytest.fixture(scope="module")
def ran(mini_program, mini_profile):
    result = squash(mini_program, mini_profile, SMALL)
    machine, runtime = result.make_machine(MINI_TIMING_INPUT)
    machine.run(max_steps=10_000_000)
    return result, machine, runtime


def _find_xcall_expansion(result, machine, runtime):
    """Locate a materialised XCALLD expansion in the cached decode."""
    desc = result.descriptor
    for region_index, (words, _) in runtime._expanded_cache.items():
        base = desc.region(region_index).base
        for position in range(len(words) - 1):
            first = decode(words[position])
            second = decode(words[position + 1])
            if (
                first.op is Op.BSR
                and second.op is Op.BR
                and second.ra == 31
            ):
                bsr_addr = base + 1 + position
                target = bsr_addr + 1 + first.imm
                if desc.decomp_base <= target < desc.decomp_base + 32:
                    return region_index, position, first, second
    return None


def test_call_expands_to_createstub_pair(ran):
    """bsr $ra, g  ==>  bsr $ra, CreateStub ; br g  (Figure 2(b))."""
    result, machine, runtime = ran
    found = _find_xcall_expansion(result, machine, runtime)
    assert found is not None, "no CreateStub expansion was materialised"
    region_index, position, bsr, br = found
    desc = result.descriptor
    # the CreateStub entry encodes the call's return register
    bsr_addr = desc.region(region_index).base + 1 + position
    entry = bsr_addr + 1 + bsr.imm
    assert entry - desc.decomp_base == bsr.ra == REG_RA
    # the br's target is a code address (an entry stub or text)
    br_target = bsr_addr + 2 + br.imm
    seg = result.image.segment_of(br_target)
    assert seg is not None and seg.name in ("entry_stubs", "text")


def test_restore_stub_contents_while_live(mini_program, mini_profile):
    """Capture a live restore stub: call word, tag, count, key."""
    result = squash(mini_program, mini_profile, SMALL)
    machine, runtime = result.make_machine(MINI_TIMING_INPUT)
    desc = result.descriptor

    captured = []
    original = runtime._release_stub

    def spy(machine_, retaddr):
        stub_base = retaddr - 1
        captured.append(
            [machine_.read_word(stub_base + k) for k in range(4)]
        )
        original(machine_, retaddr)

    runtime._release_stub = spy
    machine.run(max_steps=10_000_000)
    assert captured, "no restore stub was ever exercised"
    call_word, tag, count, key = captured[0]
    call = decode(call_word)
    assert call.op is Op.BSR
    # tag: region index in the high half, return offset in the low half
    region_index = tag >> 16
    offset = tag & 0xFFFF
    assert region_index < len(desc.regions)
    assert 1 <= offset < desc.region(region_index).expanded_size + 1
    assert count >= 1
    assert key == (region_index << 16) | (offset - 1)
    # the stub's call targets the decompressor entry of its register
    stub_addr = None
    for slot in range(desc.stub_capacity):
        base = desc.stub_area_base + slot * 4
        if machine.read_word(base + 1) == tag:
            stub_addr = base
    # the stub may already be freed/reused; decode-level checks above
    # are the contract.


def test_entry_stub_reaches_tag_offset(ran):
    """Decompressing via an entry stub must write the slot-0 jump to
    the stub's offset (Section 2.3 steps 2 and 5)."""
    result, machine, runtime = ran
    desc = result.descriptor
    assert runtime.current_region is not None
    region = desc.region(runtime.current_region)
    jump = decode(machine.mem[region.base])
    assert jump.op is Op.BR and jump.ra == 31
    landing = region.base + 1 + jump.imm
    assert region.base + 1 <= landing < region.base + region.expanded_size


def test_buffer_contents_match_cached_decode(ran):
    """The words in the buffer equal the decoder's output for the
    currently-resident region."""
    result, machine, runtime = ran
    desc = result.descriptor
    region = desc.region(runtime.current_region)
    words, _ = runtime._expanded_cache[runtime.current_region]
    resident = [
        machine.mem[region.base + 1 + k] for k in range(len(words))
    ]
    assert resident == words


def test_sentinel_never_reaches_buffer(ran):
    """The end-of-region sentinel terminates decoding; it must never be
    materialised (executing it would fault)."""
    from repro.isa.instruction import SENTINEL_WORD

    result, machine, runtime = ran
    desc = result.descriptor
    for words, _ in runtime._expanded_cache.values():
        assert SENTINEL_WORD not in words
