"""The stable public API of the repro package.

Everything a consumer of the reproduction needs goes through four
typed entry points — :func:`squash`, :func:`run`, :func:`sweep`,
:func:`verify` — plus the dataclass configs they take.  The facade is
a thin, import-cheap layer: each call resolves its implementation
lazily, so ``import repro.api`` never drags in the sweep harness or
the process-pool machinery.

::

    import repro.api as api

    result = api.squash_benchmark("gsm", scale=0.5,
                                  config=api.SquashConfig(theta=1e-4))
    outcome = api.run(result, api.RunSpec(input_words=(1, 2, 3)))
    rows = api.sweep(api.SweepSpec(names=("adpcm", "gsm"), kind="size"))
    report = api.verify("/tmp/gsm")

The job service is reached through the typed client — one API over
every transport (in-process engine, filesystem spool, HTTP)::

    with api.ServiceClient("local") as client:       # or "spool",
        handle = client.submit(kind="squash",        # or "http://host:port"
                               payload={"name": "gsm"})
        result = handle.result(timeout=60.0)

The pre-client free functions (:func:`submit`, :func:`job_status`,
:func:`job_result`) still work against the process-wide engine but are
deprecated shims; new code goes through :class:`ServiceClient`.

Configuration precedence is uniform everywhere behind this facade:
explicit config objects beat ``REPRO_*`` environment variables beat
the declared defaults (:mod:`repro.settings`).  Observability hooks
live in :mod:`repro.obs`; :func:`repro.settings.use_settings` scopes
setting overrides, and ``repro trace`` / ``repro metrics`` surface the
recorded streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SquashConfig
from repro.core.pipeline import (
    LoadedSquash,
    SquashResult,
    load_squashed,
    squash_program,
)
from repro.errors import SpecError

__all__ = [
    "JobHandle",
    "JobSpec",
    "LoadedSquash",
    "RunOutcome",
    "RunSpec",
    "ServiceClient",
    "SquashConfig",
    "SquashResult",
    "SweepSpec",
    "job_result",
    "job_status",
    "load_squashed",
    "run",
    "squash",
    "squash_benchmark",
    "store_gc",
    "store_stats",
    "store_verify",
    "submit",
    "sweep",
    "verify",
]


# -- configs ------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """How to execute a squashed image."""

    #: Guest input words fed to the program.
    input_words: tuple[int, ...] = ()
    #: Step budget before the run is declared hung.
    max_steps: int = 100_000_000
    #: Override the cross-runtime region decode cache (None: the
    #: resolved settings default).  Host-side only; modelled cycles are
    #: identical either way.
    region_cache: bool | None = None


@dataclass(frozen=True)
class SweepSpec:
    """One θ-grid sweep over a benchmark subset.

    *thetas* are paper-nominal thresholds (mapped internally through
    :func:`repro.analysis.experiments.map_theta`); ``None`` selects the
    figure's published grid for the chosen *kind*.  With *parallel*
    the sweep fans out across the supervised process pool and the
    persistent cell cache; rows are identical either way.
    """

    names: tuple[str, ...] = ()
    scale: float = 1.0
    thetas: tuple[float, ...] | None = None
    #: ``"size"`` (Figure 6 rows) or ``"time"`` (Figure 7(b) rows).
    kind: str = "size"
    parallel: bool = False


@dataclass(frozen=True)
class RunOutcome:
    """What one squashed execution produced."""

    cycles: int
    output: tuple[int, ...]
    exit_code: int
    #: Decompression-runtime counters for the run (region decompresses,
    #: stub traffic, ...), as a plain dict.
    runtime_stats: dict = field(default_factory=dict)


# -- entry points -------------------------------------------------------------


def squash(program, profile, config: SquashConfig | None = None,
           *, baseline_words: int | None = None) -> SquashResult:
    """Compress *program*'s cold code guided by *profile*.

    The typed facade over :func:`repro.core.pipeline.squash_program`;
    see there for the pipeline details.
    """
    return squash_program(
        program, profile, config, baseline_words=baseline_words
    )


def squash_benchmark(name: str, scale: float = 1.0,
                     config: SquashConfig | None = None) -> SquashResult:
    """Squash one synthetic MediaBench benchmark end to end.

    Raises a typed :class:`~repro.errors.SpecError` for a benchmark
    name outside the suite or a non-positive scale.
    """
    from repro.analysis.experiments import squash_benchmark as _bench
    from repro.workloads.mediabench import MEDIABENCH

    if name not in MEDIABENCH:
        raise SpecError(
            f"unknown benchmark {name!r} "
            f"(expected one of {', '.join(MEDIABENCH)})",
            field="name",
        )
    if not isinstance(scale, (int, float)) or not scale > 0:
        raise SpecError(
            f"scale must be a positive number, not {scale!r}",
            field="scale",
        )
    return _bench(name, scale, config or SquashConfig())


def run(target, spec: RunSpec | None = None) -> RunOutcome:
    """Execute a squashed image and report the outcome.

    *target* is a :class:`SquashResult`, a :class:`LoadedSquash`, or a
    saved-image prefix accepted by :func:`load_squashed`.
    """
    spec = spec or RunSpec()
    if not isinstance(spec.max_steps, int) or spec.max_steps <= 0:
        raise SpecError(
            f"max_steps must be a positive integer, "
            f"not {spec.max_steps!r}",
            field="max_steps",
        )
    try:
        words = tuple(spec.input_words)
    except TypeError:
        words = None
    if words is None or not all(
        isinstance(word, int) and not isinstance(word, bool)
        for word in words
    ):
        raise SpecError(
            "input_words must be a sequence of integers",
            field="input_words",
        )
    if isinstance(target, (str,)) or hasattr(target, "__fspath__"):
        target = load_squashed(target)
    if isinstance(target, SquashResult):
        machine, runtime = target.make_machine(
            spec.input_words, region_cache=spec.region_cache
        )
    elif isinstance(target, LoadedSquash):
        machine, runtime = target.make_machine(spec.input_words)
    else:
        raise TypeError(
            "run() target must be a SquashResult, LoadedSquash, or a "
            f"saved-image prefix, not {type(target).__name__}"
        )
    result = machine.run(max_steps=spec.max_steps)
    return RunOutcome(
        cycles=result.cycles,
        output=tuple(result.output),
        exit_code=result.exit_code,
        runtime_stats=vars(runtime.stats).copy(),
    )


def sweep(spec: SweepSpec | None = None):
    """Row-compatible figure sweep over ``spec.names``.

    Returns :class:`~repro.analysis.experiments.SizeRow` or
    :class:`~repro.analysis.experiments.TimeRow` objects depending on
    ``spec.kind``.
    """
    from repro.analysis import experiments
    from repro.workloads.mediabench import MEDIABENCH

    spec = spec or SweepSpec()
    names = spec.names or MEDIABENCH
    unknown = [name for name in names if name not in MEDIABENCH]
    if unknown:
        raise SpecError(
            f"unknown benchmark(s) {', '.join(map(repr, unknown))} "
            f"(expected among {', '.join(MEDIABENCH)})",
            field="names",
        )
    if spec.kind not in ("size", "time"):
        raise SpecError(
            f"unknown sweep kind {spec.kind!r} (size|time)",
            field="kind",
        )
    if spec.thetas is not None and not all(
        isinstance(theta, (int, float)) and not isinstance(theta, bool)
        and theta >= 0
        for theta in spec.thetas
    ):
        raise SpecError(
            "thetas must be non-negative numbers", field="thetas"
        )
    default_thetas = (
        experiments.FIG6_THETAS
        if spec.kind == "size"
        else experiments.FIG7_THETAS
    )
    thetas = spec.thetas if spec.thetas is not None else default_thetas
    if spec.parallel:
        from repro.analysis import parallel as driver

        kwargs = {"parallel": True}
    else:
        driver = experiments
        kwargs = {}
    rows_fn = (
        driver.fig6_rows if spec.kind == "size" else driver.fig7_time_rows
    )
    return rows_fn(names=tuple(names), scale=spec.scale,
                   thetas=tuple(thetas), **kwargs)


def verify(prefix, deep: bool = True):
    """Verify a saved squashed executable.

    Never raises on a bad image; faults come back in the returned
    :class:`~repro.core.verify.VerifyReport`.
    """
    from repro.core.verify import verify_squashed

    return verify_squashed(prefix, deep=deep)


# -- artifact store -----------------------------------------------------------


def _store(root=None):
    from repro.analysis.parallel import cache_dir
    from repro.store import get_store

    return get_store(root if root is not None else cache_dir())


def store_stats(root=None) -> dict:
    """Point-in-time statistics of the unified artifact store at
    *root* (default: the resolved cache dir)."""
    return _store(root).stats()


def store_gc(root=None) -> dict:
    """Collect crash leftovers (stale temps, orphan objects, corrupt
    refs), refresh the manifest snapshot, and enforce the quota."""
    return _store(root).gc()


def store_verify(root=None) -> dict:
    """Read-only health check of every store ref, object, and the
    manifest snapshot; nothing is modified."""
    return _store(root).verify()


# -- job service --------------------------------------------------------------

_DEPRECATION_WARNED: set = set()


def _warn_deprecated(old: str, new: str) -> None:
    # Once per function per process: enough signal to migrate, no log
    # spam from tight submit loops.
    if old in _DEPRECATION_WARNED:
        return
    _DEPRECATION_WARNED.add(old)
    import warnings

    warnings.warn(
        f"repro.api.{old}() is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=3,
    )


def submit(spec=None, **fields) -> str:
    """Deprecated: submit one job to the process-wide service engine.

    Use :class:`ServiceClient` instead — same typed contract, plus
    transports, handles, and retry-aware waiting::

        handle = api.ServiceClient("local").submit(kind="squash",
                                                   payload={"name": "gsm"})

    Still accepts a :class:`~repro.service.jobs.JobSpec` or its fields
    and returns the job id; raises typed
    :class:`~repro.errors.ServiceOverloaded` on shed and
    :class:`~repro.errors.SpecError` on a malformed spec.
    """
    _warn_deprecated("submit", "ServiceClient.submit")
    from repro.service import JobSpec as _JobSpec
    from repro.service import get_engine

    if spec is None:
        spec = _JobSpec(**fields)
    elif fields:
        raise SpecError(
            "pass a JobSpec or keyword fields, not both", field="spec"
        )
    return get_engine().submit(spec).id


def job_status(job_id: str) -> dict:
    """Deprecated: use ``ServiceClient(...).status(job_id)`` (or the
    handle's ``status()``).  The job's current state snapshot."""
    _warn_deprecated("job_status", "ServiceClient.status / JobHandle.status")
    from repro.service import get_engine

    return get_engine().status(job_id)


def job_result(job_id: str, timeout: float | None = None) -> dict:
    """Deprecated: use ``ServiceClient(...).result(job_id)`` (or the
    handle's ``result()``).  Blocks until terminal; raises the typed
    error the job ended with."""
    _warn_deprecated("job_result", "ServiceClient.result / JobHandle.result")
    from repro.service import get_engine

    return get_engine().result(job_id, timeout=timeout)


_LAZY_SERVICE = {
    # Facade surface that resolves lazily so ``import repro.api``
    # stays cheap (the service stack pulls in asyncio and the store).
    "JobSpec": ("repro.service.jobs", "JobSpec"),
    "ServiceClient": ("repro.service.client", "ServiceClient"),
    "JobHandle": ("repro.service.client", "JobHandle"),
}


def __getattr__(name: str):
    target = _LAZY_SERVICE.get(name)
    if target is not None:
        import importlib

        return getattr(importlib.import_module(target[0]), target[1])
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )
