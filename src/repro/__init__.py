"""Reproduction of *Profile-Guided Code Compression* (Debray & Evans, PLDI 2002).

The package implements the paper's system, ``squash``, on top of a
synthetic Alpha-like RISC substrate built from scratch:

* :mod:`repro.isa` -- the instruction set (typed fields, encoding,
  assembler/disassembler).
* :mod:`repro.program` -- basic blocks, functions, control-flow graphs,
  whole-program IR and image layout.
* :mod:`repro.vm` -- an interpreter with syscalls, basic-block
  profiling, and cycle accounting.
* :mod:`repro.squeeze` -- the `squeeze`-like code compactor the paper
  uses as its baseline (unreachable-code elimination, no-op removal,
  dead-store elimination, procedural abstraction).
* :mod:`repro.compress` -- splitting-streams compression with canonical
  Huffman codes (Section 3 of the paper).
* :mod:`repro.core` -- the paper's contribution: cold-code
  identification, compressible-region formation, buffer-safe analysis,
  unswitching, stubs, the staged binary rewriter, and the runtime
  decompressor.
* :mod:`repro.pipeline` -- the pass manager running the stage DAG,
  typed fingerprinted artifacts, and the plugin registries.
* :mod:`repro.workloads` -- seeded synthetic MediaBench-like programs.
* :mod:`repro.analysis` -- statistics and table/figure rendering for
  the paper's experiments.

The stable public surface lives in :mod:`repro.api` (typed ``squash``
/ ``run`` / ``sweep`` / ``verify`` plus their dataclass configs),
settings in :mod:`repro.settings`, observability in :mod:`repro.obs`;
the most common entry points are re-exported lazily here::

    from repro import squash, SquashConfig, mediabench_program, Machine
    from repro import run, sweep, verify, RunSpec, SweepSpec
"""

__version__ = "1.0.0"

_EXPORTS = {
    "squash": ("repro.api", "squash"),
    "run": ("repro.api", "run"),
    "sweep": ("repro.api", "sweep"),
    "verify": ("repro.api", "verify"),
    "squash_benchmark": ("repro.api", "squash_benchmark"),
    "load_squashed": ("repro.api", "load_squashed"),
    "RunSpec": ("repro.api", "RunSpec"),
    "RunOutcome": ("repro.api", "RunOutcome"),
    "SweepSpec": ("repro.api", "SweepSpec"),
    "LoadedSquash": ("repro.api", "LoadedSquash"),
    "SquashConfig": ("repro.api", "SquashConfig"),
    "SquashResult": ("repro.api", "SquashResult"),
    "Settings": ("repro.settings", "Settings"),
    "use_settings": ("repro.settings", "use_settings"),
    "current_settings": ("repro.settings", "current"),
    "MetricsRegistry": ("repro.obs.metrics", "MetricsRegistry"),
    "get_registry": ("repro.obs.metrics", "get_registry"),
    "Tracer": ("repro.obs.trace", "Tracer"),
    "get_tracer": ("repro.obs.trace", "get_tracer"),
    "enable_tracing": ("repro.obs.trace", "enable_tracing"),
    "BufferStrategy": ("repro.core.runtime", "BufferStrategy"),
    "squeeze": ("repro.squeeze.pipeline", "squeeze"),
    "PassManager": ("repro.pipeline.manager", "PassManager"),
    "Stage": ("repro.pipeline.manager", "Stage"),
    "StageReport": ("repro.pipeline.manager", "StageReport"),
    "Machine": ("repro.vm.machine", "Machine"),
    "RunResult": ("repro.vm.machine", "RunResult"),
    "collect_profile": ("repro.vm.profiler", "collect_profile"),
    "Profile": ("repro.vm.profiler", "Profile"),
    "ArtifactStore": ("repro.store", "ArtifactStore"),
    "get_store": ("repro.store", "get_store"),
    "StoreDegraded": ("repro.errors", "StoreDegraded"),
    "store_stats": ("repro.api", "store_stats"),
    "store_gc": ("repro.api", "store_gc"),
    "store_verify": ("repro.api", "store_verify"),
    "submit": ("repro.api", "submit"),
    "job_status": ("repro.api", "job_status"),
    "job_result": ("repro.api", "job_result"),
    "JobSpec": ("repro.service.jobs", "JobSpec"),
    "JobEngine": ("repro.service.engine", "JobEngine"),
    "ServiceClient": ("repro.service.client", "ServiceClient"),
    "JobHandle": ("repro.service.client", "JobHandle"),
    "ServiceOverloaded": ("repro.errors", "ServiceOverloaded"),
    "TenantQuotaExceeded": ("repro.errors", "TenantQuotaExceeded"),
    "JobExpired": ("repro.errors", "JobExpired"),
    "SpecError": ("repro.errors", "SpecError"),
    "MEDIABENCH": ("repro.workloads.mediabench", "MEDIABENCH"),
    "mediabench_program": ("repro.workloads.mediabench", "mediabench_program"),
    "mediabench_spec": ("repro.workloads.mediabench", "mediabench_spec"),
}

__all__ = ["__version__", *list(_EXPORTS)]


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro' has no attribute {name!r}") from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
