"""The typed service client: one API over local, spool, and HTTP transports.

:class:`ServiceClient` is the redesigned submission surface of
:mod:`repro.api` — it collapses the flat ``submit`` / ``job_status`` /
``job_result`` trio into one object with a handle-based API::

    client = api.ServiceClient()                  # in-process engine
    client = api.ServiceClient("spool", root=p)   # filesystem spool
    client = api.ServiceClient("http://host:8737")  # network front end

    handle = client.submit(kind="squash", payload={"name": "gsm"})
    handle.status()          # JSON snapshot
    handle.result(timeout=60.0)  # block; typed raise on failure
    handle.cancel()          # withdraw a still-queued job

Every transport surfaces the *same* typed errors
(:class:`~repro.errors.ServiceOverloaded` and friends), wherever in
the round trip they occur: the local and HTTP transports shed at
submit time, the spool sheds at wait time (the serving process answers
through the journal).  With ``retries > 0`` the client absorbs plain
overload sheds itself — it sleeps for the service's ``retry_after``
hint (never less than *retry_floor*) and resubmits, so a storm
degrades into bounded latency instead of an exception.  Quota sheds
(:class:`~repro.errors.TenantQuotaExceeded`) are never retried: a
tenant over its byte budget will not be helped by politeness.
"""

from __future__ import annotations

import json
import pathlib
import time
import urllib.error
import urllib.parse
import urllib.request

from repro.errors import (
    JobExpired,
    JobFailed,
    ServiceOverloaded,
    SpecError,
    TenantQuotaExceeded,
    UnknownJob,
)
from repro.obs.metrics import get_registry
from repro.service.jobs import JobSpec, new_job_id

__all__ = ["JobHandle", "ServiceClient"]

_METRICS = get_registry()

#: Transports accepted by :class:`ServiceClient` (plus ``http(s)://``
#: URLs, which select the HTTP transport).
TRANSPORTS = ("local", "spool")


def _terminal_error(job_id: str, state: str, error) -> Exception:
    """The typed exception a terminal journal record maps to (the
    client-side twin of ``JobEngine._terminal_error``)."""
    error_type, message = (tuple(error or ()) + ("", ""))[:2]
    if state == "expired" or error_type == "JobExpired":
        return JobExpired(message, job_id=job_id)
    if state == "cancelled":
        return JobFailed(
            message or "job cancelled",
            job_id=job_id, error_type=error_type or "Cancelled",
        )
    return JobFailed(message, job_id=job_id, error_type=error_type)


# -- transports ---------------------------------------------------------------


class _LocalTransport:
    """Directly against an in-process engine (the default)."""

    def __init__(self, engine=None):
        self._engine = engine

    @property
    def engine(self):
        if self._engine is None:
            from repro.service.engine import get_engine

            self._engine = get_engine()
        return self._engine

    def submit(self, spec: JobSpec, job_id: str | None = None) -> str:
        return self.engine.submit(spec, job_id=job_id).id

    def status(self, job_id: str) -> dict:
        return self.engine.status(job_id)

    def result(self, job_id: str, timeout: float | None = None) -> dict:
        return self.engine.result(job_id, timeout=timeout)

    def cancel(self, job_id: str, spec: JobSpec | None = None) -> bool:
        return self.engine.cancel(job_id)

    def close(self) -> None:
        pass


class _SpoolTransport:
    """Through the filesystem spool of a separate serving process."""

    def __init__(self, root: pathlib.Path | str | None = None):
        from repro.service.spool import SpoolClient

        self._spool = SpoolClient(root)

    def submit(self, spec: JobSpec, job_id: str | None = None) -> str:
        return self._spool.submit(spec, job_id=job_id)

    def status(self, job_id: str) -> dict:
        record = self._spool.journal.load(job_id)
        if record is None:
            if (self._spool.root / f"{job_id}.json").exists():
                # Spooled but not yet picked up by a server.
                return {"id": job_id, "state": "spooled"}
            raise UnknownJob(job_id=job_id)
        return {
            "id": job_id,
            "state": record.get("state", "unknown"),
            "tenant": (record.get("spec") or {}).get("tenant", "default"),
            "kind": (record.get("spec") or {}).get("kind", ""),
            "result": record.get("result"),
            "error": record.get("error"),
        }

    def result(self, job_id: str, timeout: float | None = None) -> dict:
        record = self._spool.wait(
            job_id, timeout=timeout if timeout is not None else 60.0
        )
        state = record.get("state", "")
        if state == "done":
            return record.get("result") or {}
        raise _terminal_error(job_id, state, record.get("error"))

    def cancel(self, job_id: str, spec: JobSpec | None = None) -> bool:
        return self._spool.cancel(job_id, spec=spec)

    def close(self) -> None:
        pass


#: Error body type name -> reconstructor; what makes the HTTP wire
#: transparent to typed ``except`` clauses.
_WIRE_ERRORS = {
    "TenantQuotaExceeded": lambda p: TenantQuotaExceeded(
        p.get("message", ""),
        tenant=p.get("tenant", ""),
        usage_bytes=p.get("usage_bytes", 0),
        quota_bytes=p.get("quota_bytes", 0),
        retry_after=p.get("retry_after", 0.0),
    ),
    "ServiceOverloaded": lambda p: ServiceOverloaded(
        p.get("message", ""),
        reason=p.get("reason", ""),
        retry_after=p.get("retry_after", 0.0),
        tenant=p.get("tenant", ""),
    ),
    "JobExpired": lambda p: JobExpired(
        p.get("message", ""), job_id=p.get("job_id", "")
    ),
    "SpecError": lambda p: SpecError(
        p.get("message", ""), field=p.get("field", "")
    ),
    "UnknownJob": lambda p: UnknownJob(
        p.get("message", ""), job_id=p.get("job_id", "")
    ),
    "JobFailed": lambda p: JobFailed(
        p.get("message", ""),
        job_id=p.get("job_id", ""),
        error_type=p.get("error_type", ""),
    ),
    "Timeout": lambda p: TimeoutError(p.get("message", "")),
}


class _HttpTransport:
    """Against the :mod:`repro.service.http` front end."""

    def __init__(self, base_url: str):
        self.base_url = base_url.rstrip("/")

    def _request(self, method: str, path: str,
                 body: dict | None = None,
                 timeout: float | None = None):
        data = (
            json.dumps(body, sort_keys=True).encode("utf-8")
            if body is not None else None
        )
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=timeout
            ) as response:
                return json.loads(response.read() or b"{}")
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except ValueError:
                payload = {}
            rebuild = _WIRE_ERRORS.get(payload.get("error", ""))
            if rebuild is not None:
                raise rebuild(payload) from None
            raise JobFailed(
                payload.get("message", str(exc)),
                error_type=payload.get("error", f"http-{exc.code}"),
            ) from None

    def submit(self, spec: JobSpec, job_id: str | None = None) -> str:
        body = {"schema_version": spec.schema_version,
                "spec": spec.to_record()}
        if job_id is not None:
            body["id"] = job_id
        return self._request("POST", "/v1/jobs", body=body)["id"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str, timeout: float | None = None) -> dict:
        query = ""
        socket_timeout = None
        if timeout is not None:
            query = "?" + urllib.parse.urlencode({"timeout": timeout})
            # The socket waits a little past the server-side timeout so
            # the typed 504 beats a raw socket error.
            socket_timeout = timeout + 10.0
        payload = self._request(
            "GET", f"/v1/jobs/{job_id}/result{query}",
            timeout=socket_timeout,
        )
        return payload.get("result") or {}

    def cancel(self, job_id: str, spec: JobSpec | None = None) -> bool:
        return bool(
            self._request("DELETE", f"/v1/jobs/{job_id}").get("cancelled")
        )

    def close(self) -> None:
        pass


# -- the client ---------------------------------------------------------------


class JobHandle:
    """One submitted job, bound to the client that submitted it.

    The handle keeps the spec, so the client-side retry loop can
    resubmit after a wait-time shed (the spool transport answers sheds
    through the journal, after submission) — ``id`` then moves to the
    fresh submission.
    """

    def __init__(self, client: "ServiceClient", spec: JobSpec,
                 job_id: str):
        self._client = client
        self.spec = spec
        self.id = job_id

    def status(self) -> dict:
        return self._client.status(self.id)

    def result(self, timeout: float | None = None) -> dict:
        return self._client._result_with_retry(self, timeout)

    def cancel(self) -> bool:
        return self._client._transport.cancel(self.id, spec=self.spec)

    def __repr__(self) -> str:
        return (
            f"JobHandle(id={self.id!r}, kind={self.spec.kind!r}, "
            f"tenant={self.spec.tenant!r})"
        )


class ServiceClient:
    """The typed client over one transport (see the module docstring).

    *target* is ``"local"`` (the in-process engine), ``"spool"`` (the
    filesystem spool under *root*), or an ``http(s)://`` base URL.
    *retries* bounds how many plain overload sheds the client absorbs
    per call before the typed error propagates; each wait honours the
    service's ``retry_after`` hint, floored at *retry_floor* seconds.
    """

    def __init__(
        self,
        target: str = "local",
        *,
        root: pathlib.Path | str | None = None,
        retries: int = 0,
        retry_floor: float = 0.05,
        engine=None,
    ):
        self.target = target
        self.retries = max(0, retries)
        self.retry_floor = retry_floor
        if target.startswith(("http://", "https://")):
            self._transport = _HttpTransport(target)
        elif target == "spool":
            self._transport = _SpoolTransport(root)
        elif target == "local":
            self._transport = _LocalTransport(engine)
        else:
            raise SpecError(
                f"unknown transport {target!r} (expected "
                f"{', '.join(TRANSPORTS)}, or an http(s):// URL)",
                field="target",
            )

    @property
    def transport(self) -> str:
        """The transport kind in use: ``local``, ``spool``, or ``http``."""
        if self.target.startswith(("http://", "https://")):
            return "http"
        return self.target

    # -- public API ----------------------------------------------------------

    def submit(self, spec: JobSpec | None = None, **fields) -> JobHandle:
        """Submit a job; returns a :class:`JobHandle`.

        Accepts a :class:`~repro.service.jobs.JobSpec` or its keyword
        fields.  Validation is client-side first (fail fast with a
        typed :class:`~repro.errors.SpecError`), then server-side
        again — the server trusts nothing the wire carried.
        """
        if spec is None:
            spec = JobSpec(**fields)
        elif fields:
            raise SpecError(
                "pass a JobSpec or keyword fields, not both",
                field="spec",
            )
        spec.validate()
        attempt = 0
        while True:
            try:
                job_id = self._transport.submit(spec)
                return JobHandle(self, spec, job_id)
            except TenantQuotaExceeded:
                raise
            except ServiceOverloaded as exc:
                attempt += 1
                if attempt > self.retries:
                    raise
                self._backoff(exc)

    def status(self, job_id: str) -> dict:
        return self._transport.status(job_id)

    def result(self, job_id: str, timeout: float | None = None) -> dict:
        """Block for a result by raw id (no shed-retry: without the
        spec the client cannot resubmit; use the handle for that)."""
        return self._transport.result(job_id, timeout=timeout)

    def cancel(self, job_id: str) -> bool:
        return self._transport.cancel(job_id)

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- retry loop ----------------------------------------------------------

    def _backoff(self, exc: ServiceOverloaded) -> None:
        delay = max(self.retry_floor, exc.retry_after or 0.0)
        _METRICS.inc("service.client.retries")
        _METRICS.observe("service.client.backoff_seconds", delay)
        time.sleep(delay)

    def _result_with_retry(
        self, handle: JobHandle, timeout: float | None
    ) -> dict:
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        attempt = 0
        while True:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                return self._transport.result(
                    handle.id, timeout=remaining
                )
            except TenantQuotaExceeded:
                raise
            except ServiceOverloaded as exc:
                # A wait-time shed (spool transport): back off for the
                # journaled hint and resubmit under a fresh id — the
                # shed id is terminal in the journal.
                attempt += 1
                if attempt > self.retries:
                    raise
                if deadline is not None and (
                    time.monotonic() + max(
                        self.retry_floor, exc.retry_after or 0.0
                    ) >= deadline
                ):
                    raise
                self._backoff(exc)
                handle.id = self._transport.submit(
                    handle.spec, job_id=new_job_id()
                )
