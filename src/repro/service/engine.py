"""The asyncio job engine: admission, scheduling, execution, drain.

:class:`JobEngine` turns the repro pipeline into squash-as-a-service.
It owns an asyncio event loop on a background thread and moves jobs
through four phases, each built robustness-first:

**Admission** — a bounded queue (``REPRO_SERVICE_QUEUE_DEPTH``).  A
submission that would overflow it is *shed* with a typed
:class:`~repro.errors.ServiceOverloaded` carrying a retry-after hint
derived from the observed job duration, so overload produces fast
typed failures instead of unbounded latency.  Draining or stopped
engines shed everything.  An accepted job is journaled before
``submit`` returns — from that instant it is crash-recoverable and the
engine guarantees a terminal state for it.

**Scheduling** — strict priority classes (``interactive`` before
``batch``), round-robin across tenants inside a class, and a
per-tenant cap on concurrently running jobs
(``REPRO_SERVICE_TENANT_CAP``).  A tenant that floods the queue gets
throughput, not a monopoly: other tenants' jobs interleave at every
slot the hog's cap frees.

**Execution** — up to ``REPRO_SERVICE_WORKERS`` jobs run concurrently
on an executor thread pool, each dispatching through the typed facade
(:func:`repro.service.jobs.execute_job`) so results are byte-identical
to direct :mod:`repro.api` calls.  A job deadline propagates: the
remaining budget tightens ``cell_deadline`` (scoped thread-locally via
:func:`repro.settings.use_settings`), so supervisor cells under the
job observe it; a job whose deadline lapses before or during execution
terminates ``expired`` with a typed :class:`~repro.errors.JobExpired`
— cancelled, never completed late.

**Drain** — SIGTERM/SIGINT (wired by ``repro serve``) stop admission,
let running jobs finish inside ``REPRO_SERVICE_DRAIN_TIMEOUT``,
journal still-queued jobs as ``requeued`` for the next start, and
release the warm worker-pool leases.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro import settings as _settings
from repro.errors import (
    JobExpired,
    JobFailed,
    ServiceOverloaded,
    TenantQuotaExceeded,
    UnknownJob,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.service.jobs import (
    PRIORITIES,
    Job,
    JobSpec,
    execute_job,
    new_job_id,
)
from repro.service.journal import JobJournal

__all__ = ["JobEngine", "ServiceConfig", "get_engine", "reset_engine"]

_METRICS = get_registry()

#: Retry-after floor so shed clients never busy-spin.
_MIN_RETRY_AFTER = 0.05

#: Upper-bound guess at one sealed journal record, so tenant-quota
#: admission sheds *before* the write that would overrun the budget.
_TENANT_RECORD_ESTIMATE = 2048


@dataclass(frozen=True)
class ServiceConfig:
    """Engine knobs, resolved from :mod:`repro.settings`."""

    queue_depth: int = 64
    workers: int = 2
    tenant_cap: int = 1
    default_deadline: float | None = None
    drain_timeout: float = 10.0
    journal: bool = True
    tenant_quota_bytes: int | None = None

    @classmethod
    def from_settings(
        cls, resolved: "_settings.Settings | None" = None
    ) -> "ServiceConfig":
        if resolved is None:
            resolved = _settings.current()
        return cls(
            queue_depth=resolved.service_queue_depth,
            workers=resolved.service_workers,
            tenant_cap=resolved.service_tenant_cap,
            default_deadline=resolved.service_deadline,
            drain_timeout=resolved.service_drain_timeout,
            journal=resolved.service_journal,
            tenant_quota_bytes=resolved.tenant_quota_bytes,
        )


class JobEngine:
    """One squash-as-a-service engine (see the module docstring).

    All mutable state lives on the engine's event-loop thread;
    ``submit``/``status``/``result`` are thread-safe entry points that
    marshal onto it.  ``execute_fn`` exists for tests and chaos
    harnesses that need controllable job bodies; production uses
    :func:`~repro.service.jobs.execute_job`.
    """

    def __init__(
        self,
        config: ServiceConfig | None = None,
        journal: JobJournal | None = None,
        execute_fn=execute_job,
    ):
        self.config = config or ServiceConfig.from_settings()
        self.journal = journal if journal is not None else (
            JobJournal() if self.config.journal else None
        )
        self._execute_fn = execute_fn
        self._tracer = get_tracer()
        self._jobs: dict[str, Job] = {}
        #: priority -> tenant -> FIFO of queued jobs.
        self._queues: dict[str, dict[str, deque[Job]]] = {
            priority: {} for priority in PRIORITIES
        }
        #: priority -> round-robin order of tenants with queued work.
        self._rr: dict[str, deque[str]] = {
            priority: deque() for priority in PRIORITIES
        }
        self._queued = 0
        self._running: dict[str, Job] = {}
        self._tenant_running: dict[str, int] = {}
        #: Sync waiters: job id -> Future resolved at terminal state.
        self._waiters: dict[str, Future] = {}
        #: EWMA of observed job run seconds (retry-after hints).
        self._avg_run = 0.5
        self._state = "stopped"
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._wake: asyncio.Event | None = None
        self._idle = threading.Event()
        self._idle.set()
        #: Test/chaos hook: queued jobs are not dispatched while set,
        #: making "queue at capacity" deterministic.
        self._dispatch_paused = False

    # -- lifecycle -----------------------------------------------------------

    def start(self, recover: bool = True) -> "JobEngine":
        """Boot the loop thread; with *recover*, re-enqueue every
        non-terminal journaled job a previous process left behind."""
        if self._state != "stopped":
            return self
        self._state = "running"
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-service",
        )
        started = threading.Event()

        def _loop_main() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self._wake = asyncio.Event()
            self._scheduler_task = loop.create_task(self._scheduler())
            started.set()
            loop.run_forever()
            # Cancel the scheduler and flush callbacks before closing.
            self._scheduler_task.cancel()
            try:
                loop.run_until_complete(
                    asyncio.gather(
                        self._scheduler_task, return_exceptions=True
                    )
                )
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=_loop_main, name="repro-service-loop", daemon=True
        )
        self._thread.start()
        started.wait()
        if recover and self.journal is not None:
            for job in self.journal.recover():
                try:
                    self._call(self._admit(job))
                except ServiceOverloaded:
                    # A recovery bigger than the queue re-journals the
                    # overflow as requeued; the next start resumes it.
                    job.state = "requeued"
                    self.journal.record(job)
        return self

    def stop(self, drain_timeout: float | None = None) -> None:
        """Graceful shutdown: drain, then tear the loop down."""
        if self._state == "stopped" or self._loop is None:
            return
        self.drain(drain_timeout)
        loop, self._loop = self._loop, None
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        self._state = "stopped"

    def drain(self, timeout: float | None = None) -> dict:
        """Stop admitting, wait for running jobs, requeue the rest.

        Returns ``{"finished": n, "requeued": n}``.  Queued jobs are
        journaled as ``requeued`` (recovered on the next start) and
        their in-process waiters fail with a typed
        :class:`~repro.errors.ServiceOverloaded`; warm pool leases are
        released back to the OS.
        """
        if self._state != "running" or self._loop is None:
            return {"finished": 0, "requeued": 0}
        self._state = "draining"
        budget = (
            timeout if timeout is not None else self.config.drain_timeout
        )
        deadline = time.monotonic() + budget
        finished = 0
        # Running jobs get the drain budget to finish.
        while time.monotonic() < deadline:
            if not self._running and self._idle.is_set():
                break
            time.sleep(0.01)
        report = self._call(self._drain_queued())
        finished = report["finished"]
        from repro.resilience.workerpool import get_pool_manager

        get_pool_manager().shutdown_all()
        _METRICS.inc("service.drains")
        return {"finished": finished, "requeued": report["requeued"]}

    async def _drain_queued(self) -> dict:
        requeued = 0
        for priority in PRIORITIES:
            for queue in self._queues[priority].values():
                while queue:
                    job = queue.popleft()
                    self._queued -= 1
                    job.state = "requeued"
                    self._journal(job)
                    _METRICS.inc("service.requeued")
                    self._resolve_waiter(
                        job,
                        ServiceOverloaded(
                            "service draining; job journaled for the "
                            "next start",
                            reason="draining",
                            retry_after=self.config.drain_timeout,
                            tenant=job.spec.tenant,
                        ),
                    )
                    requeued += 1
            self._queues[priority].clear()
            self._rr[priority].clear()
        finished = sum(
            1 for job in self._jobs.values() if job.terminal
        )
        return {"finished": finished, "requeued": requeued}

    # -- public API ----------------------------------------------------------

    def submit(
        self, spec: JobSpec, job_id: str | None = None
    ) -> Job:
        """Admit *spec*; returns the accepted job or raises typed
        :class:`~repro.errors.ServiceOverloaded` /
        :class:`~repro.errors.SpecError`."""
        spec.validate()
        job = Job(id=job_id or new_job_id(), spec=spec)
        return self._call(self._admit(job))

    def status(self, job_id: str) -> dict:
        """A JSON snapshot of one job's state (journal fallback for
        jobs from a previous process)."""
        job = self._jobs.get(job_id)
        if job is not None:
            return self._snapshot(job)
        if self.journal is not None:
            record = self.journal.load(job_id)
            if record is not None:
                return {
                    "id": job_id,
                    "state": record.get("state", "unknown"),
                    "tenant": (record.get("spec") or {}).get(
                        "tenant", "default"
                    ),
                    "kind": (record.get("spec") or {}).get("kind", ""),
                    "recovered": record.get("recovered", False),
                    "result": record.get("result"),
                    "error": record.get("error"),
                }
        raise UnknownJob(job_id=job_id)

    def result(self, job_id: str, timeout: float | None = None) -> dict:
        """Block until *job_id* is terminal; the result payload, or a
        typed raise mirroring how the job ended."""
        job = self._jobs.get(job_id)
        if job is None:
            status = self.status(job_id)  # raises UnknownJob
            if status["state"] == "done" and status.get("result"):
                return status["result"]
            error = status.get("error") or ["JobFailed", status["state"]]
            raise self._terminal_error(
                job_id, status["state"], tuple(error)
            )
        waiter = self._call(self._waiter_for(job))
        return waiter.result(timeout=timeout)

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; True when it was cancelled.

        A running job is not interrupted (its executor thread owns the
        work) and a terminal job cannot change state — both return
        False.  Raises :class:`~repro.errors.UnknownJob` for ids the
        engine never saw.
        """
        return self._call(self._cancel(job_id))

    async def _cancel(self, job_id: str) -> bool:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJob(job_id=job_id)
        if job.terminal or job.state != "queued":
            return False
        queue = self._queues[job.spec.priority].get(job.spec.tenant)
        if queue is None or job not in queue:
            return False
        queue.remove(job)
        self._queued -= 1
        _METRICS.set_gauge("service.queue_depth", self._queued)
        self._finish(
            job, "cancelled",
            error=JobFailed(
                "cancelled by the client before it started",
                job_id=job.id, error_type="Cancelled",
            ),
        )
        return True

    def stats(self) -> dict:
        return {
            "state": self._state,
            "queued": self._queued,
            "running": len(self._running),
            "jobs": len(self._jobs),
            "tenants_running": dict(self._tenant_running),
            "avg_run_seconds": self._avg_run,
        }

    # -- loop plumbing -------------------------------------------------------

    def _call(self, coro):
        """Run *coro* on the engine loop and return its result."""
        if self._loop is None:
            coro.close()
            raise ServiceOverloaded(
                "service is stopped", reason="stopped",
                retry_after=self.config.drain_timeout,
            )
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop
        ).result()

    def _journal(self, job: Job) -> None:
        if self.journal is not None:
            self.journal.record(job)

    def _snapshot(self, job: Job) -> dict:
        return {
            "id": job.id,
            "state": job.state,
            "tenant": job.spec.tenant,
            "kind": job.spec.kind,
            "priority": job.spec.priority,
            "recovered": job.recovered,
            "result": job.result,
            "error": list(job.error) if job.error else None,
        }

    def _terminal_error(
        self, job_id: str, state: str, error: tuple[str, str]
    ):
        error_type, message = (tuple(error) + ("", ""))[:2]
        if state == "expired" or error_type == "JobExpired":
            return JobExpired(message, job_id=job_id)
        if error_type == "ServiceOverloaded":
            return ServiceOverloaded(message, reason="requeued")
        if state == "cancelled":
            return JobFailed(
                message or "job cancelled",
                job_id=job_id, error_type=error_type or "Cancelled",
            )
        return JobFailed(message, job_id=job_id, error_type=error_type)

    # -- admission -----------------------------------------------------------

    def _retry_after(self) -> float:
        """How long a shed client should wait: roughly one queue's
        worth of work across the worker slots."""
        backlog = self._queued + len(self._running)
        waves = max(1.0, backlog / max(1, self.config.workers))
        return max(_MIN_RETRY_AFTER, waves * self._avg_run)

    async def _admit(self, job: Job) -> Job:
        tenant = job.spec.tenant
        if self._state != "running":
            _METRICS.inc("service.shed")
            raise ServiceOverloaded(
                "service is not admitting jobs",
                reason=self._state or "stopped",
                retry_after=self.config.drain_timeout,
                tenant=tenant,
            )
        quota = self.config.tenant_quota_bytes
        if quota is not None and self.journal is not None:
            usage = self.journal.tenant_usage(tenant)
            if usage + _TENANT_RECORD_ESTIMATE > quota:
                _METRICS.inc("service.shed")
                _METRICS.inc(f"service.tenant.{tenant}.quota_shed")
                if self._tracer.enabled:
                    self._tracer.emit(
                        "job.quota_shed", "service", tenant=tenant,
                        usage=usage, quota=quota,
                    )
                raise TenantQuotaExceeded(
                    f"tenant {tenant} over its store budget",
                    tenant=tenant,
                    usage_bytes=usage,
                    quota_bytes=quota,
                    retry_after=self._retry_after(),
                )
        if self._queued >= self.config.queue_depth:
            _METRICS.inc("service.shed")
            _METRICS.inc(f"service.tenant.{tenant}.shed")
            if self._tracer.enabled:
                self._tracer.emit(
                    "job.shed", "service", tenant=tenant,
                    depth=self._queued,
                )
            raise ServiceOverloaded(
                f"admission queue full "
                f"({self._queued}/{self.config.queue_depth})",
                reason="queue-full",
                retry_after=self._retry_after(),
                tenant=tenant,
            )
        now = time.monotonic()
        job.submitted_at = now
        deadline = job.spec.deadline
        if deadline is None:
            deadline = self.config.default_deadline
        if deadline:
            job.deadline_at = now + deadline
        job.state = "queued"
        self._jobs[job.id] = job
        queues = self._queues[job.spec.priority]
        if tenant not in queues:
            queues[tenant] = deque()
        if tenant not in self._rr[job.spec.priority]:
            self._rr[job.spec.priority].append(tenant)
        queues[tenant].append(job)
        self._queued += 1
        self._idle.clear()
        self._journal(job)
        _METRICS.inc("service.admitted")
        _METRICS.inc(f"service.tenant.{tenant}.admitted")
        _METRICS.set_gauge("service.queue_depth", self._queued)
        if self._tracer.enabled:
            self._tracer.emit(
                "job.admit", "service", job=job.id, tenant=tenant,
                kind=job.spec.kind, priority=job.spec.priority,
            )
        assert self._wake is not None
        self._wake.set()
        return job

    async def _waiter_for(self, job: Job) -> Future:
        waiter = self._waiters.get(job.id)
        if waiter is None:
            waiter = self._waiters[job.id] = Future()
            if job.terminal:
                self._resolve_waiter(job, None)
        return waiter

    def _resolve_waiter(
        self, job: Job, error: BaseException | None
    ) -> None:
        waiter = self._waiters.get(job.id)
        if waiter is None or waiter.done():
            return
        if error is not None:
            waiter.set_exception(error)
        elif job.state == "done":
            waiter.set_result(job.result or {})
        elif job.terminal:
            waiter.set_exception(
                self._terminal_error(
                    job.id, job.state, job.error or ("JobFailed", "")
                )
            )

    # -- scheduling ----------------------------------------------------------

    def _pick(self, now: float) -> Job | None:
        """Next runnable job: priority order, round-robin tenants,
        tenants at their running cap skipped."""
        for priority in PRIORITIES:
            order = self._rr[priority]
            queues = self._queues[priority]
            for _ in range(len(order)):
                tenant = order[0]
                order.rotate(-1)
                queue = queues.get(tenant)
                if not queue:
                    continue
                if (
                    self._tenant_running.get(tenant, 0)
                    >= self.config.tenant_cap
                ):
                    continue
                job = queue.popleft()
                self._queued -= 1
                _METRICS.set_gauge("service.queue_depth", self._queued)
                return job
        return None

    def _expire_queued(self, now: float) -> None:
        for priority in PRIORITIES:
            for queue in self._queues[priority].values():
                survivors = [
                    job for job in queue
                    if not self._maybe_expire(job, now)
                ]
                if len(survivors) != len(queue):
                    self._queued -= len(queue) - len(survivors)
                    _METRICS.set_gauge(
                        "service.queue_depth", self._queued
                    )
                    queue.clear()
                    queue.extend(survivors)

    def _maybe_expire(self, job: Job, now: float) -> bool:
        """Terminally expire *job* if its deadline passed (does not
        touch the queued count; callers own that bookkeeping)."""
        remaining = job.remaining(now)
        if remaining is None or remaining > 0:
            return False
        self._finish(
            job, "expired",
            error=JobExpired(
                "deadline passed while queued",
                job_id=job.id, deadline=job.spec.deadline,
            ),
        )
        return True

    def _next_deadline(self, now: float) -> float | None:
        deadlines = [
            job.deadline_at
            for queues in self._queues.values()
            for queue in queues.values()
            for job in queue
            if job.deadline_at is not None
        ]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - now)

    async def _scheduler(self) -> None:
        assert self._wake is not None
        while True:
            now = time.monotonic()
            self._expire_queued(now)
            while (
                not self._dispatch_paused
                and len(self._running) < self.config.workers
            ):
                job = self._pick(now)
                if job is None:
                    break
                if self._maybe_expire(job, now):
                    continue
                self._start_job(job, now)
            if not self._queued and not self._running:
                self._idle.set()
            self._wake.clear()
            timeout = self._next_deadline(time.monotonic())
            try:
                await asyncio.wait_for(
                    self._wake.wait(), timeout=timeout
                )
            except asyncio.TimeoutError:
                pass

    def _start_job(self, job: Job, now: float) -> None:
        job.state = "running"
        job.started_at = now
        tenant = job.spec.tenant
        self._running[job.id] = job
        self._tenant_running[tenant] = (
            self._tenant_running.get(tenant, 0) + 1
        )
        self._journal(job)
        wait = now - job.submitted_at
        _METRICS.observe("service.wait_seconds", wait)
        _METRICS.observe(f"service.tenant.{tenant}.wait_seconds", wait)
        if self._tracer.enabled:
            self._tracer.emit(
                "job.start", "service", job=job.id, tenant=tenant,
            )
        assert self._loop is not None and self._executor is not None
        future = self._loop.run_in_executor(
            self._executor, self._run_job, job
        )
        future.add_done_callback(
            lambda fut, job=job: self._job_done(job, fut)
        )

    # -- execution (worker threads) ------------------------------------------

    def effective_cell_deadline(
        self, job: Job, now: float | None = None
    ) -> float | None:
        """The supervisor cell deadline this job's work runs under:
        the configured ``cell_deadline`` tightened by the job's
        remaining budget (whichever is smaller wins)."""
        remaining = job.remaining(now if now is not None else
                                  time.monotonic())
        configured = _settings.current().cell_deadline
        if remaining is None:
            return configured
        remaining = max(0.0, remaining)
        if configured is None:
            return remaining
        return min(configured, remaining)

    def _run_job(self, job: Job) -> dict:
        now = time.monotonic()
        remaining = job.remaining(now)
        if remaining is not None and remaining <= 0:
            raise JobExpired(
                "deadline passed before execution started",
                job_id=job.id, deadline=job.spec.deadline,
            )
        cell_deadline = self.effective_cell_deadline(job, now)
        with _settings.use_settings(cell_deadline=cell_deadline):
            result = self._execute_fn(job.spec)
        if job.deadline_at is not None and (
            time.monotonic() > job.deadline_at
        ):
            # Completed late: the deadline contract says cancel, so
            # the (already computed) result is discarded.
            raise JobExpired(
                "work finished after the deadline; result discarded",
                job_id=job.id, deadline=job.spec.deadline,
            )
        return result

    def _job_done(self, job: Job, future) -> None:
        """Executor completion -> terminal accounting on the loop."""
        try:
            result = future.result()
            error = None
        except BaseException as exc:  # noqa: BLE001 - classified below
            result, error = None, exc
        loop = self._loop
        if loop is None:
            return  # engine stopped mid-callback; journal kept "running"
        try:
            loop.call_soon_threadsafe(
                self._finish_running, job, result, error
            )
        except RuntimeError:
            pass  # loop closed between the check and the call

    def _finish_running(
        self, job: Job, result: dict | None, error: BaseException | None
    ) -> None:
        self._running.pop(job.id, None)
        tenant = job.spec.tenant
        count = self._tenant_running.get(tenant, 0) - 1
        if count > 0:
            self._tenant_running[tenant] = count
        else:
            self._tenant_running.pop(tenant, None)
        if job.started_at is not None:
            elapsed = time.monotonic() - job.started_at
            self._avg_run = 0.8 * self._avg_run + 0.2 * elapsed
            _METRICS.observe("service.run_seconds", elapsed)
            _METRICS.observe(
                f"service.tenant.{tenant}.run_seconds", elapsed
            )
        if error is None:
            job.result = result
            self._finish(job, "done")
        elif isinstance(error, JobExpired):
            self._finish(job, "expired", error=error)
        else:
            self._finish(job, "failed", error=error)
        assert self._wake is not None
        self._wake.set()

    def _finish(
        self, job: Job, state: str, error: BaseException | None = None
    ) -> None:
        job.state = state
        job.finished_at = time.monotonic()
        if error is not None:
            job.error = (type(error).__name__, str(error))
        self._journal(job)
        _METRICS.inc(f"service.{state}")
        _METRICS.inc(f"service.tenant.{job.spec.tenant}.{state}")
        if self._tracer.enabled:
            self._tracer.emit(
                "job.done", "service", job=job.id, state=state,
            )
        self._resolve_waiter(
            job,
            error if isinstance(
                error, (JobExpired, ServiceOverloaded)
            ) else None,
        )
        if not self._queued and not self._running:
            self._idle.set()


# -- process-wide engine ------------------------------------------------------

_ENGINE: JobEngine | None = None
_ENGINE_LOCK = threading.Lock()


def get_engine() -> JobEngine:
    """The process-wide engine behind ``api.submit``; lazily started
    (with journal recovery) on first use."""
    global _ENGINE
    with _ENGINE_LOCK:
        if _ENGINE is None:
            _ENGINE = JobEngine().start(recover=True)
        return _ENGINE


def reset_engine() -> None:
    """Stop and forget the process-wide engine (tests)."""
    global _ENGINE
    with _ENGINE_LOCK:
        engine, _ENGINE = _ENGINE, None
    if engine is not None:
        engine.stop(drain_timeout=0.5)
