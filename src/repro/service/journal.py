"""Crash-safe job journal on the unified artifact store.

Every state transition of every accepted job is persisted as one
sealed record in the store's ``job`` namespace (hardlinked,
CRC-sealed, written with the O_EXCL temp + fsync + atomic replace
discipline of :mod:`repro.store`).  A SIGKILLed service therefore
restarts with the full picture: which jobs were queued, which were
running, which already finished — :meth:`JobJournal.recover` hands the
non-terminal ones back to the engine to resume, so an accepted job is
never silently lost.

The journal inherits the store's degradation ladder: when the store is
dead (ENOSPC storm, unwritable root, open breaker) a record write
raises :class:`~repro.errors.StoreDegraded`, which the journal absorbs
— jobs keep executing from memory, ``service.journal_degraded`` counts
the lost persistence, and crash recovery is best-effort until the disk
heals.  A degraded journal slows recovery down; it never fails a job.
"""

from __future__ import annotations

import pathlib
import time

from repro.errors import StoreDegraded, TenantQuotaExceeded
from repro.obs.metrics import get_registry
from repro.service.jobs import TERMINAL_STATES, Job, JobSpec

__all__ = ["JobJournal"]

_METRICS = get_registry()


class JobJournal:
    """Sealed per-job records in the store's ``job`` namespace."""

    def __init__(self, root: pathlib.Path | str | None = None):
        from repro.analysis.parallel import cache_dir
        from repro.store import get_store

        self.root = pathlib.Path(root) if root is not None else cache_dir()
        self._store = get_store(self.root)
        #: Monotone per-process sequence so a reader can order the
        #: transitions of one job even though each write replaces the
        #: previous record.
        self._seq = 0

    # -- writes --------------------------------------------------------------

    def record(self, job: Job) -> bool:
        """Persist *job*'s current state; False when the store
        degraded and the record was dropped (jobs continue regardless)."""
        self._seq += 1
        record = {
            "id": job.id,
            "spec": job.spec.to_record(),
            "state": job.state,
            "seq": self._seq,
            "wall_time": time.time(),
            "recovered": job.recovered,
            "result": job.result,
            "error": list(job.error) if job.error else None,
        }
        if job.retry_after is not None:
            record["retry_after"] = job.retry_after
        try:
            self._store.put(
                "job", job.id, record, tenant=job.spec.tenant
            )
        except TenantQuotaExceeded:
            # The tenant is over budget and its own refs could not
            # make room; the job keeps running from memory — only its
            # persistence is lost, and admission sheds the tenant's
            # *next* submissions.
            _METRICS.inc(
                f"service.tenant.{job.spec.tenant}.journal_quota_drops"
            )
            return False
        except StoreDegraded:
            _METRICS.inc("service.journal_degraded")
            return False
        return True

    def tenant_usage(self, tenant: str) -> int:
        """Live store bytes attributed to *tenant* (see
        :meth:`repro.store.store.ArtifactStore.tenant_usage`)."""
        return self._store.tenant_usage(tenant)

    # -- reads ---------------------------------------------------------------

    def load(self, job_id: str) -> dict | None:
        """The last persisted record of *job_id*, or None."""
        try:
            return self._store.get("job", job_id)
        except StoreDegraded:
            _METRICS.inc("service.journal_degraded")
            return None

    def load_all(self) -> dict[str, dict]:
        """Every persisted job record, keyed by id."""
        records: dict[str, dict] = {}
        for entry in self._store.scan():
            if entry.ns != "job":
                continue
            record = self.load(entry.key)
            if record is not None and record.get("id"):
                records[record["id"]] = record
        return records

    def recover(self) -> list[Job]:
        """Rebuild the non-terminal jobs a dead service left behind.

        Queued and running records come back as fresh ``queued`` jobs
        flagged ``recovered`` (execution is deterministic and
        store-cached, so re-running is safe); terminal records are left
        as they are.
        """
        jobs: list[Job] = []
        for job_id, record in sorted(self.load_all().items()):
            state = record.get("state")
            if state in TERMINAL_STATES or state == "shed":
                continue
            job = Job(
                id=job_id,
                spec=JobSpec.from_record(record.get("spec") or {}),
                state="queued",
                recovered=True,
            )
            jobs.append(job)
            _METRICS.inc("service.recovered")
        return jobs
