"""The stdlib HTTP front end: the typed service contract over a socket.

``repro serve --http`` exposes the :class:`~repro.service.engine.JobEngine`
through a small JSON API (``http.server.ThreadingHTTPServer``; no
third-party dependency), mirroring the local typed contract exactly —
every typed service error maps to one stable HTTP status, so a remote
caller can branch on the same taxonomy a local caller catches::

    POST   /v1/jobs             submit  {"schema_version", "id"?, "spec"}
    GET    /v1/jobs             list journal/engine job snapshots
    GET    /v1/jobs/<id>        status snapshot
    GET    /v1/jobs/<id>/result block (``?timeout=seconds``) for the result
    DELETE /v1/jobs/<id>        cancel a still-queued job
    GET    /v1/health           liveness + engine stats

The error contract (also the table in DESIGN.md §14):

=====================  ======  ==========================================
typed error            status  extras
=====================  ======  ==========================================
``TenantQuotaExceeded``  429   ``Retry-After`` header, tenant + usage
``ServiceOverloaded``    503   ``Retry-After`` header from the EWMA hint
``JobExpired``           410   job id + deadline
``SpecError``            422   ``field`` names the offending spec field
``UnknownJob``           404   job id
``JobFailed``            500   ``error_type`` of the underlying failure
(timeout waiting)        504   result long-poll exceeded ``?timeout=``
(malformed request)      400   body was not the JSON envelope
=====================  ======  ==========================================

Error bodies carry ``{"error": <type name>, "message": ..., ...}`` plus
the typed exception's own fields (``retry_after``, ``field``,
``reason``, ...), which is what lets the HTTP transport of
:class:`repro.service.client.ServiceClient` re-raise the *same* typed
exception on the client side of the wire.
"""

from __future__ import annotations

import json
import math
import threading
import urllib.parse
from concurrent.futures import TimeoutError as FutureTimeoutError
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro import settings as _settings
from repro.errors import (
    JobExpired,
    JobFailed,
    ServiceOverloaded,
    SpecError,
    SquashError,
    TenantQuotaExceeded,
    UnknownJob,
)
from repro.obs.metrics import get_registry
from repro.service.jobs import (
    ACCEPTED_SCHEMA_VERSIONS,
    SCHEMA_VERSION,
    JobSpec,
)

__all__ = [
    "ERROR_STATUS",
    "HttpServiceServer",
    "error_payload",
    "serve_http",
]

_METRICS = get_registry()

#: Typed error -> stable HTTP status; order matters (subclasses first).
ERROR_STATUS: tuple[tuple[type, int], ...] = (
    (TenantQuotaExceeded, 429),
    (ServiceOverloaded, 503),
    (JobExpired, 410),
    (SpecError, 422),
    (UnknownJob, 404),
    (JobFailed, 500),
)


def error_payload(exc: SquashError) -> dict:
    """The JSON error body for *exc*: type name, message, and every
    wire-relevant typed field the exception carries."""
    payload = {"error": type(exc).__name__, "message": exc.message}
    for attr in ("reason", "retry_after", "tenant", "field", "job_id",
                 "error_type", "deadline", "usage_bytes", "quota_bytes"):
        value = getattr(exc, attr, None)
        if value not in (None, "", 0, 0.0) or (
            attr == "retry_after" and value is not None
        ):
            payload[attr] = value
    return payload


def error_status(exc: SquashError) -> int:
    for cls, status in ERROR_STATUS:
        if isinstance(exc, cls):
            return status
    return 500


def _make_handler(engine):
    class _Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server_version = "repro-service"

        # -- plumbing --------------------------------------------------------

        def log_message(self, fmt, *args):  # noqa: ARG002
            pass  # metrics, not stderr chatter

        def _respond(self, status: int, payload: dict,
                     headers: dict | None = None) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
            _METRICS.inc("service.http.requests")
            _METRICS.inc(f"service.http.status.{status}")

        def _respond_error(self, exc: SquashError) -> None:
            headers = {}
            if isinstance(exc, ServiceOverloaded):
                # RFC-style integer seconds in the header; the precise
                # float rides in the body for typed clients.
                headers["Retry-After"] = str(
                    max(1, math.ceil(exc.retry_after or 0.0))
                )
            self._respond(error_status(exc), error_payload(exc), headers)

        def _dispatch(self, method: str) -> None:
            parsed = urllib.parse.urlsplit(self.path)
            parts = [p for p in parsed.path.split("/") if p]
            query = dict(urllib.parse.parse_qsl(parsed.query))
            try:
                self._route(method, parts, query)
            except SquashError as exc:
                self._respond_error(exc)
            except FutureTimeoutError:
                self._respond(
                    504,
                    {"error": "Timeout",
                     "message": "job not terminal within the "
                                "requested timeout"},
                )
            except BrokenPipeError:
                pass  # client went away mid-response
            except Exception as exc:  # noqa: BLE001 - wire boundary
                self._respond(
                    500,
                    {"error": type(exc).__name__, "message": str(exc)},
                )

        # -- routing ---------------------------------------------------------

        def _route(self, method: str, parts: list[str],
                   query: dict) -> None:
            if parts[:1] != ["v1"]:
                self._respond(
                    404, {"error": "NotFound", "message": self.path}
                )
                return
            rest = parts[1:]
            if rest == ["health"] and method == "GET":
                stats = engine.stats()
                self._respond(200, {
                    "ok": stats["state"] == "running",
                    "schema_version": SCHEMA_VERSION,
                    "stats": stats,
                })
                return
            if rest == ["jobs"] and method == "POST":
                self._submit()
                return
            if rest == ["jobs"] and method == "GET":
                self._list_jobs()
                return
            if len(rest) == 2 and rest[0] == "jobs" and method == "GET":
                self._respond(200, engine.status(rest[1]))
                return
            if len(rest) == 2 and rest[0] == "jobs" and method == "DELETE":
                self._respond(
                    200,
                    {"id": rest[1], "cancelled": engine.cancel(rest[1])},
                )
                return
            if (
                len(rest) == 3
                and rest[0] == "jobs"
                and rest[2] == "result"
                and method == "GET"
            ):
                timeout = None
                raw = query.get("timeout")
                if raw is not None:
                    try:
                        timeout = float(raw)
                    except ValueError:
                        raise SpecError(
                            f"timeout must be a number, not {raw!r}",
                            field="timeout",
                        ) from None
                result = engine.result(rest[1], timeout=timeout)
                self._respond(200, {"id": rest[1], "result": result})
                return
            self._respond(
                405 if rest[:1] == ["jobs"] else 404,
                {"error": "NotFound", "message": self.path},
            )

        def _read_body(self) -> dict:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b""
            try:
                body = json.loads(raw or b"{}")
            except ValueError:
                body = None
            if not isinstance(body, dict):
                raise _BadRequest("request body must be a JSON object")
            return body

        def _submit(self) -> None:
            try:
                body = self._read_body()
            except _BadRequest as exc:
                self._respond(
                    400, {"error": "BadRequest", "message": str(exc)}
                )
                return
            record = body.get("spec")
            if not isinstance(record, dict):
                raise SpecError(
                    "submit body needs a 'spec' object", field="spec"
                )
            if "schema_version" in body:
                version = body["schema_version"]
                if version not in ACCEPTED_SCHEMA_VERSIONS:
                    raise SpecError(
                        f"unknown wire schema_version {version!r} "
                        f"(accepted: "
                        f"{', '.join(map(str, ACCEPTED_SCHEMA_VERSIONS))})",
                        field="schema_version",
                    )
                if "schema_version" not in record:
                    record = dict(record, schema_version=version)
            spec = JobSpec.from_record(record)
            job = engine.submit(spec, job_id=body.get("id"))
            self._respond(202, {
                "id": job.id,
                "state": job.state,
                "schema_version": SCHEMA_VERSION,
            })

        def _list_jobs(self) -> None:
            if engine.journal is not None:
                records = engine.journal.load_all()
                jobs = [
                    {
                        "id": job_id,
                        "state": record.get("state", "unknown"),
                        "tenant": (record.get("spec") or {}).get(
                            "tenant", "default"
                        ),
                        "kind": (record.get("spec") or {}).get("kind", ""),
                    }
                    for job_id, record in sorted(records.items())
                ]
            else:
                jobs = [
                    engine.status(job_id)
                    for job_id in sorted(engine._jobs)
                ]
            self._respond(200, {"jobs": jobs})

        # -- verbs -----------------------------------------------------------

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            self._dispatch("GET")

        def do_POST(self) -> None:  # noqa: N802
            self._dispatch("POST")

        def do_DELETE(self) -> None:  # noqa: N802
            self._dispatch("DELETE")

    return _Handler


class _BadRequest(Exception):
    pass


class HttpServiceServer:
    """A running HTTP front end over one engine.

    Binds on construction (so an ephemeral ``port=0`` resolves
    immediately), serves on a daemon thread after :meth:`start`, and
    shuts down cleanly in :meth:`stop` — also usable as a context
    manager.  ``url`` is the base the HTTP transport of
    :class:`~repro.service.client.ServiceClient` takes.
    """

    def __init__(self, engine, host: str | None = None,
                 port: int | None = None):
        resolved = _settings.current()
        if host is None:
            host = resolved.service_http_host
        if port is None:
            port = resolved.service_http_port
        self.engine = engine
        self._httpd = ThreadingHTTPServer((host, port),
                                          _make_handler(engine))
        self._httpd.daemon_threads = True
        self.host = self._httpd.server_address[0]
        self.port = self._httpd.server_address[1]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HttpServiceServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-service-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "HttpServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_http(engine, host: str | None = None,
               port: int | None = None) -> HttpServiceServer:
    """Bind and start the HTTP front end for *engine*; returns the
    running server (callers own ``stop()``)."""
    return HttpServiceServer(engine, host=host, port=port).start()
