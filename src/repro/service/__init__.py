"""Squash-as-a-service: the async job layer over the typed facade.

The engine (:mod:`repro.service.engine`) accepts squash/sweep/verify
jobs through a bounded admission queue with typed load shedding,
schedules them fairly across tenants under per-tenant caps and
priority classes, propagates job deadlines into supervisor cell
deadlines, journals every state transition crash-safely through
:mod:`repro.store`, and drains gracefully on SIGTERM/SIGINT.

Entry points:

* library — :class:`repro.service.client.ServiceClient` is the one
  typed client over every transport (``"local"`` in-process engine,
  ``"spool"`` filesystem, ``"http://host:port"``); the pre-client
  ``api.submit`` / ``api.job_status`` / ``api.job_result`` shims still
  drive the process-wide engine (:func:`get_engine`);
* processes — ``repro serve`` runs the engine against the filesystem
  spool (:mod:`repro.service.spool`) and, with ``--http``, the JSON
  front end (:mod:`repro.service.http`); ``repro submit`` spools
  requests (or POSTs with ``--url``), ``repro jobs`` lists journal
  records.  Serving processes sharing one store also co-compute
  fan-out sweeps (:mod:`repro.service.fanout`);
* chaos — :mod:`repro.faultinject.servechaos` (``repro servechaos``)
  storms, starves, SIGKILLs, and degrades the whole stack, over
  either transport.
"""

from repro.service.client import JobHandle, ServiceClient
from repro.service.engine import (
    JobEngine,
    ServiceConfig,
    get_engine,
    reset_engine,
)
from repro.service.http import HttpServiceServer, serve_http
from repro.service.jobs import (
    JOB_KINDS,
    PRIORITIES,
    SCHEMA_VERSION,
    TERMINAL_STATES,
    Job,
    JobSpec,
    execute_job,
    new_job_id,
)
from repro.service.journal import JobJournal
from repro.service.spool import SpoolClient, serve_forever, spool_dir

__all__ = [
    "JOB_KINDS",
    "PRIORITIES",
    "SCHEMA_VERSION",
    "TERMINAL_STATES",
    "HttpServiceServer",
    "Job",
    "JobEngine",
    "JobHandle",
    "JobJournal",
    "JobSpec",
    "ServiceClient",
    "ServiceConfig",
    "SpoolClient",
    "execute_job",
    "get_engine",
    "new_job_id",
    "reset_engine",
    "serve_forever",
    "serve_http",
    "spool_dir",
]
