"""Squash-as-a-service: the async job layer over the typed facade.

The engine (:mod:`repro.service.engine`) accepts squash/sweep/verify
jobs through a bounded admission queue with typed load shedding,
schedules them fairly across tenants under per-tenant caps and
priority classes, propagates job deadlines into supervisor cell
deadlines, journals every state transition crash-safely through
:mod:`repro.store`, and drains gracefully on SIGTERM/SIGINT.

Entry points:

* library — ``api.submit`` / ``api.job_status`` / ``api.job_result``
  drive the process-wide engine (:func:`get_engine`);
* processes — ``repro serve`` runs the engine against the filesystem
  spool (:mod:`repro.service.spool`), ``repro submit`` spools requests
  and waits on the journal, ``repro jobs`` lists journal records;
* chaos — :mod:`repro.faultinject.servechaos` (``repro servechaos``)
  storms, starves, SIGKILLs, and degrades the whole stack.
"""

from repro.service.engine import (
    JobEngine,
    ServiceConfig,
    get_engine,
    reset_engine,
)
from repro.service.jobs import (
    JOB_KINDS,
    PRIORITIES,
    TERMINAL_STATES,
    Job,
    JobSpec,
    execute_job,
    new_job_id,
)
from repro.service.journal import JobJournal
from repro.service.spool import SpoolClient, serve_forever, spool_dir

__all__ = [
    "JOB_KINDS",
    "PRIORITIES",
    "TERMINAL_STATES",
    "Job",
    "JobEngine",
    "JobJournal",
    "JobSpec",
    "ServiceConfig",
    "SpoolClient",
    "execute_job",
    "get_engine",
    "new_job_id",
    "reset_engine",
    "serve_forever",
    "spool_dir",
]
