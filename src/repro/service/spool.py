"""Filesystem submission spool: how ``repro submit`` reaches ``repro serve``.

The service's cross-process transport is deliberately boring: a client
writes one JSON request file into ``<root>/spool/`` (O_EXCL temp +
atomic rename, so the server never reads a torn request) and then
polls the job journal for the terminal record.  The serving process
scans the spool, admits each request into its :class:`JobEngine`, and
unlinks the file only *after* the job is journaled — a SIGKILL between
admission and unlink re-presents the file on restart, where the
journal's record of the id deduplicates it.  Shed requests are
journaled as ``shed`` (with the retry-after hint) so the submitting
process gets a typed answer instead of silence.

No sockets means no partial-read protocol surface, and the SIGKILL
chaos scenario (:mod:`repro.faultinject.servechaos`) can murder the
server at any instant without a client-side hang: clients only ever
wait on journal records with their own timeout.
"""

from __future__ import annotations

import json
import os
import pathlib
import secrets
import time

from repro.errors import (
    ServiceOverloaded,
    SpecError,
    TenantQuotaExceeded,
)
from repro.obs.metrics import get_registry
from repro.service.jobs import JobSpec, new_job_id

__all__ = [
    "SpoolClient",
    "serve_forever",
    "spool_dir",
]

_METRICS = get_registry()


def spool_dir(root: pathlib.Path | str | None = None) -> pathlib.Path:
    """The request spool under *root* (default: the resolved cache
    dir, i.e. next to the store the journal uses)."""
    from repro.analysis.parallel import cache_dir

    base = pathlib.Path(root) if root is not None else cache_dir()
    return base / "spool"


class SpoolClient:
    """Client half: write requests, poll the journal for answers."""

    def __init__(self, root: pathlib.Path | str | None = None):
        from repro.service.journal import JobJournal

        self.root = spool_dir(root)
        self.journal = JobJournal(
            pathlib.Path(root) if root is not None else None
        )

    def submit(self, spec: JobSpec, job_id: str | None = None) -> str:
        """Atomically spool one request; returns its job id."""
        spec.validate()
        job_id = job_id or new_job_id()
        self.root.mkdir(parents=True, exist_ok=True)
        request = {"id": job_id, "spec": spec.to_record()}
        payload = json.dumps(request, sort_keys=True).encode("utf-8")
        tmp = self.root / f".tmp-{os.getpid()}-{secrets.token_hex(4)}"
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        try:
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, self.root / f"{job_id}.json")
        _METRICS.inc("service.spool_submitted")
        return job_id

    def cancel(self, job_id: str, spec: JobSpec | None = None) -> bool:
        """Best-effort cross-process cancel; True when the request was
        still spooled and is now withdrawn.

        Once the server has picked the file up the job belongs to its
        engine and the spool cannot reach it — the client keeps its
        deadline as the backstop.  With *spec* (the client still holds
        it) a ``cancelled`` journal record is written so concurrent
        waiters resolve instead of timing out.
        """
        try:
            os.unlink(self.root / f"{job_id}.json")
        except OSError:
            return False
        if spec is not None:
            from repro.service.jobs import Job

            job = Job(id=job_id, spec=spec, state="cancelled")
            job.error = (
                "Cancelled", "request withdrawn from the spool"
            )
            self.journal.record(job)
        _METRICS.inc("service.spool_cancelled")
        return True

    def wait(self, job_id: str, timeout: float = 60.0) -> dict:
        """Poll the journal until *job_id* is terminal (or shed).

        Returns the journal record; raises the matching typed error
        for shed submissions and ``TimeoutError`` when the server
        never answered (dead server, or a deadline longer than
        *timeout*).
        """
        from repro.service.jobs import TERMINAL_STATES

        deadline = time.monotonic() + timeout
        while True:
            record = self.journal.load(job_id)
            if record is not None:
                state = record.get("state")
                if state == "shed":
                    error = record.get("error") or ["", ""]
                    error_type = error[0] if error else ""
                    message = error[1] if len(error) > 1 else ""
                    retry_after = record.get("retry_after", 0.0)
                    if error_type == "TenantQuotaExceeded":
                        raise TenantQuotaExceeded(
                            message,
                            tenant=(record.get("spec") or {}).get(
                                "tenant", ""
                            ),
                            retry_after=retry_after,
                        )
                    raise ServiceOverloaded(
                        message,
                        reason="queue-full",
                        retry_after=retry_after,
                    )
                if state in TERMINAL_STATES:
                    return record
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} not terminal after {timeout:.1f}s"
                )
            time.sleep(0.02)


def _drain_spool(engine, spool: pathlib.Path) -> int:
    """Admit every spooled request into *engine*; files are unlinked
    after their job is journaled (or journaled as shed)."""
    admitted = 0
    try:
        files = sorted(
            path for path in spool.iterdir()
            if path.suffix == ".json" and not path.name.startswith(".")
        )
    except OSError:
        return 0
    for path in files:
        try:
            request = json.loads(path.read_text())
            job_id = request["id"]
            spec = JobSpec.from_record(request.get("spec") or {})
        except (OSError, ValueError, KeyError):
            # A torn or foreign file: quarantine by rename so the scan
            # loop never spins on it.
            _METRICS.inc("service.spool_rejected")
            _quarantine(path)
            continue
        if _already_known(engine, job_id):
            path.unlink(missing_ok=True)
            continue
        try:
            engine.submit(spec, job_id=job_id)
            admitted += 1
        except ServiceOverloaded as exc:
            _journal_shed(engine, job_id, spec, exc)
        except SpecError as exc:
            _journal_reject(engine, job_id, spec, exc)
        path.unlink(missing_ok=True)
    return admitted


def _already_known(engine, job_id: str) -> bool:
    if job_id in engine._jobs:
        return True
    if engine.journal is not None:
        return engine.journal.load(job_id) is not None
    return False


def _quarantine(path: pathlib.Path) -> None:
    try:
        path.rename(path.with_suffix(".rejected"))
    except OSError:
        path.unlink(missing_ok=True)


def _journal_shed(engine, job_id, spec, exc: ServiceOverloaded) -> None:
    """A shed spool request still gets a typed, persisted answer."""
    if engine.journal is None:
        return
    from repro.service.jobs import Job

    job = Job(id=job_id, spec=spec, state="shed")
    job.error = (type(exc).__name__, str(exc))
    job.retry_after = exc.retry_after
    engine.journal.record(job)


def _journal_reject(engine, job_id, spec, exc: SpecError) -> None:
    if engine.journal is None:
        return
    from repro.service.jobs import Job

    job = Job(id=job_id, spec=spec, state="failed")
    job.error = (type(exc).__name__, str(exc))
    engine.journal.record(job)


def serve_forever(
    engine,
    root: pathlib.Path | str | None = None,
    poll_interval: float = 0.05,
    max_jobs: int | None = None,
    idle_exit: float | None = None,
    should_stop=None,
    fanout: bool = True,
) -> int:
    """The ``repro serve`` loop: spool scan -> engine, until told to stop.

    Returns the number of jobs that reached a terminal state while
    serving.  Exits when *should_stop* (the signal flag) fires, after
    *max_jobs* terminal jobs, or after *idle_exit* seconds with an
    empty spool, queue, and executor — whichever comes first.  Unless
    *fanout* is off, each iteration also offers this process as a
    fan-out peer: open sweep plans in the shared store get their
    unclaimed cells computed here (:mod:`repro.service.fanout`).
    """
    spool = spool_dir(root)
    spool.mkdir(parents=True, exist_ok=True)
    worker = None
    if fanout:
        from repro.service.fanout import FanoutWorker

        worker = FanoutWorker(root)
    terminal_seen: set[str] = set()
    idle_since: float | None = None
    while True:
        if should_stop is not None and should_stop():
            break
        _drain_spool(engine, spool)
        if worker is not None and worker.poll():
            idle_since = None
        for job_id, job in list(engine._jobs.items()):
            if job.terminal and job_id not in terminal_seen:
                terminal_seen.add(job_id)
        if max_jobs is not None and len(terminal_seen) >= max_jobs:
            break
        stats = engine.stats()
        busy = stats["queued"] or stats["running"]
        if busy:
            idle_since = None
        elif idle_exit is not None:
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            elif now - idle_since >= idle_exit:
                break
        time.sleep(poll_interval)
    return len(terminal_seen)
