"""Job specs, states, and the execution dispatcher of the service.

A job is one squash/sweep/verify request travelling through the
engine (:mod:`repro.service.engine`): a frozen :class:`JobSpec`
describing *what* to do, plus the mutable :class:`Job` bookkeeping the
engine keeps while it moves through its states::

    queued -> running -> done | failed | expired
         \\-> expired (deadline lapsed while waiting)
         \\-> cancelled (client cancelled it before it started)
         \\-> requeued (service drained; journal keeps it for restart)

Specs carry an explicit ``schema_version`` so the wire format (spool
files, HTTP bodies, journal records) can evolve: servers accept every
version in :data:`ACCEPTED_SCHEMA_VERSIONS` and reject anything else
with a typed :class:`~repro.errors.SpecError` naming the field.
Records without the field — every v1 spool file written before the
versioned schema — read back as version 1 and stay accepted.

Payloads are plain JSON dicts rather than the api dataclasses so a
spec round-trips byte-identically through the crash-safe journal and
the submission spool.  :func:`execute_job` is the single dispatch
point from a spec to the typed :mod:`repro.api` facade; it returns a
JSON-able result payload whose digests let callers prove a service
result is byte-identical to a direct facade call.
"""

from __future__ import annotations

import hashlib
import secrets
import tempfile
from dataclasses import dataclass, field

from repro.errors import SpecError

__all__ = [
    "ACCEPTED_SCHEMA_VERSIONS",
    "JOB_KINDS",
    "PRIORITIES",
    "SCHEMA_VERSION",
    "TERMINAL_STATES",
    "Job",
    "JobSpec",
    "execute_job",
    "new_job_id",
]

#: Request kinds the service executes, each mapping onto one facade
#: entry point.
JOB_KINDS = ("squash", "sweep", "verify")

#: Priority classes, highest first; the scheduler always drains a
#: class before touching the next.
PRIORITIES = ("interactive", "batch")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "expired", "cancelled")

#: The wire schema this code writes.
SCHEMA_VERSION = 2

#: Every wire schema this code still reads (v1 is the unversioned
#: format of the first spool release).
ACCEPTED_SCHEMA_VERSIONS = (1, SCHEMA_VERSION)


def new_job_id() -> str:
    """A fresh journal-keyable job id (32 hex chars; the store shards
    refs by the first two)."""
    return secrets.token_hex(16)


@dataclass(frozen=True)
class JobSpec:
    """One service request, JSON-serializable end to end."""

    kind: str
    #: Kind-specific arguments (benchmark name, θ, sweep names, ...).
    payload: dict = field(default_factory=dict)
    tenant: str = "default"
    priority: str = "batch"
    #: Seconds from submission until the job expires (None: the
    #: ``REPRO_SERVICE_DEADLINE`` default, 0/None meaning no deadline).
    deadline: float | None = None
    #: Wire schema version of this spec (v1 records have no field).
    schema_version: int = SCHEMA_VERSION

    def validate(self) -> None:
        """Raise :class:`~repro.errors.SpecError` on anything the
        engine could not execute; cheap enough to run at admission."""
        if self.schema_version not in ACCEPTED_SCHEMA_VERSIONS:
            accepted = ", ".join(map(str, ACCEPTED_SCHEMA_VERSIONS))
            raise SpecError(
                f"unknown wire schema version {self.schema_version!r} "
                f"(this server accepts {accepted})",
                field="schema_version",
            )
        if self.kind not in JOB_KINDS:
            raise SpecError(
                f"unknown job kind {self.kind!r} "
                f"(expected one of {', '.join(JOB_KINDS)})",
                field="kind",
            )
        if self.priority not in PRIORITIES:
            raise SpecError(
                f"unknown priority {self.priority!r} "
                f"(expected one of {', '.join(PRIORITIES)})",
                field="priority",
            )
        if not isinstance(self.tenant, str) or not self.tenant:
            raise SpecError("tenant must be a non-empty string",
                            field="tenant")
        if self.deadline is not None and self.deadline < 0:
            raise SpecError(
                f"deadline must be >= 0 seconds, not {self.deadline!r}",
                field="deadline",
            )
        if not isinstance(self.payload, dict):
            raise SpecError("payload must be a JSON object",
                            field="payload")
        if self.kind == "squash":
            _validate_benchmark(self.payload.get("name"))
        elif self.kind == "sweep":
            names = self.payload.get("names") or ()
            for name in names:
                _validate_benchmark(name)
            kind = self.payload.get("sweep_kind", "size")
            if kind not in ("size", "time"):
                raise SpecError(
                    f"unknown sweep kind {kind!r} (size|time)",
                    field="payload.sweep_kind",
                )
            if not isinstance(self.payload.get("fanout", False), bool):
                raise SpecError(
                    "fanout must be a boolean",
                    field="payload.fanout",
                )
        elif self.kind == "verify":
            if not self.payload.get("prefix"):
                raise SpecError(
                    "verify jobs need a saved-image prefix",
                    field="payload.prefix",
                )

    def to_record(self) -> dict:
        return {
            "kind": self.kind,
            "payload": dict(self.payload),
            "tenant": self.tenant,
            "priority": self.priority,
            "deadline": self.deadline,
            "schema_version": self.schema_version,
        }

    @classmethod
    def from_record(cls, record: dict) -> "JobSpec":
        version = record.get("schema_version")
        return cls(
            kind=record.get("kind", ""),
            payload=dict(record.get("payload") or {}),
            tenant=record.get("tenant", "default"),
            priority=record.get("priority", "batch"),
            deadline=record.get("deadline"),
            # Unversioned records predate the versioned schema: v1.
            schema_version=1 if version is None else version,
        )


def _validate_benchmark(name) -> None:
    from repro.workloads.mediabench import MEDIABENCH

    if not isinstance(name, str) or name not in MEDIABENCH:
        raise SpecError(
            f"unknown benchmark {name!r} "
            f"(expected one of {', '.join(MEDIABENCH)})",
            field="name",
        )


@dataclass
class Job:
    """Engine-side bookkeeping for one accepted job."""

    id: str
    spec: JobSpec
    state: str = "queued"
    #: ``time.monotonic`` instants (admission, start, finish).
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: Absolute monotonic expiry instant (None: no deadline).
    deadline_at: float | None = None
    #: JSON result payload (terminal ``done`` only).
    result: dict | None = None
    #: (error type name, message) for failed/expired jobs.
    error: tuple[str, str] | None = None
    #: True when this job was re-enqueued by journal recovery.
    recovered: bool = False
    #: Retry hint journaled with shed records so spool clients read
    #: the same back-off the engine computed (None otherwise).
    retry_after: float | None = None

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def remaining(self, now: float) -> float | None:
        """Seconds until expiry at *now* (None: no deadline)."""
        if self.deadline_at is None:
            return None
        return self.deadline_at - now


# -- execution ---------------------------------------------------------------


def _image_digest(result) -> str:
    """SHA-256 over the saved image + descriptor bytes — the
    byte-identity witness comparing a service result against a direct
    ``api.squash_benchmark`` call."""
    with tempfile.TemporaryDirectory(prefix="repro-job-") as tmp:
        image_path, meta_path = result.save(f"{tmp}/image")
        digest = hashlib.sha256()
        for path in (image_path, meta_path):
            with open(path, "rb") as handle:
                digest.update(handle.read())
    return digest.hexdigest()


def _execute_squash(payload: dict) -> dict:
    import repro.api as api

    config = api.SquashConfig(theta=float(payload.get("theta", 0.0)))
    bound = payload.get("bound")
    if bound is not None:
        config = config.with_buffer_bound(int(bound))
    result = api.squash_benchmark(
        payload["name"], float(payload.get("scale", 0.5)), config
    )
    return {
        "name": payload["name"],
        "baseline_words": result.baseline_words,
        "total_words": result.footprint.total,
        "reduction": result.reduction,
        "regions": len(result.info.regions),
        "image_digest": _image_digest(result),
    }


def _execute_sweep(payload: dict) -> dict:
    import repro.api as api

    if payload.get("fanout"):
        from repro.service.fanout import run_fanout_sweep

        return run_fanout_sweep(payload)
    thetas = payload.get("thetas")
    spec = api.SweepSpec(
        names=tuple(payload.get("names") or ()),
        scale=float(payload.get("scale", 0.5)),
        thetas=tuple(thetas) if thetas is not None else None,
        kind=payload.get("sweep_kind", "size"),
        parallel=bool(payload.get("parallel", False)),
    )
    rows = api.sweep(spec)
    return {
        "kind": spec.kind,
        "rows": [repr(row) for row in rows],
        "rows_digest": hashlib.sha256(
            repr(rows).encode("utf-8")
        ).hexdigest(),
    }


def _execute_verify(payload: dict) -> dict:
    import repro.api as api

    report = api.verify(payload["prefix"], deep=payload.get("deep", True))
    return {"ok": report.ok, "report": report.render()}


_EXECUTORS = {
    "squash": _execute_squash,
    "sweep": _execute_sweep,
    "verify": _execute_verify,
}


def execute_job(spec: JobSpec) -> dict:
    """Run *spec* through the facade and return its result payload.

    The resolved ``cell_deadline`` is recorded in the payload so tests
    (and the chaos harness) can assert that supervisor cells under
    this job observed the deadline the engine propagated.
    """
    from repro import settings as _settings

    result = _EXECUTORS[spec.kind](spec.payload)
    result["cell_deadline"] = _settings.current().cell_deadline
    return result
