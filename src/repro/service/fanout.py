"""Multi-host sweep fan-out over one shared artifact store.

A sweep job with ``payload["fanout"]`` true is not executed by one
engine: it is *partitioned* into per-benchmark cells that any number
of ``repro serve`` processes sharing the same store root
(``REPRO_CACHE_DIR``) pull and compute cooperatively.  No coordinator
socket, no membership protocol — the store is the only shared state:

* the submitting engine publishes a **plan record** (store namespace
  ``sweep``) naming the benchmarks, θ grid, scale, and kind;
* each cell is claimed through an **O_EXCL claim marker** under
  ``<root>/sweeps/claims/<plan>/<name>.g<gen>.claim`` — the same
  exactly-once discipline the chaos harness uses for fault claims:
  whatever the interleaving, ``os.O_EXCL`` hands each (cell,
  generation) to exactly one engine;
* a claim carries a wall-clock **lease**
  (``REPRO_SERVICE_LEASE_SECONDS``).  A SIGKILLed engine's claims
  expire, and any peer may *reclaim* the cell at generation+1 — a new
  O_EXCL race, again won exactly once.  Claims by live engines are
  never contested before expiry;
* finished cells are published as sealed **done records**; the
  submitting engine collects them (claiming and computing cells
  itself all the while, so a lone engine still finishes) and
  assembles the rows.

Row identity with a serial run is by construction: every cell is the
same deterministic ``compute_cells`` computation against the same
shared cell cache, done records carry the per-θ values in grid order,
and assembly walks benchmarks then θ exactly like the serial drivers
— so ``rows_digest`` matches a direct ``api.sweep`` byte for byte.
Duplicated work (a lease expiring under a live-but-slow engine) is
harmless for the same reason: both generations publish identical
records.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import socket
import time

from repro import settings as _settings
from repro.errors import CellFailure, StoreDegraded
from repro.obs.metrics import get_registry
from repro.service.jobs import new_job_id

__all__ = [
    "FanoutWorker",
    "engine_id",
    "publish_plan",
    "run_fanout_sweep",
    "work_plan",
]

_METRICS = get_registry()

#: How often an idle serve loop re-scans the store for open plans.
_SCAN_INTERVAL = 0.5


def engine_id() -> str:
    """This engine's claim identity (host + pid: unique per serving
    process across every host sharing the store)."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _done_key(plan_id: str, name: str) -> str:
    return hashlib.sha256(
        f"{plan_id}:{name}".encode("utf-8")
    ).hexdigest()


def _claims_dir(root: pathlib.Path, plan_id: str) -> pathlib.Path:
    return pathlib.Path(root) / "sweeps" / "claims" / plan_id


# -- plans --------------------------------------------------------------------


def _resolve_plan(payload: dict) -> dict:
    from repro.analysis.experiments import FIG6_THETAS, FIG7_THETAS

    kind = payload.get("sweep_kind", "size")
    thetas = payload.get("thetas")
    if thetas is None:
        thetas = FIG6_THETAS if kind == "size" else FIG7_THETAS
    return {
        "names": list(payload.get("names") or ()),
        "scale": float(payload.get("scale", 0.5)),
        "thetas": [float(theta) for theta in thetas],
        "kind": kind,
    }


def publish_plan(store, payload: dict) -> dict:
    """Publish one open plan record for *payload*; returns the record."""
    record = _resolve_plan(payload)
    record.update(
        plan=new_job_id(), state="open", engine=engine_id(),
        published=time.time(),
    )
    store.put("sweep", record["plan"], record)
    _METRICS.inc("service.fanout.plans")
    return record


def _open_plans(store) -> list[dict]:
    plans = []
    for entry in store.scan():
        if entry.ns != "sweep":
            continue
        try:
            record = store.get("sweep", entry.key)
        except StoreDegraded:
            return []
        if (
            record
            and record.get("state") == "open"
            and record.get("names")
        ):
            plans.append(record)
    return plans


# -- claims -------------------------------------------------------------------


def _latest_gen(claims: pathlib.Path, name: str) -> int:
    latest = 0
    try:
        children = list(claims.iterdir())
    except OSError:
        return 0
    for child in children:
        if not child.name.startswith(f"{name}.g"):
            continue
        suffix = child.name[len(name) + 2:]
        if suffix.endswith(".claim"):
            try:
                latest = max(latest, int(suffix[: -len(".claim")]))
            except ValueError:
                continue
    return latest


def try_claim(
    store, plan_id: str, name: str, lease: float
) -> int | None:
    """Claim (plan, *name*) for this engine; the won generation, or
    ``None`` (someone else holds a live claim, or won the race).

    Exactly-once per generation: the O_EXCL create is the only writer
    of each ``<name>.g<gen>.claim`` path, so two engines racing for
    the same generation cannot both win.  A new generation only opens
    once the previous claim's lease has expired — live engines are
    never contested.
    """
    claims = _claims_dir(store.root, plan_id)
    try:
        claims.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    gen = _latest_gen(claims, name)
    reclaim = False
    if gen:
        try:
            holder = json.loads(
                (claims / f"{name}.g{gen}.claim").read_text()
            )
        except (OSError, ValueError):
            holder = {}  # torn claim: its writer died mid-crash
        if time.time() < holder.get("expires", 0.0):
            return None
        reclaim = True
    target = claims / f"{name}.g{gen + 1}.claim"
    payload = json.dumps({
        "engine": engine_id(),
        "expires": time.time() + lease,
        "claimed": time.time(),
    }, sort_keys=True).encode("utf-8")
    try:
        fd = os.open(target, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    except FileExistsError:
        return None  # a peer won this generation
    except OSError:
        return None
    try:
        os.write(fd, payload)
        os.fsync(fd)
    finally:
        os.close(fd)
    _METRICS.inc("service.fanout.claims")
    if reclaim:
        _METRICS.inc("service.fanout.reclaims")
    return gen + 1


# -- cell execution -----------------------------------------------------------


def _compute_cell(plan: dict, name: str) -> list[dict]:
    """Compute every θ of one benchmark cell (inline, against the
    shared store-backed cell cache) and return per-θ values in grid
    order."""
    from repro.analysis.experiments import map_theta
    from repro.analysis.parallel import compute_cells
    from repro.core.config import SquashConfig

    kind = plan["kind"]
    scale = plan["scale"]
    cells = [
        (kind, name, scale, SquashConfig(theta=map_theta(theta)))
        for theta in plan["thetas"]
    ]
    results = compute_cells(cells, parallel=False)
    values = []
    for theta, cell in zip(plan["thetas"], cells):
        result = results[cell]
        values.append({
            "theta_paper": theta,
            "reduction": result.get("reduction"),
            "relative_time": result.get("relative_time"),
        })
    return values


def work_plan(store, plan: dict, lease: float | None = None) -> int:
    """Claim-and-compute every currently claimable cell of *plan*;
    returns how many cells this call completed."""
    if lease is None:
        lease = _settings.current().service_lease_seconds
    completed = 0
    for name in plan["names"]:
        done_key = _done_key(plan["plan"], name)
        try:
            if store.get("sweep", done_key) is not None:
                continue
        except StoreDegraded:
            break
        if try_claim(store, plan["plan"], name, lease) is None:
            continue
        values = _compute_cell(plan, name)
        record = {
            "plan": plan["plan"],
            "name": name,
            "engine": engine_id(),
            "cells": values,
        }
        try:
            store.put("sweep", done_key, record)
        except StoreDegraded:
            # The lease will lapse and a peer (or this engine, next
            # round) republishes; the cell cache keeps the compute.
            continue
        completed += 1
        _METRICS.inc("service.fanout.cells_computed")
    return completed


class FanoutWorker:
    """The serve loop's fan-out participant.

    ``poll()`` is called every spool-scan iteration; it rate-limits
    the store scan (plans change rarely) and computes at most one
    plan's claimable cells per call so spool traffic stays responsive.
    """

    def __init__(self, root: pathlib.Path | str | None = None):
        from repro.analysis.parallel import cache_dir
        from repro.store import get_store

        self.root = pathlib.Path(root) if root is not None else cache_dir()
        self._store = get_store(self.root)
        self._next_scan = 0.0

    def poll(self) -> int:
        now = time.monotonic()
        if now < self._next_scan:
            return 0
        self._next_scan = now + _SCAN_INTERVAL
        completed = 0
        for plan in _open_plans(self._store):
            completed += work_plan(self._store, plan)
            if completed:
                break
        return completed


# -- the submitting engine ----------------------------------------------------


def _collect(store, plan: dict) -> dict[str, dict]:
    done: dict[str, dict] = {}
    for name in plan["names"]:
        try:
            record = store.get("sweep", _done_key(plan["plan"], name))
        except StoreDegraded:
            break
        if record is not None:
            done[name] = record
    return done


def _assemble_rows(plan: dict, done: dict[str, dict]) -> list:
    """Rows in the serial drivers' order (benchmark-major, θ-minor) —
    the byte-identity contract with ``api.sweep``."""
    from repro.analysis.experiments import SizeRow, TimeRow, map_theta

    rows = []
    for name in plan["names"]:
        by_theta = {
            cell["theta_paper"]: cell
            for cell in done[name]["cells"]
        }
        for theta_paper in plan["thetas"]:
            cell = by_theta[theta_paper]
            theta = map_theta(theta_paper)
            if plan["kind"] == "size":
                rows.append(SizeRow(
                    name=name,
                    theta_paper=theta_paper,
                    theta_ours=theta,
                    reduction=cell["reduction"],
                ))
            else:
                rows.append(TimeRow(
                    name=name,
                    theta_paper=theta_paper,
                    theta_ours=theta,
                    relative_time=cell["relative_time"],
                ))
    return rows


def run_fanout_sweep(payload: dict, poll_interval: float = 0.05,
                     plan: dict | None = None) -> dict:
    """Partition, co-compute, and collect one fan-out sweep.

    Runs on the engine executing the sweep job.  This engine is a
    full participant — it claims and computes cells like any peer —
    so the sweep finishes even with no second engine, and peers
    joining mid-flight just make it faster.  Dead peers' cells come
    back via lease-expiry reclaim; a sweep whose cells cannot all be
    collected inside the budget fails with a typed
    :class:`~repro.errors.CellFailure` naming the missing benchmarks.
    """
    from repro.analysis.parallel import cache_dir
    from repro.store import get_store

    resolved = _settings.current()
    store = get_store(cache_dir())
    if plan is None:
        plan = publish_plan(store, payload)
    lease = resolved.service_lease_seconds
    budget = float(payload.get("collect_timeout", 600.0))
    deadline = time.monotonic() + budget
    while True:
        work_plan(store, plan, lease)
        done = _collect(store, plan)
        if len(done) == len(plan["names"]):
            break
        if time.monotonic() >= deadline:
            missing = [
                name for name in plan["names"] if name not in done
            ]
            raise CellFailure(
                f"fan-out sweep {plan['plan']} lost cells",
                cell=", ".join(missing),
                reason="collect-timeout",
            )
        time.sleep(poll_interval)
    plan["state"] = "done"
    try:
        store.put("sweep", plan["plan"], plan)
    except StoreDegraded:
        pass  # peers keep skipping it: every cell has a done record
    rows = _assemble_rows(plan, done)
    engines = sorted({
        record.get("engine", "") for record in done.values()
    })
    return {
        "kind": plan["kind"],
        "rows": [repr(row) for row in rows],
        "rows_digest": hashlib.sha256(
            repr(rows).encode("utf-8")
        ).hexdigest(),
        "plan": plan["plan"],
        "fanout": {
            "cells": len(plan["names"]),
            "engines": engines,
        },
    }
