"""The interpreter.

The machine is word-addressed: one instruction or data value per
address.  Registers and memory hold 32-bit unsigned values; signed
operations reinterpret as two's complement.  The timing model charges
one cycle per architectural instruction; runtime services (such as the
squash decompressor) add their own measured cost through
:meth:`Machine.charge`.

Services: a squashed image contains address ranges (decompressor entry
points) that trap into Python handlers registered via ``services``.
This models the paper's software decompressor, whose code occupies real
space in the image but whose execution we simulate (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro import settings as _settings
from repro.errors import WatchdogExpired
from repro.isa.encoding import WORD_MASK
from repro.isa.opcodes import AluOp, Op, SysOp
from repro.obs.trace import get_tracer
from repro.program.image import LoadedImage

_SIGN_BIT = 1 << 31
_U32 = WORD_MASK

#: Watchdog surcharge per runtime-service invocation: service handlers
#: execute host Python, not guest steps, so a decode-loop that
#: ping-pongs through the decompressor burns watchdog budget even while
#: its guest step count barely moves.
_SERVICE_WATCHDOG_COST = 64


def _env_watchdog() -> int:
    """The process-wide watchdog budget (``REPRO_VM_WATCHDOG``).

    0 or unset disables the guard; a malformed value is treated as
    unset (the guard must never turn a healthy run into a crash) —
    both rules live in :mod:`repro.settings` now.
    """
    return _settings.current().vm_watchdog


class MachineFault(Exception):
    """Base class for runtime faults."""

    def __init__(self, message: str, pc: int | None = None):
        if pc is not None:
            message = f"pc={pc:#x}: {message}"
        super().__init__(message)
        self.pc = pc


class IllegalInstructionFault(MachineFault):
    """Executed an illegal or undecodable instruction."""


class MemoryFault(MachineFault):
    """Out-of-range or forbidden memory access."""


class FuelExhausted(MachineFault):
    """The run exceeded its step budget."""


@dataclass
class RunResult:
    """Outcome of a completed run."""

    exit_code: int
    output: list[int]
    steps: int
    cycles: int
    block_counts: dict[int, int] = field(default_factory=dict)
    max_stack_depth: int = 0


def _signed(value: int) -> int:
    return value - (1 << 32) if value & _SIGN_BIT else value


# Pre-decoded instruction tuples: (op, ra, rb, rc, func, imm).
_DECODE_CACHE: dict[int, tuple[int, int, int, int, int, int]] = {}


def _predecode(word: int) -> tuple[int, int, int, int, int, int]:
    from repro.isa.encoding import decode

    cached = _DECODE_CACHE.get(word)
    if cached is None:
        instr = decode(word)
        cached = (
            int(instr.op),
            instr.ra,
            instr.rb,
            instr.rc,
            instr.func,
            instr.imm,
        )
        _DECODE_CACHE[word] = cached
    return cached


class Machine:
    """An interpreter instance bound to one loaded image.

    Parameters
    ----------
    image:
        The program image to run.
    input_words:
        The input stream consumed by the READ syscall.
    heap_words / stack_words:
        Sizes of the zero-initialised heap (above the image) and the
        stack (at the top of memory; ``sp`` starts at the memory limit).
    services:
        Map from trap address to handler.  When the PC reaches a trap
        address the handler runs instead of a fetch; it must update the
        PC itself.
    count_blocks:
        When true, count executions of each address in
        ``image.block_heads`` (the basic-block profile).
    watchdog:
        Hang-guard budget over the machine's lifetime, in steps plus a
        fixed surcharge per runtime-service invocation; exceeding it
        raises :class:`~repro.errors.WatchdogExpired`.  ``None`` reads
        ``REPRO_VM_WATCHDOG`` from the environment; 0 disables the
        guard.  The watchdog never touches the cycle model — a guarded
        run is cycle-identical to an unguarded one.
    """

    def __init__(
        self,
        image: LoadedImage,
        input_words: list[int] | tuple[int, ...] = (),
        heap_words: int = 8192,
        stack_words: int = 8192,
        services: dict[int, Callable[["Machine"], None]] | None = None,
        count_blocks: bool = False,
        watchdog: int | None = None,
    ):
        self.image = image
        mem_size = image.end + heap_words + stack_words
        self.mem: list[int] = [0] * mem_size
        self.mem[image.base : image.end] = image.memory
        self.regs: list[int] = [0] * 32
        self.regs[30] = mem_size  # sp at the top; pushes pre-decrement
        self.pc = image.entry_pc
        self.heap_base = image.end
        self.input = list(input_words)
        self.in_pos = 0
        self.output: list[int] = []
        self.steps = 0
        self.cycles = 0
        self.exit_code: int | None = None
        self.services = dict(services or {})
        self.watchdog = _env_watchdog() if watchdog is None else max(0, watchdog)
        self._watchdog_surcharge = 0
        self.count_blocks = count_blocks
        self._tracer = get_tracer()
        self.block_counts: dict[int, int] = {}
        self._block_heads = set(image.block_heads) if count_blocks else set()
        # Guest stores may not touch code segments; services may.  The
        # data segment may sit between code segments (squashed images
        # place the compressed area last), so track its range explicitly.
        if image.has_segment("data"):
            data_seg = image.segment("data")
            self._data_start, self._data_end = data_seg.start, data_seg.end
        else:
            self._data_start = self._data_end = 0
        self._min_sp = self.regs[30]

    # -- service/runtime helpers -------------------------------------------

    def charge(self, cycles: int) -> None:
        """Add *cycles* of modelled runtime-service cost."""
        self.cycles += cycles

    def write_word(self, addr: int, value: int) -> None:
        """Privileged store (used by runtime services)."""
        if not 0 <= addr < len(self.mem):
            raise MemoryFault(f"service store to {addr:#x}", self.pc)
        self.mem[addr] = value & _U32

    def read_word(self, addr: int) -> int:
        """Privileged load (used by runtime services)."""
        if not 0 <= addr < len(self.mem):
            raise MemoryFault(f"service load from {addr:#x}", self.pc)
        return self.mem[addr]

    @property
    def stack_depth(self) -> int:
        """Words of stack currently in use."""
        return len(self.mem) - self.regs[30]

    # -- execution -----------------------------------------------------------

    def run(self, max_steps: int = 100_000_000) -> RunResult:
        """Run until HALT/EXIT; return the result.

        Raises a :class:`MachineFault` subclass on errors, including
        :class:`FuelExhausted` after *max_steps* instructions.
        """
        mem = self.mem
        regs = self.regs
        services = self.services
        heads = self._block_heads
        counts = self.block_counts
        mem_len = len(mem)
        heap_base = self.heap_base
        data_start = self._data_start
        data_end = self._data_end
        pc = self.pc
        steps = self.steps
        cycles = self.cycles
        min_sp = self._min_sp
        max_steps_total = steps + max_steps
        svc_charge = self._watchdog_surcharge
        # One comparison serves both budgets: trip at whichever limit
        # comes first, then diagnose which one it was.
        wd_limit = self.watchdog if self.watchdog else (1 << 62)

        OP_SPC = int(Op.SPC)
        OP_LDA, OP_LDAH = int(Op.LDA), int(Op.LDAH)
        OP_LDW, OP_STW = int(Op.LDW), int(Op.STW)
        OP_BR, OP_BSR = int(Op.BR), int(Op.BSR)
        OP_BEQ, OP_BNE = int(Op.BEQ), int(Op.BNE)
        OP_BLT, OP_BLE = int(Op.BLT), int(Op.BLE)
        OP_BGT, OP_BGE = int(Op.BGT), int(Op.BGE)
        OP_BLBC, OP_BLBS = int(Op.BLBC), int(Op.BLBS)
        OP_JMP, OP_JSR, OP_RET = int(Op.JMP), int(Op.JSR), int(Op.RET)
        OP_OPR, OP_OPI = int(Op.OPR), int(Op.OPI)

        tracer = self._tracer
        if tracer.enabled:
            # Runtime-category events are stamped with modelled cycles
            # (never wall time), keeping the stream deterministic.
            tracer.emit(
                "vm.run", "runtime", phase="B", ts=cycles,
                entry_pc=pc, steps=steps,
            )
        try:
            while True:
                if services:
                    handler = services.get(pc)
                    if handler is not None:
                        svc_charge += _SERVICE_WATCHDOG_COST
                        if steps + svc_charge >= wd_limit:
                            raise WatchdogExpired(
                                f"watchdog budget {self.watchdog} exhausted "
                                f"in runtime services at pc={pc:#x}"
                            )
                        self.pc = pc
                        self.steps = steps
                        self.cycles = cycles
                        handler(self)
                        pc = self.pc
                        cycles = self.cycles
                        if self.exit_code is not None:
                            break
                        continue
                if heads and pc in heads:
                    counts[pc] = counts.get(pc, 0) + 1
                if steps >= max_steps_total or steps + svc_charge >= wd_limit:
                    if steps >= max_steps_total:
                        raise FuelExhausted("step budget exceeded", pc)
                    raise WatchdogExpired(
                        f"watchdog budget {self.watchdog} exhausted "
                        f"at pc={pc:#x} after {steps} steps"
                    )
                if not 0 <= pc < mem_len:
                    raise MemoryFault("pc outside memory", pc)
                word = mem[pc]
                decoded = _DECODE_CACHE.get(word)
                if decoded is None:
                    try:
                        decoded = _predecode(word)
                    except Exception as exc:
                        raise IllegalInstructionFault(str(exc), pc) from exc
                op, ra, rb, rc, func, imm = decoded
                steps += 1
                cycles += 1

                if op == OP_OPR or op == OP_OPI:
                    a = regs[ra]
                    b = imm if op == OP_OPI else regs[rb]
                    if func == 0:
                        value = (a + b) & _U32
                    elif func == 1:
                        value = (a - b) & _U32
                    elif func == 2:
                        value = (a * b) & _U32
                    elif func == 3:
                        value = a & b
                    elif func == 4:
                        value = a | b
                    elif func == 5:
                        value = a ^ b
                    elif func == 6:
                        value = (a << (b & 31)) & _U32
                    elif func == 7:
                        value = a >> (b & 31)
                    elif func == 8:
                        value = (_signed(a) >> (b & 31)) & _U32
                    elif func == 9:
                        value = 1 if a == b else 0
                    elif func == 10:
                        value = 1 if _signed(a) < _signed(b) else 0
                    elif func == 11:
                        value = 1 if _signed(a) <= _signed(b) else 0
                    elif func == 12:
                        value = 1 if a < b else 0
                    elif func == 13:
                        value = 1 if a <= b else 0
                    elif func == 14:
                        value = a // b if b else 0
                    elif func == 15:
                        value = a % b if b else 0
                    else:
                        raise IllegalInstructionFault(
                            f"bad ALU func {func}", pc
                        )
                    if rc != 31:
                        regs[rc] = value
                    pc += 1
                elif op == OP_LDW:
                    addr = (regs[rb] + imm) & _U32
                    if addr >= mem_len:
                        raise MemoryFault(f"load from {addr:#x}", pc)
                    if ra != 31:
                        regs[ra] = mem[addr]
                    pc += 1
                elif op == OP_STW:
                    addr = (regs[rb] + imm) & _U32
                    if addr >= mem_len or (
                        addr < heap_base
                        and not data_start <= addr < data_end
                    ):
                        raise MemoryFault(f"store to {addr:#x}", pc)
                    mem[addr] = regs[ra]
                    pc += 1
                elif op == OP_LDA:
                    if ra != 31:
                        regs[ra] = (regs[rb] + imm) & _U32
                        if ra == 30 and regs[30] < min_sp:
                            min_sp = regs[30]
                    pc += 1
                elif op == OP_LDAH:
                    if ra != 31:
                        regs[ra] = (regs[rb] + (imm << 16)) & _U32
                    pc += 1
                elif OP_BEQ <= op <= OP_BLBS:
                    a = regs[ra]
                    if op == OP_BEQ:
                        taken = a == 0
                    elif op == OP_BNE:
                        taken = a != 0
                    elif op == OP_BLT:
                        taken = bool(a & _SIGN_BIT)
                    elif op == OP_BLE:
                        taken = a == 0 or bool(a & _SIGN_BIT)
                    elif op == OP_BGT:
                        taken = a != 0 and not a & _SIGN_BIT
                    elif op == OP_BGE:
                        taken = not a & _SIGN_BIT
                    elif op == OP_BLBC:
                        taken = not a & 1
                    else:
                        taken = bool(a & 1)
                    pc = pc + 1 + imm if taken else pc + 1
                elif op == OP_BR or op == OP_BSR:
                    if ra != 31:
                        regs[ra] = pc + 1
                    pc = pc + 1 + imm
                elif op == OP_JMP or op == OP_JSR or op == OP_RET:
                    target = regs[rb]
                    if ra != 31:
                        regs[ra] = pc + 1
                    pc = target
                elif op == OP_SPC:
                    if imm == 0:  # NOP
                        pc += 1
                    elif imm == 1:  # HALT
                        self.exit_code = 0
                        break
                    elif imm == 2:  # READ
                        if self.in_pos < len(self.input):
                            regs[0] = self.input[self.in_pos] & _U32
                            regs[1] = 1
                            self.in_pos += 1
                        else:
                            regs[1] = 0
                        pc += 1
                    elif imm == 3:  # WRITE
                        self.output.append(regs[16])
                        pc += 1
                    elif imm == 4:  # EXIT
                        self.exit_code = regs[16]
                        break
                    elif imm == 5:  # SETJMP
                        buf = regs[16]
                        if buf + 4 > mem_len or (
                            buf < heap_base
                            and not data_start <= buf < data_end
                        ):
                            raise MemoryFault(f"setjmp buf {buf:#x}", pc)
                        mem[buf] = pc + 1
                        mem[buf + 1] = regs[30]
                        mem[buf + 2] = regs[15]
                        mem[buf + 3] = regs[26]
                        regs[0] = 0
                        pc += 1
                    elif imm == 6:  # LONGJMP
                        buf = regs[16]
                        if buf + 4 > mem_len:
                            raise MemoryFault(f"longjmp buf {buf:#x}", pc)
                        value = regs[17]
                        pc = mem[buf]
                        regs[30] = mem[buf + 1]
                        regs[15] = mem[buf + 2]
                        regs[26] = mem[buf + 3]
                        regs[0] = value if value else 1
                    else:
                        raise IllegalInstructionFault(
                            f"bad system op {imm}", pc
                        )
                else:
                    raise IllegalInstructionFault(
                        f"sentinel or illegal opcode {op:#x} executed", pc
                    )
                if regs[30] < min_sp:
                    min_sp = regs[30]
        finally:
            self.pc = pc
            self.steps = steps
            self.cycles = cycles
            self._min_sp = min_sp
            self._watchdog_surcharge = svc_charge
            if tracer.enabled:
                tracer.emit(
                    "vm.run", "runtime", phase="E", ts=cycles,
                    steps=steps, cycles=cycles,
                    exit_code=self.exit_code,
                )

        assert self.exit_code is not None
        return RunResult(
            exit_code=self.exit_code,
            output=list(self.output),
            steps=self.steps,
            cycles=self.cycles,
            block_counts=dict(self.block_counts),
            max_stack_depth=len(self.mem) - self._min_sp,
        )
