"""Virtual machine: interpreter, faults, and basic-block profiling."""

from repro.vm.machine import (
    Machine,
    RunResult,
    MachineFault,
    IllegalInstructionFault,
    MemoryFault,
    FuelExhausted,
)
from repro.vm.profiler import collect_profile, Profile

__all__ = [
    "Machine",
    "RunResult",
    "MachineFault",
    "IllegalInstructionFault",
    "MemoryFault",
    "FuelExhausted",
    "collect_profile",
    "Profile",
]
