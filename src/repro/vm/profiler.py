"""Basic-block execution profiling (the paper's Section 5 input).

A profile maps each basic block to its execution frequency.  The
*weight* of a block is its instruction count times its frequency -- the
block's contribution to the total number of instructions executed --
and ``tot_instr_ct`` is the total dynamic instruction count, exactly as
defined in Section 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.program.image import LoadedImage
from repro.program.program import Program
from repro.vm.machine import Machine, RunResult


@dataclass
class Profile:
    """Execution profile of one program on one input."""

    #: Execution count per basic-block label (0 for never-executed).
    counts: dict[str, int]
    #: Instruction count per block label.
    sizes: dict[str, int]
    #: Total dynamic instructions executed (paper's ``tot_instr_ct``).
    tot_instr_ct: int
    #: The run that produced the profile.
    run: RunResult | None = field(default=None, repr=False)

    def freq(self, label: str) -> int:
        """Execution frequency of block *label*."""
        return self.counts.get(label, 0)

    def weight(self, label: str) -> int:
        """Block weight: instruction count times execution frequency."""
        return self.counts.get(label, 0) * self.sizes.get(label, 0)

    @property
    def never_executed(self) -> set[str]:
        """Labels of blocks never executed in the profiling run."""
        return {label for label, count in self.counts.items() if count == 0}

    def scaled(self, factor: float) -> "Profile":
        """A copy with all counts scaled (for sensitivity experiments)."""
        counts = {k: int(v * factor) for k, v in self.counts.items()}
        tot = sum(counts[k] * self.sizes[k] for k in counts)
        return Profile(counts=counts, sizes=dict(self.sizes), tot_instr_ct=tot)


def collect_profile(
    program: Program,
    image: LoadedImage,
    input_words: list[int] | tuple[int, ...],
    max_steps: int = 100_000_000,
) -> Profile:
    """Run *image* on *input_words* and collect a basic-block profile.

    ``program`` supplies the block inventory so that never-executed
    blocks appear with count zero (they are the θ=0 cold set).
    """
    machine = Machine(image, input_words=input_words, count_blocks=True)
    result = machine.run(max_steps=max_steps)

    sizes = {
        block.label: block.size for _, block in program.all_blocks()
    }
    counts = {label: 0 for label in sizes}
    for addr, count in result.block_counts.items():
        label = image.block_heads.get(addr)
        if label is not None and label in counts:
            counts[label] += count

    tot = sum(counts[label] * sizes[label] for label in counts)
    return Profile(counts=counts, sizes=sizes, tot_instr_ct=tot, run=result)
