"""The program-level codec: compress regions, decompress on demand.

The whole compressed area of a squashed image is produced here:

* one canonical Huffman code per field-kind stream, built over the
  union of all compressed regions (the tables are stored once for the
  whole program);
* a single merged codeword bitstream, region after region, with the
  function offset table holding each region's starting *bit* offset;
* a decoder that starts at any region's bit offset and decodes until
  the sentinel, exactly what the runtime decompressor does.

Optionally, selected streams get a move-to-front pre-pass (Section 3's
variant); the MTF recency list resets at region boundaries so regions
remain independently decodable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.compress.bitstream import BitReader, BitWriter
from repro.compress.canonical import CanonicalCode
from repro.compress.dictionary import DictionaryCode
from repro.errors import (
    CodecTableError,
    CorruptBlobError,
    TruncatedStreamError,
)
from repro.compress.mtf import MoveToFront
from repro.compress.streams import (
    CodecInstr,
    OP_SENTINEL,
    codec_fields,
    sentinel_item,
)
from repro.isa.fields import FIELD_WIDTHS, FieldKind
from repro.pipeline.registry import Registry

_OPCODE_BITS = 6
_KIND_BITS = 5
_COUNT_BITS = 16


#: Coder identifiers stored in the serialized tables.
_CODER_IDS = {"huffman": 0, "dict": 1}
_CODER_CLASSES = {0: CanonicalCode, 1: DictionaryCode}

def fast_decode_default() -> bool:
    """Default for the table-driven decode path; ``REPRO_FAST_DECODE=0``
    (or ``fast_decode=False`` in :mod:`repro.settings`) falls back to
    the paper-verbatim bit-at-a-time DECODE everywhere."""
    from repro import settings

    return settings.current().fast_decode


def resolve_decode_backend(
    fast: bool | None = None, backend: str | None = None
) -> str:
    """The decode-backend name a region decode should use.

    Precedence: an explicit *fast* flag (the pre-backend API) wins,
    then an explicit *backend* name, then ``REPRO_DECODE_BACKEND``
    (via :mod:`repro.settings`), then the legacy ``fast_decode`` flag
    (True -> ``table``, False -> ``reference``).
    """
    if fast is not None:
        return "table" if fast else "reference"
    if backend:
        return backend
    from repro import settings

    resolved = settings.current()
    if resolved.decode_backend:
        return resolved.decode_backend
    return "table" if resolved.fast_decode else "reference"


@dataclass(frozen=True)
class CodecConfig:
    """Compression options."""

    #: Field kinds that get a move-to-front pre-pass before Huffman.
    mtf_kinds: frozenset[FieldKind] = frozenset()
    #: Per-stream coder: "huffman" (canonical Huffman, the paper's) or
    #: "dict" (split-stream dictionary coding; faster, less compact).
    coder: str = "huffman"

    def __post_init__(self) -> None:
        if self.coder not in _CODER_IDS:
            raise ValueError(f"unknown coder {self.coder!r}")


#: Named codec presets: variant name -> f() -> CodecConfig.  The
#: experiment harness and CLI select codecs by these names; a new
#: variant (different coder, different MTF stream selection) is added
#: by registering a factory, not by editing call sites.
CODEC_VARIANTS: "Registry[Callable[[], CodecConfig]]" = Registry(
    "codec variant"
)

CODEC_VARIANTS.register("huffman", CodecConfig)
CODEC_VARIANTS.register(
    "mtf+huffman",
    lambda: CodecConfig(
        mtf_kinds=frozenset({FieldKind.RA, FieldKind.RB, FieldKind.LIT8})
    ),
)
CODEC_VARIANTS.register("dict", lambda: CodecConfig(coder="dict"))
CODEC_VARIANTS.register(
    "mtf+dict",
    lambda: CodecConfig(
        coder="dict",
        mtf_kinds=frozenset({FieldKind.RA, FieldKind.RB, FieldKind.LIT8}),
    ),
)


def codec_variant(name: str) -> CodecConfig:
    """The preset :class:`CodecConfig` registered under *name*."""
    return CODEC_VARIANTS.get(name)()


@dataclass
class CompressedBlob:
    """The compressed program area: tables + merged bitstream."""

    table_words: list[int]
    stream_words: list[int]
    #: Bit offset of each region within the stream, in region order.
    #: This is the content of the paper's function offset table.
    region_bit_offsets: list[int]
    table_bits: int
    stream_bits: int

    @property
    def total_words(self) -> int:
        """Words occupied by tables plus stream."""
        return len(self.table_words) + len(self.stream_words)


def _decode_overflow(
    acc: int, navail: int, k: int, overflow: tuple
) -> tuple[int, int]:
    """Resolve a codeword longer than the first-level table width.

    ``acc`` holds ``navail`` upcoming bits; the table already ruled out
    every length <= ``k``.  Canonical codes keep the length-L codewords
    in ``[firsts[L-1], firsts[L-1] + N[L])``, so extend the peek one
    length class at a time.
    """
    counts, firsts, leads, values, max_len = overflow
    for length in range(k + 1, max_len + 1):
        count = counts[length]
        if not count:
            continue
        value = acc >> (navail - length)
        base = firsts[length - 1]
        if value < base + count:
            return values[leads[length] + value - base], length
    raise CorruptBlobError("corrupt bitstream: ran past longest code")


def _require_tables(tables: dict, kind: FieldKind) -> tuple:
    entry = tables.get(kind)
    if entry is None:
        raise CodecTableError(
            f"corrupt tables: no code for stream {kind.name}"
        )
    return entry


def _value_bits(kind: FieldKind, mtf_alphabet_size: int | None) -> int:
    if kind is FieldKind.OPCODE:
        width = _OPCODE_BITS
    else:
        width = FIELD_WIDTHS[kind]
    if mtf_alphabet_size is not None:
        width = max(1, math.ceil(math.log2(max(2, mtf_alphabet_size))))
    return width


@dataclass
class ProgramCodec:
    """Per-stream codes shared by all compressed regions."""

    codes: dict[FieldKind, CanonicalCode | DictionaryCode]
    mtf_alphabets: dict[FieldKind, tuple[int, ...]] = field(
        default_factory=dict
    )
    coder: str = "huffman"

    # -- building --------------------------------------------------------

    @classmethod
    def build(
        cls,
        regions: Sequence[Sequence[CodecInstr]],
        config: CodecConfig | None = None,
    ) -> tuple["ProgramCodec", CompressedBlob]:
        """Build codes over *regions* and encode them all.

        A sentinel is appended to every region.  Returns the codec and
        the compressed blob (tables + merged stream + region offsets).
        """
        config = config or CodecConfig()
        closed: list[list[CodecInstr]] = [
            [*region, sentinel_item()] for region in regions
        ]

        # Pass 1: gather per-kind value sequences (with per-region MTF
        # reset) and count frequencies.
        mtf_alphabets: dict[FieldKind, tuple[int, ...]] = {}
        if config.mtf_kinds:
            raw_values: dict[FieldKind, set[int]] = {}
            for region in closed:
                for item in region:
                    for kind, value in zip(
                        codec_fields(item.opcode), item.fields
                    ):
                        if kind in config.mtf_kinds:
                            raw_values.setdefault(kind, set()).add(value)
            mtf_alphabets = {
                kind: tuple(sorted(values))
                for kind, values in raw_values.items()
            }

        frequencies: dict[FieldKind, dict[int, int]] = {
            FieldKind.OPCODE: {}
        }
        for region in closed:
            transforms = {
                kind: MoveToFront(alphabet)
                for kind, alphabet in mtf_alphabets.items()
            }
            for item in region:
                opfreq = frequencies[FieldKind.OPCODE]
                opfreq[item.opcode] = opfreq.get(item.opcode, 0) + 1
                for kind, value in zip(
                    codec_fields(item.opcode), item.fields
                ):
                    if kind in transforms:
                        value = transforms[kind].encode_one(value)
                    kfreq = frequencies.setdefault(kind, {})
                    kfreq[value] = kfreq.get(value, 0) + 1

        def build_code(kind: FieldKind, freq: dict[int, int]):
            if config.coder == "dict":
                bits = _value_bits(
                    kind, len(mtf_alphabets[kind])
                    if kind in mtf_alphabets else None
                )
                return DictionaryCode.from_frequencies(freq, bits)
            return CanonicalCode.from_frequencies(freq)

        codes = {
            kind: build_code(kind, freq)
            for kind, freq in frequencies.items()
        }
        codec = cls(
            codes=codes, mtf_alphabets=mtf_alphabets, coder=config.coder
        )

        # Pass 2: encode the merged stream.
        writer = BitWriter()
        offsets: list[int] = []
        encoders = {kind: code.encoder() for kind, code in codes.items()}
        for region in closed:
            offsets.append(writer.bit_length)
            transforms = {
                kind: MoveToFront(alphabet)
                for kind, alphabet in mtf_alphabets.items()
            }
            for item in region:
                code, length = encoders[FieldKind.OPCODE][item.opcode]
                writer.write_bits(code, length)
                for kind, value in zip(
                    codec_fields(item.opcode), item.fields
                ):
                    if kind in transforms:
                        value = transforms[kind].encode_one(value)
                    code, length = encoders[kind][value]
                    writer.write_bits(code, length)

        table_writer = BitWriter()
        codec._serialise_tables(table_writer)
        blob = CompressedBlob(
            table_words=table_writer.to_words(),
            stream_words=writer.to_words(),
            region_bit_offsets=offsets,
            table_bits=table_writer.bit_length,
            stream_bits=writer.bit_length,
        )
        return codec, blob

    # -- table (de)serialisation ------------------------------------------

    def _serialise_tables(self, writer: BitWriter) -> None:
        kinds = sorted(self.codes, key=int)
        writer.write_bits(len(kinds), _KIND_BITS)
        writer.write_bits(_CODER_IDS[self.coder], 2)
        for kind in kinds:
            writer.write_bits(int(kind), _KIND_BITS)
            alphabet = self.mtf_alphabets.get(kind)
            writer.write_bits(1 if alphabet is not None else 0, 1)
            if alphabet is not None:
                writer.write_bits(len(alphabet), _COUNT_BITS)
                raw_bits = _value_bits(kind, None)
                for value in alphabet:
                    writer.write_bits(value, raw_bits)
                value_bits = _value_bits(kind, len(alphabet))
            else:
                value_bits = _value_bits(kind, None)
            self.codes[kind].serialise(writer, value_bits)

    @classmethod
    def from_table_words(cls, words: Sequence[int]) -> "ProgramCodec":
        """Rebuild the codec from the serialised tables in memory.

        This is what the runtime decompressor does once, at load time,
        from the compressed area of the image.
        """
        reader = BitReader(words)
        count = reader.read_bits(_KIND_BITS)
        coder_id = reader.read_bits(2)
        code_class = _CODER_CLASSES.get(coder_id)
        if code_class is None:
            raise CodecTableError(
                f"corrupt tables: unknown coder id {coder_id}",
                bit_offset=reader.bit_pos,
            )
        codes: dict[FieldKind, CanonicalCode | DictionaryCode] = {}
        alphabets: dict[FieldKind, tuple[int, ...]] = {}
        for _ in range(count):
            try:
                kind = FieldKind(reader.read_bits(_KIND_BITS))
            except ValueError as exc:
                raise CodecTableError(
                    f"corrupt tables: {exc}", bit_offset=reader.bit_pos
                ) from exc
            has_mtf = reader.read_bits(1)
            if has_mtf:
                size = reader.read_bits(_COUNT_BITS)
                raw_bits = _value_bits(kind, None)
                alphabet = tuple(
                    reader.read_bits(raw_bits) for _ in range(size)
                )
                alphabets[kind] = alphabet
                value_bits = _value_bits(kind, size)
            else:
                value_bits = _value_bits(kind, None)
            codes[kind] = code_class.deserialise(reader, value_bits)
        coder_name = {v: k for k, v in _CODER_IDS.items()}[coder_id]
        return cls(codes=codes, mtf_alphabets=alphabets, coder=coder_name)

    # -- decoding ----------------------------------------------------------

    def decoders(
        self, fast: bool | None = None
    ) -> dict[FieldKind, Callable[[BitReader], int]]:
        """Per-stream symbol-decode callables.

        With *fast* (default: :func:`fast_decode_default`), canonical
        Huffman streams use the table-driven
        :meth:`~repro.compress.canonical.CanonicalCode.fast_decode`;
        otherwise every stream uses its paper-verbatim ``decode``.  Both
        decode the same symbols from the same bits, so the choice never
        changes outputs or modelled costs.
        """
        if fast is None:
            fast = fast_decode_default()
        table: dict[FieldKind, Callable[[BitReader], int]] = {}
        for kind, code in self.codes.items():
            if fast and isinstance(code, CanonicalCode):
                table[kind] = code.fast_decode
            else:
                table[kind] = code.decode
        return table

    def decode_region(
        self,
        words: Sequence[int],
        bit_offset: int,
        fast: bool | None = None,
        backend: str | None = None,
    ) -> tuple[list[CodecInstr], int]:
        """Decode one region starting at *bit_offset*.

        Stops after the sentinel.  Returns the decoded items (sentinel
        excluded) and the number of bits consumed -- the runtime charges
        decompression cost proportional to it.

        The mechanics are chosen by :func:`resolve_decode_backend`
        (*fast* and *backend* are explicit overrides; the environment
        picks otherwise): ``reference`` is the paper-verbatim
        bit-at-a-time loop, ``table`` the specialised first-level-table
        loop, ``vector`` the numpy batch machine of
        :mod:`repro.compress.vector`.  All three decode the same items
        from the same bits.
        """
        name = resolve_decode_backend(fast, backend)
        return DECODE_BACKENDS.get(name)(self, words, bit_offset)

    def decode_regions(
        self,
        words: Sequence[int],
        bit_offsets: Sequence[int],
        backend: str | None = None,
    ) -> list[tuple[list[CodecInstr], int]]:
        """Decode many regions of one stream, in order.

        With the ``vector`` backend the whole batch decodes in one
        lane-parallel pass -- this is the throughput entry point the
        runtime warm path and the benchmarks use; other backends loop.
        """
        name = resolve_decode_backend(None, backend)
        if name == "vector":
            from repro.compress import vector

            return vector.decode_regions(self, words, list(bit_offsets))
        return [
            self.decode_region(words, offset, backend=name)
            for offset in bit_offsets
        ]

    def _decode_region_generic(
        self, words: Sequence[int], bit_offset: int, fast: bool
    ) -> tuple[list[CodecInstr], int]:
        """The coder-agnostic symbol loop behind the backends."""
        reader = BitReader(words, bit_offset)
        decoders = self.decoders(fast)
        opcode_decode = decoders[FieldKind.OPCODE]
        transforms = {
            kind: MoveToFront(alphabet)
            for kind, alphabet in self.mtf_alphabets.items()
        }
        items: list[CodecInstr] = []
        while True:
            opcode = opcode_decode(reader)
            if opcode == OP_SENTINEL:
                break
            values: list[int] = []
            for kind in codec_fields(opcode):
                decode = decoders.get(kind)
                if decode is None:
                    raise CodecTableError(
                        f"corrupt tables: no code for stream {kind.name}"
                    )
                value = decode(reader)
                if kind in transforms:
                    value = transforms[kind].decode_one(value)
                values.append(value)
            items.append(CodecInstr(opcode=opcode, fields=tuple(values)))
        return items, reader.bit_pos - bit_offset

    def _fast_tables(self) -> tuple[dict, dict, int]:
        """Per-stream decode tables and per-opcode field plans.

        Returns ``(tables, plans, window)``: ``tables[kind]`` is
        ``(K, table, overflow)`` for that stream's canonical code
        (``overflow`` being ``(counts, firsts, leads, values,
        max_length)`` for codewords longer than K); ``plans[opcode]``
        is the pre-resolved ``(kind, K, table, overflow)`` sequence of
        that opcode's field streams; ``window`` is the largest codeword
        length over all streams (how many bits the decode loop keeps
        buffered).
        """
        cached = getattr(self, "_fast_decode_tables", None)
        if cached is None:
            tables = {}
            window = 1
            for kind, code in self.codes.items():
                k, table = code.decode_table()
                firsts, leads = code.overflow_tables()
                overflow = (
                    code.counts,
                    firsts,
                    leads,
                    code.values,
                    code.max_length,
                )
                tables[kind] = (k, table, overflow)
                window = max(window, code.max_length)
            plans: dict[int, tuple] = {}
            cached = (tables, plans, window)
            self._fast_decode_tables = cached
        return cached

    def _decode_region_fast(
        self, words: Sequence[int], bit_offset: int
    ) -> tuple[list[CodecInstr], int]:
        """Table-driven region decode with the bit window in locals.

        Decodes exactly the items (and consumes exactly the bits) of
        the generic loop in :meth:`decode_region`; only the mechanics
        differ -- a K-bit prefix lookup per symbol instead of the
        bit-at-a-time DECODE, and zero-padded whole-word refills with a
        hard end-of-stream check wherever padding may have been
        consumed.
        """
        tables, plans, window = self._fast_tables()
        opcode_tables = tables.get(FieldKind.OPCODE)
        if opcode_tables is None:
            raise CodecTableError("corrupt tables: no code for stream OPCODE")
        op_k, op_table, op_overflow = opcode_tables
        transforms = {
            kind: MoveToFront(alphabet)
            for kind, alphabet in self.mtf_alphabets.items()
        }
        nwords = len(words)
        hard_limit = nwords * 32
        new_instr = CodecInstr.__new__
        instr_cls = CodecInstr
        set_attr = object.__setattr__
        # The window: `acc` holds exactly `navail` upcoming bits;
        # `wi` counts words pulled in, including virtual zero-pad words
        # past the end (the hard-limit check rejects symbols that would
        # consume padding, which is only possible once `wi` passes the
        # real word count).
        word_index, bit_index = divmod(bit_offset, 32)
        acc = 0
        navail = 0
        wi = word_index
        if bit_index:
            word = words[wi] if wi < nwords else 0
            acc = word & ((1 << (32 - bit_index)) - 1)
            navail = 32 - bit_index
            wi += 1

        items: list[CodecInstr] = []
        while True:
            while navail < window:
                acc <<= 32
                if wi < nwords:
                    acc |= words[wi]
                wi += 1
                navail += 32

            entry = op_table[acc >> (navail - op_k)]
            if entry is not None:
                opcode, length = entry
            else:
                opcode, length = _decode_overflow(
                    acc, navail, op_k, op_overflow
                )
            navail -= length
            acc &= (1 << navail) - 1
            if wi > nwords and wi * 32 - navail > hard_limit:
                raise TruncatedStreamError(
                    f"bit position {hard_limit} past end of stream",
                    bit_offset=hard_limit,
                )
            if opcode == OP_SENTINEL:
                break

            plan = plans.get(opcode)
            if plan is None:
                plan = plans[opcode] = tuple(
                    (kind, *_require_tables(tables, kind))
                    for kind in codec_fields(opcode)
                )
            values_out: list[int] = []
            for kind, k, table, overflow in plan:
                while navail < window:
                    acc <<= 32
                    if wi < nwords:
                        acc |= words[wi]
                    wi += 1
                    navail += 32
                entry = table[acc >> (navail - k)]
                if entry is not None:
                    symbol, length = entry
                else:
                    symbol, length = _decode_overflow(
                        acc, navail, k, overflow
                    )
                navail -= length
                acc &= (1 << navail) - 1
                if wi > nwords and wi * 32 - navail > hard_limit:
                    raise TruncatedStreamError(
                        f"bit position {hard_limit} past end of stream",
                        bit_offset=hard_limit,
                    )
                if transforms:
                    transform = transforms.get(kind)
                    if transform is not None:
                        symbol = transform.decode_one(symbol)
                values_out.append(symbol)
            # CodecInstr.__init__ only re-validates the field count
            # against the opcode's layout, which holds by construction
            # here (the plan came from codec_fields); build directly.
            item = new_instr(instr_cls)
            set_attr(item, "opcode", opcode)
            set_attr(item, "fields", tuple(values_out))
            items.append(item)
        return items, wi * 32 - navail - bit_offset


# -- decode backends ---------------------------------------------------------
#
# Region decode mechanics are selected by name through the same
# Registry machinery as the codec variants: "reference" is the paper's
# bit-at-a-time loop, "table" the first-level-table loop above,
# "vector" the numpy lane-parallel batch machine.  All three produce
# identical items and bit counts; a backend that cannot express a
# stream (vector with the dictionary coder, or without numpy) degrades
# to the next one down rather than erroring.


def _backend_reference(
    codec: ProgramCodec, words: Sequence[int], bit_offset: int
) -> tuple[list[CodecInstr], int]:
    return codec._decode_region_generic(words, bit_offset, fast=False)


def _backend_table(
    codec: ProgramCodec, words: Sequence[int], bit_offset: int
) -> tuple[list[CodecInstr], int]:
    if codec.coder == "huffman":
        return codec._decode_region_fast(words, bit_offset)
    return codec._decode_region_generic(words, bit_offset, fast=True)


def _backend_vector(
    codec: ProgramCodec, words: Sequence[int], bit_offset: int
) -> tuple[list[CodecInstr], int]:
    from repro.compress import vector

    if vector.HAVE_NUMPY and codec.coder == "huffman":
        return vector.decode_region(codec, words, bit_offset)
    return _backend_table(codec, words, bit_offset)


#: name -> f(codec, words, bit_offset) -> (items, bits).
DECODE_BACKENDS: "Registry[Callable[..., tuple[list[CodecInstr], int]]]" = (
    Registry("decode backend")
)
DECODE_BACKENDS.register("reference", _backend_reference)
DECODE_BACKENDS.register("table", _backend_table)
DECODE_BACKENDS.register("vector", _backend_vector)
