"""The program-level codec: compress regions, decompress on demand.

The whole compressed area of a squashed image is produced here:

* one canonical Huffman code per field-kind stream, built over the
  union of all compressed regions (the tables are stored once for the
  whole program);
* a single merged codeword bitstream, region after region, with the
  function offset table holding each region's starting *bit* offset;
* a decoder that starts at any region's bit offset and decodes until
  the sentinel, exactly what the runtime decompressor does.

Optionally, selected streams get a move-to-front pre-pass (Section 3's
variant); the MTF recency list resets at region boundaries so regions
remain independently decodable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.compress.bitstream import BitReader, BitWriter
from repro.compress.canonical import CanonicalCode
from repro.compress.dictionary import DictionaryCode
from repro.compress.mtf import MoveToFront
from repro.compress.streams import (
    CodecInstr,
    OP_SENTINEL,
    codec_fields,
    sentinel_item,
)
from repro.isa.fields import FIELD_WIDTHS, FieldKind

_OPCODE_BITS = 6
_KIND_BITS = 5
_COUNT_BITS = 16


#: Coder identifiers stored in the serialized tables.
_CODER_IDS = {"huffman": 0, "dict": 1}
_CODER_CLASSES = {0: CanonicalCode, 1: DictionaryCode}


@dataclass(frozen=True)
class CodecConfig:
    """Compression options."""

    #: Field kinds that get a move-to-front pre-pass before Huffman.
    mtf_kinds: frozenset[FieldKind] = frozenset()
    #: Per-stream coder: "huffman" (canonical Huffman, the paper's) or
    #: "dict" (split-stream dictionary coding; faster, less compact).
    coder: str = "huffman"

    def __post_init__(self) -> None:
        if self.coder not in _CODER_IDS:
            raise ValueError(f"unknown coder {self.coder!r}")


@dataclass
class CompressedBlob:
    """The compressed program area: tables + merged bitstream."""

    table_words: list[int]
    stream_words: list[int]
    #: Bit offset of each region within the stream, in region order.
    #: This is the content of the paper's function offset table.
    region_bit_offsets: list[int]
    table_bits: int
    stream_bits: int

    @property
    def total_words(self) -> int:
        """Words occupied by tables plus stream."""
        return len(self.table_words) + len(self.stream_words)


def _value_bits(kind: FieldKind, mtf_alphabet_size: int | None) -> int:
    if kind is FieldKind.OPCODE:
        width = _OPCODE_BITS
    else:
        width = FIELD_WIDTHS[kind]
    if mtf_alphabet_size is not None:
        width = max(1, math.ceil(math.log2(max(2, mtf_alphabet_size))))
    return width


@dataclass
class ProgramCodec:
    """Per-stream codes shared by all compressed regions."""

    codes: dict[FieldKind, CanonicalCode | DictionaryCode]
    mtf_alphabets: dict[FieldKind, tuple[int, ...]] = field(
        default_factory=dict
    )
    coder: str = "huffman"

    # -- building --------------------------------------------------------

    @classmethod
    def build(
        cls,
        regions: Sequence[Sequence[CodecInstr]],
        config: CodecConfig | None = None,
    ) -> tuple["ProgramCodec", CompressedBlob]:
        """Build codes over *regions* and encode them all.

        A sentinel is appended to every region.  Returns the codec and
        the compressed blob (tables + merged stream + region offsets).
        """
        config = config or CodecConfig()
        closed: list[list[CodecInstr]] = [
            [*region, sentinel_item()] for region in regions
        ]

        # Pass 1: gather per-kind value sequences (with per-region MTF
        # reset) and count frequencies.
        mtf_alphabets: dict[FieldKind, tuple[int, ...]] = {}
        if config.mtf_kinds:
            raw_values: dict[FieldKind, set[int]] = {}
            for region in closed:
                for item in region:
                    for kind, value in zip(
                        codec_fields(item.opcode), item.fields
                    ):
                        if kind in config.mtf_kinds:
                            raw_values.setdefault(kind, set()).add(value)
            mtf_alphabets = {
                kind: tuple(sorted(values))
                for kind, values in raw_values.items()
            }

        frequencies: dict[FieldKind, dict[int, int]] = {
            FieldKind.OPCODE: {}
        }
        for region in closed:
            transforms = {
                kind: MoveToFront(alphabet)
                for kind, alphabet in mtf_alphabets.items()
            }
            for item in region:
                opfreq = frequencies[FieldKind.OPCODE]
                opfreq[item.opcode] = opfreq.get(item.opcode, 0) + 1
                for kind, value in zip(
                    codec_fields(item.opcode), item.fields
                ):
                    if kind in transforms:
                        value = transforms[kind].encode_one(value)
                    kfreq = frequencies.setdefault(kind, {})
                    kfreq[value] = kfreq.get(value, 0) + 1

        def build_code(kind: FieldKind, freq: dict[int, int]):
            if config.coder == "dict":
                bits = _value_bits(
                    kind, len(mtf_alphabets[kind])
                    if kind in mtf_alphabets else None
                )
                return DictionaryCode.from_frequencies(freq, bits)
            return CanonicalCode.from_frequencies(freq)

        codes = {
            kind: build_code(kind, freq)
            for kind, freq in frequencies.items()
        }
        codec = cls(
            codes=codes, mtf_alphabets=mtf_alphabets, coder=config.coder
        )

        # Pass 2: encode the merged stream.
        writer = BitWriter()
        offsets: list[int] = []
        encoders = {kind: code.encoder() for kind, code in codes.items()}
        for region in closed:
            offsets.append(writer.bit_length)
            transforms = {
                kind: MoveToFront(alphabet)
                for kind, alphabet in mtf_alphabets.items()
            }
            for item in region:
                code, length = encoders[FieldKind.OPCODE][item.opcode]
                writer.write_bits(code, length)
                for kind, value in zip(
                    codec_fields(item.opcode), item.fields
                ):
                    if kind in transforms:
                        value = transforms[kind].encode_one(value)
                    code, length = encoders[kind][value]
                    writer.write_bits(code, length)

        table_writer = BitWriter()
        codec._serialise_tables(table_writer)
        blob = CompressedBlob(
            table_words=table_writer.to_words(),
            stream_words=writer.to_words(),
            region_bit_offsets=offsets,
            table_bits=table_writer.bit_length,
            stream_bits=writer.bit_length,
        )
        return codec, blob

    # -- table (de)serialisation ------------------------------------------

    def _serialise_tables(self, writer: BitWriter) -> None:
        kinds = sorted(self.codes, key=int)
        writer.write_bits(len(kinds), _KIND_BITS)
        writer.write_bits(_CODER_IDS[self.coder], 2)
        for kind in kinds:
            writer.write_bits(int(kind), _KIND_BITS)
            alphabet = self.mtf_alphabets.get(kind)
            writer.write_bits(1 if alphabet is not None else 0, 1)
            if alphabet is not None:
                writer.write_bits(len(alphabet), _COUNT_BITS)
                raw_bits = _value_bits(kind, None)
                for value in alphabet:
                    writer.write_bits(value, raw_bits)
                value_bits = _value_bits(kind, len(alphabet))
            else:
                value_bits = _value_bits(kind, None)
            self.codes[kind].serialise(writer, value_bits)

    @classmethod
    def from_table_words(cls, words: Sequence[int]) -> "ProgramCodec":
        """Rebuild the codec from the serialised tables in memory.

        This is what the runtime decompressor does once, at load time,
        from the compressed area of the image.
        """
        reader = BitReader(words)
        count = reader.read_bits(_KIND_BITS)
        coder_id = reader.read_bits(2)
        code_class = _CODER_CLASSES[coder_id]
        codes: dict[FieldKind, CanonicalCode | DictionaryCode] = {}
        alphabets: dict[FieldKind, tuple[int, ...]] = {}
        for _ in range(count):
            kind = FieldKind(reader.read_bits(_KIND_BITS))
            has_mtf = reader.read_bits(1)
            if has_mtf:
                size = reader.read_bits(_COUNT_BITS)
                raw_bits = _value_bits(kind, None)
                alphabet = tuple(
                    reader.read_bits(raw_bits) for _ in range(size)
                )
                alphabets[kind] = alphabet
                value_bits = _value_bits(kind, size)
            else:
                value_bits = _value_bits(kind, None)
            codes[kind] = code_class.deserialise(reader, value_bits)
        coder_name = {v: k for k, v in _CODER_IDS.items()}[coder_id]
        return cls(codes=codes, mtf_alphabets=alphabets, coder=coder_name)

    # -- decoding ----------------------------------------------------------

    def decode_region(
        self, words: Sequence[int], bit_offset: int
    ) -> tuple[list[CodecInstr], int]:
        """Decode one region starting at *bit_offset*.

        Stops after the sentinel.  Returns the decoded items (sentinel
        excluded) and the number of bits consumed -- the runtime charges
        decompression cost proportional to it.
        """
        reader = BitReader(words, bit_offset)
        opcode_code = self.codes[FieldKind.OPCODE]
        transforms = {
            kind: MoveToFront(alphabet)
            for kind, alphabet in self.mtf_alphabets.items()
        }
        items: list[CodecInstr] = []
        while True:
            opcode = opcode_code.decode(reader)
            if opcode == OP_SENTINEL:
                break
            values: list[int] = []
            for kind in codec_fields(opcode):
                code = self.codes.get(kind)
                if code is None:
                    raise ValueError(
                        f"corrupt tables: no code for stream {kind.name}"
                    )
                value = code.decode(reader)
                if kind in transforms:
                    value = transforms[kind].decode_one(value)
                values.append(value)
            items.append(CodecInstr(opcode=opcode, fields=tuple(values)))
        return items, reader.bit_pos - bit_offset
