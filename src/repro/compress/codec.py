"""The program-level codec: compress regions, decompress on demand.

The whole compressed area of a squashed image is produced here:

* one canonical Huffman code per field-kind stream, built over the
  union of all compressed regions (the tables are stored once for the
  whole program);
* a single merged codeword bitstream, region after region, with the
  function offset table holding each region's starting *bit* offset;
* a decoder that starts at any region's bit offset and decodes until
  the sentinel, exactly what the runtime decompressor does.

Optionally, selected streams get a move-to-front pre-pass (Section 3's
variant); the MTF recency list resets at region boundaries so regions
remain independently decodable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.compress.bitstream import BitReader, BitWriter
from repro.compress.canonical import CanonicalCode
from repro.compress.dictionary import DictionaryCode
from repro.errors import (
    CodecTableError,
    CorruptBlobError,
    TruncatedStreamError,
)
from repro.compress.model import (
    MAX_CONTEXT_DOMAIN,
    MAX_CONTEXTS,
    StreamLayout,
    StreamModel,
    CodecModel,
    context_domain,
    deserialise_stream_model,
    select_context_models,
    serialise_stream_model,
    start_symbol,
)
from repro.compress.mtf import MoveToFront
from repro.compress.streams import (
    CodecInstr,
    OP_SENTINEL,
    codec_fields,
    sentinel_item,
)
from repro.isa.fields import FIELD_WIDTHS, FieldKind
from repro.pipeline.registry import Registry, RegistryError

_OPCODE_BITS = 6
_KIND_BITS = 5
_COUNT_BITS = 16


#: Coder identifiers stored in the serialized tables.
_CODER_IDS = {"huffman": 0, "dict": 1}
_CODER_CLASSES = {0: CanonicalCode, 1: DictionaryCode}
#: Coder id of the context-model table format (huffman-only); used
#: exactly when some stream is conditioned, so order-0 codecs keep the
#: legacy byte layout bit-for-bit.
_CTX_CODER_ID = 2

def fast_decode_default() -> bool:
    """Default for the table-driven decode path; ``REPRO_FAST_DECODE=0``
    (or ``fast_decode=False`` in :mod:`repro.settings`) falls back to
    the paper-verbatim bit-at-a-time DECODE everywhere."""
    from repro import settings

    return settings.current().fast_decode


def resolve_decode_backend(
    fast: bool | None = None, backend: str | None = None
) -> str:
    """The decode-backend name a region decode should use.

    Precedence: an explicit *fast* flag (the pre-backend API) wins,
    then an explicit *backend* name, then ``REPRO_DECODE_BACKEND``
    (via :mod:`repro.settings`), then the legacy ``fast_decode`` flag
    (True -> ``table``, False -> ``reference``).
    """
    if fast is not None:
        return "table" if fast else "reference"
    if backend:
        return backend
    from repro import settings

    resolved = settings.current()
    if resolved.decode_backend:
        return resolved.decode_backend
    return "table" if resolved.fast_decode else "reference"


@dataclass(frozen=True)
class CodecConfig:
    """Compression options."""

    #: Field kinds that get a move-to-front pre-pass before Huffman.
    mtf_kinds: frozenset[FieldKind] = frozenset()
    #: Per-stream coder: "huffman" (canonical Huffman, the paper's) or
    #: "dict" (split-stream dictionary coding; faster, less compact).
    coder: str = "huffman"
    #: Field kinds whose table is conditioned on the stream's previous
    #: symbol (order-1 context modeling; empty = order-0 everywhere).
    #: Conditioning is cost-driven per stream — a stream that does not
    #: pay for its extra tables stays order-0.
    context_kinds: frozenset[FieldKind] = frozenset()
    #: Cap on contexts per conditioned stream (top-M previous symbols
    #: get singleton contexts, the rest share one).
    max_contexts: int = 9

    def __post_init__(self) -> None:
        if self.coder not in _CODER_IDS:
            raise ValueError(f"unknown coder {self.coder!r}")
        if self.context_kinds:
            if self.coder != "huffman":
                raise ValueError(
                    "context modeling requires the huffman coder"
                )
            overlap = self.context_kinds & self.mtf_kinds
            if overlap:
                names = ", ".join(sorted(k.name for k in overlap))
                raise ValueError(
                    f"context modeling cannot stack on MTF streams: {names}"
                )
            for kind in self.context_kinds:
                if context_domain(kind) > MAX_CONTEXT_DOMAIN:
                    raise ValueError(
                        f"stream {kind.name} is too wide to condition on "
                        f"({context_domain(kind)} previous symbols)"
                    )
            if not 2 <= self.max_contexts <= MAX_CONTEXTS:
                raise ValueError(
                    f"max_contexts {self.max_contexts} outside "
                    f"[2, {MAX_CONTEXTS}]"
                )


#: Named codec presets: variant name -> f() -> CodecConfig.  The
#: experiment harness and CLI select codecs by these names; a new
#: variant (different coder, different MTF stream selection) is added
#: by registering a factory, not by editing call sites.
CODEC_VARIANTS: "Registry[Callable[[], CodecConfig]]" = Registry(
    "codec variant"
)

CODEC_VARIANTS.register("huffman", CodecConfig)
CODEC_VARIANTS.register(
    "mtf+huffman",
    lambda: CodecConfig(
        mtf_kinds=frozenset({FieldKind.RA, FieldKind.RB, FieldKind.LIT8})
    ),
)
CODEC_VARIANTS.register("dict", lambda: CodecConfig(coder="dict"))
CODEC_VARIANTS.register(
    "mtf+dict",
    lambda: CodecConfig(
        coder="dict",
        mtf_kinds=frozenset({FieldKind.RA, FieldKind.RB, FieldKind.LIT8}),
    ),
)
#: "baseline" is the reference point the context variants are measured
#: against on the Fig. 6/7 frontier: the paper's order-0 canonical
#: Huffman codec (an alias of "huffman" by construction).
CODEC_VARIANTS.register("baseline", CodecConfig)
#: Order-1 opcode bigrams: the opcode stream's table is conditioned on
#: the previous opcode.  Fully vector-native (the lane machine grows
#: one LUT bank per opcode context).
CODEC_VARIANTS.register(
    "ctx1",
    lambda: CodecConfig(context_kinds=frozenset({FieldKind.OPCODE})),
)
#: ctx1 plus register-reuse locality: RA/RB streams conditioned on
#: their previous register.  Conditioned field streams degrade the
#: vector backend to the table path (same precedent as the dict coder).
CODEC_VARIANTS.register(
    "ctx1+reg",
    lambda: CodecConfig(
        context_kinds=frozenset(
            {FieldKind.OPCODE, FieldKind.RA, FieldKind.RB}
        )
    ),
)


def codec_variant(name: str) -> CodecConfig:
    """The preset :class:`CodecConfig` registered under *name*."""
    return CODEC_VARIANTS.get(name)()


_VARIANT_FALLBACK = "baseline"
_VARIANT_WARNED: set[str] = set()


def resolve_codec_variant(name: str) -> CodecConfig:
    """Like :func:`codec_variant`, but an unknown *name* warns once and
    falls back to ``baseline`` (mirroring the artifact store's
    eviction-policy registry) instead of failing the squash — variant
    names arrive from the environment, and a typo'd knob should cost a
    warning, not a pipeline."""
    try:
        return CODEC_VARIANTS.get(name)()
    except RegistryError:
        import warnings

        from repro.obs.metrics import get_registry

        if name not in _VARIANT_WARNED:
            _VARIANT_WARNED.add(name)
            warnings.warn(
                f"unknown codec variant {name!r}; falling back to "
                f"{_VARIANT_FALLBACK!r} (known: "
                f"{', '.join(sorted(CODEC_VARIANTS.names()))})",
                stacklevel=2,
            )
        get_registry().inc("codec.variant_fallback")
        return CODEC_VARIANTS.get(_VARIANT_FALLBACK)()


@dataclass
class CompressedBlob:
    """The compressed program area: tables + merged bitstream."""

    table_words: list[int]
    stream_words: list[int]
    #: Bit offset of each region within the stream, in region order.
    #: This is the content of the paper's function offset table.
    region_bit_offsets: list[int]
    table_bits: int
    stream_bits: int
    #: ``(kind, ctx, start_bit, end_bit)`` of every context's table
    #: within the serialised table area (order-0 streams contribute
    #: their single context 0).  Mapping arrays fall outside the spans:
    #: they are sealed by the whole-area CRC only, so per-context seals
    #: survive mapping corruption and vice versa.
    context_spans: list[tuple[int, int, int, int]] = field(
        default_factory=list
    )

    @property
    def total_words(self) -> int:
        """Words occupied by tables plus stream."""
        return len(self.table_words) + len(self.stream_words)


def _decode_overflow(
    acc: int, navail: int, k: int, overflow: tuple
) -> tuple[int, int]:
    """Resolve a codeword longer than the first-level table width.

    ``acc`` holds ``navail`` upcoming bits; the table already ruled out
    every length <= ``k``.  Canonical codes keep the length-L codewords
    in ``[firsts[L-1], firsts[L-1] + N[L])``, so extend the peek one
    length class at a time.
    """
    counts, firsts, leads, values, max_len = overflow
    for length in range(k + 1, max_len + 1):
        count = counts[length]
        if not count:
            continue
        value = acc >> (navail - length)
        base = firsts[length - 1]
        if value < base + count:
            return values[leads[length] + value - base], length
    raise CorruptBlobError("corrupt bitstream: ran past longest code")


def _overflow_at(
    acc: int,
    navail: int,
    k: int,
    overflow: tuple,
    sym_start: int,
    hard_limit: int,
) -> tuple[int, int]:
    """:func:`_decode_overflow` with the reference DECODE's error
    shapes: the longest-code error carries the bit position where
    DECODE gives up (symbol start + max length), and truncation
    outranks it when the probe would have had to read past the end of
    the stream (the fast window only sees zero padding there)."""
    try:
        return _decode_overflow(acc, navail, k, overflow)
    except CorruptBlobError:
        end = sym_start + overflow[4]
        if end > hard_limit:
            raise TruncatedStreamError(
                f"bit position {hard_limit} past end of stream",
                bit_offset=hard_limit,
            ) from None
        raise CorruptBlobError(
            "corrupt bitstream: ran past longest code", bit_offset=end
        ) from None


def _require_tables(tables: dict, kind: FieldKind) -> tuple:
    entry = tables.get(kind)
    if entry is None:
        raise CodecTableError(
            f"corrupt tables: no code for stream {kind.name}"
        )
    return entry


def _value_bits(kind: FieldKind, mtf_alphabet_size: int | None) -> int:
    if kind is FieldKind.OPCODE:
        width = _OPCODE_BITS
    else:
        width = FIELD_WIDTHS[kind]
    if mtf_alphabet_size is not None:
        width = max(1, math.ceil(math.log2(max(2, mtf_alphabet_size))))
    return width


@dataclass
class ProgramCodec:
    """Per-stream codes shared by all compressed regions.

    ``codes[kind]`` is the stream's context-0 table — for an order-0
    stream that *is* the stream's only table; a conditioned stream
    additionally appears in ``models`` with its full per-context table
    bank and mapping.  :attr:`model` assembles the declarative
    :class:`~repro.compress.model.CodecModel` covering every stream,
    which is what the decode backends compile from.
    """

    codes: dict[FieldKind, CanonicalCode | DictionaryCode]
    mtf_alphabets: dict[FieldKind, tuple[int, ...]] = field(
        default_factory=dict
    )
    coder: str = "huffman"
    #: Conditioned streams only (order-1+); order-0 streams live in
    #: ``codes`` alone.
    models: dict[FieldKind, StreamModel] = field(default_factory=dict)
    #: Bit layout of the serialised tables, per stream kind — recorded
    #: by :meth:`from_table_words` for the fault planner and per-context
    #: integrity checks.
    table_layouts: dict[int, StreamLayout] = field(default_factory=dict)

    @property
    def model(self) -> CodecModel:
        """The whole-codec declarative model (one StreamModel per
        stream, order-0 streams as single-context models)."""
        streams = {}
        for kind, code in self.codes.items():
            sm = self.models.get(kind)
            streams[kind] = (
                sm if sm is not None else StreamModel(kind, (code,))
            )
        return CodecModel(streams=streams)

    def stream_model(self, kind: FieldKind) -> StreamModel:
        """*kind*'s :class:`StreamModel` (single-context when order-0)."""
        sm = self.models.get(kind)
        if sm is not None:
            return sm
        return StreamModel(kind, (self.codes[kind],))

    # -- building --------------------------------------------------------

    @classmethod
    def build(
        cls,
        regions: Sequence[Sequence[CodecInstr]],
        config: CodecConfig | None = None,
    ) -> tuple["ProgramCodec", CompressedBlob]:
        """Build codes over *regions* and encode them all.

        A sentinel is appended to every region.  Returns the codec and
        the compressed blob (tables + merged stream + region offsets).
        """
        config = config or CodecConfig()
        closed: list[list[CodecInstr]] = [
            [*region, sentinel_item()] for region in regions
        ]

        # Pass 1: gather per-kind value sequences (with per-region MTF
        # reset) and count frequencies.
        mtf_alphabets: dict[FieldKind, tuple[int, ...]] = {}
        if config.mtf_kinds:
            raw_values: dict[FieldKind, set[int]] = {}
            for region in closed:
                for item in region:
                    for kind, value in zip(
                        codec_fields(item.opcode), item.fields
                    ):
                        if kind in config.mtf_kinds:
                            raw_values.setdefault(kind, set()).add(value)
            mtf_alphabets = {
                kind: tuple(sorted(values))
                for kind, values in raw_values.items()
            }

        frequencies: dict[FieldKind, dict[int, int]] = {
            FieldKind.OPCODE: {}
        }
        for region in closed:
            transforms = {
                kind: MoveToFront(alphabet)
                for kind, alphabet in mtf_alphabets.items()
            }
            for item in region:
                opfreq = frequencies[FieldKind.OPCODE]
                opfreq[item.opcode] = opfreq.get(item.opcode, 0) + 1
                for kind, value in zip(
                    codec_fields(item.opcode), item.fields
                ):
                    if kind in transforms:
                        value = transforms[kind].encode_one(value)
                    kfreq = frequencies.setdefault(kind, {})
                    kfreq[value] = kfreq.get(value, 0) + 1

        # Order-1 candidates: count per-stream bigrams under the
        # region-reset convention, then let the exact cost model pick a
        # context partition per stream (possibly order-0) with a global
        # fallback that guarantees the context format never loses to
        # the legacy one.
        models: dict[FieldKind, StreamModel] = {}
        if config.context_kinds:
            bigrams: dict[FieldKind, dict[int, dict[int, int]]] = {
                kind: {}
                for kind in config.context_kinds
                if kind in frequencies
            }
            for region in closed:
                prev = {kind: start_symbol(kind) for kind in bigrams}
                for item in region:
                    row = bigrams.get(FieldKind.OPCODE)
                    if row is not None:
                        by_prev = row.setdefault(
                            prev[FieldKind.OPCODE], {}
                        )
                        by_prev[item.opcode] = (
                            by_prev.get(item.opcode, 0) + 1
                        )
                        prev[FieldKind.OPCODE] = item.opcode
                    for kind, value in zip(
                        codec_fields(item.opcode), item.fields
                    ):
                        row = bigrams.get(kind)
                        if row is not None:
                            by_prev = row.setdefault(prev[kind], {})
                            by_prev[value] = by_prev.get(value, 0) + 1
                            prev[kind] = value
            models = select_context_models(
                {k: g for k, g in bigrams.items() if g},
                {k: _value_bits(k, None) for k in bigrams},
                max_contexts=config.max_contexts,
                total_streams=len(frequencies),
            )

        def build_code(kind: FieldKind, freq: dict[int, int]):
            if config.coder == "dict":
                bits = _value_bits(
                    kind, len(mtf_alphabets[kind])
                    if kind in mtf_alphabets else None
                )
                return DictionaryCode.from_frequencies(freq, bits)
            return CanonicalCode.from_frequencies(freq)

        codes = {
            kind: (
                models[kind].tables[0]
                if kind in models
                else build_code(kind, freq)
            )
            for kind, freq in frequencies.items()
        }
        codec = cls(
            codes=codes,
            mtf_alphabets=mtf_alphabets,
            coder=config.coder,
            models=models,
        )

        # Pass 2: encode the merged stream.
        writer = BitWriter()
        offsets: list[int] = []
        if models:
            codec._encode_stream_ctx(closed, writer, offsets)
        else:
            encoders = {
                kind: code.encoder() for kind, code in codes.items()
            }
            for region in closed:
                offsets.append(writer.bit_length)
                transforms = {
                    kind: MoveToFront(alphabet)
                    for kind, alphabet in mtf_alphabets.items()
                }
                for item in region:
                    code, length = encoders[FieldKind.OPCODE][item.opcode]
                    writer.write_bits(code, length)
                    for kind, value in zip(
                        codec_fields(item.opcode), item.fields
                    ):
                        if kind in transforms:
                            value = transforms[kind].encode_one(value)
                        code, length = encoders[kind][value]
                        writer.write_bits(code, length)

        table_writer = BitWriter()
        spans: list[tuple[int, int, int, int]] = []
        codec._serialise_tables(table_writer, spans)
        blob = CompressedBlob(
            table_words=table_writer.to_words(),
            stream_words=writer.to_words(),
            region_bit_offsets=offsets,
            table_bits=table_writer.bit_length,
            stream_bits=writer.bit_length,
            context_spans=spans,
        )
        return codec, blob

    def _encode_stream_ctx(
        self,
        closed: Sequence[Sequence[CodecInstr]],
        writer: BitWriter,
        offsets: list[int],
    ) -> None:
        """Context-aware encode of the merged stream.

        Each conditioned stream tracks its previous symbol (reset per
        region per :func:`~repro.compress.model.start_symbol`) and
        encodes against the context that symbol maps to; order-0
        streams use their single table exactly as the legacy loop
        does, so a codec with no conditioned streams emits identical
        bits either way.
        """
        banks = {
            kind: tuple(t.encoder() for t in sm.tables)
            for kind, sm in self.models.items()
        }
        flat = {
            kind: code.encoder()
            for kind, code in self.codes.items()
            if kind not in self.models
        }
        op_model = self.models.get(FieldKind.OPCODE)
        op_bank = banks.get(FieldKind.OPCODE)
        op_flat = flat.get(FieldKind.OPCODE)
        for region in closed:
            offsets.append(writer.bit_length)
            transforms = {
                kind: MoveToFront(alphabet)
                for kind, alphabet in self.mtf_alphabets.items()
            }
            prev = {
                kind: start_symbol(kind) for kind in self.models
            }
            for item in region:
                if op_model is not None:
                    encoder = op_bank[
                        op_model.context_of(prev[FieldKind.OPCODE])
                    ]
                    prev[FieldKind.OPCODE] = item.opcode
                else:
                    encoder = op_flat
                code, length = encoder[item.opcode]
                writer.write_bits(code, length)
                for kind, value in zip(
                    codec_fields(item.opcode), item.fields
                ):
                    if kind in transforms:
                        value = transforms[kind].encode_one(value)
                    sm = self.models.get(kind)
                    if sm is not None:
                        encoder = banks[kind][sm.context_of(prev[kind])]
                        prev[kind] = value
                    else:
                        encoder = flat[kind]
                    code, length = encoder[value]
                    writer.write_bits(code, length)

    # -- table (de)serialisation ------------------------------------------

    def _serialise_tables(
        self,
        writer: BitWriter,
        spans: list[tuple[int, int, int, int]] | None = None,
    ) -> None:
        """Serialise the table area; *spans* collects per-context
        ``(kind, ctx, start_bit, end_bit)`` table positions.

        A codec with conditioned streams uses the context format
        (coder id :data:`_CTX_CODER_ID`: per stream a context count,
        the mapping array when conditioned, then each context's
        table); an order-0 codec keeps the legacy format bit-for-bit,
        which is what pins the ``baseline`` variant's byte identity.
        """
        kinds = sorted(self.codes, key=int)
        writer.write_bits(len(kinds), _KIND_BITS)
        coder_id = _CTX_CODER_ID if self.models else _CODER_IDS[self.coder]
        writer.write_bits(coder_id, 2)
        for kind in kinds:
            writer.write_bits(int(kind), _KIND_BITS)
            alphabet = self.mtf_alphabets.get(kind)
            writer.write_bits(1 if alphabet is not None else 0, 1)
            if alphabet is not None:
                writer.write_bits(len(alphabet), _COUNT_BITS)
                raw_bits = _value_bits(kind, None)
                for value in alphabet:
                    writer.write_bits(value, raw_bits)
                value_bits = _value_bits(kind, len(alphabet))
            else:
                value_bits = _value_bits(kind, None)
            if coder_id == _CTX_CODER_ID:
                serialise_stream_model(
                    writer, self.stream_model(kind), value_bits, spans
                )
            else:
                start = writer.bit_length
                self.codes[kind].serialise(writer, value_bits)
                if spans is not None:
                    spans.append((int(kind), 0, start, writer.bit_length))

    @classmethod
    def from_table_words(cls, words: Sequence[int]) -> "ProgramCodec":
        """Rebuild the codec from the serialised tables in memory.

        This is what the runtime decompressor does once, at load time,
        from the compressed area of the image.
        """
        reader = BitReader(words)
        count = reader.read_bits(_KIND_BITS)
        coder_id = reader.read_bits(2)
        is_ctx = coder_id == _CTX_CODER_ID
        code_class = _CODER_CLASSES.get(coder_id)
        if code_class is None and not is_ctx:
            raise CodecTableError(
                f"corrupt tables: unknown coder id {coder_id}",
                bit_offset=reader.bit_pos,
            )
        codes: dict[FieldKind, CanonicalCode | DictionaryCode] = {}
        alphabets: dict[FieldKind, tuple[int, ...]] = {}
        models: dict[FieldKind, StreamModel] = {}
        layouts: dict[int, StreamLayout] = {}
        for _ in range(count):
            try:
                kind = FieldKind(reader.read_bits(_KIND_BITS))
            except ValueError as exc:
                raise CodecTableError(
                    f"corrupt tables: {exc}", bit_offset=reader.bit_pos
                ) from exc
            has_mtf = reader.read_bits(1)
            if has_mtf:
                size = reader.read_bits(_COUNT_BITS)
                raw_bits = _value_bits(kind, None)
                alphabet = tuple(
                    reader.read_bits(raw_bits) for _ in range(size)
                )
                alphabets[kind] = alphabet
                value_bits = _value_bits(kind, size)
            else:
                value_bits = _value_bits(kind, None)
            if is_ctx:
                model, layout = deserialise_stream_model(
                    reader, kind, value_bits
                )
                codes[kind] = model.tables[0]
                if model.conditioned:
                    models[kind] = model
                layouts[int(kind)] = layout
            else:
                start = reader.bit_pos
                codes[kind] = code_class.deserialise(reader, value_bits)
                layouts[int(kind)] = StreamLayout(
                    kind=int(kind),
                    n_contexts=1,
                    ctx_bits=0,
                    mapping_start_bit=-1,
                    spans=((start, reader.bit_pos),),
                )
        coder_name = (
            "huffman"
            if is_ctx
            else {v: k for k, v in _CODER_IDS.items()}[coder_id]
        )
        return cls(
            codes=codes,
            mtf_alphabets=alphabets,
            coder=coder_name,
            models=models,
            table_layouts=layouts,
        )

    # -- decoding ----------------------------------------------------------

    def decoders(
        self, fast: bool | None = None
    ) -> dict[FieldKind, Callable[[BitReader], int]]:
        """Per-stream symbol-decode callables.

        With *fast* (default: :func:`fast_decode_default`), canonical
        Huffman streams use the table-driven
        :meth:`~repro.compress.canonical.CanonicalCode.fast_decode`;
        otherwise every stream uses its paper-verbatim ``decode``.  Both
        decode the same symbols from the same bits, so the choice never
        changes outputs or modelled costs.
        """
        if fast is None:
            fast = fast_decode_default()
        table: dict[FieldKind, Callable[[BitReader], int]] = {}
        for kind, code in self.codes.items():
            if fast and isinstance(code, CanonicalCode):
                table[kind] = code.fast_decode
            else:
                table[kind] = code.decode
        return table

    def decode_region(
        self,
        words: Sequence[int],
        bit_offset: int,
        fast: bool | None = None,
        backend: str | None = None,
    ) -> tuple[list[CodecInstr], int]:
        """Decode one region starting at *bit_offset*.

        Stops after the sentinel.  Returns the decoded items (sentinel
        excluded) and the number of bits consumed -- the runtime charges
        decompression cost proportional to it.

        The mechanics are chosen by :func:`resolve_decode_backend`
        (*fast* and *backend* are explicit overrides; the environment
        picks otherwise): ``reference`` is the paper-verbatim
        bit-at-a-time loop, ``table`` the specialised first-level-table
        loop, ``vector`` the numpy batch machine of
        :mod:`repro.compress.vector`.  All three decode the same items
        from the same bits.
        """
        name = resolve_decode_backend(fast, backend)
        return DECODE_BACKENDS.get(name)(self, words, bit_offset)

    def decode_regions(
        self,
        words: Sequence[int],
        bit_offsets: Sequence[int],
        backend: str | None = None,
    ) -> list[tuple[list[CodecInstr], int]]:
        """Decode many regions of one stream, in order.

        With the ``vector`` backend the whole batch decodes in one
        lane-parallel pass -- this is the throughput entry point the
        runtime warm path and the benchmarks use; other backends loop.
        """
        name = resolve_decode_backend(None, backend)
        if name == "vector":
            from repro.compress import vector

            return vector.decode_regions(self, words, list(bit_offsets))
        return [
            self.decode_region(words, offset, backend=name)
            for offset in bit_offsets
        ]

    def _decode_region_generic(
        self, words: Sequence[int], bit_offset: int, fast: bool
    ) -> tuple[list[CodecInstr], int]:
        """The coder-agnostic symbol loop behind the backends."""
        if self.models:
            return self._decode_region_generic_ctx(words, bit_offset, fast)
        reader = BitReader(words, bit_offset)
        decoders = self.decoders(fast)
        opcode_decode = decoders[FieldKind.OPCODE]
        transforms = {
            kind: MoveToFront(alphabet)
            for kind, alphabet in self.mtf_alphabets.items()
        }
        items: list[CodecInstr] = []
        while True:
            opcode = opcode_decode(reader)
            if opcode == OP_SENTINEL:
                break
            values: list[int] = []
            for kind in codec_fields(opcode):
                decode = decoders.get(kind)
                if decode is None:
                    raise CodecTableError(
                        f"corrupt tables: no code for stream {kind.name}"
                    )
                value = decode(reader)
                if kind in transforms:
                    value = transforms[kind].decode_one(value)
                values.append(value)
            items.append(CodecInstr(opcode=opcode, fields=tuple(values)))
        return items, reader.bit_pos - bit_offset

    def _decode_region_generic_ctx(
        self, words: Sequence[int], bit_offset: int, fast: bool
    ) -> tuple[list[CodecInstr], int]:
        """The generic loop for context-modeled codecs.

        Mirrors :meth:`_decode_region_generic` with one decode
        callable per (stream, context): each conditioned stream tracks
        its previous symbol and decodes via the context it maps to.
        """
        reader = BitReader(words, bit_offset)
        banks: dict[FieldKind, tuple] = {}
        for kind, code in self.codes.items():
            sm = self.models.get(kind)
            tables = sm.tables if sm is not None else (code,)
            if fast:
                banks[kind] = tuple(t.fast_decode for t in tables)
            else:
                banks[kind] = tuple(t.decode for t in tables)
        op_model = self.models.get(FieldKind.OPCODE)
        op_bank = banks[FieldKind.OPCODE]
        transforms = {
            kind: MoveToFront(alphabet)
            for kind, alphabet in self.mtf_alphabets.items()
        }
        prev = {kind: start_symbol(kind) for kind in self.models}
        items: list[CodecInstr] = []
        while True:
            if op_model is not None:
                decode = op_bank[
                    op_model.context_of(prev[FieldKind.OPCODE])
                ]
            else:
                decode = op_bank[0]
            opcode = decode(reader)
            if op_model is not None:
                prev[FieldKind.OPCODE] = opcode
            if opcode == OP_SENTINEL:
                break
            values: list[int] = []
            for kind in codec_fields(opcode):
                bank = banks.get(kind)
                if bank is None:
                    raise CodecTableError(
                        f"corrupt tables: no code for stream {kind.name}"
                    )
                sm = self.models.get(kind)
                if sm is not None:
                    value = bank[sm.context_of(prev[kind])](reader)
                    prev[kind] = value
                else:
                    value = bank[0](reader)
                if kind in transforms:
                    value = transforms[kind].decode_one(value)
                values.append(value)
            items.append(CodecInstr(opcode=opcode, fields=tuple(values)))
        return items, reader.bit_pos - bit_offset

    def _fast_tables(self) -> tuple[dict, dict, int]:
        """Per-stream decode tables and per-opcode field plans.

        Returns ``(tables, plans, window)``: ``tables[kind]`` is
        ``(K, table, overflow)`` for that stream's canonical code
        (``overflow`` being ``(counts, firsts, leads, values,
        max_length)`` for codewords longer than K); ``plans[opcode]``
        is the pre-resolved ``(kind, K, table, overflow)`` sequence of
        that opcode's field streams; ``window`` is the largest codeword
        length over all streams (how many bits the decode loop keeps
        buffered).
        """
        cached = getattr(self, "_fast_decode_tables", None)
        if cached is None:
            tables = {}
            window = 1
            for kind, code in self.codes.items():
                k, table = code.decode_table()
                firsts, leads = code.overflow_tables()
                overflow = (
                    code.counts,
                    firsts,
                    leads,
                    code.values,
                    code.max_length,
                )
                tables[kind] = (k, table, overflow)
                window = max(window, code.max_length)
            plans: dict[int, tuple] = {}
            cached = (tables, plans, window)
            self._fast_decode_tables = cached
        return cached

    def _decode_region_fast(
        self, words: Sequence[int], bit_offset: int
    ) -> tuple[list[CodecInstr], int]:
        """Table-driven region decode with the bit window in locals.

        Decodes exactly the items (and consumes exactly the bits) of
        the generic loop in :meth:`decode_region`; only the mechanics
        differ -- a K-bit prefix lookup per symbol instead of the
        bit-at-a-time DECODE, and zero-padded whole-word refills with a
        hard end-of-stream check wherever padding may have been
        consumed.
        """
        if self.models:
            return self._decode_region_fast_ctx(words, bit_offset)
        tables, plans, window = self._fast_tables()
        opcode_tables = tables.get(FieldKind.OPCODE)
        if opcode_tables is None:
            raise CodecTableError("corrupt tables: no code for stream OPCODE")
        op_k, op_table, op_overflow = opcode_tables
        transforms = {
            kind: MoveToFront(alphabet)
            for kind, alphabet in self.mtf_alphabets.items()
        }
        nwords = len(words)
        hard_limit = nwords * 32
        if bit_offset > hard_limit:
            # The sequential path truncates on the very first read,
            # naming the (out-of-range) read position.
            raise TruncatedStreamError(
                f"bit position {bit_offset} past end of stream",
                bit_offset=bit_offset,
            )
        new_instr = CodecInstr.__new__
        instr_cls = CodecInstr
        set_attr = object.__setattr__
        # The window: `acc` holds exactly `navail` upcoming bits;
        # `wi` counts words pulled in, including virtual zero-pad words
        # past the end (the hard-limit check rejects symbols that would
        # consume padding, which is only possible once `wi` passes the
        # real word count).
        word_index, bit_index = divmod(bit_offset, 32)
        acc = 0
        navail = 0
        wi = word_index
        if bit_index:
            word = words[wi] if wi < nwords else 0
            acc = word & ((1 << (32 - bit_index)) - 1)
            navail = 32 - bit_index
            wi += 1

        items: list[CodecInstr] = []
        while True:
            while navail < window:
                acc <<= 32
                if wi < nwords:
                    acc |= words[wi]
                wi += 1
                navail += 32

            entry = op_table[acc >> (navail - op_k)]
            if entry is not None:
                opcode, length = entry
            else:
                opcode, length = _overflow_at(
                    acc, navail, op_k, op_overflow,
                    wi * 32 - navail, hard_limit,
                )
            navail -= length
            acc &= (1 << navail) - 1
            if wi > nwords and wi * 32 - navail > hard_limit:
                raise TruncatedStreamError(
                    f"bit position {hard_limit} past end of stream",
                    bit_offset=hard_limit,
                )
            if opcode == OP_SENTINEL:
                break

            plan = plans.get(opcode)
            if plan is None:
                plan = plans[opcode] = tuple(
                    (kind, *_require_tables(tables, kind))
                    for kind in codec_fields(opcode)
                )
            values_out: list[int] = []
            for kind, k, table, overflow in plan:
                while navail < window:
                    acc <<= 32
                    if wi < nwords:
                        acc |= words[wi]
                    wi += 1
                    navail += 32
                entry = table[acc >> (navail - k)]
                if entry is not None:
                    symbol, length = entry
                else:
                    symbol, length = _overflow_at(
                        acc, navail, k, overflow,
                        wi * 32 - navail, hard_limit,
                    )
                navail -= length
                acc &= (1 << navail) - 1
                if wi > nwords and wi * 32 - navail > hard_limit:
                    raise TruncatedStreamError(
                        f"bit position {hard_limit} past end of stream",
                        bit_offset=hard_limit,
                    )
                if transforms:
                    transform = transforms.get(kind)
                    if transform is not None:
                        symbol = transform.decode_one(symbol)
                values_out.append(symbol)
            # CodecInstr.__init__ only re-validates the field count
            # against the opcode's layout, which holds by construction
            # here (the plan came from codec_fields); build directly.
            item = new_instr(instr_cls)
            set_attr(item, "opcode", opcode)
            set_attr(item, "fields", tuple(values_out))
            items.append(item)
        return items, wi * 32 - navail - bit_offset

    def _fast_tables_ctx(self) -> tuple[dict, dict, int]:
        """Context-banked analogue of :meth:`_fast_tables`.

        ``banks[kind]`` is ``(mapping, tables)``: ``mapping`` the
        stream's previous-symbol -> context array (``None`` for
        order-0 streams) and ``tables[ctx]`` the familiar
        ``(K, table, overflow)`` triple of that context's code.
        """
        cached = getattr(self, "_fast_ctx_tables", None)
        if cached is None:
            banks = {}
            window = 1
            for kind, code in self.codes.items():
                sm = self.models.get(kind)
                triples = []
                for ctx_code in (sm.tables if sm is not None else (code,)):
                    k, table = ctx_code.decode_table()
                    firsts, leads = ctx_code.overflow_tables()
                    triples.append((
                        k,
                        table,
                        (
                            ctx_code.counts,
                            firsts,
                            leads,
                            ctx_code.values,
                            ctx_code.max_length,
                        ),
                    ))
                    window = max(window, ctx_code.max_length)
                banks[kind] = (
                    sm.mapping if sm is not None else None,
                    tuple(triples),
                )
            plans: dict[int, tuple] = {}
            cached = (banks, plans, window)
            self._fast_ctx_tables = cached
        return cached

    def _decode_region_fast_ctx(
        self, words: Sequence[int], bit_offset: int
    ) -> tuple[list[CodecInstr], int]:
        """Table-driven region decode for context-modeled codecs.

        The window mechanics (refills, hard end-of-stream checks) are
        those of :meth:`_decode_region_fast` verbatim; the only
        addition is per-stream previous-symbol tracking selecting the
        ``(K, table, overflow)`` triple of the active context before
        each lookup.
        """
        banks, plans, window = self._fast_tables_ctx()
        op_bank = banks.get(FieldKind.OPCODE)
        if op_bank is None:
            raise CodecTableError("corrupt tables: no code for stream OPCODE")
        op_mapping, op_tables = op_bank
        transforms = {
            kind: MoveToFront(alphabet)
            for kind, alphabet in self.mtf_alphabets.items()
        }
        nwords = len(words)
        hard_limit = nwords * 32
        if bit_offset > hard_limit:
            raise TruncatedStreamError(
                f"bit position {bit_offset} past end of stream",
                bit_offset=bit_offset,
            )
        new_instr = CodecInstr.__new__
        instr_cls = CodecInstr
        set_attr = object.__setattr__
        word_index, bit_index = divmod(bit_offset, 32)
        acc = 0
        navail = 0
        wi = word_index
        if bit_index:
            word = words[wi] if wi < nwords else 0
            acc = word & ((1 << (32 - bit_index)) - 1)
            navail = 32 - bit_index
            wi += 1

        op_prev = start_symbol(FieldKind.OPCODE)
        prev: dict[FieldKind, int] = {
            kind: start_symbol(kind)
            for kind in self.models
            if kind is not FieldKind.OPCODE
        }
        items: list[CodecInstr] = []
        while True:
            while navail < window:
                acc <<= 32
                if wi < nwords:
                    acc |= words[wi]
                wi += 1
                navail += 32

            if op_mapping is not None:
                op_k, op_table, op_overflow = op_tables[op_mapping[op_prev]]
            else:
                op_k, op_table, op_overflow = op_tables[0]
            entry = op_table[acc >> (navail - op_k)]
            if entry is not None:
                opcode, length = entry
            else:
                opcode, length = _overflow_at(
                    acc, navail, op_k, op_overflow,
                    wi * 32 - navail, hard_limit,
                )
            navail -= length
            acc &= (1 << navail) - 1
            if wi > nwords and wi * 32 - navail > hard_limit:
                raise TruncatedStreamError(
                    f"bit position {hard_limit} past end of stream",
                    bit_offset=hard_limit,
                )
            if op_mapping is not None:
                op_prev = opcode
            if opcode == OP_SENTINEL:
                break

            plan = plans.get(opcode)
            if plan is None:
                plan = plans[opcode] = tuple(
                    (kind, *_require_tables(banks, kind))
                    for kind in codec_fields(opcode)
                )
            values_out: list[int] = []
            for kind, mapping, ctx_tables in plan:
                while navail < window:
                    acc <<= 32
                    if wi < nwords:
                        acc |= words[wi]
                    wi += 1
                    navail += 32
                if mapping is not None:
                    k, table, overflow = ctx_tables[mapping[prev[kind]]]
                else:
                    k, table, overflow = ctx_tables[0]
                entry = table[acc >> (navail - k)]
                if entry is not None:
                    symbol, length = entry
                else:
                    symbol, length = _overflow_at(
                        acc, navail, k, overflow,
                        wi * 32 - navail, hard_limit,
                    )
                navail -= length
                acc &= (1 << navail) - 1
                if wi > nwords and wi * 32 - navail > hard_limit:
                    raise TruncatedStreamError(
                        f"bit position {hard_limit} past end of stream",
                        bit_offset=hard_limit,
                    )
                if mapping is not None:
                    # Conditioning applies to the symbols as coded;
                    # conditioned streams are never MTF streams.
                    prev[kind] = symbol
                if transforms:
                    transform = transforms.get(kind)
                    if transform is not None:
                        symbol = transform.decode_one(symbol)
                values_out.append(symbol)
            item = new_instr(instr_cls)
            set_attr(item, "opcode", opcode)
            set_attr(item, "fields", tuple(values_out))
            items.append(item)
        return items, wi * 32 - navail - bit_offset


# -- decode backends ---------------------------------------------------------
#
# Region decode mechanics are selected by name through the same
# Registry machinery as the codec variants: "reference" is the paper's
# bit-at-a-time loop, "table" the first-level-table loop above,
# "vector" the numpy lane-parallel batch machine.  All three produce
# identical items and bit counts; a backend that cannot express a
# stream (vector with the dictionary coder, or without numpy) degrades
# to the next one down rather than erroring.


def _backend_reference(
    codec: ProgramCodec, words: Sequence[int], bit_offset: int
) -> tuple[list[CodecInstr], int]:
    return codec._decode_region_generic(words, bit_offset, fast=False)


def _backend_table(
    codec: ProgramCodec, words: Sequence[int], bit_offset: int
) -> tuple[list[CodecInstr], int]:
    if codec.coder == "huffman":
        return codec._decode_region_fast(words, bit_offset)
    return codec._decode_region_generic(words, bit_offset, fast=True)


def _backend_vector(
    codec: ProgramCodec, words: Sequence[int], bit_offset: int
) -> tuple[list[CodecInstr], int]:
    from repro.compress import vector

    if vector.HAVE_NUMPY and codec.coder == "huffman":
        return vector.decode_region(codec, words, bit_offset)
    return _backend_table(codec, words, bit_offset)


#: name -> f(codec, words, bit_offset) -> (items, bits).
DECODE_BACKENDS: "Registry[Callable[..., tuple[list[CodecInstr], int]]]" = (
    Registry("decode backend")
)
DECODE_BACKENDS.register("reference", _backend_reference)
DECODE_BACKENDS.register("table", _backend_table)
DECODE_BACKENDS.register("vector", _backend_vector)
