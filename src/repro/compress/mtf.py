"""Move-to-front coding (the optional pre-pass of Section 3).

MTF replaces each value by its current index in a recency list; values
that repeat soon after their last use get small indices, which skews
the index distribution and can help the subsequent Huffman stage.  The
paper notes the cost: a bigger, slower decompressor.  The recency list
is reset at every region boundary so regions stay independently
decompressible at random bit offsets.
"""

from __future__ import annotations

from typing import Sequence


class MoveToFront:
    """A move-to-front transformer over a fixed alphabet."""

    def __init__(self, alphabet: Sequence[int]):
        if len(set(alphabet)) != len(alphabet):
            raise ValueError("MTF alphabet has duplicates")
        self._initial = list(alphabet)
        self._list = list(alphabet)

    def reset(self) -> None:
        """Restore the initial alphabet order (at a region boundary)."""
        self._list = list(self._initial)

    def encode_one(self, value: int) -> int:
        index = self._list.index(value)
        if index:
            del self._list[index]
            self._list.insert(0, value)
        return index

    def decode_one(self, index: int) -> int:
        value = self._list[index]
        if index:
            del self._list[index]
            self._list.insert(0, value)
        return value


def mtf_encode(values: Sequence[int], alphabet: Sequence[int]) -> list[int]:
    """Transform *values* to MTF indices over *alphabet*."""
    mtf = MoveToFront(alphabet)
    return [mtf.encode_one(v) for v in values]


def mtf_decode(indices: Sequence[int], alphabet: Sequence[int]) -> list[int]:
    """Inverse of :func:`mtf_encode`."""
    mtf = MoveToFront(alphabet)
    return [mtf.decode_one(i) for i in indices]
