"""Declarative codec models: per-stream contexts, one table per context.

A codec variant is described by a :class:`CodecModel`: for every field
stream a :class:`StreamModel` holding one canonical table *per
context* plus a ``mapping`` from the stream's previous symbol to the
context that codes the next one.  Order-0 streams (the paper's codec)
are the one-context special case with an empty mapping.  Every codec
consumer derives from this object: the encoder emits against it, the
three decode backends compile their decode structures from it, the
serialised table area stores it (with per-context CRC spans), and the
verifier/fault-injection layers walk its contexts.

Context selection is cost-driven and exact: for each conditionable
stream the builder counts order-1 bigrams, tries giving the top-M
previous symbols their own singleton context (everything else shares
one), and keeps the partition whose *total* cost — per-context stream
bits + per-context table bits + the mapping array — is smallest.
Order-0 wins ties, and a model whose serialised total (including the
context-format header overhead) would not beat the legacy order-0
format is dropped entirely, so a context variant never produces a
larger compressed area than the baseline codec.

Previous-symbol convention (shared by encoder and decoders): the
OPCODE stream starts each region as if a sentinel preceded it (regions
end with one, and region independence requires a per-region reset);
every other stream starts at symbol 0.  Conditioning applies to the
symbols as coded, and MTF streams are excluded from conditioning, so
``prev`` is always the raw coded symbol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compress.bitstream import BitReader, BitWriter
from repro.compress.canonical import CanonicalCode
from repro.compress.streams import OP_SENTINEL
from repro.errors import CodecTableError
from repro.isa.fields import FIELD_WIDTHS, FieldKind

#: The opcode stream's symbol domain: 6-bit opcodes incl. pseudo-ops.
OPCODE_DOMAIN = 64

#: Largest previous-symbol domain a stream may be conditioned on; the
#: mapping array stores one entry per domain value, so wide streams
#: (e.g. 21-bit branch displacements) may not be conditioned.
MAX_CONTEXT_DOMAIN = 256

#: Bits storing the per-stream context count in the serialised tables.
N_CTX_BITS = 5

#: Largest context count expressible in the serialised form.
MAX_CONTEXTS = (1 << N_CTX_BITS) - 1


def context_domain(kind: FieldKind) -> int:
    """Size of the previous-symbol domain of *kind*'s stream."""
    if kind is FieldKind.OPCODE:
        return OPCODE_DOMAIN
    return 1 << FIELD_WIDTHS[kind]


def context_bits(n_contexts: int) -> int:
    """Bits per serialised mapping entry.

    ``n_contexts.bit_length()`` rather than ``(n_contexts - 1)``'s, so
    at least one out-of-range value is always encodable: a corrupted
    mapping entry is detectable by construction, never silently aliased
    onto a valid context.
    """
    return max(1, n_contexts.bit_length())


def start_symbol(kind: FieldKind) -> int:
    """The conventional previous symbol at the start of every region."""
    return OP_SENTINEL if kind is FieldKind.OPCODE else 0


@dataclass(frozen=True)
class StreamModel:
    """One field stream's contexts: a table per context + the mapping.

    ``mapping[prev]`` names the context that codes the symbol following
    *prev*; an empty mapping means order-0 (a single context).
    """

    kind: FieldKind
    tables: tuple[CanonicalCode, ...]
    mapping: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError(f"stream {self.kind.name} has no tables")
        if len(self.tables) > MAX_CONTEXTS:
            raise ValueError(
                f"stream {self.kind.name} has {len(self.tables)} contexts "
                f"(limit {MAX_CONTEXTS})"
            )
        if self.mapping:
            if len(self.tables) == 1:
                raise ValueError(
                    f"stream {self.kind.name}: mapping with one context"
                )
            if len(self.mapping) != context_domain(self.kind):
                raise ValueError(
                    f"stream {self.kind.name}: mapping covers "
                    f"{len(self.mapping)} of {context_domain(self.kind)} "
                    f"previous symbols"
                )
            for ctx in self.mapping:
                if not 0 <= ctx < len(self.tables):
                    raise ValueError(
                        f"stream {self.kind.name}: mapping names context "
                        f"{ctx} of {len(self.tables)}"
                    )
        elif len(self.tables) != 1:
            raise ValueError(
                f"stream {self.kind.name}: {len(self.tables)} contexts "
                f"need a mapping"
            )

    @property
    def n_contexts(self) -> int:
        return len(self.tables)

    @property
    def conditioned(self) -> bool:
        return len(self.tables) > 1

    def context_of(self, prev: int) -> int:
        """The context id coding the symbol that follows *prev*."""
        return self.mapping[prev] if self.mapping else 0


@dataclass
class CodecModel:
    """The declarative whole-codec model: one StreamModel per stream."""

    streams: dict[FieldKind, StreamModel]

    @property
    def conditioned_kinds(self) -> frozenset[FieldKind]:
        return frozenset(
            kind for kind, sm in self.streams.items() if sm.conditioned
        )

    @property
    def conditioned(self) -> bool:
        return any(sm.conditioned for sm in self.streams.values())

    @property
    def has_conditioned_fields(self) -> bool:
        """True when any non-OPCODE stream is conditioned (the vector
        backend's lane state machine only banks the opcode stream)."""
        return any(
            sm.conditioned
            for kind, sm in self.streams.items()
            if kind is not FieldKind.OPCODE
        )

    @property
    def n_contexts(self) -> int:
        return sum(sm.n_contexts for sm in self.streams.values())


@dataclass(frozen=True)
class StreamLayout:
    """Bit positions of one stream's serialised pieces, for the fault
    planner and per-context integrity: where the mapping array lives
    (``-1`` when order-0) and the (start, end) span of each context's
    table.  Mapping bits sit *outside* the spans — they are covered by
    the whole-area table CRC only."""

    kind: int
    n_contexts: int
    ctx_bits: int
    mapping_start_bit: int
    spans: tuple[tuple[int, int], ...]


@dataclass(frozen=True)
class StreamChoice:
    """Result of cost-driven partition selection for one stream."""

    model: StreamModel
    cost: int
    order0_cost: int


def _code_and_cost(
    freq: dict[int, int], value_bits: int
) -> tuple[CanonicalCode, int]:
    """The canonical code for *freq* and its exact total bit cost
    (serialised table + coded stream).  An empty context gets a dummy
    single-symbol code — it is never consulted by a well-formed
    stream, but every serialised context must hold a valid table."""
    if not freq:
        code = CanonicalCode.from_lengths({0: 1})
        return code, code.serialised_bits(value_bits)
    code = CanonicalCode.from_frequencies(freq)
    encoder = code.encoder()
    stream_bits = sum(n * encoder[sym][1] for sym, n in freq.items())
    return code, code.serialised_bits(value_bits) + stream_bits


#: Candidate singleton-context counts tried per stream.
_PARTITION_SIZES = (1, 2, 4, 8)


def choose_stream_model(
    kind: FieldKind,
    bigrams: dict[int, dict[int, int]],
    value_bits: int,
    max_contexts: int,
) -> StreamChoice:
    """Pick the cheapest context partition for one stream.

    *bigrams* maps previous symbol -> {symbol: count} under the
    region-reset convention of :func:`start_symbol`.  Candidates: order-0,
    and for each M in ``_PARTITION_SIZES`` the top-M previous symbols
    (by occurrence count) as singleton contexts with everything else
    sharing one.  Ties keep the fewer-context candidate.
    """
    flat: dict[int, int] = {}
    totals: dict[int, int] = {}
    for prev, row in bigrams.items():
        totals[prev] = sum(row.values())
        for sym, n in row.items():
            flat[sym] = flat.get(sym, 0) + n
    code0, cost0 = _code_and_cost(flat, value_bits)
    best = StreamChoice(
        model=StreamModel(kind, (code0,)), cost=cost0, order0_cost=cost0
    )
    ranked = sorted(bigrams, key=lambda prev: (-totals[prev], prev))
    domain = context_domain(kind)
    for m in _PARTITION_SIZES:
        if m + 1 > min(max_contexts, MAX_CONTEXTS) or m > len(ranked):
            continue
        tops = ranked[:m]
        rest: dict[int, int] = {}
        for prev in ranked[m:]:
            for sym, n in bigrams[prev].items():
                rest[sym] = rest.get(sym, 0) + n
        n_ctx = m + 1
        mapping = [m] * domain
        for ctx, prev in enumerate(tops):
            mapping[prev] = ctx
        tables = []
        cost = domain * context_bits(n_ctx)
        for ctx_freq in [*(bigrams[prev] for prev in tops), rest]:
            code, bits = _code_and_cost(ctx_freq, value_bits)
            tables.append(code)
            cost += bits
        if cost < best.cost:
            best = StreamChoice(
                model=StreamModel(kind, tuple(tables), tuple(mapping)),
                cost=cost,
                order0_cost=cost0,
            )
    return best


def select_context_models(
    bigrams: dict[FieldKind, dict[int, dict[int, int]]],
    value_bits: dict[FieldKind, int],
    *,
    max_contexts: int,
    total_streams: int,
) -> dict[FieldKind, StreamModel]:
    """Choose per-stream partitions, then apply the global fallback.

    Returns the conditioned streams' models, or ``{}`` when the
    context serialisation format would not beat the legacy order-0
    format in total (the context format spends ``N_CTX_BITS`` extra
    per stream — *every* stream, conditioned or not — so marginal
    per-stream wins can still lose globally).  The guarantee callers
    rely on: a context codec's compressed area is never larger than
    the order-0 baseline's.
    """
    chosen: dict[FieldKind, StreamModel] = {}
    delta = N_CTX_BITS * total_streams
    for kind, grams in bigrams.items():
        choice = choose_stream_model(
            kind, grams, value_bits[kind], max_contexts
        )
        if choice.model.conditioned:
            chosen[kind] = choice.model
            delta += choice.cost - choice.order0_cost
    if not chosen or delta >= 0:
        return {}
    return chosen


# -- serialisation -----------------------------------------------------------


def serialise_stream_model(
    writer: BitWriter,
    model: StreamModel,
    value_bits: int,
    spans: list[tuple[int, int, int, int]] | None = None,
) -> None:
    """Write one stream's context-format table area.

    Layout: ``N_CTX_BITS`` context count; if conditioned, the mapping
    array (one :func:`context_bits` entry per domain value); then each
    context's :meth:`CanonicalCode.serialise`.  *spans* collects
    ``(kind, ctx, start_bit, end_bit)`` per context table — mapping
    bits deliberately fall outside every span.
    """
    writer.write_bits(model.n_contexts, N_CTX_BITS)
    if model.conditioned:
        bits = context_bits(model.n_contexts)
        for entry in model.mapping:
            writer.write_bits(entry, bits)
    for ctx, code in enumerate(model.tables):
        start = writer.bit_length
        code.serialise(writer, value_bits)
        if spans is not None:
            spans.append((int(model.kind), ctx, start, writer.bit_length))


def deserialise_stream_model(
    reader: BitReader, kind: FieldKind, value_bits: int
) -> tuple[StreamModel, StreamLayout]:
    """Inverse of :func:`serialise_stream_model`.

    A mapping entry naming a context outside ``[0, n_contexts)`` raises
    :class:`CodecTableError` carrying the offending context id — the
    entry width guarantees such values are representable, so mapping
    corruption is a parse error, not a misroute.
    """
    n_ctx = reader.read_bits(N_CTX_BITS)
    if n_ctx == 0:
        raise CodecTableError(
            f"corrupt tables: zero contexts for stream {kind.name}",
            bit_offset=reader.bit_pos,
        )
    mapping: tuple[int, ...] = ()
    mapping_start = -1
    bits = 0
    if n_ctx > 1:
        bits = context_bits(n_ctx)
        mapping_start = reader.bit_pos
        entries = []
        for _ in range(context_domain(kind)):
            entry = reader.read_bits(bits)
            if entry >= n_ctx:
                raise CodecTableError(
                    f"corrupt tables: context index {entry} out of range "
                    f"for stream {kind.name}",
                    bit_offset=reader.bit_pos,
                    context=entry,
                )
            entries.append(entry)
        mapping = tuple(entries)
    tables = []
    spans = []
    for _ in range(n_ctx):
        start = reader.bit_pos
        tables.append(CanonicalCode.deserialise(reader, value_bits))
        spans.append((start, reader.bit_pos))
    try:
        model = StreamModel(kind, tuple(tables), mapping)
    except ValueError as exc:
        raise CodecTableError(
            f"corrupt tables: {exc}", bit_offset=reader.bit_pos
        ) from exc
    layout = StreamLayout(
        kind=int(kind),
        n_contexts=n_ctx,
        ctx_bits=bits,
        mapping_start_bit=mapping_start,
        spans=tuple(spans),
    )
    return model, layout
