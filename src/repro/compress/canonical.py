"""Canonical Huffman codes (Section 3 of the paper).

A canonical Huffman code assigns, to the ``N[i]`` symbols that received
an ``i``-bit Huffman codeword, the consecutive ``i``-bit values
``b_i, b_i + 1, ..., b_i + N[i] - 1`` where::

    b_1 = 0      and      b_i = 2 * (b_{i-1} + N[i-1])   for i >= 2

The decoder needs only the ``N[i]`` array and the value list ``D``
(symbols ordered by codeword value); decoding follows the paper's
DECODE loop verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compress.bitstream import BitReader, BitWriter
from repro.compress.huffman import huffman_code_lengths

#: Hard cap on codeword length accepted by the (de)serialised tables.
MAX_CODE_LENGTH = 40


@dataclass(frozen=True)
class CanonicalCode:
    """A canonical Huffman code over integer symbols.

    ``counts[i]`` is ``N[i]``, the number of codewords of length ``i``
    (``counts[0]`` is always 0); ``values`` is ``D``, the symbols in
    codeword order.
    """

    counts: tuple[int, ...]
    values: tuple[int, ...]

    # -- construction --------------------------------------------------------

    @classmethod
    def from_frequencies(cls, frequencies: dict[int, int]) -> "CanonicalCode":
        """Build the canonical code for a frequency table."""
        lengths = huffman_code_lengths(frequencies)
        return cls.from_lengths(lengths)

    @classmethod
    def from_lengths(cls, lengths: dict[int, int]) -> "CanonicalCode":
        """Build from per-symbol codeword lengths.

        The canonical ordering assigns smaller codeword values to
        symbols with shorter codes, breaking ties by symbol value.
        """
        if not lengths:
            raise ValueError("empty code")
        max_len = max(lengths.values())
        if max_len > MAX_CODE_LENGTH:
            raise ValueError(f"codeword length {max_len} exceeds limit")
        counts = [0] * (max_len + 1)
        for length in lengths.values():
            if length <= 0:
                raise ValueError("codeword lengths must be positive")
            counts[length] += 1
        ordered = sorted(lengths, key=lambda sym: (lengths[sym], sym))
        return cls(counts=tuple(counts), values=tuple(ordered))

    def __post_init__(self) -> None:
        if sum(self.counts) != len(self.values):
            raise ValueError("N[] totals do not match value list length")
        # Kraft equality must hold for a complete prefix code.
        kraft = sum(
            count / (1 << i) for i, count in enumerate(self.counts) if i
        )
        if self.values and abs(kraft - 1.0) > 1e-9 and len(self.values) > 1:
            raise ValueError(f"incomplete or overfull code (Kraft={kraft})")

    # -- derived tables ------------------------------------------------------

    @property
    def max_length(self) -> int:
        return len(self.counts) - 1

    def first_codewords(self) -> list[int]:
        """The ``b_i`` values for i = 1 .. max length (paper recurrence)."""
        firsts = []
        b = 0
        for i in range(1, len(self.counts)):
            if i == 1:
                b = 0
            else:
                b = 2 * (b + self.counts[i - 1])
            firsts.append(b)
        return firsts

    def codewords(self) -> dict[int, tuple[int, int]]:
        """Map symbol -> (codeword value, length)."""
        table: dict[int, tuple[int, int]] = {}
        firsts = self.first_codewords()
        index = 0
        for i in range(1, len(self.counts)):
            base = firsts[i - 1]
            for offset in range(self.counts[i]):
                table[self.values[index]] = (base + offset, i)
                index += 1
        return table

    # -- encode / decode -----------------------------------------------------

    def encoder(self) -> dict[int, tuple[int, int]]:
        """Precomputed symbol -> (codeword, length) map for encoding."""
        return self.codewords()

    def encode(self, writer: BitWriter, symbol: int) -> None:
        code, length = self.codewords()[symbol]
        writer.write_bits(code, length)

    def decode(self, reader: BitReader) -> int:
        """The paper's DECODE procedure, verbatim.

        ``v`` accumulates bits; ``b`` tracks the first codeword of the
        current length; ``j`` counts symbols of shorter lengths.
        """
        counts = self.counts
        max_i = len(counts) - 1
        v = 0
        b = 0
        j = 0
        i = 0
        while True:
            v = 2 * v + reader.read_bit()
            b = 2 * (b + counts[i])
            j = j + counts[i]
            i = i + 1
            if v < b + counts[i]:
                return self.values[j + v - b]
            if i >= max_i:
                raise ValueError("corrupt bitstream: ran past longest code")

    # -- serialisation -------------------------------------------------------

    def serialise(self, writer: BitWriter, value_bits: int) -> None:
        """Write the code representation and value list to *writer*.

        Layout: 6 bits max length, then ``N[i]`` (16 bits each, i = 1 ..
        max length), then the ``D`` array with each value in
        *value_bits* bits.  This is the space the compressed program
        pays for its tables.
        """
        writer.write_bits(self.max_length, 6)
        for i in range(1, self.max_length + 1):
            if self.counts[i] >= (1 << 16):
                raise ValueError("too many codewords of one length")
            writer.write_bits(self.counts[i], 16)
        for value in self.values:
            writer.write_bits(value, value_bits)

    @classmethod
    def deserialise(cls, reader: BitReader, value_bits: int) -> "CanonicalCode":
        """Inverse of :meth:`serialise`."""
        max_length = reader.read_bits(6)
        counts = [0] + [reader.read_bits(16) for _ in range(max_length)]
        total = sum(counts)
        values = tuple(reader.read_bits(value_bits) for _ in range(total))
        return cls(counts=tuple(counts), values=values)

    def serialised_bits(self, value_bits: int) -> int:
        """Exact size of the serialised tables, in bits."""
        return 6 + 16 * self.max_length + value_bits * len(self.values)
