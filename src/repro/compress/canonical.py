"""Canonical Huffman codes (Section 3 of the paper).

A canonical Huffman code assigns, to the ``N[i]`` symbols that received
an ``i``-bit Huffman codeword, the consecutive ``i``-bit values
``b_i, b_i + 1, ..., b_i + N[i] - 1`` where::

    b_1 = 0      and      b_i = 2 * (b_{i-1} + N[i-1])   for i >= 2

The decoder needs only the ``N[i]`` array and the value list ``D``
(symbols ordered by codeword value); decoding follows the paper's
DECODE loop verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compress.bitstream import BitReader, BitWriter
from repro.compress.huffman import huffman_code_lengths
from repro.errors import CodecTableError, CorruptBlobError

#: Hard cap on codeword length accepted by the (de)serialised tables.
MAX_CODE_LENGTH = 40

#: First-level width (in bits) of the table-driven decoder.  Codewords
#: no longer than this decode with a single peek + table lookup; longer
#: ones take the overflow path.  2^K table entries are built lazily per
#: code, so K trades table-build time against overflow frequency.
FAST_TABLE_BITS = 12


@dataclass(frozen=True)
class CanonicalCode:
    """A canonical Huffman code over integer symbols.

    ``counts[i]`` is ``N[i]``, the number of codewords of length ``i``
    (``counts[0]`` is always 0); ``values`` is ``D``, the symbols in
    codeword order.
    """

    counts: tuple[int, ...]
    values: tuple[int, ...]

    # -- construction --------------------------------------------------------

    @classmethod
    def from_frequencies(cls, frequencies: dict[int, int]) -> "CanonicalCode":
        """Build the canonical code for a frequency table."""
        lengths = huffman_code_lengths(frequencies)
        return cls.from_lengths(lengths)

    @classmethod
    def from_lengths(cls, lengths: dict[int, int]) -> "CanonicalCode":
        """Build from per-symbol codeword lengths.

        The canonical ordering assigns smaller codeword values to
        symbols with shorter codes, breaking ties by symbol value.
        """
        if not lengths:
            raise ValueError("empty code")
        max_len = max(lengths.values())
        if max_len > MAX_CODE_LENGTH:
            raise ValueError(f"codeword length {max_len} exceeds limit")
        counts = [0] * (max_len + 1)
        for length in lengths.values():
            if length <= 0:
                raise ValueError("codeword lengths must be positive")
            counts[length] += 1
        ordered = sorted(lengths, key=lambda sym: (lengths[sym], sym))
        return cls(counts=tuple(counts), values=tuple(ordered))

    def __post_init__(self) -> None:
        if sum(self.counts) != len(self.values):
            raise ValueError("N[] totals do not match value list length")
        # Kraft equality must hold for a complete prefix code.
        kraft = sum(
            count / (1 << i) for i, count in enumerate(self.counts) if i
        )
        if self.values and abs(kraft - 1.0) > 1e-9 and len(self.values) > 1:
            raise ValueError(f"incomplete or overfull code (Kraft={kraft})")

    # -- derived tables ------------------------------------------------------

    @property
    def max_length(self) -> int:
        return len(self.counts) - 1

    def first_codewords(self) -> list[int]:
        """The ``b_i`` values for i = 1 .. max length (paper recurrence)."""
        firsts = []
        b = 0
        for i in range(1, len(self.counts)):
            if i == 1:
                b = 0
            else:
                b = 2 * (b + self.counts[i - 1])
            firsts.append(b)
        return firsts

    def codewords(self) -> dict[int, tuple[int, int]]:
        """Map symbol -> (codeword value, length)."""
        table: dict[int, tuple[int, int]] = {}
        firsts = self.first_codewords()
        index = 0
        for i in range(1, len(self.counts)):
            base = firsts[i - 1]
            for offset in range(self.counts[i]):
                table[self.values[index]] = (base + offset, i)
                index += 1
        return table

    # -- encode / decode -----------------------------------------------------

    def encoder(self) -> dict[int, tuple[int, int]]:
        """Precomputed symbol -> (codeword, length) map for encoding.

        Built once per code and cached (the instance is frozen and the
        table is derived purely from ``counts``/``values``).
        """
        cached = self.__dict__.get("_encoder_table")
        if cached is None:
            cached = self.codewords()
            object.__setattr__(self, "_encoder_table", cached)
        return cached

    def encode(self, writer: BitWriter, symbol: int) -> None:
        code, length = self.encoder()[symbol]
        writer.write_bits(code, length)

    def decode(self, reader: BitReader) -> int:
        """The paper's DECODE procedure, verbatim.

        ``v`` accumulates bits; ``b`` tracks the first codeword of the
        current length; ``j`` counts symbols of shorter lengths.
        """
        counts = self.counts
        max_i = len(counts) - 1
        v = 0
        b = 0
        j = 0
        i = 0
        while True:
            v = 2 * v + reader.read_bit()
            b = 2 * (b + counts[i])
            j = j + counts[i]
            i = i + 1
            if v < b + counts[i]:
                return self.values[j + v - b]
            if i >= max_i:
                raise CorruptBlobError(
                    "corrupt bitstream: ran past longest code",
                    bit_offset=reader.bit_pos,
                )

    # -- table-driven decode -------------------------------------------------
    #
    # The reference DECODE above pulls one bit per iteration; a real
    # decoder peeks a K-bit chunk and resolves codewords of length <= K
    # with one table lookup ("MIPS code compression" uses the same
    # trick).  The table is an implementation detail: it decodes the
    # same symbol and consumes the same number of bits as DECODE, so
    # every modelled per-bit cost stays unchanged.

    def decode_table(
        self, table_bits: int | None = None
    ) -> tuple[int, list[tuple[int, int] | None]]:
        """The first-level lookup table, built lazily and cached.

        Returns ``(K, table)`` where ``table[prefix]`` is
        ``(symbol, length)`` for every K-bit *prefix* whose leading bits
        form a codeword of length <= K, and ``None`` where the codeword
        is longer than K (the overflow path handles those).
        """
        if table_bits is None:
            table_bits = FAST_TABLE_BITS
        k = max(1, min(table_bits, self.max_length))
        tables = self.__dict__.get("_decode_tables")
        if tables is None:
            tables = {}
            object.__setattr__(self, "_decode_tables", tables)
        cached = tables.get(k)
        if cached is None:
            table: list[tuple[int, int] | None] = [None] * (1 << k)
            firsts = self.first_codewords()
            index = 0
            for length in range(1, len(self.counts)):
                base = firsts[length - 1]
                for offset in range(self.counts[length]):
                    symbol = self.values[index]
                    index += 1
                    if length > k:
                        continue
                    start = (base + offset) << (k - length)
                    entry = (symbol, length)
                    for prefix in range(start, start + (1 << (k - length))):
                        table[prefix] = entry
            cached = (k, table)
            tables[k] = cached
        return cached

    def overflow_tables(self) -> tuple[list[int], list[int]]:
        """``(firsts, leads)`` for decoding codewords longer than the
        first-level table: ``firsts[L-1]`` is the first codeword of
        length L, ``leads[L]`` the number of symbols with codewords
        shorter than L (the paper's ``j``)."""
        cached = self.__dict__.get("_overflow")
        if cached is None:
            firsts = self.first_codewords()
            leads = [0] * (len(self.counts) + 1)
            for length in range(1, len(self.counts) + 1):
                leads[length] = leads[length - 1] + self.counts[length - 1]
            cached = (firsts, leads)
            object.__setattr__(self, "_overflow", cached)
        return cached

    def fast_decode(
        self, reader: BitReader, table_bits: int | None = None
    ) -> int:
        """Table-driven decode: same symbol, same bits consumed as
        :meth:`decode`, via ``peek_bits``/``skip_bits``."""
        k, table = self.decode_table(table_bits)
        entry = table[reader.peek_bits(k)]
        if entry is not None:
            symbol, length = entry
            reader.skip_bits(length)
            return symbol
        # Overflow: the codeword is longer than K bits.  Extend the
        # peek one length class at a time; canonical codes keep the
        # length-L codewords in [firsts[L-1], firsts[L-1] + N[L]), and
        # all shorter lengths were already ruled out by the table.
        counts = self.counts
        firsts, leads = self.overflow_tables()
        for length in range(k + 1, len(counts)):
            count = counts[length]
            if not count:
                continue
            value = reader.peek_bits(length)
            base = firsts[length - 1]
            if value < base + count:
                reader.skip_bits(length)
                return self.values[leads[length] + value - base]
        raise CorruptBlobError(
            "corrupt bitstream: ran past longest code",
            bit_offset=reader.bit_pos,
        )

    # -- serialisation -------------------------------------------------------

    def serialise(self, writer: BitWriter, value_bits: int) -> None:
        """Write the code representation and value list to *writer*.

        Layout: 6 bits max length, then ``N[i]`` (16 bits each, i = 1 ..
        max length), then the ``D`` array with each value in
        *value_bits* bits.  This is the space the compressed program
        pays for its tables.
        """
        writer.write_bits(self.max_length, 6)
        for i in range(1, self.max_length + 1):
            if self.counts[i] >= (1 << 16):
                raise ValueError("too many codewords of one length")
            writer.write_bits(self.counts[i], 16)
        for value in self.values:
            writer.write_bits(value, value_bits)

    @classmethod
    def deserialise(cls, reader: BitReader, value_bits: int) -> "CanonicalCode":
        """Inverse of :meth:`serialise`.

        Structurally invalid tables (over-long codes, N[]/D mismatches,
        Kraft violations) raise :class:`~repro.errors.CodecTableError`.
        """
        max_length = reader.read_bits(6)
        if max_length == 0 or max_length > MAX_CODE_LENGTH:
            raise CodecTableError(
                f"corrupt tables: codeword length {max_length} outside "
                f"[1, {MAX_CODE_LENGTH}]",
                bit_offset=reader.bit_pos,
            )
        counts = [0] + [reader.read_bits(16) for _ in range(max_length)]
        total = sum(counts)
        values = tuple(reader.read_bits(value_bits) for _ in range(total))
        try:
            return cls(counts=tuple(counts), values=values)
        except CodecTableError:
            raise
        except ValueError as exc:
            raise CodecTableError(
                f"corrupt tables: {exc}", bit_offset=reader.bit_pos
            ) from exc

    def serialised_bits(self, value_bits: int) -> int:
        """Exact size of the serialised tables, in bits."""
        return 6 + 16 * self.max_length + value_bits * len(self.values)
