"""Split-stream dictionary coding (an alternative to Huffman).

The paper's future work mentions "other algorithms for compression and
decompression"; its related work cites Lucco's split-stream *dictionary*
compression [19].  This coder implements that family: per stream, the
most frequent field values go into a small dictionary addressed by
fixed-width indices, with one index reserved as an escape followed by
the raw value.  Decoding is branch-free and faster than Huffman's
bit-at-a-time DECODE loop, at the cost of a worse compression ratio --
exactly the tradeoff the paper weighs in Section 3.

The class mirrors :class:`~repro.compress.canonical.CanonicalCode`'s
interface so :class:`~repro.compress.codec.ProgramCodec` can use either.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compress.bitstream import BitReader, BitWriter
from repro.errors import CodecTableError, CorruptBlobError

#: Largest index width considered.
_MAX_WIDTH = 10


@dataclass(frozen=True)
class DictionaryCode:
    """A fixed-width dictionary code over integer symbols.

    ``width`` bits address ``2**width - 1`` dictionary slots; the
    all-ones index escapes to a raw ``value_bits``-wide literal.
    """

    width: int
    values: tuple[int, ...]
    value_bits: int

    def __post_init__(self) -> None:
        if not 1 <= self.width <= _MAX_WIDTH:
            raise ValueError(f"bad index width {self.width}")
        if len(self.values) > (1 << self.width) - 1:
            raise ValueError("dictionary larger than the index space")
        if len(set(self.values)) != len(self.values):
            raise ValueError("duplicate dictionary entries")

    @property
    def escape(self) -> int:
        return (1 << self.width) - 1

    # -- construction --------------------------------------------------------

    @classmethod
    def from_frequencies(
        cls, frequencies: dict[int, int], value_bits: int
    ) -> "DictionaryCode":
        """Pick the index width and dictionary minimising total bits."""
        if not frequencies:
            raise ValueError("empty alphabet")
        ranked = sorted(frequencies, key=lambda s: -frequencies[s])
        total = sum(frequencies.values())
        best: tuple[int, int, list[int]] | None = None
        for width in range(1, _MAX_WIDTH + 1):
            capacity = (1 << width) - 1
            kept = ranked[:capacity]
            covered = sum(frequencies[s] for s in kept)
            bits = total * width + (total - covered) * value_bits
            bits += len(kept) * value_bits  # dictionary storage
            if best is None or bits < best[0]:
                best = (bits, width, kept)
        assert best is not None
        _, width, kept = best
        return cls(
            width=width, values=tuple(sorted(kept)), value_bits=value_bits
        )

    # -- encode / decode -----------------------------------------------------

    def encoder(self) -> dict[int, tuple[int, int]]:
        """symbol -> (codeword, length), like the canonical code's."""
        table = {
            value: (index, self.width)
            for index, value in enumerate(self.values)
        }
        return _EscapingEncoder(table, self)

    def decode(self, reader: BitReader) -> int:
        index = reader.read_bits(self.width)
        if index == self.escape:
            return reader.read_bits(self.value_bits)
        try:
            return self.values[index]
        except IndexError:
            raise CorruptBlobError(
                f"corrupt stream: dictionary index {index} out of range",
                bit_offset=reader.bit_pos,
            ) from None

    # -- serialisation -------------------------------------------------------

    def serialise(self, writer: BitWriter, value_bits: int) -> None:
        if value_bits != self.value_bits:
            raise ValueError("value width mismatch")
        writer.write_bits(self.width, 4)
        writer.write_bits(len(self.values), 16)
        for value in self.values:
            writer.write_bits(value, value_bits)

    @classmethod
    def deserialise(
        cls, reader: BitReader, value_bits: int
    ) -> "DictionaryCode":
        width = reader.read_bits(4)
        count = reader.read_bits(16)
        values = tuple(reader.read_bits(value_bits) for _ in range(count))
        try:
            return cls(width=width, values=values, value_bits=value_bits)
        except ValueError as exc:
            raise CodecTableError(
                f"corrupt tables: {exc}", bit_offset=reader.bit_pos
            ) from exc

    def serialised_bits(self, value_bits: int) -> int:
        return 4 + 16 + value_bits * len(self.values)


class _EscapingEncoder(dict):
    """Encoder map with escape fallback for out-of-dictionary values."""

    def __init__(self, table: dict[int, tuple[int, int]], code: DictionaryCode):
        super().__init__(table)
        self._code = code

    def __missing__(self, symbol: int) -> tuple[int, int]:
        code = self._code
        if symbol < 0 or symbol >= (1 << code.value_bits):
            raise KeyError(symbol)
        word = (code.escape << code.value_bits) | symbol
        return (word, code.width + code.value_bits)
