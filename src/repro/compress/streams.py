"""Splitting instructions into typed field streams (Section 3).

Besides the real opcodes, the compressed form uses three pseudo-opcodes
that exist only inside compressed regions:

* ``OP_XCALLD`` -- a direct call that the decompressor must expand into
  the two-instruction ``bsr $r, CreateStub ; br target`` sequence of
  Figure 2 (the single original call becomes two instructions in the
  runtime buffer).
* ``OP_XCALLI`` -- the analogous expansion for an indirect call
  (``bsr $r, CreateStub ; jsr r31, (rb)``).
* ``OP_SENTINEL`` -- the end-of-region sentinel; the decompressor stops
  when it decodes one (Section 2.1).

Pseudo-opcodes occupy reserved primary-opcode values, so they live in
the ordinary opcode stream and the opcode still fully determines which
field streams follow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.fields import FieldKind, from_bits, to_bits
from repro.isa.instruction import Instruction
from repro.isa.opcodes import FORMAT_FIELDS, OP_FORMAT, Op

#: Reserved opcode values for the compressed form.
OP_XCALLD = 0x30
OP_XCALLI = 0x31
OP_SENTINEL = 0x3F

#: Field layout of each opcode value as seen by the codec.
#: Pseudo-opcodes get their own layouts; SBZ pads are dropped (they
#: carry no information and the decompressor re-inserts zeros).
_CODEC_FIELDS: dict[int, tuple[FieldKind, ...]] = {}
for _op in Op:
    if _op is Op.ILLEGAL:
        continue
    _CODEC_FIELDS[int(_op)] = tuple(
        kind
        for kind, attr in FORMAT_FIELDS[OP_FORMAT[_op]]
        if attr is not None
    )
_CODEC_FIELDS[OP_XCALLD] = (FieldKind.RA, FieldKind.BDISP)
_CODEC_FIELDS[OP_XCALLI] = (FieldKind.RA, FieldKind.RB)
_CODEC_FIELDS[OP_SENTINEL] = ()

#: Map opcode value -> the Instruction attribute per codec field, for
#: reconstructing real instructions.
_ATTRS: dict[int, tuple[str, ...]] = {}
for _op in Op:
    if _op is Op.ILLEGAL:
        continue
    _ATTRS[int(_op)] = tuple(
        attr
        for _, attr in FORMAT_FIELDS[OP_FORMAT[_op]]
        if attr is not None
    )


@dataclass(frozen=True)
class CodecInstr:
    """One instruction as the codec sees it.

    ``opcode`` is a 6-bit opcode value (real or pseudo); ``fields``
    holds the raw unsigned bit patterns of its typed fields, in format
    order.
    """

    opcode: int
    fields: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        kinds = codec_fields(self.opcode)
        if len(kinds) != len(self.fields):
            raise ValueError(
                f"opcode {self.opcode:#x} needs {len(kinds)} fields, "
                f"got {len(self.fields)}"
            )


def codec_fields(opcode: int) -> tuple[FieldKind, ...]:
    """Field kinds of *opcode* (real or pseudo), in stream order."""
    try:
        return _CODEC_FIELDS[opcode]
    except KeyError:
        raise ValueError(f"opcode {opcode:#x} unknown to the codec") from None


def instruction_to_codec(instr: Instruction) -> CodecInstr:
    """Convert a real instruction to its codec representation."""
    fields = []
    for (kind, value) in instr.fields():
        if kind is FieldKind.OPCODE or kind is FieldKind.SBZ:
            continue
        fields.append(to_bits(kind, value))
    return CodecInstr(opcode=int(instr.op), fields=tuple(fields))


def codec_to_instruction(item: CodecInstr) -> Instruction:
    """Convert a real-opcode codec item back to an instruction.

    Pseudo-opcodes have no single-instruction equivalent and are
    rejected; the decompressor expands them instead.
    """
    if item.opcode not in _ATTRS:
        raise ValueError(
            f"opcode {item.opcode:#x} is a pseudo-op; expand it instead"
        )
    op = Op(item.opcode)
    kinds = codec_fields(item.opcode)
    attrs = _ATTRS[item.opcode]
    kwargs = {
        attr: from_bits(kind, bits)
        for attr, kind, bits in zip(attrs, kinds, item.fields)
    }
    return Instruction(op, **kwargs)


def sentinel_item() -> CodecInstr:
    """The end-of-region marker."""
    return CodecInstr(opcode=OP_SENTINEL)


def split_streams(items: list[CodecInstr]) -> dict[FieldKind, list[int]]:
    """Split *items* into one value stream per field kind.

    The OPCODE stream gets every item's opcode; each other stream gets
    the field values of that kind in instruction order.  This is the
    "splitting streams" decomposition of Section 3.
    """
    streams: dict[FieldKind, list[int]] = {FieldKind.OPCODE: []}
    for item in items:
        streams[FieldKind.OPCODE].append(item.opcode)
        for kind, value in zip(codec_fields(item.opcode), item.fields):
            streams.setdefault(kind, []).append(value)
    return streams
