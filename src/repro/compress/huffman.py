"""Huffman code construction (codeword lengths only).

The canonical Huffman encoding (Section 3) needs only the *lengths* of
an optimal prefix code; the codewords themselves are derived from the
per-length counts ``N[i]``.  This module computes those lengths.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Hashable, Iterable


def huffman_code_lengths(
    frequencies: dict[Hashable, int],
) -> dict[Hashable, int]:
    """Optimal prefix-code length for each symbol.

    Ties are broken deterministically (by combined weight, then by
    creation order), so the same frequencies always give the same
    lengths.  A single-symbol alphabet gets a 1-bit code.  Symbols with
    zero frequency are rejected: the caller decides the alphabet.
    """
    if not frequencies:
        raise ValueError("cannot build a Huffman code for an empty alphabet")
    for symbol, freq in frequencies.items():
        if freq <= 0:
            raise ValueError(f"symbol {symbol!r} has non-positive frequency")

    symbols = list(frequencies)
    if len(symbols) == 1:
        return {symbols[0]: 1}

    # Heap entries: (weight, tie, node).  Nodes are tagged tuples so that
    # integer symbols can never collide with internal node ids: a leaf is
    # ("L", symbol) and an internal node is ("I", id).
    heap: list[tuple[int, int, tuple[str, object]]] = []
    for order, symbol in enumerate(symbols):
        heap.append((frequencies[symbol], order, ("L", symbol)))
    heapq.heapify(heap)
    tie = len(symbols)

    parents: dict[int, tuple[tuple[str, object], tuple[str, object]]] = {}
    node_id = 0
    while len(heap) > 1:
        w1, _, n1 = heapq.heappop(heap)
        w2, _, n2 = heapq.heappop(heap)
        parents[node_id] = (n1, n2)
        heapq.heappush(heap, (w1 + w2, tie, ("I", node_id)))
        tie += 1
        node_id += 1

    lengths: dict[Hashable, int] = {}
    _, _, root = heap[0]
    stack: list[tuple[tuple[str, object], int]] = [(root, 0)]
    while stack:
        (tag, payload), depth = stack.pop()
        if tag == "I":
            left, right = parents[payload]  # type: ignore[index]
            stack.append((left, depth + 1))
            stack.append((right, depth + 1))
        else:
            lengths[payload] = depth
    return lengths


def count_frequencies(values: Iterable[Hashable]) -> dict[Hashable, int]:
    """Frequency table of *values* (first pass of the two-pass encoder)."""
    return dict(Counter(values))
