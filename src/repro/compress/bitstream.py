"""Bit-granular I/O over 32-bit word arrays.

The compressed code lives in the image as 32-bit words; the function
offset table holds *bit* offsets into it (regions start at arbitrary
bit positions).  Bits are written and read most-significant-first
within each word.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import TruncatedStreamError

WORD_BITS = 32


class BitWriter:
    """Accumulates bits MSB-first into 32-bit words."""

    def __init__(self) -> None:
        self._words: list[int] = []
        self._current = 0
        self._filled = 0  # bits in _current
        self._length = 0

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return self._length

    def write_bit(self, bit: int) -> None:
        self.write_bits(bit & 1, 1)

    def write_bits(self, value: int, nbits: int) -> None:
        """Write the low *nbits* of *value*, MSB first."""
        if nbits < 0:
            raise ValueError("negative bit count")
        if value < 0 or (nbits < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        self._length += nbits
        filled = self._filled
        current = self._current
        while nbits > 0:
            take = min(nbits, WORD_BITS - filled)
            chunk = (value >> (nbits - take)) & ((1 << take) - 1)
            current = (current << take) | chunk
            filled += take
            nbits -= take
            if filled == WORD_BITS:
                self._words.append(current)
                current = 0
                filled = 0
        self._filled = filled
        self._current = current

    def append_writer(self, other: "BitWriter") -> None:
        """Append all bits of *other* (used to concatenate regions)."""
        if self._filled == 0:
            # Word-aligned fast path: adopt the other writer's words
            # wholesale instead of re-splitting each through write_bits.
            self._words.extend(other._words)
            self._current = other._current
            self._filled = other._filled
            self._length += other.bit_length
            return
        remaining = other.bit_length
        for word in other._words:
            take = min(remaining, WORD_BITS)
            self.write_bits(word >> (WORD_BITS - take), take)
            remaining -= take
        if remaining > 0:
            self.write_bits(other._current, remaining)

    def to_words(self) -> list[int]:
        """The bits as whole words, zero-padded at the end."""
        words = list(self._words)
        if self._filled:
            words.append(self._current << (WORD_BITS - self._filled))
        return words


class BitReader:
    """Reads bits MSB-first from a word sequence, from any bit offset.

    ``words`` may be any indexable word source -- including a slice of
    VM memory, which is how the runtime decompressor reads the
    compressed area of the image.

    Beyond the consuming ``read_bit``/``read_bits``, the reader offers
    buffered ``peek_bits``/``skip_bits`` primitives: ``peek_bits``
    returns upcoming bits without consuming them (zero-padded past the
    end of the stream) through a cached multi-word window, which is what
    makes table-driven Huffman decoding fast.

    Zero-padding is a *lookahead* convenience only: any attempt to
    consume bits past the end of the stream -- ``read_bit``,
    ``read_bits``, or ``skip_bits`` -- raises
    :class:`~repro.errors.TruncatedStreamError`, so a truncated
    compressed blob can never silently decode as trailing zeros.
    """

    #: Words held in the peek window; bounds the largest peek at
    #: ``(_WINDOW_WORDS - 1) * WORD_BITS`` bits from any bit offset.
    _WINDOW_WORDS = 3

    def __init__(self, words: Sequence[int], bit_offset: int = 0):
        self._words = words
        self._pos = bit_offset
        # Cached peek window: _WINDOW_WORDS consecutive words starting
        # at word index _win_index (zero-padded past EOF).  The stream
        # is immutable while being read, so the window never goes stale.
        self._win_index = -1
        self._win = 0
        self._total_bits: int | None = None

    @property
    def bit_pos(self) -> int:
        """Current absolute bit position."""
        return self._pos

    def seek(self, bit_offset: int) -> None:
        self._pos = bit_offset

    def _fill_window(self, word_index: int) -> None:
        win = 0
        words = self._words
        for index in range(word_index, word_index + self._WINDOW_WORDS):
            try:
                word = words[index]
            except IndexError:
                word = 0
            win = (win << WORD_BITS) | word
        self._win_index = word_index
        self._win = win

    def peek_bits(self, nbits: int) -> int:
        """The next *nbits* bits without consuming them.

        Bits past the end of the stream read as zero; consuming them
        (via ``read_bits`` or ``skip_bits``) still raises ``EOFError``.
        """
        max_peek = (self._WINDOW_WORDS - 1) * WORD_BITS
        if not 0 <= nbits <= max_peek:
            raise ValueError(f"peek width {nbits} not in [0, {max_peek}]")
        word_index, bit_index = divmod(self._pos, WORD_BITS)
        if word_index != self._win_index:
            self._fill_window(word_index)
        shift = self._WINDOW_WORDS * WORD_BITS - bit_index - nbits
        return (self._win >> shift) & ((1 << nbits) - 1)

    def skip_bits(self, nbits: int) -> None:
        """Advance past *nbits* bits (previously peeked)."""
        if nbits < 0:
            raise ValueError("negative bit count")
        pos = self._pos + nbits
        total = self._total_bits
        if total is None:
            total = self._total_bits = len(self._words) * WORD_BITS
        if pos > total:
            raise TruncatedStreamError(
                f"bit position {pos} past end of stream", bit_offset=pos
            )
        self._pos = pos

    def read_bit(self) -> int:
        pos = self._pos
        word_index, bit_index = divmod(pos, WORD_BITS)
        try:
            word = self._words[word_index]
        except IndexError:
            raise TruncatedStreamError(
                f"bit position {pos} past end of stream", bit_offset=pos
            ) from None
        self._pos = pos + 1
        return (word >> (WORD_BITS - 1 - bit_index)) & 1

    def read_bits(self, nbits: int) -> int:
        """Read *nbits* bits MSB-first as an unsigned integer."""
        value = 0
        remaining = nbits
        while remaining > 0:
            word_index, bit_index = divmod(self._pos, WORD_BITS)
            take = min(remaining, WORD_BITS - bit_index)
            try:
                word = self._words[word_index]
            except IndexError:
                raise TruncatedStreamError(
                    f"bit position {self._pos} past end of stream",
                    bit_offset=self._pos,
                ) from None
            chunk = (word >> (WORD_BITS - bit_index - take)) & ((1 << take) - 1)
            value = (value << take) | chunk
            self._pos += take
            remaining -= take
        return value
