"""Splitting-streams compression with canonical Huffman codes (Section 3).

The compressor splits each instruction into its typed fields, builds
one canonical Huffman code per field kind, and merges all per-stream
codeword sequences into a single bitstream driven by the opcode stream:
decoding an opcode tells the decoder which field codes to use next, so
no stream boundaries need to be stored.  The compressed program
consists of the code representation (the ``N[i]`` arrays), the value
lists (the ``D[j]`` arrays), and the merged codeword sequence.
"""

from repro.compress.bitstream import BitReader, BitWriter
from repro.compress.huffman import huffman_code_lengths
from repro.compress.canonical import CanonicalCode
from repro.compress.mtf import MoveToFront, mtf_encode, mtf_decode
from repro.compress.streams import (
    CodecInstr,
    codec_fields,
    instruction_to_codec,
    codec_to_instruction,
    OP_XCALLD,
    OP_XCALLI,
    OP_SENTINEL,
)
from repro.compress.codec import ProgramCodec, CodecConfig, CompressedBlob

__all__ = [
    "BitReader",
    "BitWriter",
    "huffman_code_lengths",
    "CanonicalCode",
    "MoveToFront",
    "mtf_encode",
    "mtf_decode",
    "CodecInstr",
    "codec_fields",
    "instruction_to_codec",
    "codec_to_instruction",
    "OP_XCALLD",
    "OP_XCALLI",
    "OP_SENTINEL",
    "ProgramCodec",
    "CodecConfig",
    "CompressedBlob",
]
