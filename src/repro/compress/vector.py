"""Vectorized batch region decode (numpy lane-parallel chase).

The table-driven :meth:`ProgramCodec._decode_region_fast` still walks a
Python loop per symbol.  This module decodes *many regions at once*:
one numpy lane per region, all lanes advancing one symbol per vector
step.  The per-symbol work collapses into a handful of array ops:

* The merged per-stream decode tables become one combined ``int64``
  lookup table indexed by ``(state << K) | window`` where ``state``
  encodes *which stream the lane decodes next* and ``window`` is the
  next K bits of that lane's stream, peeled from a ``uint64`` view of
  the word array.  K is uniform (:data:`VECTOR_K`); narrower per-code
  tables are expanded by entry repetition.
* Each LUT entry packs ``(codeword length, symbol, next state)`` into
  one non-negative ``int64`` (:data:`_LN_SHIFT`/:data:`_SYM_SHIFT`
  layout), so one gather resolves a symbol, advances the bit cursor,
  and transitions the state machine.  The state machine mirrors the
  opcode -> field-plan structure: states ``0..C-1`` decode the opcode
  stream (one LUT bank per opcode context of the codec's
  :class:`~repro.compress.model.CodecModel`; C = 1 for order-0) and
  fan out (via the decoded symbol) to the per-opcode chain of field
  states, which re-enter the opcode context selected by the opcode
  just decoded; the sentinel routes to a terminal state that
  self-loops consuming zero bits, so finished lanes spin harmlessly
  until the batch drains.
* Negative LUT entries are markers into a side table of *specials*:
  codewords longer than K (resolved scalar through the same
  ``_decode_overflow`` as the sequential path), streams with no code,
  and opcode symbols outside the ISA.  Specials are rare; everything
  hot stays vectorized.

The contract is strict parity with ``_decode_region_fast``: identical
items, identical bit counts, and on malformed input the same
:mod:`repro.errors` exception type at the same bit offset.  Where the
sequential path decodes regions one after another, a batch records the
per-lane failure and raises the error of the *lowest-indexed* failing
lane -- exactly the error a sequential loop over the same regions in
the same order would have raised first.

numpy is optional at runtime: without it (or for the dictionary coder,
whose streams the LUT cannot express) every entry point falls back to
the sequential table path, so callers never need to gate on
availability themselves.
"""

from __future__ import annotations

import gc as _gc
from typing import Sequence

from repro.compress.canonical import FAST_TABLE_BITS, CanonicalCode
from repro.compress.mtf import MoveToFront
from repro.compress.streams import OP_SENTINEL, CodecInstr, codec_fields
from repro.errors import (
    CodecTableError,
    CorruptBlobError,
    TruncatedStreamError,
)
from repro.isa.fields import FieldKind

try:  # pragma: no cover - exercised implicitly by every test below
    import numpy as _np
except ImportError:  # pragma: no cover - image always ships numpy
    _np = None

HAVE_NUMPY = _np is not None

#: Uniform first-level window width of the combined LUT, in bits.
VECTOR_K = FAST_TABLE_BITS

#: Packed LUT entry layout (non-negative int64):
#:   ``ln << 57 | symbol << 22 | (state << VECTOR_K | low bits free)``
#: ln needs 6 bits (codewords cap at 40), symbols 35 bits (the widest
#: field is 26 bits), and the next-state base 22 bits -- enough for
#: 2**(22 - VECTOR_K) = 1024 combined states per batch.
_NS_BITS = 22
_NS_MASK = (1 << _NS_BITS) - 1
_SYM_SHIFT = _NS_BITS
_SYM_BITS = 35
_SYM_MASK = (1 << _SYM_BITS) - 1
_LN_SHIFT = _SYM_SHIFT + _SYM_BITS

#: Max combined states of one chase (state-id field of the LUT index).
_MAX_STATES = 1 << (_NS_BITS - VECTOR_K)

#: Zero words inserted after each job's stream in the concatenated word
#: array.  Overshoot past a stream end is bounded: truncation detection
#: fires within one symbol (<= K bits via the LUT), and scalar overflow
#: peeks at most MAX_CODE_LENGTH (40) bits -- both well under 96 bits.
_PAD_WORDS = 3


def _peek_bits(words: Sequence[int], pos: int, n: int) -> int:
    """MSB-first peek of *n* bits at absolute bit position *pos*,
    zero-padded past the end (scalar; overflow resolution only)."""
    w, b = divmod(pos, 32)
    nwords = len(words)
    acc = 0
    nbits = 0
    while nbits < b + n:
        acc = (acc << 32) | (words[w] if w < nwords else 0)
        nbits += 32
        w += 1
    return (acc >> (nbits - b - n)) & ((1 << n) - 1)


class VectorDecoder:
    """The per-codec state machine: combined LUT + specials.

    Built once per :class:`ProgramCodec` (cached on the instance by
    :func:`get_decoder`) and shared by every batch the codec joins.
    States ``0 .. C-1`` decode the opcode stream — one LUT bank per
    opcode *context* of the codec's model (C = 1 for order-0 codecs,
    reducing to the classic single opcode state); each distinct
    ``(field-plan suffix, return context)`` pair gets one state
    (suffix sharing keeps the machine small, and the return context is
    the opcode context the chain re-enters, determined by the opcode
    just decoded); the last state is terminal.  Conditioned *field*
    streams are not expressible — the batch gate routes such codecs to
    the sequential path.
    """

    def __init__(self, codec) -> None:
        codes = codec.codes
        self.mtf_alphabets = codec.mtf_alphabets
        self.specials: list[tuple] = []
        #: state id -> (k, overflow tuple) of the stream it decodes.
        self.state_stream: dict[int, tuple] = {}
        #: field-state id -> local nsbase of its successor state.
        self.state_next: dict[int, int] = {}
        #: opcode symbol -> ("ok", local nsbase) | ("term",)
        #: | ("badop",) | ("missing", kind); consulted when an opcode
        #: resolves through the scalar overflow path.  Routing depends
        #: only on the decoded symbol, so it is shared by every opcode
        #: context bank.
        self.op_route: dict[int, tuple] = {}
        #: opcode -> field-kind tuple, for batch assembly (index = op).
        self.plan_fields: list[tuple[FieldKind, ...] | None] = [None] * 64
        #: (opcode, *fields) -> shared immutable CodecInstr.  Decoded
        #: streams repeat instructions heavily (the repetition *is*
        #: what the compressor exploits), so assembly interns instead
        #: of constructing: a dict hit replaces object allocation, and
        #: the cache is bounded by the program's distinct instructions.
        self.instr_intern: dict[tuple, CodecInstr] = {}

        op_code = codes.get(FieldKind.OPCODE)
        op_model = (
            codec.stream_model(FieldKind.OPCODE)
            if isinstance(op_code, CanonicalCode)
            else None
        )
        op_tables = op_model.tables if op_model is not None else ()
        #: Opcode states 0..C-1, one per opcode context.
        self.n_op_states = max(1, len(op_tables))
        #: The lane's first state: the context a region-initial opcode
        #: decodes in (a sentinel conventionally precedes every region).
        self.start_state = (
            op_model.context_of(OP_SENTINEL) if op_model is not None else 0
        )

        suffix_ids: dict[tuple, int] = {}
        suffix_order: list[tuple] = []
        n_op_states = self.n_op_states

        def state_for(suffix: tuple, ret_ctx: int) -> int:
            if not suffix:
                return ret_ctx
            key = (suffix, ret_ctx)
            sid = suffix_ids.get(key)
            if sid is None:
                sid = n_op_states + len(suffix_order)
                suffix_ids[key] = sid
                suffix_order.append(key)
                # Register the whole chain so ids exist before blocks
                # are built.
                state_for(suffix[1:], ret_ctx)
            return sid

        plans: dict[int, tuple] = {}
        if op_model is not None:
            op_symbols = sorted(
                {sym for table in op_tables for sym in table.values}
            )
            for sym in op_symbols:
                if sym == OP_SENTINEL:
                    self.op_route[sym] = ("term",)
                    continue
                try:
                    kinds = codec_fields(sym)
                except ValueError:
                    self.op_route[sym] = ("badop",)
                    continue
                missing = next(
                    (
                        k
                        for k in kinds
                        if not isinstance(codes.get(k), CanonicalCode)
                    ),
                    None,
                )
                if missing is not None:
                    # The sequential path raises while building the
                    # plan, right after the opcode symbol: route the
                    # whole opcode to the error, fields never decode.
                    self.op_route[sym] = ("missing", missing)
                    continue
                plans[sym] = kinds
                ret_ctx = op_model.context_of(sym)
                self.op_route[sym] = (
                    "ok",
                    state_for(kinds, ret_ctx) << VECTOR_K,
                )
                if 0 <= sym < 64:
                    self.plan_fields[sym] = kinds

        self.term_id = n_op_states + len(suffix_order)
        self.nstates = self.term_id + 1
        term_base = self.term_id << VECTOR_K

        expanded_cache: dict[int, tuple] = {}

        def expanded(code: CanonicalCode) -> tuple:
            """(syms, lns, none_mask) of the K-bit-expanded table."""
            cached = expanded_cache.get(id(code))
            if cached is None:
                k, table = code.decode_table()
                n = len(table)
                syms = _np.fromiter(
                    (e[0] if e is not None else 0 for e in table),
                    _np.int64,
                    n,
                )
                lns = _np.fromiter(
                    (e[1] if e is not None else 0 for e in table),
                    _np.int64,
                    n,
                )
                none = _np.fromiter(
                    (e is None for e in table), _np.bool_, n
                )
                if k < VECTOR_K:
                    reps = 1 << (VECTOR_K - k)
                    syms = _np.repeat(syms, reps)
                    lns = _np.repeat(lns, reps)
                    none = _np.repeat(none, reps)
                firsts, leads = code.overflow_tables()
                overflow = (
                    code.counts,
                    firsts,
                    leads,
                    code.values,
                    code.max_length,
                )
                cached = (syms, lns, none, k, overflow)
                expanded_cache[id(code)] = cached
            return cached

        def marker(special: tuple) -> int:
            self.specials.append(special)
            return -len(self.specials)

        blocks = []

        # Opcode states 0..C-1: one LUT bank per opcode context, all
        # sharing the symbol-keyed route table (a context changes which
        # codewords decode to which symbols, never what a symbol means).
        if op_model is not None:
            # Sized past 64 so symbols outside the 6-bit opcode space
            # (possible in hand-built codes) still index safely; they
            # route to "badop" markers below.
            route_next = _np.zeros(
                max(
                    64,
                    max(
                        (max(t.values) for t in op_tables if t.values),
                        default=0,
                    )
                    + 1,
                ),
                _np.int64,
            )
            problem_syms = []
            for sym, route in self.op_route.items():
                if route[0] == "ok":
                    route_next[sym] = route[1]
                elif route[0] == "term":
                    route_next[sym] = term_base
                else:
                    problem_syms.append(sym)
            for ctx, table in enumerate(op_tables):
                syms, lns, none, k, overflow = expanded(table)
                self.state_stream[ctx] = (k, overflow)
                block = (
                    (lns << _LN_SHIFT)
                    | (syms << _SYM_SHIFT)
                    | route_next[syms]
                )
                if none.any():
                    block[none] = marker(("ovfl", ctx))
                for sym in problem_syms:
                    route = self.op_route[sym]
                    hit = (syms == sym) & ~none
                    if not hit.any():
                        continue
                    ln = int(lns[hit][0])
                    if route[0] == "badop":
                        block[hit] = marker(("badop", sym, ln))
                    else:
                        block[hit] = marker(
                            ("missing_plan", sym, ln, route[1])
                        )
                blocks.append(block)
        else:
            blocks.append(
                _np.full(
                    1 << VECTOR_K,
                    marker(("missing_stream", FieldKind.OPCODE)),
                    _np.int64,
                )
            )

        # Field states, one per live (plan suffix, return context).
        for sid, (suffix, ret_ctx) in enumerate(
            suffix_order, start=n_op_states
        ):
            kind = suffix[0]
            code = codes.get(kind)
            nxt = state_for(suffix[1:], ret_ctx) << VECTOR_K
            self.state_next[sid] = nxt
            if not isinstance(code, CanonicalCode):
                blocks.append(
                    _np.full(
                        1 << VECTOR_K,
                        marker(("missing_stream", kind)),
                        _np.int64,
                    )
                )
                continue
            syms, lns, none, k, overflow = expanded(code)
            self.state_stream[sid] = (k, overflow)
            block = (lns << _LN_SHIFT) | (syms << _SYM_SHIFT) | nxt
            if none.any():
                block[none] = marker(("ovfl", sid))
            blocks.append(block)

        # Terminal state: self-loop, zero bits consumed.
        blocks.append(_np.full(1 << VECTOR_K, term_base, _np.int64))

        self.lut = _np.concatenate(blocks)


def get_decoder(codec) -> VectorDecoder:
    """The cached :class:`VectorDecoder` of *codec* (built on first
    use; the codec's tables are immutable so the machine never goes
    stale)."""
    decoder = getattr(codec, "_vector_decoder", None)
    if decoder is None:
        decoder = VectorDecoder(codec)
        codec._vector_decoder = decoder
    return decoder


#: Combined-LUT cache for recurring batches, keyed by the identity of
#: the participating decoders (strong refs to them ride in the value,
#: keeping the ids stable while cached).
_COMBINED_CACHE: dict[tuple, tuple] = {}
_COMBINED_CACHE_MAX = 8


def _combined(decoders: list[VectorDecoder]) -> tuple:
    """One LUT over *decoders*: per-codec state ids get disjoint
    ranges, marker indices get offset into one merged specials list."""
    key = tuple(id(d) for d in decoders)
    cached = _COMBINED_CACHE.get(key)
    if cached is not None:
        return cached
    parts = []
    specials: list[tuple] = []
    state_bases: list[int] = []
    base = 0
    for j, dec in enumerate(decoders):
        state_bases.append(base)
        part = dec.lut.copy()
        nonneg = part >= 0
        part[nonneg] += base << VECTOR_K
        if len(specials):
            part[~nonneg] -= len(specials)
        specials.extend((j, sp) for sp in dec.specials)
        parts.append(part)
        base += dec.nstates
    cached = (_np.concatenate(parts), specials, state_bases, decoders)
    if len(_COMBINED_CACHE) >= _COMBINED_CACHE_MAX:
        _COMBINED_CACHE.pop(next(iter(_COMBINED_CACHE)))
    _COMBINED_CACHE[key] = cached
    return cached


_WORDS_CACHE: dict[int, tuple] = {}
_WORDS_CACHE_MAX = 32


def _words_array(words: Sequence[int]):
    """uint64 view of *words*, cached by identity for recurring jobs."""
    cached = _WORDS_CACHE.get(id(words))
    if cached is not None and cached[0] is words:
        return cached[1]
    arr = _np.array(words, dtype=_np.uint64)
    if len(_WORDS_CACHE) >= _WORDS_CACHE_MAX:
        _WORDS_CACHE.pop(next(iter(_WORDS_CACHE)))
    _WORDS_CACHE[id(words)] = (words, arr)
    return arr


def _sequential_job(codec, words, offsets):
    return [
        codec.decode_region(words, off, fast=True) for off in offsets
    ]


def decode_batch(jobs) -> list[list[tuple[list[CodecInstr], int]]]:
    """Decode every region of every ``(codec, words, offsets)`` job.

    Returns one ``[(items, bits), ...]`` list per job, in order.  On
    malformed input raises the error of the lowest-indexed failing
    region (the error a sequential in-order loop would raise first).
    Jobs the vector machine cannot express (dictionary coder,
    conditioned field streams, missing numpy) silently take the
    sequential table path.

    Cyclic GC is deferred for the duration of the batch: assembling
    ~10^5 result objects in one burst otherwise triggers repeated
    generational collections that walk every live container and
    dominate the wall time (measured 3-4x).  The per-region decode
    paths cannot amortize this; the batch owns the burst and pays one
    collection afterwards.
    """
    was_enabled = _gc.isenabled()
    _gc.disable()
    try:
        return _decode_batch(jobs)
    finally:
        if was_enabled:
            _gc.enable()


def _decode_batch(jobs) -> list[list[tuple[list[CodecInstr], int]]]:
    results: list = [None] * len(jobs)
    vector_jobs = []
    for j, (codec, words, offsets) in enumerate(jobs):
        conditioned_fields = any(
            k is not FieldKind.OPCODE for k in codec.models
        )
        if (
            not HAVE_NUMPY
            or codec.coder != "huffman"
            or conditioned_fields
        ):
            results[j] = _sequential_job(codec, words, offsets)
        elif not offsets:
            results[j] = []
        else:
            vector_jobs.append((j, codec, words, list(offsets)))

    # Chunk by the combined state budget (1024 states per chase).
    chunk: list = []
    chunk_states = 0
    for entry in vector_jobs:
        nstates = get_decoder(entry[1]).nstates
        if chunk and chunk_states + nstates > _MAX_STATES:
            _chase(chunk, results)
            chunk, chunk_states = [], 0
        chunk.append(entry)
        chunk_states += nstates
    if chunk:
        _chase(chunk, results)
    return results


def _chase(chunk, results) -> None:
    """Run one lane-parallel chase over *chunk* and fill *results*."""
    decoders = [get_decoder(codec) for _, codec, _, _ in chunk]
    lut, specials, state_bases, _ = _combined(decoders)

    # Concatenated word image: each job's stream, zero padding after.
    arrays = []
    word_base = 0
    pos0_list: list[int] = []
    limit_list: list[int] = []
    local_limits: list[int] = []
    local_starts: list[int] = []
    lane_state0: list[int] = []
    term_list: list[int] = []
    lane_spans: list[tuple[int, int]] = []  # (first lane, count) / job
    job_bit_bases: list[int] = []
    job_limits: list[int] = []
    pad = _np.zeros(_PAD_WORDS, _np.uint64)
    for (_, codec, words, offsets), dec, sbase in zip(
        chunk, decoders, state_bases
    ):
        arrays.append(_words_array(words))
        arrays.append(pad)
        base_bits = word_base * 32
        hard_limit = len(words) * 32
        job_bit_bases.append(base_bits)
        job_limits.append(hard_limit)
        lane_spans.append((len(pos0_list), len(offsets)))
        for off in offsets:
            pos0_list.append(base_bits + off)
            limit_list.append(base_bits + hard_limit)
            local_limits.append(hard_limit)
            local_starts.append(off)
            lane_state0.append((sbase + dec.start_state) << VECTOR_K)
            term_list.append((sbase + dec.term_id) << VECTOR_K)
        word_base += len(words) + _PAD_WORDS
    arrays.append(_np.zeros(1, _np.uint64))  # final dword pair partner
    gwords = _np.concatenate(arrays)
    dwords = (gwords[:-1] << _np.uint64(32)) | gwords[1:]
    gwords_list: list[int] | None = None  # built lazily for overflow

    nlanes = len(pos0_list)
    pos = _np.array(pos0_list, _np.int64)
    limits = _np.array(limit_list, _np.int64)
    state = _np.array(lane_state0, _np.int64)
    term_base = _np.array(term_list, _np.int64)
    errors: list[BaseException | None] = [None] * nlanes

    # Lanes starting past their stream cannot even gather a window
    # safely; the sequential path truncates on its very first read,
    # naming the (out-of-range) start position, so pre-record exactly
    # that error.
    early = pos > limits
    if early.any():
        for i in _np.nonzero(early)[0]:
            i = int(i)
            errors[i] = _truncated(local_starts[i])
            pos[i] = limits[i]
            state[i] = term_base[i]

    mask_k = _np.int64((1 << VECTOR_K) - 1)
    shift_hi = _np.uint64(64 - VECTOR_K)
    meta_log = []
    state_log = []
    # Every active lane consumes >= 1 bit per step, so the widest
    # stream bounds the chase; the slack covers the final spin step.
    max_steps = int(limits.max() - pos.min()) + VECTOR_K + 2
    steps = 0
    while True:
        window = (
            (dwords[pos >> 5] << (pos & 31).astype(_np.uint64))
            >> shift_hi
        ).astype(_np.int64) & mask_k
        meta = lut[state + window]
        deferred = None
        if (meta < 0).any():
            if gwords_list is None:
                gwords_list = gwords.tolist()
            deferred = _patch_specials(
                meta,
                pos,
                gwords_list,
                specials,
                decoders,
                state_bases,
                job_bit_bases,
                job_limits,
            )
        meta_log.append(meta)
        state_log.append(state)
        pos = pos + (meta >> _LN_SHIFT)
        state = meta & _NS_MASK
        over = pos > limits
        if over.any():
            for i in _np.nonzero(over)[0]:
                i = int(i)
                if errors[i] is None:
                    errors[i] = _truncated(local_limits[i])
                pos[i] = limits[i]
                state[i] = term_base[i]
        if deferred:
            for i, err in deferred:
                if errors[i] is None:
                    errors[i] = err
                state[i] = term_base[i]
        if (state == term_base).all():
            break
        steps += 1
        if steps > max_steps:  # pragma: no cover - machine invariant
            raise RuntimeError("vector decode failed to terminate")

    for i, err in enumerate(errors):
        if err is not None:
            raise err

    metas = _np.array(meta_log)
    states = _np.array(state_log)
    nvalid = (states != term_base).sum(axis=0)
    lane_syms = ((metas >> _SYM_SHIFT) & _SYM_MASK).T.tolist()
    bits = (pos - _np.array(pos0_list, _np.int64)).tolist()

    for (j, codec, _, _), dec, (first, count) in zip(
        chunk, decoders, lane_spans
    ):
        out = []
        plan_fields = dec.plan_fields
        mtf_alphabets = dec.mtf_alphabets
        new_instr = CodecInstr.__new__
        instr_cls = CodecInstr
        intern = dec.instr_intern
        intern_get = intern.get
        for lane in range(first, first + count):
            syms = lane_syms[lane]
            n = int(nvalid[lane])
            items: list[CodecInstr] = []
            p = 0
            if mtf_alphabets:
                transforms = {
                    kind: MoveToFront(alphabet)
                    for kind, alphabet in mtf_alphabets.items()
                }
                while True:
                    op = syms[p]
                    p += 1
                    if op == OP_SENTINEL:
                        break
                    kinds = plan_fields[op]
                    nf = len(kinds)
                    values = [
                        transforms[kind].decode_one(value)
                        if kind in transforms
                        else value
                        for kind, value in zip(kinds, syms[p : p + nf])
                    ]
                    p += nf
                    key = (op, *values)
                    item = intern_get(key)
                    if item is None:
                        item = new_instr(instr_cls)
                        d = item.__dict__
                        d["opcode"] = op
                        d["fields"] = key[1:]
                        intern[key] = item
                    items.append(item)
            else:
                while True:
                    op = syms[p]
                    p += 1
                    if op == OP_SENTINEL:
                        break
                    nf = len(plan_fields[op])
                    end = p + nf
                    key = (op, *syms[p:end])
                    p = end
                    item = intern_get(key)
                    if item is None:
                        item = new_instr(instr_cls)
                        d = item.__dict__
                        d["opcode"] = op
                        d["fields"] = key[1:]
                        intern[key] = item
                    items.append(item)
            if p != n:  # pragma: no cover - machine invariant
                raise RuntimeError(
                    "vector decode consumed a different symbol count"
                )
            out.append((items, int(bits[lane])))
        results[j] = out


def _truncated(hard_limit: int) -> TruncatedStreamError:
    return TruncatedStreamError(
        f"bit position {hard_limit} past end of stream",
        bit_offset=hard_limit,
    )


def _missing(kind: FieldKind) -> CodecTableError:
    return CodecTableError(
        f"corrupt tables: no code for stream {kind.name}"
    )


def _badop_error(sym: int) -> ValueError:
    try:
        codec_fields(sym)
    except ValueError as exc:
        return exc
    raise RuntimeError(  # pragma: no cover - machine invariant
        f"opcode {sym:#x} routed to badop but resolves"
    )


def _patch_specials(
    meta, pos, gwords_list, specials, decoders, state_bases,
    bit_bases, job_limits,
):
    """Resolve negative LUT entries scalar, in place.

    Returns ``[(lane, error)]`` to apply *after* the truncation check
    of this step -- the sequential path checks the hard limit between
    decoding a symbol and acting on it, so truncation outranks plan
    errors discovered at the same symbol.
    """
    from repro.compress.codec import _decode_overflow

    deferred = []
    for idx in _np.nonzero(meta < 0)[0]:
        i = int(idx)
        j, sp = specials[-int(meta[i]) - 1]
        dec = decoders[j]
        sbase = state_bases[j]
        term = (sbase + dec.term_id) << VECTOR_K
        tag = sp[0]
        if tag == "ovfl":
            sid = sp[1]
            k, overflow = dec.state_stream[sid]
            max_len = overflow[4]
            acc = _peek_bits(gwords_list, int(pos[i]), max_len)
            try:
                sym, ln = _decode_overflow(acc, max_len, k, overflow)
            except CorruptBlobError:
                # Mirror the sequential path's shapes: truncation wins
                # when the probe crosses the stream end (the window
                # only saw zero padding); otherwise the longest-code
                # error carries the give-up position.
                local_end = int(pos[i]) - bit_bases[j] + max_len
                if local_end > job_limits[j]:
                    err: BaseException = _truncated(job_limits[j])
                else:
                    err = CorruptBlobError(
                        "corrupt bitstream: ran past longest code",
                        bit_offset=local_end,
                    )
                deferred.append((i, err))
                meta[i] = term
                continue
            if sid < dec.n_op_states:
                route = dec.op_route[sym]
                if route[0] == "ok":
                    nxt = route[1] + (sbase << VECTOR_K)
                elif route[0] == "term":
                    nxt = term
                elif route[0] == "badop":
                    nxt = term
                    deferred.append((i, _badop_error(sym)))
                else:
                    nxt = term
                    deferred.append((i, _missing(route[1])))
            else:
                nxt = dec.state_next[sid] + (sbase << VECTOR_K)
            meta[i] = (ln << _LN_SHIFT) | (sym << _SYM_SHIFT) | nxt
        elif tag == "badop":
            _, sym, ln = sp
            meta[i] = (ln << _LN_SHIFT) | (sym << _SYM_SHIFT) | term
            deferred.append((i, _badop_error(sym)))
        elif tag == "missing_plan":
            _, sym, ln, kind = sp
            meta[i] = (ln << _LN_SHIFT) | (sym << _SYM_SHIFT) | term
            deferred.append((i, _missing(kind)))
        else:  # missing_stream
            meta[i] = term
            deferred.append((i, _missing(sp[1])))
    return deferred


def decode_regions(
    codec, words: Sequence[int], offsets: Sequence[int]
) -> list[tuple[list[CodecInstr], int]]:
    """Batch-decode the regions of one codec (see :func:`decode_batch`)."""
    return decode_batch([(codec, words, offsets)])[0]


def decode_region(
    codec, words: Sequence[int], bit_offset: int
) -> tuple[list[CodecInstr], int]:
    """Single-region entry point, for backend dispatch.

    The vector machine amortizes over lanes; a one-lane batch is
    *correct* but slower than the sequential table path -- callers that
    care batch via :func:`decode_regions`/:func:`decode_batch`.
    """
    return decode_batch([(codec, words, [bit_offset])])[0][0]
