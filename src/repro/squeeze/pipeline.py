"""The squeeze pipeline: all compaction passes, in order."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.program.program import Program
from repro.squeeze.abstraction import AbstractionStats, abstract_repeats
from repro.squeeze.deadcode import DeadCodeStats, eliminate_dead_stores
from repro.squeeze.nops import NopStats, remove_nops
from repro.squeeze.unreachable import UnreachableStats, remove_unreachable


@dataclass
class SqueezeStats:
    """Before/after sizes and per-pass statistics."""

    input_size: int = 0
    output_size: int = 0
    unreachable: UnreachableStats = field(default_factory=UnreachableStats)
    nops: NopStats = field(default_factory=NopStats)
    dead: DeadCodeStats = field(default_factory=DeadCodeStats)
    abstraction: AbstractionStats = field(default_factory=AbstractionStats)

    @property
    def reduction(self) -> float:
        """Fractional code-size reduction achieved."""
        if self.input_size == 0:
            return 0.0
        return 1.0 - self.output_size / self.input_size


def squeeze(
    program: Program, abstraction_rounds: int = 2
) -> tuple[Program, SqueezeStats]:
    """Compact *program*; returns a new program and statistics.

    Pass order mirrors a link-time compactor: reachability first (it
    exposes nothing for later passes but shrinks their work), then
    no-op removal, dead-store elimination, and procedural abstraction.
    """
    result = program.copy()
    stats = SqueezeStats(input_size=program.code_size)
    stats.unreachable = remove_unreachable(result)
    stats.nops = remove_nops(result)
    stats.dead = eliminate_dead_stores(result)
    stats.abstraction = abstract_repeats(result, rounds=abstraction_rounds)
    stats.output_size = result.code_size
    result.validate()
    return result, stats
