"""The squeeze pipeline: all compaction passes, run by the pass manager.

Each compaction pass is a plugin in :data:`SQUEEZE_PASSES`; the
default order and per-pass round counts live in
:data:`DEFAULT_SQUEEZE_ORDER` as plain data, so an experiment can
reorder, drop, or repeat passes without editing this module::

    from repro.squeeze.pipeline import SQUEEZE_PASSES, squeeze

    @SQUEEZE_PASSES.register("my_pass")
    def my_pass(program, rounds):
        ...
        return MyStats()

    small, stats = squeeze(program, order=(("unreachable", 1),
                                           ("my_pass", 1)))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.pipeline.manager import (
    ArtifactStore,
    PassManager,
    Stage,
    StageReport,
)
from repro.pipeline.registry import Registry
from repro.program.program import Program
from repro.squeeze.abstraction import AbstractionStats, abstract_repeats
from repro.squeeze.deadcode import DeadCodeStats, eliminate_dead_stores
from repro.squeeze.nops import NopStats, remove_nops
from repro.squeeze.unreachable import UnreachableStats, remove_unreachable

__all__ = [
    "DEFAULT_SQUEEZE_ORDER",
    "SQUEEZE_PASSES",
    "SqueezeStats",
    "squeeze",
]

#: Compaction-pass plugins: name -> f(program, rounds) -> stats.
#: Passes mutate the program in place and return their statistics
#: object (stored on :class:`SqueezeStats` under the pass name).
SQUEEZE_PASSES: Registry[Callable] = Registry("squeeze pass")

SQUEEZE_PASSES.register(
    "unreachable", lambda program, rounds: remove_unreachable(program)
)
SQUEEZE_PASSES.register(
    "nops", lambda program, rounds: remove_nops(program)
)
SQUEEZE_PASSES.register(
    "dead", lambda program, rounds: eliminate_dead_stores(program)
)
SQUEEZE_PASSES.register(
    "abstraction",
    lambda program, rounds: abstract_repeats(program, rounds=rounds),
)

#: Default pass order as data: (pass name, rounds).  Reachability runs
#: first (it exposes nothing for later passes but shrinks their work),
#: then no-op removal, dead-store elimination, and procedural
#: abstraction.
DEFAULT_SQUEEZE_ORDER: tuple[tuple[str, int], ...] = (
    ("unreachable", 1),
    ("nops", 1),
    ("dead", 1),
    ("abstraction", 2),
)


@dataclass
class SqueezeStats:
    """Before/after sizes and per-pass statistics."""

    input_size: int = 0
    output_size: int = 0
    unreachable: UnreachableStats = field(default_factory=UnreachableStats)
    nops: NopStats = field(default_factory=NopStats)
    dead: DeadCodeStats = field(default_factory=DeadCodeStats)
    abstraction: AbstractionStats = field(default_factory=AbstractionStats)

    @property
    def reduction(self) -> float:
        """Fractional code-size reduction achieved."""
        if self.input_size == 0:
            return 0.0
        return 1.0 - self.output_size / self.input_size


def _squeeze_stages(
    order: tuple[tuple[str, int], ...], stats: SqueezeStats
) -> list[Stage]:
    """One manager stage per (pass, rounds) entry, chained linearly.

    Each stage rethreads the (mutated) program artifact so the manager
    sees an explicit dependency chain and times every pass.
    """
    stages: list[Stage] = []
    prev = "program"
    for position, (name, rounds) in enumerate(order):
        fn = SQUEEZE_PASSES.get(name)
        out = f"program@{position + 1}"

        def run(ctx, _fn=fn, _name=name, _rounds=rounds, **inputs):
            program = inputs[next(iter(inputs))]
            before = program.code_size
            pass_stats = _fn(program, _rounds)
            if hasattr(stats, _name):
                setattr(stats, _name, pass_stats)
            ctx.count("words_removed", before - program.code_size)
            return program

        stages.append(Stage(name, out, run, requires=(prev,)))
        prev = out
    return stages


def squeeze(
    program: Program,
    abstraction_rounds: int = 2,
    order: tuple[tuple[str, int], ...] | None = None,
    report: StageReport | None = None,
) -> tuple[Program, SqueezeStats]:
    """Compact *program*; returns a new program and statistics.

    *order* overrides :data:`DEFAULT_SQUEEZE_ORDER`; when omitted, the
    default order runs with *abstraction_rounds* rounds of procedural
    abstraction.  Pass a :class:`StageReport` as *report* to collect
    per-pass wall time and words-removed counters.
    """
    if order is None:
        order = tuple(
            (name, abstraction_rounds if name == "abstraction" else rounds)
            for name, rounds in DEFAULT_SQUEEZE_ORDER
        )
    result = program.copy()
    stats = SqueezeStats(input_size=program.code_size)
    stages = _squeeze_stages(order, stats)
    manager = PassManager(stages)
    store = ArtifactStore({"program": result})
    _, stage_report = manager.run(store)
    if report is not None:
        report.stages.extend(stage_report.stages)
    result = store[stages[-1].provides] if stages else result
    stats.output_size = result.code_size
    result.validate()
    return result, stats
