"""Dead-store elimination via per-function register liveness.

A backwards dataflow over each function's CFG computes live registers
at every instruction; ALU and address-forming instructions whose
destination is dead are deleted.  The analysis is conservative at
calls, returns, indirect jumps and system operations (standard ABI
summaries: calls read argument registers and define caller-saves;
returns keep the return value and callee-saves live).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import Format, Op, SysOp
from repro.program.blocks import BasicBlock
from repro.program.cfg import block_successors
from repro.program.function import Function
from repro.program.program import Program

#: Registers a function must preserve / the caller may rely on after a
#: call: return value v0, saved s0-s5, fp, sp, and gp-style r29.
_LIVE_AT_RETURN = frozenset({0, 9, 10, 11, 12, 13, 14, 15, 29, 30})
#: Registers read by a call (arguments + sp).
_CALL_USES = frozenset({16, 17, 18, 19, 20, 21, 30})
#: Registers a call may define (caller-save: v0, t0-t7, a0-a5, t8-t11,
#: ra).  Everything else survives the call.
_CALL_DEFS = frozenset(
    {0, 1, 2, 3, 4, 5, 6, 7, 8, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26}
)
_ALL_REGS = frozenset(range(31))  # r31 is the zero register


@dataclass
class DeadCodeStats:
    stores_removed: int = 0


def _instr_uses_defs(instr) -> tuple[frozenset[int], frozenset[int]]:
    """(uses, defs) of one instruction, with ABI summaries for calls."""
    if instr.is_call:
        from repro.squeeze.abstraction import ABSTRACT_LINK_REG

        if instr.is_direct_call and instr.ra == ABSTRACT_LINK_REG:
            # A call to an abstracted fragment is transparent: the
            # fragment reads and writes the caller's registers directly,
            # outside the normal ABI.  Treat it as fully opaque.
            return _ALL_REGS, frozenset()
        uses = set(_CALL_USES)
        if instr.is_indirect_call:
            uses.add(instr.rb)
        defs = set(_CALL_DEFS)
        if instr.ra != 31:
            defs.add(instr.ra)
        return frozenset(uses), frozenset(defs)
    if instr.op is Op.SPC:
        if instr.imm == SysOp.READ:
            return frozenset(), frozenset({0, 1})
        if instr.imm in (SysOp.WRITE, SysOp.EXIT):
            return frozenset({16}), frozenset()
        if instr.imm == SysOp.SETJMP:
            return frozenset({16, 30, 15, 26}), frozenset({0})
        if instr.imm == SysOp.LONGJMP:
            return frozenset({16, 17}), frozenset({0, 30, 15, 26})
        return frozenset(), frozenset()
    uses = frozenset(instr.reads_regs())
    dest = instr.writes_reg
    defs = frozenset() if dest is None else frozenset({dest})
    return uses, defs


def _removable(instr) -> bool:
    """True if the instruction has no effect beyond its register write."""
    return instr.format in (Format.OPR, Format.OPI) or instr.op in (
        Op.LDA,
        Op.LDAH,
        Op.LDW,
    )


def _block_live_out(
    program: Program, function: Function, block: BasicBlock,
    live_in: dict[str, frozenset[int]],
) -> set[int]:
    term = block.terminator
    live: set[int] = set()
    for succ in block_successors(program, block):
        live |= live_in.get(succ, frozenset())
    if term is not None:
        from repro.squeeze.abstraction import ABSTRACT_LINK_REG

        if term.is_return and term.rb == ABSTRACT_LINK_REG:
            # Returning from an abstracted fragment: every register may
            # be read by the continuation in the caller.
            live |= _ALL_REGS
        elif term.is_return:
            live |= _LIVE_AT_RETURN
        elif term.op is Op.SPC and term.imm == SysOp.LONGJMP:
            live |= _LIVE_AT_RETURN
        elif block.ends_in_indirect_jump and block.jump_table is None:
            live |= _ALL_REGS  # unknown targets: assume everything live
    return live


def _transfer(block: BasicBlock, live_out: set[int]) -> frozenset[int]:
    """Live-in of *block* given its live-out."""
    live = set(live_out)
    for instr in reversed(block.instrs):
        uses, defs = _instr_uses_defs(instr)
        live -= defs
        live |= uses
    return frozenset(live)


def eliminate_dead_stores(program: Program) -> DeadCodeStats:
    """Remove dead register writes from every function, in place."""
    stats = DeadCodeStats()
    for function in program.functions.values():
        stats.stores_removed += _process_function(program, function)
    return stats


def _process_function(program: Program, function: Function) -> int:
    labels = list(function.blocks)
    live_in: dict[str, frozenset[int]] = {label: frozenset() for label in labels}

    changed = True
    while changed:
        changed = False
        for label in reversed(labels):
            block = function.blocks[label]
            live_out = _block_live_out(program, function, block, live_in)
            new_in = _transfer(block, live_out)
            if new_in != live_in[label]:
                live_in[label] = new_in
                changed = True

    removed = 0
    for label in labels:
        block = function.blocks[label]
        live = set(_block_live_out(program, function, block, live_in))
        kept: list[int] = []
        for index in range(len(block.instrs) - 1, -1, -1):
            instr = block.instrs[index]
            uses, defs = _instr_uses_defs(instr)
            is_last = index == len(block.instrs) - 1
            dead = (
                _removable(instr)
                and not is_last  # keep terminators in place
                and instr.writes_reg is not None
                and instr.writes_reg not in live
            )
            if dead:
                removed += 1
                continue
            live -= defs
            live |= uses
            kept.append(index)
        kept.reverse()
        if len(kept) != len(block.instrs):
            block.rebuild(kept)
    return removed
