"""No-op removal and empty-block cleanup.

Compilers pad code with no-ops (alignment, scheduling); a compactor
strips them.  A block left empty by stripping is deleted and every
reference to it (fallthroughs, branch targets, jump-table entries,
function entries) is redirected to its fallthrough successor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.opcodes import Op, SysOp
from repro.program.blocks import BasicBlock
from repro.program.program import Program


@dataclass
class NopStats:
    nops_removed: int = 0
    blocks_removed: int = 0


def _is_nop(instr) -> bool:
    return instr.op is Op.SPC and instr.imm == SysOp.NOP


def _strip_block(block: BasicBlock) -> int:
    """Remove no-ops from *block*, fixing index-keyed metadata."""
    kept = [
        index
        for index, instr in enumerate(block.instrs)
        if not _is_nop(instr)
    ]
    removed = len(block.instrs) - len(kept)
    if removed:
        block.rebuild(kept)
    return removed


def remove_empty_blocks(program: Program) -> int:
    """Delete empty blocks, redirecting references; return count."""
    removed = 0
    changed = True
    while changed:
        changed = False
        # Map each empty block to where control actually goes.
        redirect: dict[str, str] = {}
        for function in program.functions.values():
            for block in function.blocks.values():
                if not block.instrs:
                    assert block.fallthrough is not None, (
                        f"empty block {block.label} has no fallthrough"
                    )
                    redirect[block.label] = block.fallthrough

        if not redirect:
            break

        def resolve(label: str) -> str:
            seen = set()
            while label in redirect:
                if label in seen:  # cycle of empties: keep one
                    break
                seen.add(label)
                label = redirect[label]
            return label

        for function in program.functions.values():
            if function.entry in redirect:
                function.entry = resolve(function.entry)
            for block in function.blocks.values():
                if block.fallthrough is not None:
                    block.fallthrough = resolve(block.fallthrough)
                if block.branch_target is not None:
                    block.branch_target = resolve(block.branch_target)
        for obj in program.data.values():
            for index, target in list(obj.relocs.items()):
                if target in redirect:
                    obj.relocs[index] = resolve(target)

        for function in program.functions.values():
            for label in list(function.blocks):
                block = function.blocks[label]
                if not block.instrs and resolve(label) != label:
                    del function.blocks[label]
                    removed += 1
                    changed = True
    return removed


def remove_nops(program: Program) -> NopStats:
    """Strip all no-ops from *program* in place."""
    stats = NopStats()
    for function in program.functions.values():
        for block in function.blocks.values():
            stats.nops_removed += _strip_block(block)
    stats.blocks_removed = remove_empty_blocks(program)
    return stats
