"""A `squeeze`-like code compactor (the paper's baseline substrate).

The paper applies *squash* to binaries already compacted by *squeeze*
[Debray et al., TOPLAS 2000], which removes unreachable and dead code
and performs procedural abstraction, shrinking `cc -O1` binaries by
roughly 30%.  This package reimplements the relevant passes over our
IR; Table 1's two columns (Input vs. Squeeze) are the before/after of
this pipeline.
"""

from repro.squeeze.unreachable import remove_unreachable
from repro.squeeze.nops import remove_nops
from repro.squeeze.deadcode import eliminate_dead_stores
from repro.squeeze.abstraction import abstract_repeats
from repro.squeeze.pipeline import squeeze, SqueezeStats

__all__ = [
    "remove_unreachable",
    "remove_nops",
    "eliminate_dead_stores",
    "abstract_repeats",
    "squeeze",
    "SqueezeStats",
]
