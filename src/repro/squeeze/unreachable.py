"""Unreachable-code elimination.

Blocks not reachable from the program entry (following branches,
fallthroughs, direct calls, jump tables, and address-taken functions)
are deleted; functions whose entry block dies are deleted whole, and
jump tables that no remaining block uses are reclaimed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.program.cfg import reachable_blocks
from repro.program.program import Program


@dataclass
class UnreachableStats:
    """What the pass removed."""

    blocks_removed: int = 0
    instrs_removed: int = 0
    functions_removed: int = 0
    data_words_reclaimed: int = 0


def remove_unreachable(program: Program) -> UnreachableStats:
    """Delete unreachable blocks/functions from *program* in place."""
    stats = UnreachableStats()
    live = reachable_blocks(program)

    for name in list(program.functions):
        function = program.functions[name]
        if function.entry not in live:
            stats.functions_removed += 1
            stats.blocks_removed += len(function.blocks)
            stats.instrs_removed += function.size
            del program.functions[name]
            program.address_taken.discard(name)
            continue
        for label in list(function.blocks):
            if label not in live:
                stats.blocks_removed += 1
                stats.instrs_removed += function.blocks[label].size
                del function.blocks[label]

    used_tables = {
        block.jump_table.data_symbol
        for _, block in program.all_blocks()
        if block.jump_table is not None
    }
    for name in list(program.data):
        obj = program.data[name]
        if obj.is_jump_table and name not in used_tables:
            stats.data_words_reclaimed += obj.size
            del program.data[name]

    # Drop dangling relocations from surviving data objects (function
    # pointers to deleted functions cannot be dereferenced by live code).
    labels = {block.label for _, block in program.all_blocks()}
    for obj in program.data.values():
        for index, target in list(obj.relocs.items()):
            if target not in labels and target not in program.functions:
                del obj.relocs[index]
                obj.words[index] = 0
    return stats
