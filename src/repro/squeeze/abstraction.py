"""Procedural abstraction of repeated code fragments.

`squeeze` replaces multiple identical program fragments with calls to a
single representative function.  We fingerprint straight-line windows
(no control transfers, no calls, position-independent), greedily pick
profitable repeated fragments largest-gain-first, and abstract each
into a new function called through a dedicated link register.

Profitability for a fragment of length L occurring n times:
saved = n*L - (n calls + L body + 1 ret) = (n-1)*L - n - 1 > 0.

For speed the pass fingerprints a fixed set of window lengths rather
than every length; the workload calibration (which decides how much
duplicated code to plant) runs against this same pass, so Table 1's
Input/Squeeze ratios are measured, not assumed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.program.blocks import BasicBlock
from repro.program.function import Function
from repro.program.program import Program

#: Link register used for abstracted-fragment calls (a caller-save
#: temporary distinct from the normal return-address register).
ABSTRACT_LINK_REG = 25

#: Window lengths that are fingerprinted, longest first.
WINDOW_LENGTHS = (16, 8, 4)


@dataclass
class AbstractionStats:
    fragments_abstracted: int = 0
    occurrences_rewritten: int = 0
    instrs_saved: int = 0


def _instr_ok(instr: Instruction) -> bool:
    """True if *instr* may be moved into an abstracted fragment."""
    if instr.is_control_transfer:
        return False
    if instr.op is Op.SPC and instr.imm != 0:
        return False  # syscalls stay put
    if ABSTRACT_LINK_REG in instr.reads_regs():
        return False
    if instr.writes_reg == ABSTRACT_LINK_REG:
        return False
    return True


def _savings(n: int, length: int) -> int:
    return (n - 1) * length - n - 1


def _collect_candidates(
    program: Program,
) -> dict[tuple[int, ...], list[tuple[str, int, int]]]:
    """Fingerprint windows: key -> [(block label, start, length)]."""
    table: dict[tuple[int, ...], list[tuple[str, int, int]]] = {}
    for _, block in program.all_blocks():
        n = len(block.instrs)
        words = [0] * n
        ok = [False] * n
        for index, instr in enumerate(block.instrs):
            ok[index] = _instr_ok(instr) and index not in block.data_refs
            if ok[index]:
                words[index] = encode(instr)
        # Longest abstractable run starting at each index, excluding the
        # terminator so block structure stays intact.
        run = 0
        runs = [0] * n
        for index in range(n - 2, -1, -1):
            run = run + 1 if ok[index] else 0
            runs[index] = run
        for start in range(n - 1):
            available = runs[start]
            for length in WINDOW_LENGTHS:
                if length <= available:
                    key = tuple(words[start : start + length])
                    table.setdefault(key, []).append(
                        (block.label, start, length)
                    )
    return table


def abstract_repeats(program: Program, rounds: int = 2) -> AbstractionStats:
    """Perform procedural abstraction on *program* in place."""
    stats = AbstractionStats()
    for _ in range(rounds):
        if not _one_round(program, stats):
            break
    return stats


def _one_round(program: Program, stats: AbstractionStats) -> bool:
    table = _collect_candidates(program)
    groups = [
        (key, occs)
        for key, occs in table.items()
        if len(occs) >= 2 and _savings(len(occs), len(key)) > 0
    ]
    groups.sort(
        key=lambda item: -_savings(len(item[1]), len(item[0]))
    )
    if not groups:
        return False

    used: dict[str, list[tuple[int, int]]] = {}
    rewrites: dict[str, list[tuple[int, int, str]]] = {}
    made_progress = False
    for key, occs in groups:
        length = len(key)
        chosen: list[tuple[str, int]] = []
        for label, start, _ in occs:
            spans = used.setdefault(label, [])
            if any(s < start + length and start < e for s, e in spans):
                continue
            chosen.append((label, start))
        if _savings(len(chosen), length) <= 0:
            continue
        for label, start in chosen:
            used[label].append((start, start + length))
        name = f"__abs{stats.fragments_abstracted}"
        first_label, first_start = chosen[0]
        _, block = program.find_block(first_label)
        body = list(block.instrs[first_start : first_start + length])
        helper = Function(name)
        helper.add_block(
            BasicBlock(
                f"{name}.entry",
                instrs=[
                    *body,
                    Instruction(Op.RET, ra=31, rb=ABSTRACT_LINK_REG),
                ],
            )
        )
        program.add_function(helper)
        for label, start in chosen:
            rewrites.setdefault(label, []).append((start, length, name))
        stats.fragments_abstracted += 1
        stats.occurrences_rewritten += len(chosen)
        stats.instrs_saved += _savings(len(chosen), length)
        made_progress = True

    for label, edits in rewrites.items():
        _, block = program.find_block(label)
        for start, length, name in sorted(edits, reverse=True):
            call = Instruction(Op.BSR, ra=ABSTRACT_LINK_REG, imm=0)
            block.instrs[start : start + length] = [call]
            block.call_targets = _shift(block.call_targets, start, length)
            block.call_targets[start] = name
            block.data_refs = _shift(block.data_refs, start, length)
    return made_progress


def _shift(index_map: dict[int, str], start: int, length: int) -> dict[int, str]:
    """Remap index-keyed metadata after splicing [start, start+length)
    down to a single instruction."""
    shifted: dict[int, str] = {}
    for index, value in index_map.items():
        if index < start:
            shifted[index] = value
        elif index >= start + length:
            shifted[index - length + 1] = value
    return shifted
