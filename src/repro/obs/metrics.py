"""The unified metrics registry.

One process-wide :class:`MetricsRegistry` holds every named counter,
gauge, and histogram the harness produces.  Components that grew their
own counter dicts (the stage cache's ``STAGE_COUNTERS``, the cell
cache's :class:`~repro.resilience.cache.CacheStats`, the supervisor's
report tallies, the pass manager's per-stage counters) keep their
local structures for backwards compatibility but *mirror* every
increment here, so a sweep leaves one coherent, queryable snapshot —
``repro metrics`` renders it.

Instruments are created on first use — ``registry.inc("a.b")`` never
raises on an unknown name — and all mutation is lock-protected, so
spans and counters can be recorded from result-delivery callbacks
without coordination.  Names are dotted paths
(``component.object.event``); keep cardinality bounded (benchmark
names are fine, per-cell digests are not).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


@dataclass
class Histogram:
    """Streaming summary of an observed distribution."""

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instruments, created on demand, snapshot-able as a dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram()
            return instrument

    # -- convenience mutators ------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- reading -------------------------------------------------------------

    def snapshot(self) -> dict:
        """Every instrument's current state as plain data."""
        with self._lock:
            return {
                "counters": {
                    name: c.value
                    for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value
                    for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "count": h.count,
                        "total": h.total,
                        "mean": h.mean,
                        "min": h.minimum if h.count else 0.0,
                        "max": h.maximum if h.count else 0.0,
                    }
                    for name, h in sorted(self._histograms.items())
                },
            }

    def render(self) -> str:
        """Aligned, human-readable dump of the whole registry."""
        snap = self.snapshot()
        lines: list[str] = []
        names = list(snap["counters"]) + list(snap["gauges"])
        width = max((len(n) for n in names), default=0)
        for name, value in snap["counters"].items():
            lines.append(f"{name.ljust(width)}  {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"{name.ljust(width)}  {value:g}")
        for name, h in snap["histograms"].items():
            lines.append(
                f"{name}  n={h['count']} mean={h['mean']:.6g} "
                f"min={h['min']:.6g} max={h['max']:.6g}"
            )
        return "\n".join(lines) if lines else "<no metrics recorded>"

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry every component mirrors into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The default (process-wide) metrics registry."""
    return _REGISTRY
