"""Structured tracing: spans, runtime events, ring buffer, exporters.

Two kinds of records flow through one :class:`Tracer`:

* **Spans** (phase ``B``/``E``) around host-side work: pipeline
  stages, sweep cells, supervised worker lifecycles.  They are stamped
  with wall-clock microseconds — useful for profiling, not expected to
  be reproducible.
* **Runtime events** (category ``"runtime"``) from the VM and the
  decompression runtime: region decompress start/end, decode-cache
  hit/miss, buffer eviction, restore-stub fire, stub-area reclaim.
  They are stamped with *modelled guest cycles* and a per-category
  sequence number, never wall time, so the same program and seed
  replay to a byte-identical event stream — ``repro trace`` pins this.

Events land in an in-memory ring buffer (``collections.deque`` with a
bounded capacity; the oldest events drop first and the drop count is
kept).  Exporters: :func:`chrome_trace` produces the Chrome
trace-event JSON object (load it in ``chrome://tracing`` / Perfetto),
:func:`write_jsonl` streams one JSON object per line.

The default tracer is **disabled**: every instrumentation site guards
on :attr:`Tracer.enabled`, a plain attribute read, so the hot paths
pay nothing measurable when tracing is off.  ``REPRO_TRACE=1`` (see
:mod:`repro.settings`) arms it at first use; :func:`enable_tracing`
arms it programmatically.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro import settings as _settings

__all__ = [
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "enable_tracing",
    "get_tracer",
    "write_chrome_trace",
    "write_jsonl",
]


@dataclass(frozen=True)
class TraceEvent:
    """One record of the stream.

    ``ts`` is modelled guest cycles for ``cat="runtime"`` events and
    wall-clock microseconds otherwise.  ``seq`` increases per
    category, so ordering within a category is total and — for the
    runtime category — deterministic.  ``args`` is a tuple of sorted
    ``(key, value)`` pairs, keeping the dataclass hashable and
    equality exact for replay comparison.
    """

    name: str
    cat: str
    phase: str  # "B" begin | "E" end | "i" instant
    ts: float
    seq: int
    lane: str = ""
    args: tuple = ()

    def to_json(self) -> dict:
        """Chrome trace-event form of this record."""
        event = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.phase,
            "ts": self.ts,
            "pid": 1,
            "tid": self.lane or self.cat,
            "args": dict(self.args),
        }
        if self.phase == "i":
            event["s"] = "t"  # instant scope: thread
        return event


class Tracer:
    """A bounded in-memory event stream."""

    def __init__(self, capacity: int = 65536, enabled: bool = False):
        self.enabled = enabled
        self._buffer: deque[TraceEvent] = deque(maxlen=max(1, capacity))
        self._seq: dict[str, int] = {}
        self.dropped = 0

    # -- control -------------------------------------------------------------

    def enable(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity != self._buffer.maxlen:
            self._buffer = deque(self._buffer, maxlen=max(1, capacity))
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self._buffer.clear()
        self._seq.clear()
        self.dropped = 0

    @property
    def capacity(self) -> int:
        return self._buffer.maxlen or 0

    # -- recording -----------------------------------------------------------

    def emit(
        self,
        name: str,
        cat: str,
        phase: str = "i",
        ts: float | None = None,
        lane: str = "",
        **args,
    ) -> None:
        """Record one event.  *ts* ``None`` stamps wall microseconds;
        runtime instrumentation always passes modelled cycles."""
        if not self.enabled:
            return
        if ts is None:
            ts = time.perf_counter() * 1e6
        seq = self._seq.get(cat, 0)
        self._seq[cat] = seq + 1
        if len(self._buffer) == self._buffer.maxlen:
            self.dropped += 1
        self._buffer.append(
            TraceEvent(
                name=name,
                cat=cat,
                phase=phase,
                ts=ts,
                seq=seq,
                lane=lane,
                args=tuple(sorted(args.items())),
            )
        )

    @contextmanager
    def span(self, name: str, cat: str, lane: str = "", **args) -> Iterator[None]:
        """A ``B``/``E`` pair around host-side work (wall-clock ts)."""
        if not self.enabled:
            yield
            return
        self.emit(name, cat, phase="B", lane=lane, **args)
        try:
            yield
        finally:
            self.emit(name, cat, phase="E", lane=lane)

    # -- reading -------------------------------------------------------------

    def events(self, cat: str | None = None) -> list[TraceEvent]:
        """Buffered events, oldest first, optionally one category."""
        if cat is None:
            return list(self._buffer)
        return [event for event in self._buffer if event.cat == cat]


#: The process-wide tracer all instrumentation sites consult.
_TRACER: Tracer | None = None


def get_tracer() -> Tracer:
    """The default tracer; built (and armed iff ``REPRO_TRACE`` is
    set) on first call."""
    global _TRACER
    if _TRACER is None:
        resolved = _settings.current()
        _TRACER = Tracer(
            capacity=resolved.trace_buffer, enabled=resolved.trace
        )
    return _TRACER


def enable_tracing(capacity: int | None = None) -> Tracer:
    """Arm the default tracer and return it."""
    tracer = get_tracer()
    tracer.enable(capacity)
    return tracer


# -- exporters ----------------------------------------------------------------


def chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """The Chrome trace-event JSON object for *events*.

    Runtime timestamps are modelled cycles; the ``displayTimeUnit``
    hint keeps viewers from re-scaling them confusingly.
    """
    return {
        "traceEvents": [event.to_json() for event in events],
        "displayTimeUnit": "ns",
        "metadata": {"producer": "repro.obs", "ts_unit_runtime": "cycles"},
    }


def write_chrome_trace(path, events: Iterable[TraceEvent]) -> None:
    """Write *events* as a Chrome trace-event JSON file at *path*."""
    import pathlib

    pathlib.Path(path).write_text(json.dumps(chrome_trace(events)))


def write_jsonl(path, events: Iterable[TraceEvent]) -> None:
    """Write *events* as JSON Lines (one event object per line)."""
    import pathlib

    lines = [json.dumps(event.to_json()) for event in events]
    pathlib.Path(path).write_text("\n".join(lines) + ("\n" if lines else ""))
