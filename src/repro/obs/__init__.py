"""Observability: unified metrics and structured tracing.

The subsystem has two halves, both process-wide singletons with
zero modelled-cycle cost (they observe the simulation, never charge
it):

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of named
  counters, gauges, and histograms.  The ad-hoc counters that grew
  inside the stage cache, the cell cache, the supervisor, and the pass
  manager all mirror into it, so ``repro metrics`` can report one
  coherent snapshot for a sweep.
* :mod:`repro.obs.trace` — a :class:`Tracer` recording spans (pipeline
  stages, sweep cells, worker lifecycles) and runtime events (region
  decompression, decode-cache hits, buffer evictions, restore-stub
  traffic) into an in-memory ring buffer, with Chrome trace-event JSON
  and JSONL exporters.  Runtime events are stamped with modelled guest
  cycles and per-category sequence numbers, so the same seed replays
  to an identical trace.

Tracing is off by default and every emit site is guarded by a single
``enabled`` check, keeping the overhead with tracing disabled at a few
attribute loads per *runtime service call* (never per instruction).
``REPRO_TRACE=1`` — or :func:`repro.obs.enable_tracing` — turns it on;
``benchmarks/run_obs_bench.py`` pins the enabled-mode wall-time
overhead below 3% and the golden suite pins cycle/image identity.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)
from repro.obs.trace import (
    TraceEvent,
    Tracer,
    chrome_trace,
    enable_tracing,
    get_tracer,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TraceEvent",
    "Tracer",
    "chrome_trace",
    "enable_tracing",
    "get_registry",
    "get_tracer",
    "write_chrome_trace",
    "write_jsonl",
]
