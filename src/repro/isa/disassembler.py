"""Disassembler: instructions back to assembler-compatible text."""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import AluOp, Format, Op, REG_RA, REG_ZERO, SysOp

_BRANCH_NAMES = {
    Op.BEQ: "beq",
    Op.BNE: "bne",
    Op.BLT: "blt",
    Op.BLE: "ble",
    Op.BGT: "bgt",
    Op.BGE: "bge",
    Op.BLBC: "blbc",
    Op.BLBS: "blbs",
}


def _reg(index: int) -> str:
    return f"r{index}"


def disassemble_one(instr: Instruction) -> str:
    """Render one instruction in assembler syntax."""
    op = instr.op
    if op is Op.SPC:
        try:
            sysop = SysOp(instr.imm)
        except ValueError:
            return f".word spc:{instr.imm:#x}"
        if sysop is SysOp.NOP:
            return "nop"
        if sysop is SysOp.HALT:
            return "halt"
        return f"sys {sysop.name.lower()}"
    if op is Op.ILLEGAL:
        return "sentinel"
    if instr.format is Format.OPR:
        name = AluOp(instr.func).name.lower()
        return f"{name} {_reg(instr.ra)}, {_reg(instr.rb)}, {_reg(instr.rc)}"
    if instr.format is Format.OPI:
        name = AluOp(instr.func).name.lower()
        return f"{name}i {_reg(instr.ra)}, {instr.imm}, {_reg(instr.rc)}"
    if op in (Op.LDA, Op.LDAH, Op.LDW, Op.STW):
        return (
            f"{op.name.lower()} {_reg(instr.ra)}, {instr.imm}({_reg(instr.rb)})"
        )
    if op in _BRANCH_NAMES:
        return f"{_BRANCH_NAMES[op]} {_reg(instr.ra)}, {instr.imm}"
    if op is Op.BR:
        if instr.ra == REG_ZERO:
            return f"br {instr.imm}"
        return f"bsr {_reg(instr.ra)}, {instr.imm}"  # BR-with-link == call
    if op is Op.BSR:
        return f"bsr {_reg(instr.ra)}, {instr.imm}"
    if op is Op.JMP:
        return f"jmp ({_reg(instr.rb)})"
    if op is Op.JSR:
        return f"jsr {_reg(instr.ra)}, ({_reg(instr.rb)})"
    if op is Op.RET:
        if instr.rb == REG_RA and instr.ra == REG_ZERO:
            return "ret"
        return f"ret ({_reg(instr.rb)})"
    raise AssertionError(f"unhandled opcode {op!r}")


def disassemble(instrs: list[Instruction]) -> str:
    """Render a sequence of instructions, one per line."""
    return "\n".join(disassemble_one(i) for i in instrs)
