"""The immutable decoded-instruction value type."""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.fields import FieldKind, check_field
from repro.isa.opcodes import (
    COND_BRANCH_OPS,
    DIRECT_CALL_OPS,
    FORMAT_FIELDS,
    OP_FORMAT,
    AluOp,
    Format,
    Op,
    REG_ZERO,
    SysOp,
)


@dataclass(frozen=True, slots=True)
class Instruction:
    """One decoded instruction.

    Only the attributes used by the instruction's format are meaningful;
    the rest keep their defaults.  ``imm`` holds whichever scalar payload
    the format defines (BDISP, MDISP, IMM16, LIT8, JHINT or PALF).
    """

    op: Op
    ra: int = REG_ZERO
    rb: int = REG_ZERO
    rc: int = REG_ZERO
    func: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        for kind, attr in FORMAT_FIELDS[self.format]:
            if attr is not None:
                check_field(kind, getattr(self, attr))

    @property
    def format(self) -> Format:
        """Instruction format, determined entirely by the opcode."""
        return OP_FORMAT[self.op]

    def fields(self) -> tuple[tuple[FieldKind, int], ...]:
        """The typed (field kind, value) pairs of this instruction.

        This is the decomposition that the splitting-streams compressor
        of Section 3 operates on; the OPCODE field is listed first.
        """
        parts: list[tuple[FieldKind, int]] = [(FieldKind.OPCODE, int(self.op))]
        for kind, attr in FORMAT_FIELDS[self.format]:
            if attr is None:
                parts.append((kind, 0))
            else:
                parts.append((kind, getattr(self, attr)))
        return tuple(parts)

    # -- classification helpers -------------------------------------------

    @property
    def is_cond_branch(self) -> bool:
        """True for the conditional PC-relative branches."""
        return self.op in COND_BRANCH_OPS

    @property
    def is_uncond_branch(self) -> bool:
        """True for ``BR`` used as a plain jump (no live link register)."""
        return self.op is Op.BR and self.ra == REG_ZERO

    @property
    def is_direct_call(self) -> bool:
        """True for a direct call (``BSR``, or ``BR`` with a link)."""
        if self.op in DIRECT_CALL_OPS:
            return True
        return self.op is Op.BR and self.ra != REG_ZERO

    @property
    def is_indirect_call(self) -> bool:
        """True for ``JSR`` (indirect call through a register)."""
        return self.op is Op.JSR

    @property
    def is_call(self) -> bool:
        """True for any call instruction, direct or indirect."""
        return self.is_direct_call or self.is_indirect_call

    @property
    def is_return(self) -> bool:
        """True for ``RET``."""
        return self.op is Op.RET

    @property
    def is_indirect_jump(self) -> bool:
        """True for ``JMP`` (indirect jump, e.g. through a jump table)."""
        return self.op is Op.JMP

    @property
    def is_control_transfer(self) -> bool:
        """True for any instruction that can change the PC."""
        if self.format in (Format.BRA, Format.JMP):
            return True
        return self.op is Op.SPC and self.imm == SysOp.LONGJMP

    @property
    def has_fallthrough(self) -> bool:
        """True if execution can continue at the next instruction.

        Calls fall through (after the callee returns); unconditional
        branches, indirect jumps, returns, halt/exit and the sentinel do
        not.
        """
        if self.is_cond_branch or self.is_call:
            return True
        if self.op in (Op.BR, Op.JMP, Op.RET):
            return False
        if self.op is Op.ILLEGAL:
            return False
        if self.op is Op.SPC and self.imm in (
            SysOp.HALT,
            SysOp.EXIT,
            SysOp.LONGJMP,
        ):
            return False
        return True

    @property
    def writes_reg(self) -> int | None:
        """The register this instruction writes, or None.

        Writes to the zero register are reported as None.
        """
        target: int | None = None
        if self.format in (Format.OPR, Format.OPI):
            target = self.rc
        elif self.op in (Op.LDA, Op.LDAH, Op.LDW):
            target = self.ra
        elif self.format in (Format.BRA, Format.JMP):
            target = self.ra
        elif self.op is Op.SPC and self.imm in (SysOp.READ, SysOp.SETJMP):
            # READ writes v0 and t0; SETJMP writes v0.  Handled specially
            # by liveness analysis; report v0 here.
            target = 0
        if target == REG_ZERO:
            return None
        return target

    def reads_regs(self) -> tuple[int, ...]:
        """Registers this instruction reads (zero register excluded)."""
        regs: list[int] = []
        if self.format in (Format.OPR,):
            regs = [self.ra, self.rb]
        elif self.format is Format.OPI:
            regs = [self.ra]
        elif self.op in (Op.LDA, Op.LDAH, Op.LDW):
            regs = [self.rb]
        elif self.op is Op.STW:
            regs = [self.ra, self.rb]
        elif self.is_cond_branch:
            regs = [self.ra]
        elif self.format is Format.JMP:
            regs = [self.rb]
        elif self.op is Op.SPC and self.imm in (
            SysOp.WRITE,
            SysOp.EXIT,
            SysOp.SETJMP,
            SysOp.LONGJMP,
        ):
            regs = [16, 17]  # a0, a1 (over-approximate: a1 only for longjmp)
        return tuple(r for r in regs if r != REG_ZERO)

    # -- display ------------------------------------------------------------

    def __str__(self) -> str:
        from repro.isa.disassembler import disassemble_one

        return disassemble_one(self)


#: The encoded sentinel: the all-ones word (ILLEGAL opcode, all-ones PALF).
#: The decompressor stops when it decodes this (Section 2.1).
SENTINEL_WORD = 0xFFFFFFFF


def nop() -> Instruction:
    """A no-op."""
    return Instruction(Op.SPC, imm=SysOp.NOP)


def halt() -> Instruction:
    """Stop the machine with exit code 0."""
    return Instruction(Op.SPC, imm=SysOp.HALT)


def sentinel() -> Instruction:
    """The illegal-instruction sentinel appended to compressed regions."""
    return Instruction(Op.ILLEGAL, imm=(1 << 26) - 1)


def alu_rr(func: AluOp, ra: int, rb: int, rc: int) -> Instruction:
    """Register-register ALU operation ``rc <- ra func rb``."""
    return Instruction(Op.OPR, ra=ra, rb=rb, rc=rc, func=int(func))


def alu_ri(func: AluOp, ra: int, lit: int, rc: int) -> Instruction:
    """Register-immediate ALU operation ``rc <- ra func lit``."""
    return Instruction(Op.OPI, ra=ra, rc=rc, func=int(func), imm=lit)
