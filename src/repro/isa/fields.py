"""Typed instruction fields.

Section 3 of the paper splits each instruction into its typed fields and
compresses one stream per field *type* ("for our test platform, we split
the instructions into 15 streams").  Our synthetic ISA has 12 field
kinds; each kind below becomes one compression stream.  The opcode
stream drives decoding: an opcode completely determines which other
fields follow it, so the per-stream codeword sequences can be merged
into a single bitstream (Section 3).
"""

from __future__ import annotations

import enum


class FieldKind(enum.IntEnum):
    """The typed fields of an instruction; one compression stream each."""

    OPCODE = 0   # 6-bit primary opcode
    RA = 1       # 5-bit register a (source / branch test / link)
    RB = 2       # 5-bit register b (source / base / indirect target)
    RC = 3       # 5-bit register c (destination of operate formats)
    SBZ = 4      # 3-bit should-be-zero pad in register-operate format
    FUNC = 5     # 8-bit ALU function code
    LIT8 = 6     # 8-bit zero-extended literal (operate-immediate)
    MDISP = 7    # 16-bit signed memory displacement (words)
    IMM16 = 8    # 16-bit signed immediate (lda / ldah)
    BDISP = 9    # 21-bit signed branch displacement (instructions)
    JHINT = 10   # 16-bit jump hint (ignored by the VM)
    PALF = 11    # 26-bit special/system function code


#: Bit width of each field kind.
FIELD_WIDTHS: dict[FieldKind, int] = {
    FieldKind.OPCODE: 6,
    FieldKind.RA: 5,
    FieldKind.RB: 5,
    FieldKind.RC: 5,
    FieldKind.SBZ: 3,
    FieldKind.FUNC: 8,
    FieldKind.LIT8: 8,
    FieldKind.MDISP: 16,
    FieldKind.IMM16: 16,
    FieldKind.BDISP: 21,
    FieldKind.JHINT: 16,
    FieldKind.PALF: 26,
}

#: Field kinds whose values are two's-complement signed.
_SIGNED_FIELDS = frozenset(
    {FieldKind.MDISP, FieldKind.IMM16, FieldKind.BDISP}
)


def field_is_signed(kind: FieldKind) -> bool:
    """Return True if *kind* holds a two's-complement signed value."""
    return kind in _SIGNED_FIELDS


def field_max(kind: FieldKind) -> int:
    """Largest representable value for *kind*."""
    width = FIELD_WIDTHS[kind]
    if field_is_signed(kind):
        return (1 << (width - 1)) - 1
    return (1 << width) - 1


def field_min(kind: FieldKind) -> int:
    """Smallest representable value for *kind*."""
    width = FIELD_WIDTHS[kind]
    if field_is_signed(kind):
        return -(1 << (width - 1))
    return 0


def check_field(kind: FieldKind, value: int) -> int:
    """Validate that *value* fits in *kind*; return it unchanged.

    Raises :class:`ValueError` when the value is out of range.
    """
    if not field_min(kind) <= value <= field_max(kind):
        raise ValueError(
            f"{kind.name} value {value} out of range "
            f"[{field_min(kind)}, {field_max(kind)}]"
        )
    return value


def to_bits(kind: FieldKind, value: int) -> int:
    """Encode *value* as the raw unsigned bit pattern of the field."""
    check_field(kind, value)
    width = FIELD_WIDTHS[kind]
    return value & ((1 << width) - 1)


def from_bits(kind: FieldKind, bits: int) -> int:
    """Decode the raw bit pattern *bits* back to a field value."""
    width = FIELD_WIDTHS[kind]
    if bits < 0 or bits >= (1 << width):
        raise ValueError(f"{kind.name} bit pattern {bits} wider than {width} bits")
    if field_is_signed(kind) and bits >= (1 << (width - 1)):
        return bits - (1 << width)
    return bits
