"""A small textual assembler for the synthetic ISA.

The assembler exists for tests and examples: it turns human-readable
listings into :class:`~repro.isa.instruction.Instruction` sequences.
Labels are local to one ``assemble`` call and resolve to PC-relative
branch displacements.

Syntax overview (one instruction per line; ``;`` or ``#`` starts a
comment; ``label:`` defines a label)::

    loop:
        ldw   r1, 8(r2)        ; ra, mdisp(rb)
        addi  r1, 5, r3        ; ra, lit8, rc
        add   r1, r2, r3       ; ra, rb, rc
        stw   r3, 0(r2)
        beq   r3, done         ; ra, label (or numeric displacement)
        br    loop
        bsr   r26, loop
        jsr   r26, (r4)
        jmp   (r4)
        ret                    ; short for ret (r26)
    done:
        sys   exit
"""

from __future__ import annotations

import re

from repro.isa.instruction import Instruction, sentinel
from repro.isa.opcodes import (
    AluOp,
    Op,
    REG_RA,
    REG_ZERO,
    SysOp,
)


class AssemblyError(Exception):
    """Raised on a syntax or range error in an assembly listing."""

    def __init__(self, lineno: int, message: str):
        super().__init__(f"line {lineno}: {message}")
        self.lineno = lineno


_REG_RE = re.compile(r"^r([0-9]|[12][0-9]|3[01])$")
_MEM_RE = re.compile(r"^(-?\w+)\((r[0-9]+)\)$")
_IND_RE = re.compile(r"^\((r[0-9]+)\)$")

_ALU_MNEMONICS = {op.name.lower(): op for op in AluOp}
_BRANCH_MNEMONICS = {
    "beq": Op.BEQ,
    "bne": Op.BNE,
    "blt": Op.BLT,
    "ble": Op.BLE,
    "bgt": Op.BGT,
    "bge": Op.BGE,
    "blbc": Op.BLBC,
    "blbs": Op.BLBS,
}
_SYS_MNEMONICS = {s.name.lower(): s for s in SysOp}

#: Register-name aliases accepted in listings.
REG_ALIASES = {
    "zero": 31,
    "sp": 30,
    "at": 28,
    "ra": 26,
    "v0": 0,
    **{f"a{i}": 16 + i for i in range(6)},
    **{f"s{i}": 9 + i for i in range(6)},
    "fp": 15,
}


def _parse_reg(token: str, lineno: int) -> int:
    token = token.strip()
    if token in REG_ALIASES:
        return REG_ALIASES[token]
    match = _REG_RE.match(token)
    if not match:
        raise AssemblyError(lineno, f"expected register, got {token!r}")
    return int(match.group(1))


def _parse_int(token: str, lineno: int) -> int:
    try:
        return int(token.strip(), 0)
    except ValueError:
        raise AssemblyError(lineno, f"expected integer, got {token!r}") from None


def _split_operands(rest: str) -> list[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [part.strip() for part in rest.split(",")]


def assemble(text: str) -> list[Instruction]:
    """Assemble *text* into a list of instructions.

    Branch targets may be labels defined in the same listing or literal
    integer displacements.
    """
    # Pass 1: strip comments, collect labels and raw statements.
    statements: list[tuple[int, str, str]] = []  # (lineno, mnemonic, rest)
    labels: dict[str, int] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = re.split(r"[;#]", raw, maxsplit=1)[0].strip()
        while line:
            match = re.match(r"^(\w+):\s*", line)
            if not match:
                break
            label = match.group(1)
            if label in labels:
                raise AssemblyError(lineno, f"duplicate label {label!r}")
            labels[label] = len(statements)
            line = line[match.end():]
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        statements.append((lineno, mnemonic, rest))

    # Pass 2: encode.
    instrs: list[Instruction] = []
    for index, (lineno, mnemonic, rest) in enumerate(statements):
        instrs.append(
            _assemble_one(mnemonic, rest, index, labels, lineno)
        )
    return instrs


def _branch_disp(
    token: str, index: int, labels: dict[str, int], lineno: int
) -> int:
    token = token.strip()
    if token in labels:
        return labels[token] - (index + 1)
    return _parse_int(token, lineno)


def _assemble_one(
    mnemonic: str,
    rest: str,
    index: int,
    labels: dict[str, int],
    lineno: int,
) -> Instruction:
    ops = _split_operands(rest)

    def arity(n: int) -> None:
        if len(ops) != n:
            raise AssemblyError(
                lineno, f"{mnemonic} expects {n} operand(s), got {len(ops)}"
            )

    if mnemonic == "nop":
        arity(0)
        return Instruction(Op.SPC, imm=SysOp.NOP)
    if mnemonic == "halt":
        arity(0)
        return Instruction(Op.SPC, imm=SysOp.HALT)
    if mnemonic == "sentinel":
        arity(0)
        return sentinel()
    if mnemonic == "sys":
        arity(1)
        sysop = _SYS_MNEMONICS.get(ops[0].lower())
        if sysop is None:
            raise AssemblyError(lineno, f"unknown system op {ops[0]!r}")
        return Instruction(Op.SPC, imm=int(sysop))

    if mnemonic in _ALU_MNEMONICS:
        arity(3)
        func = _ALU_MNEMONICS[mnemonic]
        ra = _parse_reg(ops[0], lineno)
        rc = _parse_reg(ops[2], lineno)
        return Instruction(
            Op.OPR, ra=ra, rb=_parse_reg(ops[1], lineno), rc=rc, func=int(func)
        )
    if mnemonic.endswith("i") and mnemonic[:-1] in _ALU_MNEMONICS:
        arity(3)
        func = _ALU_MNEMONICS[mnemonic[:-1]]
        ra = _parse_reg(ops[0], lineno)
        lit = _parse_int(ops[1], lineno)
        rc = _parse_reg(ops[2], lineno)
        return Instruction(Op.OPI, ra=ra, rc=rc, func=int(func), imm=lit)

    if mnemonic in ("lda", "ldah", "ldw", "stw"):
        arity(2)
        ra = _parse_reg(ops[0], lineno)
        match = _MEM_RE.match(ops[1])
        if not match:
            raise AssemblyError(
                lineno, f"expected disp(reg) operand, got {ops[1]!r}"
            )
        disp = _parse_int(match.group(1), lineno)
        rb = _parse_reg(match.group(2), lineno)
        op = {"lda": Op.LDA, "ldah": Op.LDAH, "ldw": Op.LDW, "stw": Op.STW}[
            mnemonic
        ]
        return Instruction(op, ra=ra, rb=rb, imm=disp)

    if mnemonic in _BRANCH_MNEMONICS:
        arity(2)
        ra = _parse_reg(ops[0], lineno)
        disp = _branch_disp(ops[1], index, labels, lineno)
        return Instruction(_BRANCH_MNEMONICS[mnemonic], ra=ra, imm=disp)

    if mnemonic == "br":
        arity(1)
        return Instruction(
            Op.BR, ra=REG_ZERO, imm=_branch_disp(ops[0], index, labels, lineno)
        )
    if mnemonic == "bsr":
        arity(2)
        ra = _parse_reg(ops[0], lineno)
        disp = _branch_disp(ops[1], index, labels, lineno)
        return Instruction(Op.BSR, ra=ra, imm=disp)

    if mnemonic in ("jmp", "jsr", "ret"):
        op = {"jmp": Op.JMP, "jsr": Op.JSR, "ret": Op.RET}[mnemonic]
        if mnemonic == "ret" and not ops:
            return Instruction(op, ra=REG_ZERO, rb=REG_RA)
        if mnemonic in ("jmp", "ret"):
            arity(1)
            link, target = "r31", ops[0]
        else:
            arity(2)
            link, target = ops[0], ops[1]
        match = _IND_RE.match(target.strip())
        if not match:
            raise AssemblyError(
                lineno, f"expected (reg) operand, got {target!r}"
            )
        return Instruction(
            op,
            ra=_parse_reg(link, lineno),
            rb=_parse_reg(match.group(1), lineno),
        )

    raise AssemblyError(lineno, f"unknown mnemonic {mnemonic!r}")
