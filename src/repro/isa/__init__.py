"""A synthetic 32-bit fixed-width RISC instruction set.

The ISA is modelled on the Compaq Alpha (the paper's test platform): a
6-bit opcode that fully determines the format of the rest of the word,
32 integer registers with a hardwired zero register, branch/memory/
operate/jump formats, and PC-relative branch displacements measured in
instructions.  The properties the compression pipeline relies on --
fixed-width instructions made of typed fields, where the opcode
determines which fields follow -- are identical to the Alpha's.

Public surface:

* :class:`~repro.isa.fields.FieldKind` -- the typed fields (one
  compression stream per kind, cf. Section 3 of the paper).
* :class:`~repro.isa.opcodes.Op` / :class:`~repro.isa.opcodes.AluOp` /
  :class:`~repro.isa.opcodes.SysOp` -- opcodes, ALU function codes and
  system-call numbers.
* :class:`~repro.isa.instruction.Instruction` -- an immutable decoded
  instruction.
* :func:`~repro.isa.encoding.encode` / :func:`~repro.isa.encoding.decode`
  -- 32-bit word <-> instruction.
* :func:`~repro.isa.assembler.assemble` /
  :func:`~repro.isa.disassembler.disassemble` -- text <-> instructions.
"""

from repro.isa.fields import FieldKind, FIELD_WIDTHS, field_is_signed
from repro.isa.opcodes import (
    Op,
    AluOp,
    SysOp,
    Format,
    REG_ZERO,
    REG_SP,
    REG_RA,
    REG_AT,
    REG_T0,
    REG_V0,
    REG_A0,
    NUM_REGS,
)
from repro.isa.instruction import (
    Instruction,
    nop,
    halt,
    sentinel,
    SENTINEL_WORD,
)
from repro.isa.encoding import encode, decode, DecodeError
from repro.isa.assembler import assemble, AssemblyError
from repro.isa.disassembler import disassemble, disassemble_one

__all__ = [
    "FieldKind",
    "FIELD_WIDTHS",
    "field_is_signed",
    "Op",
    "AluOp",
    "SysOp",
    "Format",
    "REG_ZERO",
    "REG_SP",
    "REG_RA",
    "REG_AT",
    "REG_T0",
    "REG_V0",
    "REG_A0",
    "NUM_REGS",
    "Instruction",
    "nop",
    "halt",
    "sentinel",
    "SENTINEL_WORD",
    "encode",
    "decode",
    "DecodeError",
    "assemble",
    "AssemblyError",
    "disassemble",
    "disassemble_one",
]
