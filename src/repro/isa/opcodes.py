"""Opcode and format definitions for the synthetic RISC ISA.

Like the Alpha, every instruction is one 32-bit word whose top six bits
are the primary opcode, and the opcode fully determines the format (and
therefore the typed fields) of the rest of the word.  That property is
what lets the decompressor of Section 3 merge all per-stream codeword
sequences into a single bitstream.
"""

from __future__ import annotations

import enum

from repro.isa.fields import FieldKind

#: Number of architectural integer registers.
NUM_REGS = 32

#: Hardwired zero register (reads as 0, writes discarded), like Alpha $31.
REG_ZERO = 31
#: Stack pointer.
REG_SP = 30
#: Conventional return-address (link) register, like Alpha $26.
REG_RA = 26
#: Assembler/stub temporary, reserved for stub linkage (like Alpha $at).
REG_AT = 28
#: First caller-save temporary.
REG_T0 = 1
#: Return-value register.
REG_V0 = 0
#: First argument register.
REG_A0 = 16


class Format(enum.Enum):
    """Instruction formats.  Each format is a fixed field layout."""

    SPC = "spc"    # OP(6) PALF(26)           -- system / special
    MEM = "mem"    # OP(6) RA(5) RB(5) MDISP(16)
    MEMI = "memi"  # OP(6) RA(5) RB(5) IMM16(16)
    BRA = "bra"    # OP(6) RA(5) BDISP(21)
    JMP = "jmp"    # OP(6) RA(5) RB(5) JHINT(16)
    OPR = "opr"    # OP(6) RA(5) RB(5) SBZ(3) FUNC(8) RC(5)
    OPI = "opi"    # OP(6) RA(5) LIT8(8) FUNC(8) RC(5)


class Op(enum.IntEnum):
    """Primary opcodes (the 6-bit OPCODE field)."""

    SPC = 0x00     # special: nop/halt/syscalls/setjmp/longjmp via PALF

    LDA = 0x08     # ra <- rb + imm16
    LDAH = 0x09    # ra <- rb + (imm16 << 16)
    LDW = 0x0A     # ra <- mem[rb + mdisp]
    STW = 0x0B     # mem[rb + mdisp] <- ra

    BR = 0x10      # ra <- return addr; pc <- pc + 1 + bdisp
    BSR = 0x11     # like BR, but hints a subroutine call
    BEQ = 0x12     # branch if ra == 0
    BNE = 0x13     # branch if ra != 0
    BLT = 0x14     # branch if ra < 0 (signed)
    BLE = 0x15     # branch if ra <= 0 (signed)
    BGT = 0x16     # branch if ra > 0 (signed)
    BGE = 0x17     # branch if ra >= 0 (signed)
    BLBC = 0x18    # branch if low bit of ra is clear
    BLBS = 0x19    # branch if low bit of ra is set

    JMP = 0x1A     # ra <- return addr; pc <- rb (indirect jump)
    JSR = 0x1B     # like JMP, but hints a subroutine call
    RET = 0x1C     # like JMP, but hints a subroutine return

    OPR = 0x20     # rc <- ra FUNC rb
    OPI = 0x21     # rc <- ra FUNC lit8 (lit8 zero-extended)

    ILLEGAL = 0x3F  # reserved illegal opcode; used as the sentinel


class AluOp(enum.IntEnum):
    """ALU function codes (the FUNC field of OPR/OPI)."""

    ADD = 0
    SUB = 1
    MUL = 2
    AND = 3
    OR = 4
    XOR = 5
    SLL = 6
    SRL = 7
    SRA = 8
    CMPEQ = 9
    CMPLT = 10   # signed
    CMPLE = 11   # signed
    CMPULT = 12  # unsigned
    CMPULE = 13  # unsigned
    UDIV = 14    # unsigned divide; division by zero yields 0
    UREM = 15    # unsigned remainder; modulo zero yields 0


class SysOp(enum.IntEnum):
    """System / special function codes (the PALF field of SPC)."""

    NOP = 0
    HALT = 1      # stop with exit code 0
    READ = 2      # v0 <- next input word, t0 <- 1; or t0 <- 0 at EOF
    WRITE = 3     # append a0 to the output stream
    EXIT = 4      # stop with exit code a0
    SETJMP = 5    # save (pc+1, sp) into jmp_buf at a0; v0 <- 0
    LONGJMP = 6   # restore (pc, sp) from jmp_buf at a0; v0 <- a1


#: Field layout per format: ordered (field kind, Instruction attribute).
#: SBZ is a constant zero pad and carries no attribute.
FORMAT_FIELDS: dict[Format, tuple[tuple[FieldKind, str | None], ...]] = {
    Format.SPC: ((FieldKind.PALF, "imm"),),
    Format.MEM: (
        (FieldKind.RA, "ra"),
        (FieldKind.RB, "rb"),
        (FieldKind.MDISP, "imm"),
    ),
    Format.MEMI: (
        (FieldKind.RA, "ra"),
        (FieldKind.RB, "rb"),
        (FieldKind.IMM16, "imm"),
    ),
    Format.BRA: (
        (FieldKind.RA, "ra"),
        (FieldKind.BDISP, "imm"),
    ),
    Format.JMP: (
        (FieldKind.RA, "ra"),
        (FieldKind.RB, "rb"),
        (FieldKind.JHINT, "imm"),
    ),
    Format.OPR: (
        (FieldKind.RA, "ra"),
        (FieldKind.RB, "rb"),
        (FieldKind.SBZ, None),
        (FieldKind.FUNC, "func"),
        (FieldKind.RC, "rc"),
    ),
    Format.OPI: (
        (FieldKind.RA, "ra"),
        (FieldKind.LIT8, "imm"),
        (FieldKind.FUNC, "func"),
        (FieldKind.RC, "rc"),
    ),
}

#: Format of each opcode.
OP_FORMAT: dict[Op, Format] = {
    Op.SPC: Format.SPC,
    Op.LDA: Format.MEMI,
    Op.LDAH: Format.MEMI,
    Op.LDW: Format.MEM,
    Op.STW: Format.MEM,
    Op.BR: Format.BRA,
    Op.BSR: Format.BRA,
    Op.BEQ: Format.BRA,
    Op.BNE: Format.BRA,
    Op.BLT: Format.BRA,
    Op.BLE: Format.BRA,
    Op.BGT: Format.BRA,
    Op.BGE: Format.BRA,
    Op.BLBC: Format.BRA,
    Op.BLBS: Format.BRA,
    Op.JMP: Format.JMP,
    Op.JSR: Format.JMP,
    Op.RET: Format.JMP,
    Op.OPR: Format.OPR,
    Op.OPI: Format.OPI,
    Op.ILLEGAL: Format.SPC,
}

#: Conditional branch opcodes (two successors: target and fall-through).
COND_BRANCH_OPS = frozenset(
    {Op.BEQ, Op.BNE, Op.BLT, Op.BLE, Op.BGT, Op.BGE, Op.BLBC, Op.BLBS}
)

#: Direct call opcode(s).  ``BR`` with a non-zero link register is also a
#: call by convention, but the workload generator and rewriter only emit
#: ``BSR`` for direct calls.
DIRECT_CALL_OPS = frozenset({Op.BSR})

#: Indirect control-transfer opcodes.
INDIRECT_OPS = frozenset({Op.JMP, Op.JSR, Op.RET})
