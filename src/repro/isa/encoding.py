"""Binary encoding of instructions to and from 32-bit words."""

from __future__ import annotations

from repro.isa.fields import FIELD_WIDTHS, FieldKind, from_bits, to_bits
from repro.isa.instruction import Instruction
from repro.isa.opcodes import FORMAT_FIELDS, OP_FORMAT, Op

WORD_BITS = 32
WORD_MASK = (1 << WORD_BITS) - 1
#: Bytes per instruction word; code sizes in bytes use this.
WORD_BYTES = 4


class DecodeError(Exception):
    """Raised when a word does not decode to a legal instruction."""


_VALID_OPCODES = {int(op): op for op in Op}


def encode(instr: Instruction) -> int:
    """Pack *instr* into its 32-bit word."""
    word = int(instr.op)
    for kind, attr in FORMAT_FIELDS[instr.format]:
        value = 0 if attr is None else getattr(instr, attr)
        word = (word << FIELD_WIDTHS[kind]) | to_bits(kind, value)
    return word


def decode(word: int) -> Instruction:
    """Unpack a 32-bit word into an :class:`Instruction`.

    Raises :class:`DecodeError` for reserved opcodes (including the
    sentinel, whose opcode is :data:`Op.ILLEGAL` -- callers that want to
    treat the sentinel as data must check for it first).
    """
    if not 0 <= word <= WORD_MASK:
        raise DecodeError(f"word {word:#x} is not a 32-bit value")
    opbits = word >> (WORD_BITS - FIELD_WIDTHS[FieldKind.OPCODE])
    op = _VALID_OPCODES.get(opbits)
    if op is None:
        raise DecodeError(f"unknown opcode {opbits:#04x} in word {word:#010x}")
    kwargs: dict[str, int] = {}
    shift = WORD_BITS - FIELD_WIDTHS[FieldKind.OPCODE]
    for kind, attr in FORMAT_FIELDS[OP_FORMAT[op]]:
        width = FIELD_WIDTHS[kind]
        shift -= width
        bits = (word >> shift) & ((1 << width) - 1)
        if attr is None:
            if bits != 0:
                raise DecodeError(
                    f"non-zero SBZ field in word {word:#010x}"
                )
        else:
            kwargs[attr] = from_bits(kind, bits)
    if shift != 0:
        raise DecodeError(f"format of {op.name} does not fill 32 bits")
    return Instruction(op, **kwargs)


def encode_program(instrs: list[Instruction]) -> list[int]:
    """Encode a sequence of instructions to words."""
    return [encode(i) for i in instrs]


def decode_program(words: list[int]) -> list[Instruction]:
    """Decode a sequence of words to instructions."""
    return [decode(w) for w in words]
