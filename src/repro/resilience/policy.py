"""Retry and circuit-breaker policy for supervised fan-out work.

Both pieces are deliberately deterministic: the jitter a retry waits is
a pure function of (cell key, attempt), so two identical sweeps back
off identically, and the breaker counts *consecutive* failures per cell
class, so one flaky cell cannot open it while a systematically broken
benchmark trips it quickly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

__all__ = ["RetryPolicy", "CircuitBreaker"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``max_attempts`` bounds *executions* of a cell (1 = no retry).
    Crashes that take the whole worker pool down are accounted
    separately by the supervisor (``crash_cap_factor`` × attempts),
    because one killed worker fails every in-flight future and the
    supervisor cannot attribute the blast to a single cell.
    """

    max_attempts: int = 3
    backoff_base: float = 0.1
    backoff_factor: float = 2.0
    backoff_cap: float = 5.0
    #: Jitter half-width as a fraction of the raw delay.
    jitter: float = 0.25
    #: Multiplier on ``max_attempts`` bounding pool-crash events a
    #: single cell may absorb before it is declared lost.
    crash_cap_factor: int = 4

    @property
    def crash_cap(self) -> int:
        return max(2, self.max_attempts) * max(1, self.crash_cap_factor)

    def delay(self, key: str, attempt: int) -> float:
        """Seconds to wait before retry *attempt* (1-based) of *key*."""
        if self.backoff_base <= 0.0:
            return 0.0
        raw = min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** max(0, attempt - 1),
        )
        if self.jitter <= 0.0:
            return raw
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        frac = int.from_bytes(digest[:4], "big") / 0xFFFFFFFF
        return raw * (1.0 - self.jitter + 2.0 * self.jitter * frac)


@dataclass
class CircuitBreaker:
    """Per-class consecutive-failure breaker.

    A class (for sweeps: the benchmark name) that fails ``threshold``
    times in a row with no intervening success is *open*: the
    supervisor stops resubmitting its cells and records each skipped
    cell as a typed ``breaker-open`` :class:`~repro.errors.CellFailure`
    instead of burning workers on it.
    """

    threshold: int = 8
    _streak: dict[str, int] = field(default_factory=dict)
    _open: set[str] = field(default_factory=set)

    def record_failure(self, cls: str) -> None:
        streak = self._streak.get(cls, 0) + 1
        self._streak[cls] = streak
        if self.threshold > 0 and streak >= self.threshold:
            self._open.add(cls)

    def record_success(self, cls: str) -> None:
        self._streak[cls] = 0
        self._open.discard(cls)

    def is_open(self, cls: str) -> bool:
        return cls in self._open

    @property
    def open_classes(self) -> tuple[str, ...]:
        return tuple(sorted(self._open))
