"""A supervision layer for fan-out experiment work.

The :class:`Supervisor` runs independent tasks across a
``ProcessPoolExecutor`` under a failure contract the bare pool does not
give:

- **Per-task deadline.**  A task that has not produced a result within
  ``deadline`` seconds is declared timed out; the hung worker is
  terminated and the pool replaced, so a wedged cell costs one deadline,
  not the sweep.
- **Bounded retries.**  Failed executions are resubmitted with
  exponential backoff and deterministic jitter
  (:class:`~repro.resilience.policy.RetryPolicy`).
- **Failure isolation.**  A task that exhausts its retries becomes one
  typed :class:`~repro.errors.CellFailure`; every other task's result
  survives, and results are delivered to ``on_result`` as soon as each
  future completes — not after the pool joins — so callers can persist
  incrementally.
- **Pool replacement.**  ``BrokenProcessPool`` (a worker killed by the
  OS, OOM, or a signal) replaces the executor automatically.  The blast
  radius of a dead worker is every in-flight future, and the pool
  cannot say which task was the culprit, so each in-flight task gets a
  ``crash`` event; crash events have their own generous cap
  (``RetryPolicy.crash_cap``) so an innocent bystander is never
  declared lost for its neighbour's crash.
- **Circuit breaker.**  A class of tasks (for sweeps: one benchmark)
  failing repeatedly with no success in between stops being submitted;
  its remaining tasks fail fast as ``breaker-open``
  (:class:`~repro.errors.BreakerOpen` is the reason type) instead of
  burning workers.

Tasks preempted by a neighbour's timeout or crash are requeued with a
``preempted`` event that does **not** consume a retry attempt.

Executors are leased from the process-wide
:class:`~repro.resilience.workerpool.PoolManager` rather than built
per run: with ``REPRO_POOL_PERSIST`` on (the default) a healthy pool
is parked when the run finishes and the next supervised run reuses its
warm workers — already-imported modules, built codec tables, memoized
stage bundles — instead of re-spawning.  Broken or hung pools are
discarded through the manager and replaced fresh, so the failure
contract above is unchanged.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from repro import settings as _settings
from repro.errors import BreakerOpen, CellFailure, SquashError
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.resilience.policy import CircuitBreaker, RetryPolicy
from repro.resilience.workerpool import PoolLease, get_pool_manager

__all__ = [
    "Task",
    "SupervisorConfig",
    "FailureEvent",
    "SupervisionReport",
    "Supervisor",
]


@dataclass(frozen=True)
class Task:
    """One unit of fan-out work."""

    key: Hashable
    payload: Any
    #: Circuit-breaker class (e.g. the benchmark name).
    cls: str = ""
    #: Human-readable description used in failure reports.
    label: str = ""

    def describe(self) -> str:
        return self.label or str(self.key)


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of one supervised run."""

    workers: int | None = None
    #: Per-task wall-clock deadline in seconds (None: no deadline).
    deadline: float | None = None
    retry: RetryPolicy = RetryPolicy()
    breaker_threshold: int = 8

    @classmethod
    def from_settings(
        cls, resolved: "_settings.Settings | None" = None
    ) -> "SupervisorConfig":
        """The config the resolved :class:`repro.settings.Settings`
        describes (``REPRO_CELL_DEADLINE``, ``REPRO_CELL_RETRIES``,
        ``REPRO_CELL_BACKOFF``, ``REPRO_BREAKER_THRESHOLD`` feed it;
        malformed values fall back silently — resilience knobs must
        never be a new way to crash)."""
        if resolved is None:
            resolved = _settings.current()
        return cls(
            deadline=resolved.cell_deadline,
            retry=RetryPolicy(
                max_attempts=resolved.cell_retries,
                backoff_base=resolved.cell_backoff,
            ),
            breaker_threshold=resolved.breaker_threshold,
        )

    @classmethod
    def from_env(cls) -> "SupervisorConfig":
        """Alias of :meth:`from_settings` kept for existing callers."""
        return cls.from_settings()


@dataclass
class FailureEvent:
    """One failed, preempted, or skipped execution."""

    key: Hashable
    cls: str
    attempt: int
    #: ``timeout`` | ``crash`` | ``error`` | ``preempted`` |
    #: ``breaker-open``
    kind: str
    error_type: str = ""
    message: str = ""
    #: Whether the task was put back in the queue afterwards.
    retried: bool = True


@dataclass
class SupervisionReport:
    """Everything a supervised run produced."""

    results: dict[Hashable, Any] = field(default_factory=dict)
    failures: dict[Hashable, CellFailure] = field(default_factory=dict)
    events: list[FailureEvent] = field(default_factory=list)
    pool_rebuilds: int = 0
    executions: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    def events_for(self, key: Hashable) -> list[FailureEvent]:
        return [event for event in self.events if event.key == key]


#: Unified metrics sink: supervision outcomes mirror here so a sweep
#: leaves one queryable snapshot (``repro metrics``).
_METRICS = get_registry()

#: True inside a supervisor pool worker (set by the pool initializer).
#: Chaos faults that destroy the hosting process consult this so they
#: never take down a driver that happens to run cells inline.
_IS_POOL_WORKER = False


def _mark_pool_worker() -> None:
    global _IS_POOL_WORKER
    _IS_POOL_WORKER = True


def in_pool_worker() -> bool:
    return _IS_POOL_WORKER


class _TaskState:
    __slots__ = ("task", "attempts", "crashes", "ready_at")

    def __init__(self, task: Task):
        self.task = task
        self.attempts = 0  # counted executions (errors + timeouts)
        self.crashes = 0  # non-attributable pool-crash events
        self.ready_at = 0.0


class Supervisor:
    """Runs a worker function over tasks under the supervision contract.

    ``fn`` must be a picklable module-level callable taking one task
    payload.  ``on_result(task, result)`` fires in the parent process
    the moment a task succeeds.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        config: SupervisorConfig | None = None,
        on_result: Callable[[Task, Any], None] | None = None,
    ):
        self.fn = fn
        self.config = config or SupervisorConfig.from_env()
        self.on_result = on_result
        self._tracer = get_tracer()

    # -- public entry --------------------------------------------------------

    def run(self, tasks: list[Task], parallel: bool = True) -> SupervisionReport:
        report = SupervisionReport()
        states = {task.key: _TaskState(task) for task in tasks}
        if len(states) != len(tasks):
            raise ValueError("duplicate task keys")
        breaker = CircuitBreaker(threshold=self.config.breaker_threshold)
        workers = self._workers()
        if parallel and workers > 1 and len(tasks) > 1:
            self._run_pool(list(states.values()), breaker, workers, report)
        else:
            self._run_serial(list(states.values()), breaker, report)
        return report

    def _workers(self) -> int:
        if self.config.workers:
            return max(1, self.config.workers)
        return _settings.effective_bench_workers()

    # -- shared bookkeeping --------------------------------------------------

    def _record_success(
        self,
        state: _TaskState,
        result: Any,
        breaker: CircuitBreaker,
        report: SupervisionReport,
    ) -> None:
        report.results[state.task.key] = result
        breaker.record_success(state.task.cls)
        _METRICS.inc("supervisor.successes")
        if self._tracer.enabled:
            self._tracer.emit(
                "cell.ok", "sweep", cell=state.task.describe(),
                attempts=state.attempts + 1,
            )
        if self.on_result is not None:
            self.on_result(state.task, result)

    def _record_failure(
        self,
        state: _TaskState,
        kind: str,
        breaker: CircuitBreaker,
        report: SupervisionReport,
        exc: BaseException | None = None,
        counts_attempt: bool = True,
    ) -> bool:
        """Account one failed execution; True when the task may retry."""
        task = state.task
        if counts_attempt:
            if kind == "crash":
                state.crashes += 1
            else:
                state.attempts += 1
            breaker.record_failure(task.cls)
        retry = self.config.retry
        exhausted = (
            state.attempts >= retry.max_attempts
            or state.crashes >= retry.crash_cap
        )
        retried = counts_attempt and not exhausted
        _METRICS.inc(f"supervisor.failures.{kind}")
        if self._tracer.enabled:
            self._tracer.emit(
                "cell.fail", "sweep", cell=task.describe(), kind=kind,
                attempt=state.attempts, retried=retried or not counts_attempt,
            )
        report.events.append(
            FailureEvent(
                key=task.key,
                cls=task.cls,
                attempt=state.attempts,
                kind=kind,
                error_type=type(exc).__name__ if exc is not None else "",
                message=str(exc) if exc is not None else "",
                retried=retried or not counts_attempt,
            )
        )
        if counts_attempt and exhausted:
            failure = CellFailure(
                "cell lost after bounded retries",
                cell=task.describe(),
                attempts=state.attempts + state.crashes,
                reason=kind,
                error_type=type(exc).__name__ if exc is not None else "",
            )
            failure.__cause__ = exc
            report.failures[task.key] = failure
            _METRICS.inc("supervisor.cells_lost")
            return False
        if counts_attempt:
            state.ready_at = time.monotonic() + retry.delay(
                str(task.key), state.attempts
            )
        return True

    def _fail_breaker_open(
        self, state: _TaskState, report: SupervisionReport
    ) -> None:
        task = state.task
        report.events.append(
            FailureEvent(
                key=task.key,
                cls=task.cls,
                attempt=state.attempts,
                kind="breaker-open",
                error_type=BreakerOpen.__name__,
                retried=False,
            )
        )
        failure = CellFailure(
            "cell skipped: circuit breaker open",
            cell=task.describe(),
            attempts=state.attempts + state.crashes,
            reason="breaker-open",
            error_type=BreakerOpen.__name__,
        )
        failure.__cause__ = BreakerOpen(cls=task.cls)
        report.failures[task.key] = failure
        _METRICS.inc("supervisor.breaker_open")

    # -- serial fallback -----------------------------------------------------

    def _run_serial(
        self,
        states: list[_TaskState],
        breaker: CircuitBreaker,
        report: SupervisionReport,
    ) -> None:
        """Inline execution with the same retry/breaker accounting.

        Deadlines need a separate process to enforce; inline, the VM
        watchdog (``REPRO_VM_WATCHDOG``) is the hang guard.
        """
        queue = deque(states)
        while queue:
            state = queue.popleft()
            if breaker.is_open(state.task.cls):
                self._fail_breaker_open(state, report)
                continue
            delay = state.ready_at - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            report.executions += 1
            _METRICS.inc("supervisor.executions")
            try:
                result = self.fn(state.task.payload)
            except BaseException as exc:  # noqa: BLE001 - classified below
                if isinstance(exc, KeyboardInterrupt):
                    raise
                if self._record_failure(state, "error", breaker, report, exc):
                    queue.append(state)
                continue
            self._record_success(state, result, breaker, report)

    # -- pool execution ------------------------------------------------------

    def _run_pool(
        self,
        states: list[_TaskState],
        breaker: CircuitBreaker,
        workers: int,
        report: SupervisionReport,
    ) -> None:
        queue: deque[_TaskState] = deque(states)
        inflight: dict[Future, tuple[_TaskState, float]] = {}
        manager = get_pool_manager()
        lease = manager.acquire(workers, initializer=_mark_pool_worker)
        pool = lease.pool
        deadline = self.config.deadline
        try:
            if self._tracer.enabled:
                self._tracer.emit("pool.lease", "sweep", warm=lease.reused)
            while queue or inflight:
                now = time.monotonic()
                # Submit every ready task while worker slots are free.
                requeue: list[_TaskState] = []
                while queue and len(inflight) < workers:
                    state = queue.popleft()
                    if breaker.is_open(state.task.cls):
                        self._fail_breaker_open(state, report)
                        continue
                    if state.ready_at > now:
                        requeue.append(state)
                        continue
                    try:
                        future = pool.submit(self.fn, state.task.payload)
                    except BrokenProcessPool:
                        # A worker death surfaces synchronously when it
                        # lands while later tasks are still being
                        # submitted.  This task never ran, so it requeues
                        # unscathed; in-flight neighbours are doomed and
                        # written off as crash events, exactly as in the
                        # asynchronous branch below.
                        requeue.append(state)
                        for victim, _expiry in inflight.values():
                            if self._record_failure(
                                victim, "crash", breaker, report, exc=None
                            ):
                                requeue.append(victim)
                        inflight.clear()
                        lease = self._replace_pool(lease, report, kill=False)
                        pool = lease.pool
                        break
                    report.executions += 1
                    _METRICS.inc("supervisor.executions")
                    expiry = now + deadline if deadline else float("inf")
                    inflight[future] = (state, expiry)
                queue.extend(requeue)

                if not inflight:
                    if queue:  # everything queued is backing off
                        wake = min(state.ready_at for state in queue)
                        time.sleep(max(0.0, wake - time.monotonic()))
                    continue

                timeout = None
                next_expiry = min(expiry for _, expiry in inflight.values())
                if next_expiry != float("inf"):
                    timeout = max(0.01, next_expiry - time.monotonic())
                done, _ = wait(
                    list(inflight), timeout=timeout,
                    return_when=FIRST_COMPLETED,
                )

                broken = False
                for future in done:
                    state, _expiry = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broken = True
                        if self._record_failure(
                            state, "crash", breaker, report,
                            exc=None,
                        ):
                            queue.append(state)
                        continue
                    except BaseException as exc:  # noqa: BLE001
                        if isinstance(exc, KeyboardInterrupt):
                            raise
                        if self._record_failure(
                            state, "error", breaker, report, exc
                        ):
                            queue.append(state)
                        continue
                    self._record_success(state, result, breaker, report)

                if broken:
                    # Remaining in-flight futures are doomed too: requeue
                    # them as crash events and replace the executor.
                    for future, (state, _expiry) in inflight.items():
                        if self._record_failure(
                            state, "crash", breaker, report, exc=None
                        ):
                            queue.append(state)
                    inflight.clear()
                    lease = self._replace_pool(lease, report, kill=False)
                    pool = lease.pool
                    continue

                # Deadline audit: expired tasks time out; the hung
                # workers can only be reclaimed by killing the pool, so
                # innocents still in flight are requeued without
                # consuming an attempt.
                now = time.monotonic()
                expired = [
                    (future, state)
                    for future, (state, expiry) in inflight.items()
                    if now >= expiry and not future.done()
                ]
                if expired:
                    expired_keys = set()
                    for future, state in expired:
                        expired_keys.add(state.task.key)
                        if self._record_failure(
                            state, "timeout", breaker, report,
                            exc=TimeoutError(
                                f"no result within {deadline:.1f}s"
                            ),
                        ):
                            queue.append(state)
                    for future, (state, _expiry) in inflight.items():
                        if state.task.key in expired_keys:
                            continue
                        if future.done():
                            # Completed in the race window: harvest it.
                            try:
                                result = future.result()
                            except BaseException as exc:  # noqa: BLE001
                                if isinstance(exc, KeyboardInterrupt):
                                    raise
                                if self._record_failure(
                                    state, "error", breaker, report, exc
                                ):
                                    queue.append(state)
                            else:
                                self._record_success(
                                    state, result, breaker, report
                                )
                            continue
                        self._record_failure(
                            state, "preempted", breaker, report,
                            counts_attempt=False,
                        )
                        queue.append(state)
                    inflight.clear()
                    lease = self._replace_pool(lease, report, kill=True)
                    pool = lease.pool
        except BaseException as exc:
            # An escaping exception (KeyboardInterrupt / SIGTERM above
            # all) may leave futures in flight.  Cancel what has not
            # started, kill the workers running the rest, and hand the
            # lease back through discard — a pool mid-task must never
            # be parked warm for the next run to inherit.
            for future in inflight:
                future.cancel()
            inflight.clear()
            manager.discard(lease, kill=True)
            _METRICS.inc("supervisor.interrupted")
            if self._tracer.enabled:
                self._tracer.emit(
                    "pool.interrupt", "sweep",
                    kind=type(exc).__name__,
                )
            raise
        else:
            manager.release(lease)

    def _replace_pool(
        self, lease: PoolLease, report: SupervisionReport, kill: bool
    ) -> PoolLease:
        """Discard a broken/hung leased pool and lease a fresh one."""
        manager = get_pool_manager()
        manager.discard(lease, kill=kill)
        report.pool_rebuilds += 1
        _METRICS.inc("supervisor.pool_rebuilds")
        if self._tracer.enabled:
            self._tracer.emit("pool.rebuild", "sweep", killed=kill)
        return manager.acquire(
            self._workers(), initializer=_mark_pool_worker
        )
