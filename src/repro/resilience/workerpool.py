"""Persistent warm worker pools, leased across supervised runs.

Before this module, every supervised fan-out built a fresh
``ProcessPoolExecutor`` and tore it down when the run finished, so each
sweep re-paid process spawn plus every per-process warm-up cost (codec
tables, imported modules, deserialized stage bundles) even when the
next sweep started milliseconds later in the same driver.

:class:`PoolManager` keeps one warm pool per worker count and leases it
out: :meth:`~PoolManager.acquire` hands an exclusive
:class:`PoolLease` (reusing the cached pool when it is compatible,
building a fresh one otherwise) and :meth:`~PoolManager.release` parks
the pool for the next run instead of killing it.  A pool that broke or
hung is returned through :meth:`~PoolManager.discard` and is never
parked.  Reuse is gated three ways:

- **Settings** — ``REPRO_POOL_PERSIST=0`` restores the old
  build-per-run behaviour; released pools are shut down immediately.
- **Fingerprint** — a cached pool is only reused while
  :func:`pool_fingerprint` (the resolved :class:`repro.settings`
  snapshot, the working directory, and every ``REPRO_*`` environment
  variable) is unchanged.  Workers inherit their environment at spawn
  time, so any change the parent could not propagate — arming
  ``REPRO_CHAOS_SPEC``, moving the cache dir, flipping a decode
  backend — invalidates the warm pool rather than running against a
  stale view of it.
- **Health** — a pool whose executor reports itself broken is
  rebuilt, never reused.

The warm/cold decision is observable: ``pool.acquire.reuse`` /
``pool.acquire.fresh`` count in the unified metrics registry
(:mod:`repro.obs.metrics`), and the once-per-host warm-up work the
reuse avoids is exactly what ``stagecache.*`` and ``codec table``
counters measure.  All parked pools are torn down at interpreter exit.
"""

from __future__ import annotations

import atexit
import os
import threading
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro import settings as _settings
from repro.obs.metrics import get_registry

__all__ = [
    "PoolLease",
    "PoolManager",
    "get_pool_manager",
    "pool_fingerprint",
    "reset_pool_manager",
]

_METRICS = get_registry()


def pool_fingerprint() -> str:
    """Everything a spawned worker bakes in at fork time.

    Two runs may share a warm pool only when this string matches: the
    resolved settings snapshot (so programmatic ``use_settings``
    overrides invalidate too), the working directory (relative cache
    roots), and the full ``REPRO_*`` environment, which covers knobs
    the settings layer does not model — chaos specs above all.
    """
    env = sorted(
        (key, value)
        for key, value in _settings._ENVIRON.items()
        if key.startswith("REPRO_")
    )
    return repr((repr(_settings.current()), os.getcwd(), env))


@dataclass
class PoolLease:
    """An exclusively-held executor checked out of the manager."""

    pool: ProcessPoolExecutor
    workers: int
    fingerprint: str
    #: True when the lease reused a parked warm pool.
    reused: bool = False


def _pool_broken(pool: ProcessPoolExecutor) -> bool:
    """Whether the executor has declared itself unusable.

    ``_broken`` is private-but-stable CPython state (set when a worker
    dies); without it, assume healthy — submitting to a genuinely
    broken pool raises and the supervisor's crash path takes over.
    """
    return bool(getattr(pool, "_broken", False))


class PoolManager:
    """Process-wide lease registry of warm ``ProcessPoolExecutor``s.

    One parked pool per worker count; a leased pool is popped from the
    registry, so two concurrent supervised runs never share an
    executor — the second acquire simply builds its own.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: workers -> (fingerprint, parked executor)
        self._parked: dict[int, tuple[str, ProcessPoolExecutor]] = {}

    # -- lease lifecycle -----------------------------------------------------

    def acquire(
        self,
        workers: int,
        initializer: Callable[[], None] | None = None,
    ) -> PoolLease:
        """Lease a pool of *workers*, warm when possible."""
        fingerprint = pool_fingerprint()
        stale: ProcessPoolExecutor | None = None
        with self._lock:
            entry = self._parked.pop(workers, None)
        if entry is not None:
            parked_fp, pool = entry
            if parked_fp == fingerprint and not _pool_broken(pool):
                _METRICS.inc("pool.acquire.reuse")
                return PoolLease(
                    pool=pool,
                    workers=workers,
                    fingerprint=fingerprint,
                    reused=True,
                )
            stale = pool
        if stale is not None:
            _shutdown_pool(stale, kill=False)
            _METRICS.inc("pool.stale_discards")
        pool = ProcessPoolExecutor(
            max_workers=workers, initializer=initializer
        )
        _METRICS.inc("pool.acquire.fresh")
        return PoolLease(
            pool=pool, workers=workers, fingerprint=fingerprint
        )

    def release(self, lease: PoolLease) -> bool:
        """Return a healthy pool; True when it was parked for reuse.

        Persistence off, a broken executor, or an already-parked pool
        for the same worker count all mean the pool is shut down
        instead.
        """
        resolved = _settings.current()
        if "REPRO_POOL_PERSIST" in resolved.invalid:
            warnings.warn(
                "REPRO_POOL_PERSIST is not a boolean "
                "(use 1/0/yes/no/on/off/true/false); "
                "keeping the default (persist)",
                RuntimeWarning,
                stacklevel=2,
            )
        persist = resolved.pool_persist
        if persist and not _pool_broken(lease.pool):
            with self._lock:
                if lease.workers not in self._parked:
                    self._parked[lease.workers] = (
                        lease.fingerprint, lease.pool
                    )
                    _METRICS.inc("pool.released.parked")
                    return True
        _shutdown_pool(lease.pool, kill=False)
        _METRICS.inc("pool.released.closed")
        return False

    def discard(self, lease: PoolLease, kill: bool) -> None:
        """Destroy a broken or hung pool; it is never parked."""
        _shutdown_pool(lease.pool, kill=kill)
        _METRICS.inc("pool.discards")

    # -- maintenance ---------------------------------------------------------

    def parked_count(self) -> int:
        with self._lock:
            return len(self._parked)

    def shutdown_all(self, kill: bool = False) -> None:
        """Tear down every parked pool (atexit hook and test hygiene)."""
        with self._lock:
            entries = list(self._parked.values())
            self._parked.clear()
        for _fingerprint, pool in entries:
            _shutdown_pool(pool, kill=kill)


def _shutdown_pool(pool: ProcessPoolExecutor, kill: bool) -> None:
    if kill:
        # Hung workers never return; SIGTERM them so a sweep does not
        # leak a process per timeout.  ``_processes`` is
        # private-but-stable CPython; degrade gracefully without it.
        procs = getattr(pool, "_processes", None) or {}
        for proc in list(procs.values()):
            try:
                proc.terminate()
            except Exception:
                pass
    # Idle teardowns join (quick, and leaves no half-closed wakeup
    # pipes for the interpreter's own atexit hook to trip over); kill
    # paths stay non-blocking because a hung worker may ignore SIGTERM.
    pool.shutdown(wait=not kill, cancel_futures=True)


_MANAGER: PoolManager | None = None
_MANAGER_LOCK = threading.Lock()


def get_pool_manager() -> PoolManager:
    """The process-wide manager, created (and atexit-armed) on first use."""
    global _MANAGER
    with _MANAGER_LOCK:
        if _MANAGER is None:
            _MANAGER = PoolManager()
            atexit.register(_MANAGER.shutdown_all)
        return _MANAGER


def reset_pool_manager() -> None:
    """Shut down all parked pools and forget the manager (tests)."""
    global _MANAGER
    with _MANAGER_LOCK:
        manager, _MANAGER = _MANAGER, None
    if manager is not None:
        manager.shutdown_all(kill=True)
