"""Supervision layer for all fan-out experiment work.

``repro.resilience`` exists so one dead, hung, or lying worker costs a
sweep exactly one *recorded* cell, never the sweep: the
:class:`Supervisor` adds per-task deadlines, bounded retries with
deterministic backoff, automatic pool replacement, and a per-class
circuit breaker on top of ``ProcessPoolExecutor``; :mod:`.cache`
provides the crash-safe, checksummed on-disk entry format the sweep
persists into as each cell completes.  Failure modes surface as typed
errors from :mod:`repro.errors` (:class:`~repro.errors.CellFailure`,
:class:`~repro.errors.BreakerOpen`,
:class:`~repro.errors.WatchdogExpired`).
"""

from repro.resilience.cache import CacheStats, read_entry, seal_text, write_entry
from repro.resilience.policy import CircuitBreaker, RetryPolicy
from repro.resilience.supervisor import (
    FailureEvent,
    SupervisionReport,
    Supervisor,
    SupervisorConfig,
    Task,
)
from repro.resilience.workerpool import (
    PoolLease,
    PoolManager,
    get_pool_manager,
    pool_fingerprint,
    reset_pool_manager,
)

__all__ = [
    "CacheStats",
    "read_entry",
    "seal_text",
    "write_entry",
    "CircuitBreaker",
    "RetryPolicy",
    "FailureEvent",
    "SupervisionReport",
    "Supervisor",
    "SupervisorConfig",
    "Task",
    "PoolLease",
    "PoolManager",
    "get_pool_manager",
    "pool_fingerprint",
    "reset_pool_manager",
]
