"""Crash-safe, multi-process-safe on-disk cache entries.

Each entry is a two-line text file::

    {"cycles": 482208, ...}
    crc32:1a2b3c4d

Line 1 is the JSON payload; line 2 seals it with a CRC32 over the
payload bytes (:func:`repro.core.integrity.bytes_crc` — the same
primitive that seals compressed areas inside a squashed image).  A torn
write, truncation, stray garbage, or a tampered payload all fail the
seal (or JSON parse, or required-key check) and the loader reports the
entry as absent, so the caller recomputes instead of crashing or —
worse — trusting a corrupt number.

Writes are atomic and unique per writer: the payload goes to
``.<name>.<pid>-<token>.tmp`` in the target directory, is fsynced, and
is published with ``os.replace``; concurrent writers of the same cell
cannot clobber each other's temp file and a crash mid-write leaves only
a stale temp file, never a half-written entry under the final name.

Sealless single-line entries written by older harness versions are
still accepted when they parse and carry the required keys.

Large entries — stage bundles carrying a whole serialized program —
are read through ``mmap``: every warm pool worker deserializing the
same bundle then shares the page-cache pages of the one on-disk copy
instead of each buffering a private read, which is how θ-invariant
artifacts travel from the driver to persistent workers.  Small entries
keep the plain read (an mmap round-trip costs more than it saves under
~64 KiB).
"""

from __future__ import annotations

import json
import mmap
import os
import pathlib
import secrets
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.core.integrity import bytes_crc
from repro.obs.metrics import get_registry

__all__ = ["CacheStats", "read_entry", "write_entry", "seal_text"]

#: Unified metrics sink: entry reads/writes/rejections mirror here
#: (names ``cellcache.*``) alongside the per-pass ``CacheStats``.
_METRICS = get_registry()

_SEAL_PREFIX = "crc32:"

#: Entries at least this large are read via ``mmap`` (shared page
#: cache across pool workers); smaller ones use a plain read.
MMAP_MIN_BYTES = 1 << 16


def _read_entry_text(path: pathlib.Path) -> str:
    """The entry's text, mmap-backed for large files."""
    with open(path, "rb") as handle:
        size = os.fstat(handle.fileno()).st_size
        # Zero-length files (a crash between create and write, or a
        # racing truncation) cannot be mmapped — mmap(fd, 0) means
        # "whole file" and raises on an empty one — so they must take
        # the plain-read path regardless of the threshold.
        if size > 0 and size >= MMAP_MIN_BYTES:
            try:
                with mmap.mmap(
                    handle.fileno(), 0, access=mmap.ACCESS_READ
                ) as view:
                    data = bytes(view)
                _METRICS.inc("cellcache.mmap_reads")
            except (ValueError, OSError):
                # Racing truncation or a filesystem without mmap:
                # degrade to the ordinary read.
                data = handle.read()
        else:
            data = handle.read()
    return data.decode("utf-8", errors="replace")


@dataclass
class CacheStats:
    """Counters for one pass over the cache."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    #: Rejected entries by reason: ``torn`` (unparseable/truncated),
    #: ``seal-mismatch`` (CRC failed), ``missing-keys`` (valid JSON
    #: lacking required fields), ``unreadable`` (OS error).
    rejects: dict[str, int] = field(default_factory=dict)

    @property
    def rejected(self) -> int:
        return sum(self.rejects.values())

    def _reject(self, reason: str) -> None:
        self.rejects[reason] = self.rejects.get(reason, 0) + 1
        self.misses += 1
        _METRICS.inc(f"cellcache.rejects.{reason}")
        _METRICS.inc("cellcache.misses")


def seal_text(payload: str) -> str:
    """The two-line sealed form of a JSON payload line."""
    crc = bytes_crc(payload.encode("utf-8"))
    return f"{payload}\n{_SEAL_PREFIX}{crc:08x}\n"


def write_entry(path: pathlib.Path, obj: Mapping) -> None:
    """Atomically publish *obj* as a sealed entry at *path*."""
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(obj, sort_keys=True)
    tmp = path.parent / f".{path.name}.{os.getpid()}-{secrets.token_hex(4)}.tmp"
    data = seal_text(payload).encode("utf-8")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, path)
    _fsync_dir(path.parent)
    _METRICS.inc("cellcache.writes")


def _fsync_dir(directory: pathlib.Path) -> None:
    """Best-effort durability for the rename itself."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def read_entry(
    path: pathlib.Path,
    required_keys: Iterable[str] = (),
    stats: CacheStats | None = None,
) -> dict | None:
    """Load and validate one entry; ``None`` means recompute.

    Never raises on a bad entry: corruption is an expected state the
    sweep recovers from, and the reason is tallied in *stats*.
    """
    stats = stats if stats is not None else CacheStats()
    try:
        raw = _read_entry_text(path)
    except FileNotFoundError:
        stats.misses += 1
        _METRICS.inc("cellcache.misses")
        return None
    except OSError:
        stats._reject("unreadable")
        return None

    lines = raw.splitlines()
    payload: str | None = None
    if len(lines) >= 2 and lines[-1].startswith(_SEAL_PREFIX):
        body = "\n".join(lines[:-1])
        try:
            expected = int(lines[-1][len(_SEAL_PREFIX):], 16)
        except ValueError:
            stats._reject("torn")
            return None
        if bytes_crc(body.encode("utf-8")) != expected:
            stats._reject("seal-mismatch")
            return None
        payload = body
    elif len(lines) == 1:
        payload = lines[0]  # legacy sealless entry
    else:
        stats._reject("torn")
        return None

    try:
        obj = json.loads(payload)
    except ValueError:
        stats._reject("torn")
        return None
    if not isinstance(obj, dict):
        stats._reject("torn")
        return None
    if any(key not in obj for key in required_keys):
        stats._reject("missing-keys")
        return None
    stats.hits += 1
    _METRICS.inc("cellcache.hits")
    return obj
