"""Structured error taxonomy of the squash pipeline and runtime.

A squashed image that decodes a flipped bit into plausible-looking
instructions is worse than one that crashes: the paper's runtime
overwrites live code with whatever the Huffman decoder produces, so a
corrupt blob, offset table, or codec table must surface as a *typed*
error before anything executes.  Every failure the decompression path
can diagnose raises a subclass of :class:`SquashError`, carrying the
context a fault report needs: the region being decoded, the bit offset
in the compressed stream, and the blob fingerprint.

The taxonomy::

    SquashError
    ├── CorruptBlobError        (also ValueError) checksum/decode failures
    │   └── ImageFormatError    (repro.program.imagefile) malformed files
    ├── TruncatedStreamError    (also EOFError) consuming bits past EOF
    ├── CodecTableError         (also ValueError) bad serialized code tables
    ├── OffsetTableError        function offset table out of bounds/order
    ├── BufferOverrunError      decoded region exceeds its buffer area
    ├── StubAreaOverflow        restore-stub area exhausted
    ├── WatchdogExpired         VM watchdog budget exhausted (hang guard)
    ├── CellFailure             an experiment cell lost to crash/timeout
    ├── BreakerOpen             circuit breaker refused a cell class
    ├── StoreDegraded           artifact store unusable; recompute instead
    ├── SpecError               (also ValueError) malformed api spec/config
    ├── ServiceOverloaded       job service shed the submission (load)
    │   └── TenantQuotaExceeded one tenant over its store byte budget
    ├── JobExpired              job deadline passed; cancelled, not late
    ├── JobFailed               job reached a terminal failure state
    └── UnknownJob              (also KeyError) no such job id

``CorruptBlobError``/``CodecTableError`` double as :class:`ValueError`
and ``TruncatedStreamError`` as :class:`EOFError` so long-standing
callers (and the paper-verbatim decode loops) that catch the ad-hoc
built-ins keep working.

The last three classes belong to the *execution* path rather than the
*data* path: :class:`WatchdogExpired` is raised by the VM's hang guard
(:class:`~repro.vm.machine.Machine` with a watchdog budget), while
:class:`CellFailure` and :class:`BreakerOpen` are raised by the
:mod:`repro.resilience` supervision layer when a sweep cell is lost
after bounded retries or its class's circuit breaker is open.
"""

from __future__ import annotations

__all__ = [
    "SquashError",
    "CorruptBlobError",
    "TruncatedStreamError",
    "CodecTableError",
    "OffsetTableError",
    "BufferOverrunError",
    "StubAreaOverflow",
    "WatchdogExpired",
    "CellFailure",
    "BreakerOpen",
    "StoreDegraded",
    "SpecError",
    "ServiceOverloaded",
    "TenantQuotaExceeded",
    "JobExpired",
    "JobFailed",
    "UnknownJob",
]


class SquashError(Exception):
    """Base of every squash-specific failure.

    ``region``, ``bit_offset`` and ``fingerprint`` are optional context
    attached at the raise site (or later via :meth:`with_context` as the
    error propagates up through layers that know more).
    """

    def __init__(
        self,
        message: str = "",
        *,
        region: int | None = None,
        bit_offset: int | None = None,
        fingerprint: str | None = None,
    ):
        self.message = message
        self.region = region
        self.bit_offset = bit_offset
        self.fingerprint = fingerprint
        super().__init__(self._render())

    def _render(self) -> str:
        context = [
            f"{name}={value}"
            for name, value in (
                ("region", self.region),
                ("bit_offset", self.bit_offset),
                ("fingerprint", self.fingerprint),
            )
            if value is not None
        ]
        if not context:
            return self.message
        return f"{self.message} ({', '.join(context)})"

    def with_context(
        self,
        *,
        region: int | None = None,
        bit_offset: int | None = None,
        fingerprint: str | None = None,
    ) -> "SquashError":
        """Fill in missing context fields and return self (for
        ``raise exc.with_context(...)`` at an outer layer)."""
        if self.region is None:
            self.region = region
        if self.bit_offset is None:
            self.bit_offset = bit_offset
        if self.fingerprint is None:
            self.fingerprint = fingerprint
        self.args = (self._render(),)
        return self


class CorruptBlobError(SquashError, ValueError):
    """The compressed blob (or a checksummed area) failed validation:
    a CRC mismatch, an undecodable codeword, or a malformed file."""


class TruncatedStreamError(SquashError, EOFError):
    """A decode consumed bits past the end of the stream.

    Lookahead (``BitReader.peek_bits``) still zero-pads past EOF;
    *consuming* padded bits is what raises.
    """


class CodecTableError(SquashError, ValueError):
    """The serialized codec tables are malformed or fail their CRC.

    ``context`` names the offending context id when the failure is
    scoped to one context of a context-modeled stream — a per-context
    CRC mismatch, or a mapping entry routing to a context that does
    not exist.
    """

    def __init__(
        self, message: str = "", *, context: int | None = None, **kwargs
    ):
        self.context = context
        if context is not None and f"[context {context}]" not in message:
            message = f"{message} [context {context}]" if message else (
                f"codec table error [context {context}]"
            )
        super().__init__(message, **kwargs)


class OffsetTableError(SquashError):
    """The function offset table is out of bounds, non-monotonic, or
    disagrees with the descriptor/checksum."""


class BufferOverrunError(SquashError):
    """A decoded region does not fit its buffer area (wrong expanded
    size, or a base outside the runtime buffer)."""


class StubAreaOverflow(SquashError):
    """The reserved restore-stub area ran out of slots, and reclaiming
    zero-refcount stubs freed nothing."""


class WatchdogExpired(SquashError):
    """The VM's watchdog budget (steps plus runtime-service surcharge)
    ran out: a pathological image is spinning instead of finishing.

    Unlike :class:`~repro.vm.machine.FuelExhausted` — the caller-chosen
    per-run step limit — the watchdog is an environment-level hang
    guard (``REPRO_VM_WATCHDOG``) a sweep worker carries so no image
    can wedge it forever, and it is part of the typed taxonomy so
    supervisors classify it rather than time the worker out.
    """


class CellFailure(SquashError):
    """An experiment cell was lost after bounded retries.

    ``cell`` describes the (kind, name, scale, config) coordinates,
    ``attempts`` how many executions were tried, and ``reason`` the
    terminal failure kind (``timeout``, ``crash``, ``error``, or
    ``breaker-open``).  Exactly one cell is lost per failure; completed
    sibling cells stay persisted in the on-disk cache.
    """

    def __init__(
        self,
        message: str = "",
        *,
        cell: str | None = None,
        attempts: int = 0,
        reason: str = "",
        error_type: str = "",
        **kwargs,
    ):
        self.cell = cell
        self.attempts = attempts
        self.reason = reason
        self.error_type = error_type
        detail = []
        if cell:
            detail.append(f"cell {cell}")
        if reason:
            detail.append(f"reason {reason}")
        if attempts:
            detail.append(f"after {attempts} attempt(s)")
        if error_type:
            detail.append(f"last error {error_type}")
        if detail:
            message = f"{message} [{', '.join(detail)}]" if message else (
                ", ".join(detail)
            )
        super().__init__(message, **kwargs)


class BreakerOpen(SquashError):
    """The per-class circuit breaker is open: cells of this class have
    failed repeatedly and the supervisor refuses to resubmit them until
    the sweep ends (the cell is recorded, never silently dropped)."""

    def __init__(self, message: str = "", *, cls: str = "", **kwargs):
        self.cls = cls
        if cls and cls not in message:
            message = f"{message} [class {cls}]" if message else (
                f"breaker open for class {cls}"
            )
        super().__init__(message, **kwargs)


class StoreDegraded(SquashError):
    """The artifact store cannot serve this operation; recompute.

    Raised by :mod:`repro.store` when writes keep failing after bounded
    retries (dead or full disk), or when the store breaker is open and
    refusing to hammer it further.  ``reason`` carries the terminal
    failure kind (an errno name like ``enospc``/``eacces``, or
    ``breaker-open``).  The signal is *advisory*: callers catch it,
    skip the cache, and recompute — a degraded store slows a sweep
    down, it never fails one.
    """

    def __init__(self, message: str = "", *, reason: str = "", **kwargs):
        self.reason = reason
        if reason and reason not in message:
            message = f"{message} [reason {reason}]" if message else (
                f"store degraded: {reason}"
            )
        super().__init__(message, **kwargs)


class SpecError(SquashError, ValueError):
    """A facade spec or config carries a value the api cannot act on:
    an unknown benchmark name, a sweep kind outside ``size``/``time``,
    a non-positive step budget, malformed input words.  ``field`` names
    the offending spec field when one can be singled out."""

    def __init__(self, message: str = "", *, field: str = "", **kwargs):
        self.field = field
        if field and field not in message:
            message = f"{message} [field {field}]" if message else (
                f"invalid spec field {field}"
            )
        super().__init__(message, **kwargs)


class ServiceOverloaded(SquashError):
    """The job service refused this submission.

    Typed load shedding: the bounded admission queue is full, the
    tenant is over its cap, or the service is draining.  ``retry_after``
    is the service's estimate (seconds) of when a resubmission has a
    chance; clients back off instead of hammering.  An accepted job is
    never shed — shedding happens only at the admission door.
    """

    def __init__(
        self,
        message: str = "",
        *,
        reason: str = "",
        retry_after: float = 0.0,
        tenant: str = "",
        **kwargs,
    ):
        self.reason = reason
        self.retry_after = retry_after
        self.tenant = tenant
        detail = []
        if reason:
            detail.append(f"reason {reason}")
        if tenant:
            detail.append(f"tenant {tenant}")
        if retry_after:
            detail.append(f"retry after {retry_after:.2f}s")
        if detail:
            message = f"{message} [{', '.join(detail)}]" if message else (
                ", ".join(detail)
            )
        super().__init__(message, **kwargs)


class TenantQuotaExceeded(ServiceOverloaded):
    """One tenant is over its per-tenant store byte budget.

    A :class:`ServiceOverloaded` subclass because it is the same
    contract — typed admission shedding with a retry hint — scoped to
    one tenant instead of the whole service: the engine sheds the
    hog's submissions (``REPRO_TENANT_QUOTA_BYTES``) and the store
    refuses the hog's writes once tenant-scoped eviction cannot free
    enough of *its own* refs.  Other tenants are untouched; their
    working set is never evicted to make room for the hog.
    """

    def __init__(
        self,
        message: str = "",
        *,
        usage_bytes: int = 0,
        quota_bytes: int = 0,
        **kwargs,
    ):
        self.usage_bytes = usage_bytes
        self.quota_bytes = quota_bytes
        kwargs.setdefault("reason", "tenant-quota")
        if quota_bytes and f"{usage_bytes}/" not in message:
            detail = f"usage {usage_bytes}/{quota_bytes} bytes"
            message = f"{message} [{detail}]" if message else detail
        super().__init__(message, **kwargs)


class JobExpired(SquashError):
    """The job's deadline passed before it could finish.

    Deadlines propagate: a queued job whose deadline lapses is never
    started, and a running job whose work outlives the deadline has its
    result discarded — expired jobs are *cancelled*, not completed
    late.  Supervisor cells under an expiring job observe the
    tightened ``cell_deadline``.
    """

    def __init__(
        self,
        message: str = "",
        *,
        job_id: str = "",
        deadline: float | None = None,
        **kwargs,
    ):
        self.job_id = job_id
        self.deadline = deadline
        detail = []
        if job_id:
            detail.append(f"job {job_id}")
        if deadline is not None:
            detail.append(f"deadline {deadline:.2f}s")
        if detail:
            message = f"{message} [{', '.join(detail)}]" if message else (
                ", ".join(detail)
            )
        super().__init__(message, **kwargs)


class JobFailed(SquashError):
    """The job executed and failed terminally; ``error_type`` and the
    message carry the underlying failure for the submitting client."""

    def __init__(
        self,
        message: str = "",
        *,
        job_id: str = "",
        error_type: str = "",
        **kwargs,
    ):
        self.job_id = job_id
        self.error_type = error_type
        detail = []
        if job_id:
            detail.append(f"job {job_id}")
        if error_type:
            detail.append(f"error {error_type}")
        if detail:
            message = f"{message} [{', '.join(detail)}]" if message else (
                ", ".join(detail)
            )
        super().__init__(message, **kwargs)


class UnknownJob(SquashError, KeyError):
    """No job with this id exists in the engine or its journal."""

    def __init__(self, message: str = "", *, job_id: str = "", **kwargs):
        self.job_id = job_id
        if job_id and job_id not in message:
            message = f"{message} [job {job_id}]" if message else (
                f"unknown job {job_id}"
            )
        super().__init__(message, **kwargs)
