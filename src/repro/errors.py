"""Structured error taxonomy of the squash pipeline and runtime.

A squashed image that decodes a flipped bit into plausible-looking
instructions is worse than one that crashes: the paper's runtime
overwrites live code with whatever the Huffman decoder produces, so a
corrupt blob, offset table, or codec table must surface as a *typed*
error before anything executes.  Every failure the decompression path
can diagnose raises a subclass of :class:`SquashError`, carrying the
context a fault report needs: the region being decoded, the bit offset
in the compressed stream, and the blob fingerprint.

The taxonomy::

    SquashError
    ├── CorruptBlobError        (also ValueError) checksum/decode failures
    │   └── ImageFormatError    (repro.program.imagefile) malformed files
    ├── TruncatedStreamError    (also EOFError) consuming bits past EOF
    ├── CodecTableError         (also ValueError) bad serialized code tables
    ├── OffsetTableError        function offset table out of bounds/order
    ├── BufferOverrunError      decoded region exceeds its buffer area
    └── StubAreaOverflow        restore-stub area exhausted

``CorruptBlobError``/``CodecTableError`` double as :class:`ValueError`
and ``TruncatedStreamError`` as :class:`EOFError` so long-standing
callers (and the paper-verbatim decode loops) that catch the ad-hoc
built-ins keep working.
"""

from __future__ import annotations

__all__ = [
    "SquashError",
    "CorruptBlobError",
    "TruncatedStreamError",
    "CodecTableError",
    "OffsetTableError",
    "BufferOverrunError",
    "StubAreaOverflow",
]


class SquashError(Exception):
    """Base of every squash-specific failure.

    ``region``, ``bit_offset`` and ``fingerprint`` are optional context
    attached at the raise site (or later via :meth:`with_context` as the
    error propagates up through layers that know more).
    """

    def __init__(
        self,
        message: str = "",
        *,
        region: int | None = None,
        bit_offset: int | None = None,
        fingerprint: str | None = None,
    ):
        self.message = message
        self.region = region
        self.bit_offset = bit_offset
        self.fingerprint = fingerprint
        super().__init__(self._render())

    def _render(self) -> str:
        context = [
            f"{name}={value}"
            for name, value in (
                ("region", self.region),
                ("bit_offset", self.bit_offset),
                ("fingerprint", self.fingerprint),
            )
            if value is not None
        ]
        if not context:
            return self.message
        return f"{self.message} ({', '.join(context)})"

    def with_context(
        self,
        *,
        region: int | None = None,
        bit_offset: int | None = None,
        fingerprint: str | None = None,
    ) -> "SquashError":
        """Fill in missing context fields and return self (for
        ``raise exc.with_context(...)`` at an outer layer)."""
        if self.region is None:
            self.region = region
        if self.bit_offset is None:
            self.bit_offset = bit_offset
        if self.fingerprint is None:
            self.fingerprint = fingerprint
        self.args = (self._render(),)
        return self


class CorruptBlobError(SquashError, ValueError):
    """The compressed blob (or a checksummed area) failed validation:
    a CRC mismatch, an undecodable codeword, or a malformed file."""


class TruncatedStreamError(SquashError, EOFError):
    """A decode consumed bits past the end of the stream.

    Lookahead (``BitReader.peek_bits``) still zero-pads past EOF;
    *consuming* padded bits is what raises.
    """


class CodecTableError(SquashError, ValueError):
    """The serialized codec tables are malformed or fail their CRC."""


class OffsetTableError(SquashError):
    """The function offset table is out of bounds, non-monotonic, or
    disagrees with the descriptor/checksum."""


class BufferOverrunError(SquashError):
    """A decoded region does not fit its buffer area (wrong expanded
    size, or a base outside the runtime buffer)."""


class StubAreaOverflow(SquashError):
    """The reserved restore-stub area ran out of slots, and reclaiming
    zero-refcount stubs freed nothing."""
