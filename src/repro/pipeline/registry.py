"""Plugin registries: named strategy points of the squash pipeline.

A :class:`Registry` is a typed name -> plugin table with decorator
registration.  Every point where the pipeline used to branch on a
string or an enum — region-formation strategy, squeeze pass, codec
variant, buffer strategy, restore scheme — is now a registry the
respective layer populates at import time, so an alternative backend
is added by registering a plugin rather than by editing a dispatch
site:

* :data:`repro.core.plan.REGION_STRATEGIES` — ``dfs`` /
  ``whole_function`` region formation (Section 4 / Section 9).
* :data:`repro.core.classify.BUFFER_STRATEGIES` and
  :data:`repro.core.classify.RESTORE_SCHEMES` — call-site
  classification policies (Sections 2.2, 6).
* :data:`repro.squeeze.pipeline.SQUEEZE_PASSES` — compaction passes,
  with pass order/rounds as data.
* :data:`repro.compress.codec.CODEC_VARIANTS` — named
  :class:`~repro.compress.codec.CodecConfig` presets
  (``huffman`` / ``mtf+huffman`` / ``dict``).

This module is deliberately dependency-free so any layer can import it
without cycles.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")

__all__ = ["Registry", "RegistryError"]


class RegistryError(ValueError, KeyError):
    """An unknown or duplicate plugin name.

    Subclasses both ``ValueError`` and ``KeyError``: unknown-name
    lookups historically raised either, depending on the dispatch
    site.
    """


class Registry(Generic[T]):
    """A small name -> plugin table with decorator registration."""

    def __init__(self, kind: str) -> None:
        #: Human-readable description used in error messages.
        self.kind = kind
        self._entries: dict[str, T] = {}

    def register(
        self, name: str, obj: T | None = None
    ) -> T | Callable[[T], T]:
        """Register *obj* under *name*; usable as a decorator::

            @REGION_STRATEGIES.register("dfs")
            def form_regions(...): ...
        """
        if obj is None:
            def decorator(value: T) -> T:
                self.register(name, value)
                return value

            return decorator
        if name in self._entries:
            raise RegistryError(
                f"duplicate {self.kind} plugin {name!r}"
            )
        self._entries[name] = obj
        return obj

    def get(self, name: str) -> T:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise RegistryError(
                f"unknown {self.kind} {name!r}; registered: {known}"
            ) from None

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._entries))

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)
