"""Typed, fingerprinted intermediate artifacts of the squash pipeline.

The staged pipeline (Sections 2-6 of the paper) flows::

    Program --squeeze--> SqueezedProgram --profile--> ProfileArtifact
            --cold--> ColdSet --plan--> RegionPlan
            --classify--> ClassifiedSites --layout--> Layout
            --emit--> EmittedImage

Every artifact can report a **content fingerprint**: a SHA-256 over a
canonical serialisation of the data that determines everything
downstream.  Two artifacts with equal fingerprints are
interchangeable, which is what lets the sweep harness reuse the
θ-invariant prefix (squeeze output, profile, baseline layout) across
sweep cells through the on-disk cache.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # import-light: artifacts are used across layers
    from repro.program.program import Program
    from repro.vm.profiler import Profile

__all__ = [
    "canonical",
    "stable_digest",
    "program_fingerprint",
    "profile_fingerprint",
    "config_fingerprint",
]


def canonical(value: Any) -> Any:
    """A JSON-stable form of configs and stats (dataclasses, enums,
    sets, tuples) — shared by fingerprints and the sweep cell cache."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (frozenset, set)):
        return sorted(canonical(item) for item in value)
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): canonical(val) for key, val in value.items()}
    return value


def stable_digest(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of *value*."""
    payload = json.dumps(canonical(value), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def program_fingerprint(program: "Program") -> str:
    """Content fingerprint of a program IR.

    Covers everything squash consumes: function/block order,
    instruction words, symbolic control flow, relocations, data, the
    entry point, and the address-taken set.
    """
    from repro.program.serialize import program_to_dict

    return stable_digest(program_to_dict(program))


def profile_fingerprint(profile: "Profile") -> str:
    """Content fingerprint of an execution profile."""
    return stable_digest(
        {
            "counts": profile.counts,
            "sizes": profile.sizes,
            "tot_instr_ct": profile.tot_instr_ct,
        }
    )


def config_fingerprint(config: Any) -> str:
    """Content fingerprint of a (dataclass) configuration."""
    return stable_digest(config)


@dataclass
class SqueezedProgram:
    """Squeeze output: the compacted program plus pass statistics."""

    program: "Program"
    stats: Any = None
    _fingerprint: str | None = field(default=None, repr=False)

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = program_fingerprint(self.program)
        return self._fingerprint


@dataclass
class ProfileArtifact:
    """An execution profile tied to the program it was collected on."""

    profile: "Profile"
    _fingerprint: str | None = field(default=None, repr=False)

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = profile_fingerprint(self.profile)
        return self._fingerprint


@dataclass
class ColdSet:
    """Cold blocks at one θ (Section 5) plus the quantities behind
    the cut."""

    cold: set[str]
    cutoff: int
    cold_weight: int
    budget: float
    theta: float

    @property
    def fingerprint(self) -> str:
        return stable_digest(
            {"cold": sorted(self.cold), "theta": self.theta}
        )


@dataclass
class RegionPlan:
    """Region formation output (Section 4): the working program copy
    (unswitching may have rewritten it), the compressible set, and the
    packed regions."""

    program: "Program"
    cold: set[str]
    excluded: set[str]
    compressible: set[str]
    regions: list  # list[repro.core.regions.Region]
    region_of: dict[str, int]
    ctx: Any  # repro.core.regions.RegionContext
    data_ref_labels: set[str]
    unswitch: Any  # repro.core.unswitch.UnswitchResult

    @property
    def fingerprint(self) -> str:
        return stable_digest(
            {
                "regions": [list(r.blocks) for r in self.regions],
                "excluded": sorted(self.excluded),
            }
        )


@dataclass
class ClassifiedSites:
    """Per-region call-site classification (Section 2 / Figure 2)."""

    plans: list  # list[repro.core.classify.RegionSitePlan]
    safe_functions: set[str]
    all_indirect_safe: bool

    @property
    def fingerprint(self) -> str:
        return stable_digest(
            {
                "safe": sorted(self.safe_functions),
                "categories": [
                    sorted(
                        (label, index, category)
                        for (label, index), category
                        in plan.categories.items()
                    )
                    for plan in self.plans
                ],
            }
        )


@dataclass
class Layout:
    """Final segment layout: every area and stub address."""

    segments: Any  # repro.core.layout.SegmentLayout

    @property
    def fingerprint(self) -> str:
        seg = self.segments
        return stable_digest(
            {
                "text_words": seg.text_words,
                "entry_stub_base": seg.entry_stub_base,
                "decomp_base": seg.decomp_base,
                "offset_table_addr": seg.offset_table_addr,
                "stub_area_base": seg.stub_area_base,
                "buffer_base": seg.buffer_base,
                "data_base": seg.data_base,
                "compressed_base": seg.compressed_base,
            }
        )


@dataclass
class EmittedImage:
    """The squashed executable: image, runtime descriptor, and the
    rewrite measurements accumulated across the stages."""

    image: Any  # repro.program.image.LoadedImage
    descriptor: Any  # repro.core.descriptor.SquashDescriptor
    info: Any  # repro.core.plan.RewriteInfo

    @property
    def fingerprint(self) -> str:
        words = hashlib.sha256()
        for word in self.image.memory:
            words.update((word & 0xFFFFFFFF).to_bytes(4, "little"))
        return words.hexdigest()
