"""Staged pipeline infrastructure: pass manager, typed artifacts,
plugin registries.

The squash system is naturally staged — squeeze → profile → cold-code
(Section 5) → region formation/packing (Section 4) →
classification/stub emission (Section 2) → coding (Section 3) — and
this package makes that structure explicit:

* :mod:`repro.pipeline.manager` — the :class:`Stage` DAG node,
  :class:`PassManager` executor, and per-stage
  :class:`StageReport` instrumentation.
* :mod:`repro.pipeline.artifacts` — typed, content-fingerprinted
  intermediate artifacts (``SqueezedProgram`` → ``ProfileArtifact`` →
  ``ColdSet`` → ``RegionPlan`` → ``ClassifiedSites`` → ``Layout`` →
  ``EmittedImage``).
* :mod:`repro.pipeline.registry` — the generic plugin
  :class:`Registry` behind region strategies, squeeze passes, codec
  variants, buffer strategies, and restore schemes.
* :mod:`repro.pipeline.stages` — the squash stage definitions wiring
  :mod:`repro.core` into the manager.

Exports resolve lazily to keep import edges one-directional: the core
layers import only :mod:`repro.pipeline.registry` /
:mod:`repro.pipeline.manager`, while :mod:`repro.pipeline.stages`
imports the core layers.
"""

_EXPORTS = {
    "ArtifactStore": ("repro.pipeline.manager", "ArtifactStore"),
    "PassManager": ("repro.pipeline.manager", "PassManager"),
    "PipelineError": ("repro.pipeline.manager", "PipelineError"),
    "Stage": ("repro.pipeline.manager", "Stage"),
    "StageContext": ("repro.pipeline.manager", "StageContext"),
    "StageReport": ("repro.pipeline.manager", "StageReport"),
    "StageTiming": ("repro.pipeline.manager", "StageTiming"),
    "Registry": ("repro.pipeline.registry", "Registry"),
    "RegistryError": ("repro.pipeline.registry", "RegistryError"),
    "canonical": ("repro.pipeline.artifacts", "canonical"),
    "stable_digest": ("repro.pipeline.artifacts", "stable_digest"),
    "program_fingerprint": (
        "repro.pipeline.artifacts",
        "program_fingerprint",
    ),
    "profile_fingerprint": (
        "repro.pipeline.artifacts",
        "profile_fingerprint",
    ),
    "squash_stages": ("repro.pipeline.stages", "squash_stages"),
    "run_squash_pipeline": (
        "repro.pipeline.stages",
        "run_squash_pipeline",
    ),
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name, attr = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.pipeline' has no attribute {name!r}"
        ) from None
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, attr)
    globals()[name] = value
    return value
