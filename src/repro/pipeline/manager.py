"""The pass manager: an explicit DAG of stages over typed artifacts.

A :class:`Stage` declares what artifact it *provides*, which artifacts
it *requires*, and a function that computes the artifact from them.
:class:`PassManager` resolves the declared dependencies into a
topological order, runs each stage once, stores every artifact in a
:class:`ArtifactStore` keyed by artifact name, and collects wall-time
and stage counters into a :class:`StageReport`.

Artifacts already present in the store before the run (e.g. a squeeze
output reused from a previous sweep cell) satisfy dependencies without
executing their producing stage — that stage is recorded as ``reused``
in the report, which is how the incremental sweep harness proves that
θ-invariant work ran once per benchmark.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer

__all__ = [
    "ArtifactStore",
    "PassManager",
    "PipelineError",
    "Stage",
    "StageContext",
    "StageReport",
    "StageTiming",
]


class PipelineError(Exception):
    """A malformed stage DAG (cycle, missing or duplicate provider)."""


@dataclass(frozen=True)
class Stage:
    """One node of the pipeline DAG.

    ``fn`` is called as ``fn(ctx, **artifacts)`` where *ctx* is a
    :class:`StageContext` and *artifacts* maps each required artifact
    name to its stored value; the return value becomes the ``provides``
    artifact.
    """

    name: str
    provides: str
    fn: Callable[..., Any]
    requires: tuple[str, ...] = ()


@dataclass
class StageContext:
    """Handed to every stage; carries counters back to the report."""

    stage: str
    counters: dict[str, int] = field(default_factory=dict)

    def count(self, key: str, amount: int = 1) -> None:
        """Bump a named stage counter (shown in the stage report)."""
        self.counters[key] = self.counters.get(key, 0) + amount


@dataclass
class StageTiming:
    """One stage's contribution to a :class:`StageReport`."""

    name: str
    provides: str
    seconds: float = 0.0
    #: True when the artifact was already in the store and the stage
    #: body never ran.
    reused: bool = False
    counters: dict[str, int] = field(default_factory=dict)


@dataclass
class StageReport:
    """Per-stage instrumentation for one pipeline run."""

    stages: list[StageTiming] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(stage.seconds for stage in self.stages)

    def timing(self, name: str) -> StageTiming:
        for stage in self.stages:
            if stage.name == name:
                return stage
        raise KeyError(name)

    def executed(self) -> list[str]:
        """Names of the stages whose bodies actually ran."""
        return [s.name for s in self.stages if not s.reused]

    def counter(self, stage: str, key: str, default: int = 0) -> int:
        return self.timing(stage).counters.get(key, default)

    def merged_counters(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for stage in self.stages:
            for key, value in stage.counters.items():
                merged[f"{stage.name}.{key}"] = value
        return merged

    def render(self) -> str:
        """An aligned, human-readable per-stage table."""
        rows = [("stage", "artifact", "seconds", "counters")]
        for stage in self.stages:
            counters = ", ".join(
                f"{k}={v}" for k, v in sorted(stage.counters.items())
            )
            seconds = "reused" if stage.reused else f"{stage.seconds:.4f}"
            rows.append((stage.name, stage.provides, seconds, counters))
        rows.append(
            ("total", "", f"{self.total_seconds:.4f}", "")
        )
        widths = [
            max(len(row[col]) for row in rows) for col in range(3)
        ]
        lines = []
        for index, row in enumerate(rows):
            line = "  ".join(
                [row[col].ljust(widths[col]) for col in range(3)]
                + ([row[3]] if row[3] else [])
            ).rstrip()
            lines.append(line)
            if index == 0:
                lines.append("-" * max(len(l) for l in lines))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "total_seconds": self.total_seconds,
            "stages": [
                {
                    "name": s.name,
                    "provides": s.provides,
                    "seconds": s.seconds,
                    "reused": s.reused,
                    "counters": dict(s.counters),
                }
                for s in self.stages
            ],
        }


class ArtifactStore(dict):
    """Artifacts by name.  A plain dict with a clearer error."""

    def __missing__(self, key: str):
        raise PipelineError(
            f"artifact {key!r} was never produced; "
            f"available: {', '.join(sorted(self)) or '<none>'}"
        )


class PassManager:
    """Runs a stage DAG in dependency order with instrumentation."""

    def __init__(self, stages: list[Stage] | tuple[Stage, ...]) -> None:
        self.stages = list(stages)
        providers: dict[str, Stage] = {}
        for stage in self.stages:
            if stage.provides in providers:
                raise PipelineError(
                    f"artifact {stage.provides!r} has two providers: "
                    f"{providers[stage.provides].name!r} and "
                    f"{stage.name!r}"
                )
            providers[stage.provides] = stage
        self._providers = providers

    def order(self, preloaded: set[str] = frozenset()) -> list[Stage]:
        """Topological execution order (Kahn), stable in declaration
        order among ready stages.  *preloaded* artifact names satisfy
        dependencies without a provider."""
        satisfied = set(preloaded)
        remaining = list(self.stages)
        ordered: list[Stage] = []
        while remaining:
            # A stage is ready when every requirement is preloaded or
            # produced by an already-ordered stage.
            ready = [
                stage
                for stage in remaining
                if all(req in satisfied for req in stage.requires)
            ]
            if not ready:
                missing = {
                    req
                    for stage in remaining
                    for req in stage.requires
                    if req not in satisfied and req not in self._providers
                }
                if missing:
                    raise PipelineError(
                        "unsatisfiable stage requirements: "
                        + ", ".join(sorted(missing))
                    )
                raise PipelineError(
                    "stage cycle among: "
                    + ", ".join(sorted(s.name for s in remaining))
                )
            for stage in ready:
                ordered.append(stage)
                satisfied.add(stage.provides)
                remaining.remove(stage)
        return ordered

    def run(
        self,
        store: ArtifactStore | dict | None = None,
        report: StageReport | None = None,
    ) -> tuple[ArtifactStore, StageReport]:
        """Execute every stage whose artifact is not already in *store*.

        Returns the (possibly pre-seeded) store and the stage report.
        """
        artifacts = (
            store
            if isinstance(store, ArtifactStore)
            else ArtifactStore(store or {})
        )
        report = report if report is not None else StageReport()
        tracer = get_tracer()
        metrics = get_registry()
        for stage in self.order(preloaded=set(artifacts)):
            if stage.provides in artifacts:
                report.stages.append(
                    StageTiming(
                        name=stage.name,
                        provides=stage.provides,
                        reused=True,
                    )
                )
                metrics.inc(f"pipeline.stage.{stage.name}.reused")
                continue
            ctx = StageContext(stage=stage.name)
            inputs = {req: artifacts[req] for req in stage.requires}
            start = time.perf_counter()
            with tracer.span(
                f"stage.{stage.name}", "pipeline", provides=stage.provides
            ):
                artifacts[stage.provides] = stage.fn(ctx, **inputs)
            elapsed = time.perf_counter() - start
            report.stages.append(
                StageTiming(
                    name=stage.name,
                    provides=stage.provides,
                    seconds=elapsed,
                    counters=ctx.counters,
                )
            )
            metrics.inc(f"pipeline.stage.{stage.name}.executed")
            metrics.observe(f"pipeline.stage.{stage.name}.seconds", elapsed)
            for key, value in ctx.counters.items():
                metrics.inc(f"pipeline.stage.{stage.name}.{key}", value)
        return artifacts, report
