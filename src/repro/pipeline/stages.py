"""The squash stage DAG: cold → plan → classify → layout → encode →
emit, run by the :class:`~repro.pipeline.manager.PassManager`.

Upstream of these, the experiment harness has three θ-invariant
stages — squeeze, profile collection, baseline layout — whose
artifacts the sweep cache reuses; :func:`benchmark_stages` declares
them on the same manager so their timings land in the same report.
"""

from __future__ import annotations

from typing import Callable

from repro.core.classify import classify_sites
from repro.core.coldcode import identify_cold_blocks
from repro.core.emit import build_blob, emit_image
from repro.core.layout import build_layout
from repro.core.plan import RewriteInfo, plan_regions
from repro.pipeline.artifacts import ColdSet, EmittedImage
from repro.pipeline.manager import (
    ArtifactStore,
    PassManager,
    Stage,
    StageReport,
)
from repro.program.program import Program
from repro.vm.profiler import Profile

__all__ = ["squash_stages", "run_squash_pipeline", "benchmark_stages"]


def squash_stages(config) -> list[Stage]:
    """The rewriter's stages for one configuration.

    Preloaded artifacts: ``program`` (the squeezed program) and
    ``profile``; ``info`` (a :class:`RewriteInfo`) is seeded by the
    runner and accumulates measurements across stages.
    """

    def cold_stage(ctx, program: Program, profile: Profile) -> ColdSet:
        result = identify_cold_blocks(profile, config.theta)
        ctx.count("cold_blocks", len(result.cold))
        return ColdSet(
            cold=set(result.cold),
            cutoff=result.cutoff,
            cold_weight=result.cold_weight,
            budget=result.budget,
            theta=config.theta,
        )

    def plan_stage(ctx, program: Program, profile: Profile,
                   cold: ColdSet, info: RewriteInfo):
        prog = program.copy()
        prof = Profile(
            counts=dict(profile.counts),
            sizes=dict(profile.sizes),
            tot_instr_ct=profile.tot_instr_ct,
        )
        result = plan_regions(prog, prof, config, info, cold=cold.cold)
        ctx.count("regions", len(result.regions))
        ctx.count("compressible_blocks", len(result.compressible))
        ctx.count("excluded_blocks", len(result.excluded))
        return result

    def classify_stage(ctx, plan, info: RewriteInfo):
        classified = classify_sites(plan, config, info)
        ctx.count("site_plans", len(classified.plans))
        ctx.count("safe_functions", len(classified.safe_functions))
        ctx.count("xcall_sites", info.xcall_sites)
        return classified

    def layout_stage(ctx, plan, classify, info: RewriteInfo):
        layout = build_layout(plan, classify, config)
        info.entry_stub_count = len(layout.entry_stubs)
        info.never_compressed_words = layout.text_words
        ctx.count("entry_stubs", len(layout.entry_stubs))
        ctx.count("text_words", layout.text_words)
        ctx.count("buffer_words", layout.buffer_words)
        return layout

    def encode_stage(ctx, plan, classify, layout, info: RewriteInfo):
        codec_config = (
            config.effective_codec()
            if hasattr(config, "effective_codec")
            else config.codec
        )
        blob = build_blob(
            classify.plans,
            plan.program,
            layout,
            plan.ctx.entries,
            plan.region_of,
            codec_config,
        )
        info.blob = blob
        ctx.count("codec_contexts", len(blob.context_spans))
        ctx.count(
            "codec_conditioned_streams",
            len({span[0] for span in blob.context_spans if span[1] > 0}),
        )
        info.compressed_original_instrs = sum(
            p.original_instrs for p in classify.plans
        )
        info.jump_table_words = sum(
            obj.size
            for obj in plan.program.data.values()
            if obj.is_jump_table
        )
        ctx.count("compressed_words", blob.total_words)
        ctx.count("original_instrs", info.compressed_original_instrs)
        return blob

    def emit_stage(ctx, plan, classify, layout, blob,
                   info: RewriteInfo) -> EmittedImage:
        image, descriptor = emit_image(
            plan.program, layout, classify.plans, blob, config
        )
        ctx.count("image_words", len(image.memory))
        return EmittedImage(image=image, descriptor=descriptor, info=info)

    return [
        Stage("cold", "cold", cold_stage, requires=("program", "profile")),
        Stage(
            "plan", "plan", plan_stage,
            requires=("program", "profile", "cold", "info"),
        ),
        Stage(
            "classify", "classify", classify_stage,
            requires=("plan", "info"),
        ),
        Stage(
            "layout", "layout", layout_stage,
            requires=("plan", "classify", "info"),
        ),
        Stage(
            "encode", "blob", encode_stage,
            requires=("plan", "classify", "layout", "info"),
        ),
        Stage(
            "emit", "emitted", emit_stage,
            requires=("plan", "classify", "layout", "blob", "info"),
        ),
    ]


def run_squash_pipeline(
    program: Program,
    profile: Profile,
    config,
) -> tuple[EmittedImage, StageReport, ArtifactStore]:
    """Run the full rewriter DAG; the staged ``rewrite()``."""
    manager = PassManager(squash_stages(config))
    store = ArtifactStore(
        {"program": program, "profile": profile, "info": RewriteInfo()}
    )
    store, report = manager.run(store)
    return store["emitted"], report, store


def benchmark_stages(
    squeeze_fn: Callable,
    profile_fn: Callable,
    baseline_fn: Callable,
) -> list[Stage]:
    """The θ-invariant benchmark prefix as manager stages.

    ``squeeze_fn(ctx) -> SqueezedProgram``-like artifact,
    ``profile_fn(ctx, squeezed)``, ``baseline_fn(ctx, squeezed)``.
    The sweep cache preloads these artifacts on a hit, which the
    report then shows as ``reused``.
    """
    return [
        Stage("squeeze", "squeezed", squeeze_fn),
        Stage(
            "profile", "profile", profile_fn, requires=("squeezed",)
        ),
        Stage(
            "baseline_layout", "baseline", baseline_fn,
            requires=("squeezed",),
        ),
    ]
