"""Typed runtime settings: every ``REPRO_*`` knob, resolved in one place.

The harness grew roughly a dozen ad-hoc ``os.environ`` reads — worker
counts, retry budgets, cache toggles, watchdog budgets — each with its
own parsing and fallback rules, scattered across the modules that
consumed them.  This module declares them all as one frozen
:class:`Settings` dataclass and resolves them in exactly one place,
with a fixed precedence:

1. **installed overrides** — partial settings pushed by
   :func:`use_settings` (an explicit config object always wins);
2. **environment variables** — every knob keeps its ``REPRO_*``
   spelling as an override channel, with the historical parsing rules
   (``0``/``no``/``off``/empty are false; malformed numerics fall back
   silently rather than crash);
3. **declared defaults** — the field defaults below.

Call :func:`current` for the resolved snapshot.  Resolution re-reads
the environment on every call, so tests that ``monkeypatch.setenv`` a
knob keep working unchanged; an installed override shadows the
environment for the duration of its ``with`` block only.

Raw ``os.environ[`` access outside this module is flagged by lint
(``ruff`` TID251); everything else calls :func:`current` and reads a
typed field.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Iterator

__all__ = [
    "DECODE_BACKENDS",
    "ENV_KNOBS",
    "Settings",
    "current",
    "effective_bench_workers",
    "from_env",
    "use_settings",
]

#: Safety clamp on the worker-count default: a huge ``os.cpu_count()``
#: (think CI runners reporting container limits wrong) must not fork a
#: process storm.
MAX_DEFAULT_WORKERS = 64

#: Spellings treated as false by every boolean knob (historical rule).
_FALSY = ("0", "", "no", "off")


def _parse_bool(raw: str) -> bool:
    return raw.lower() not in _FALSY


#: Spellings accepted by strict boolean knobs (new knobs only; the
#: historical ones keep the permissive anything-not-falsy rule).
_TRUTHY_STRICT = ("1", "yes", "on", "true")
_FALSY_STRICT = _FALSY + ("false",)


def _parse_strict_bool(raw: str) -> bool:
    value = raw.lower()
    if value in _TRUTHY_STRICT:
        return True
    if value in _FALSY_STRICT:
        return False
    raise ValueError(f"not a boolean: {raw!r}")


def _parse_int(raw: str) -> int:
    return int(raw)


def _parse_float(raw: str) -> float:
    return float(raw)


def _parse_retries(raw: str) -> int:
    return max(1, int(raw))


def _parse_backoff(raw: str) -> float:
    return max(0.0, float(raw))


def _parse_workers(raw: str) -> int:
    return max(1, int(raw))


def _parse_deadline(raw: str) -> float | None:
    value = float(raw)
    return value if value > 0 else None


def _parse_watchdog(raw: str) -> int:
    return max(0, int(raw))


def _parse_str(raw: str) -> str:
    return raw


def _parse_nonneg_int(raw: str) -> int:
    return max(0, int(raw))


def _parse_quota(raw: str) -> int | None:
    value = int(raw)
    if value < 0:
        raise ValueError(f"negative quota: {raw!r}")
    return value if value > 0 else None


#: Decode backend names accepted by ``REPRO_DECODE_BACKEND``.  The
#: empty string means "derive from the legacy ``fast_decode`` flag"
#: (True -> table, False -> reference) so existing configurations keep
#: their behaviour.
DECODE_BACKENDS = ("", "reference", "table", "vector")


def _parse_backend(raw: str) -> str:
    value = raw.lower()
    if value not in DECODE_BACKENDS:
        raise ValueError(f"unknown decode backend {raw!r}")
    return value


@dataclass(frozen=True)
class Settings:
    """Every environment-tunable knob of the repro harness.

    Field defaults are the documented behaviour with a clean
    environment; the ``REPRO_*`` variable named next to each field
    overrides it (see :data:`ENV_KNOBS` for the parsing rule).
    """

    # -- sweep harness ------------------------------------------------------
    #: Worker pool size for parallel sweeps (``REPRO_BENCH_WORKERS``;
    #: None: the CPU count).
    bench_workers: int | None = None
    #: Route figure sweeps through the parallel cached harness
    #: (``REPRO_BENCH_PARALLEL``).
    bench_parallel: bool = False
    #: Program scale for the benchmark suite (``REPRO_BENCH_SCALE``).
    bench_scale: float = 0.5
    #: On-disk cell/stage cache root (``REPRO_CACHE_DIR``; None:
    #: ``.repro-cache`` under the working directory).
    cache_dir: str | None = None
    #: Reuse θ-invariant stage bundles across sweep cells
    #: (``REPRO_STAGE_REUSE``).
    stage_reuse: bool = True

    # -- resilience ---------------------------------------------------------
    #: Bounded retry attempts per sweep cell (``REPRO_CELL_RETRIES``).
    cell_retries: int = 3
    #: Base backoff delay between retries, seconds
    #: (``REPRO_CELL_BACKOFF``).
    cell_backoff: float = 0.1
    #: Per-cell wall-clock deadline, seconds (``REPRO_CELL_DEADLINE``;
    #: None or 0 disables).
    cell_deadline: float | None = None
    #: Per-benchmark circuit-breaker threshold
    #: (``REPRO_BREAKER_THRESHOLD``; 0 disables).
    breaker_threshold: int = 8

    # -- VM / runtime -------------------------------------------------------
    #: VM hang-guard budget in steps (``REPRO_VM_WATCHDOG``; 0
    #: disables).
    vm_watchdog: int = 0
    #: Cross-runtime region decode cache (``REPRO_REGION_CACHE``).
    region_cache: bool = True
    #: Table-driven canonical Huffman decode path
    #: (``REPRO_FAST_DECODE``).
    fast_decode: bool = True
    #: Region decode backend (``REPRO_DECODE_BACKEND``): ``reference``,
    #: ``table``, ``vector``, or "" to derive from ``fast_decode``.
    decode_backend: str = ""
    #: Codec variant name from the codec registry
    #: (``REPRO_CODEC_VARIANT``; "" keeps the config's own codec, and
    #: unknown names warn once and fall back to ``baseline`` at the
    #: resolution site).
    codec_variant: str = ""
    #: Keep supervised worker pools alive across sweeps
    #: (``REPRO_POOL_PERSIST``), so codec tables and stage bundles are
    #: built once per host instead of once per run.
    pool_persist: bool = True

    # -- artifact store -----------------------------------------------------
    #: Total on-disk budget for the unified artifact store, bytes
    #: (``REPRO_STORE_QUOTA_BYTES``; None/0 disables quota
    #: enforcement entirely — no lock, no eviction).
    store_quota_bytes: int | None = None
    #: Eviction policy name from the store policy registry
    #: (``REPRO_STORE_POLICY``; unknown names fall back to LRU with a
    #: warning at the eviction site).
    store_policy: str = "lru"
    #: Retry attempts for transient store write failures
    #: (``REPRO_STORE_RETRIES``; 0 disables retrying).
    store_retries: int = 2
    #: Base backoff between store write retries, seconds
    #: (``REPRO_STORE_BACKOFF``).
    store_backoff: float = 0.05
    #: Consecutive store failures that open the degradation breaker
    #: (``REPRO_STORE_BREAKER_THRESHOLD``; 0 disables the breaker).
    store_breaker_threshold: int = 5
    #: Seconds the open breaker short-circuits store operations before
    #: probing the disk again (``REPRO_STORE_BREAKER_COOLDOWN``).
    store_breaker_cooldown: float = 30.0

    # -- job service --------------------------------------------------------
    #: Bounded admission-queue depth of the job service
    #: (``REPRO_SERVICE_QUEUE_DEPTH``); submissions beyond it are shed
    #: with a typed ``ServiceOverloaded``.
    service_queue_depth: int = 64
    #: Concurrent job executions the service runs
    #: (``REPRO_SERVICE_WORKERS``).
    service_workers: int = 2
    #: Max concurrently *running* jobs per tenant
    #: (``REPRO_SERVICE_TENANT_CAP``), so one tenant cannot occupy
    #: every execution slot.
    service_tenant_cap: int = 1
    #: Default per-job deadline in seconds (``REPRO_SERVICE_DEADLINE``;
    #: None or 0 disables — jobs then run to completion).
    service_deadline: float | None = None
    #: Seconds a graceful drain waits for running jobs before shutting
    #: down anyway (``REPRO_SERVICE_DRAIN_TIMEOUT``).
    service_drain_timeout: float = 10.0
    #: Persist job records through the crash-safe store journal
    #: (``REPRO_SERVICE_JOURNAL``); off, jobs live only in memory.
    service_journal: bool = True
    #: Bind host of the HTTP front end (``REPRO_SERVICE_HTTP_HOST``).
    service_http_host: str = "127.0.0.1"
    #: Bind port of the HTTP front end (``REPRO_SERVICE_HTTP_PORT``;
    #: 0 asks the OS for an ephemeral port).
    service_http_port: int = 8737
    #: Seconds a fan-out cell claim stays valid before peers may
    #: reclaim it from a dead engine (``REPRO_SERVICE_LEASE_SECONDS``).
    service_lease_seconds: float = 30.0
    #: Per-tenant byte budget across the tenant's store refs
    #: (``REPRO_TENANT_QUOTA_BYTES``; None/0 disables per-tenant
    #: quotas).  Enforced at service admission and on tenant-attributed
    #: store writes, with eviction scoped to the tenant's own refs.
    tenant_quota_bytes: int | None = None

    # -- observability ------------------------------------------------------
    #: Enable the structured trace layer (``REPRO_TRACE``).
    trace: bool = False
    #: Ring-buffer capacity of the default tracer, in events
    #: (``REPRO_TRACE_BUFFER``).
    trace_buffer: int = 65536

    #: Env-variable names whose raw value failed to parse this
    #: resolution (the knob fell back to its default).  Consumers that
    #: historically warned on malformed input check membership here.
    invalid: frozenset = frozenset()


#: field name -> (environment variable, parser).  A parser raising
#: ``ValueError`` marks the variable invalid and keeps the default.
ENV_KNOBS: dict[str, tuple[str, Callable[[str], Any]]] = {
    "bench_workers": ("REPRO_BENCH_WORKERS", _parse_workers),
    "bench_parallel": ("REPRO_BENCH_PARALLEL", _parse_bool),
    "bench_scale": ("REPRO_BENCH_SCALE", _parse_float),
    "cache_dir": ("REPRO_CACHE_DIR", _parse_str),
    "stage_reuse": ("REPRO_STAGE_REUSE", _parse_bool),
    "cell_retries": ("REPRO_CELL_RETRIES", _parse_retries),
    "cell_backoff": ("REPRO_CELL_BACKOFF", _parse_backoff),
    "cell_deadline": ("REPRO_CELL_DEADLINE", _parse_deadline),
    "breaker_threshold": ("REPRO_BREAKER_THRESHOLD", _parse_int),
    "vm_watchdog": ("REPRO_VM_WATCHDOG", _parse_watchdog),
    "region_cache": ("REPRO_REGION_CACHE", _parse_bool),
    "fast_decode": ("REPRO_FAST_DECODE", _parse_bool),
    "decode_backend": ("REPRO_DECODE_BACKEND", _parse_backend),
    "codec_variant": ("REPRO_CODEC_VARIANT", _parse_str),
    "pool_persist": ("REPRO_POOL_PERSIST", _parse_strict_bool),
    "store_quota_bytes": ("REPRO_STORE_QUOTA_BYTES", _parse_quota),
    "store_policy": ("REPRO_STORE_POLICY", _parse_str),
    "store_retries": ("REPRO_STORE_RETRIES", _parse_nonneg_int),
    "store_backoff": ("REPRO_STORE_BACKOFF", _parse_backoff),
    "store_breaker_threshold": (
        "REPRO_STORE_BREAKER_THRESHOLD", _parse_nonneg_int
    ),
    "store_breaker_cooldown": (
        "REPRO_STORE_BREAKER_COOLDOWN", _parse_backoff
    ),
    "service_queue_depth": ("REPRO_SERVICE_QUEUE_DEPTH", _parse_workers),
    "service_workers": ("REPRO_SERVICE_WORKERS", _parse_workers),
    "service_tenant_cap": ("REPRO_SERVICE_TENANT_CAP", _parse_workers),
    "service_deadline": ("REPRO_SERVICE_DEADLINE", _parse_deadline),
    "service_drain_timeout": (
        "REPRO_SERVICE_DRAIN_TIMEOUT", _parse_backoff
    ),
    "service_journal": ("REPRO_SERVICE_JOURNAL", _parse_strict_bool),
    "service_http_host": ("REPRO_SERVICE_HTTP_HOST", _parse_str),
    "service_http_port": ("REPRO_SERVICE_HTTP_PORT", _parse_nonneg_int),
    "service_lease_seconds": (
        "REPRO_SERVICE_LEASE_SECONDS", _parse_backoff
    ),
    "tenant_quota_bytes": ("REPRO_TENANT_QUOTA_BYTES", _parse_quota),
    "trace": ("REPRO_TRACE", _parse_bool),
    "trace_buffer": ("REPRO_TRACE_BUFFER", _parse_int),
}

# The one sanctioned raw handle on the process environment; the
# chaos harness swaps it to propagate armed fault specs to workers.
_ENVIRON = os.environ

#: Per-thread stack of partial overrides installed by
#: :func:`use_settings`; later entries win.  Thread-local because the
#: job service scopes ``cell_deadline`` per executing job from
#: concurrent worker threads — a shared stack would let one thread pop
#: another's frame.
_OVERRIDES = threading.local()


def _overrides_stack() -> list[dict[str, Any]]:
    stack = getattr(_OVERRIDES, "stack", None)
    if stack is None:
        stack = _OVERRIDES.stack = []
    return stack


def from_env() -> Settings:
    """Settings resolved from environment variables and defaults only
    (no installed overrides)."""
    values: dict[str, Any] = {}
    invalid: set[str] = set()
    for field_name, (env_name, parse) in ENV_KNOBS.items():
        raw = _ENVIRON.get(env_name)
        if raw is None:
            continue
        if raw == "":
            # Historical rule: an empty value reads as unset, except
            # for booleans where "" counts among the falsy spellings.
            if parse in (_parse_bool, _parse_strict_bool):
                values[field_name] = False
            continue
        try:
            values[field_name] = parse(raw)
        except ValueError:
            invalid.add(env_name)
    if invalid:
        values["invalid"] = frozenset(invalid)
    return Settings(**values)


def current() -> Settings:
    """The resolved settings snapshot: overrides > env > defaults."""
    settings = from_env()
    stack = _overrides_stack()
    if stack:
        merged: dict[str, Any] = {}
        for layer in stack:
            merged.update(layer)
        settings = replace(settings, **merged)
    return settings


def effective_bench_workers(settings: Settings | None = None) -> int:
    """The worker count parallel paths actually use.

    ``REPRO_BENCH_WORKERS`` (already clamped to >= 1 by its parser)
    wins when set; otherwise the machine's CPU count, clamped to
    [1, :data:`MAX_DEFAULT_WORKERS`], so parallel paths use the
    hardware by default instead of a hardcoded fallback.
    """
    if settings is None:
        settings = current()
    if settings.bench_workers is not None:
        return settings.bench_workers
    return max(1, min(os.cpu_count() or 1, MAX_DEFAULT_WORKERS))


@contextmanager
def use_settings(**overrides: Any) -> Iterator[Settings]:
    """Install partial *overrides* for the duration of the block.

    Overrides shadow both the environment and the defaults — this is
    the programmatic equivalent of exporting the matching ``REPRO_*``
    variables, with types checked at the dataclass boundary::

        with settings.use_settings(vm_watchdog=10_000, region_cache=False):
            ...

    Unknown field names raise immediately rather than being ignored.
    """
    valid = {f.name for f in fields(Settings)}
    unknown = set(overrides) - valid
    if unknown:
        raise TypeError(
            f"unknown settings field(s): {', '.join(sorted(unknown))}"
        )
    _overrides_stack().append(dict(overrides))
    try:
        yield current()
    finally:
        _overrides_stack().pop()
