"""Layout: assign addresses and materialise a :class:`LoadedImage`.

Branch displacements and call displacements are symbolic in the IR;
this module resolves them.  A block whose fallthrough successor is not
laid out immediately after it gets an explicit ``br`` appended -- the
same rule the squash rewriter uses when compressed blocks are pulled
out of line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.isa.encoding import encode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op, REG_ZERO
from repro.program.blocks import BasicBlock
from repro.program.image import LoadedImage, Segment
from repro.program.program import Program

#: Default base address of the text segment (word address).
TEXT_BASE = 0x1000


@dataclass
class LayoutResult:
    """Addresses and image produced by :func:`layout`."""

    image: LoadedImage
    block_addr: dict[str, int]
    func_addr: dict[str, int]
    data_addr: dict[str, int]
    #: Number of ``br`` instructions inserted for displaced fallthroughs.
    inserted_jumps: int = 0
    #: Address of each block's appended fallthrough ``br`` (if any).
    fallthrough_br_addr: dict[str, int] = field(default_factory=dict)


def branch_displacement(from_addr: int, to_addr: int) -> int:
    """PC-relative displacement for a branch at *from_addr* to *to_addr*."""
    return to_addr - (from_addr + 1)


def split_hi_lo(addr: int) -> tuple[int, int]:
    """Split an address into (ldah, lda) immediates.

    The low half is sign-extended by ``lda``, so the high half is
    compensated: ``(hi << 16) + sign_extend(lo) == addr``.
    """
    lo = addr & 0xFFFF
    if lo >= 0x8000:
        lo -= 0x10000
    hi = (addr - lo) >> 16
    return hi, lo


def resolve_data_ref(instr: Instruction, addr: int) -> Instruction:
    """Materialise a data relocation into an ``lda``/``ldah`` immediate."""
    hi, lo = split_hi_lo(addr)
    imm = hi if instr.op is Op.LDAH else lo
    return Instruction(instr.op, ra=instr.ra, rb=instr.rb, imm=imm)


def encode_block_words(
    block: BasicBlock,
    addr: int,
    resolve_label: Callable[[str], int],
    resolve_func: Callable[[str], int],
    next_label: str | None,
    resolve_data: Callable[[str], int] | None = None,
) -> list[int]:
    """Encode *block* at *addr*, resolving branches, calls, fallthrough.

    ``next_label`` is the label laid out immediately after this block
    (or None); an explicit ``br`` to the fallthrough successor is
    appended when they differ.  This helper is shared by the plain
    linker and the squash rewriter (which resolves labels of compressed
    blocks to their entry stubs).
    """
    words: list[int] = []
    for index, instr in enumerate(block.instrs):
        here = addr + index
        if index in block.data_refs:
            if resolve_data is None:
                raise ValueError(
                    f"block {block.label!r} has data refs but no resolver"
                )
            instr = resolve_data_ref(
                instr, resolve_data(block.data_refs[index])
            )
        elif index in block.call_targets:
            target = resolve_func(block.call_targets[index])
            instr = Instruction(
                instr.op, ra=instr.ra, imm=branch_displacement(here, target)
            )
        elif index == len(block.instrs) - 1 and (
            instr.is_cond_branch or block.ends_in_uncond_branch
        ):
            assert block.branch_target is not None
            target = resolve_label(block.branch_target)
            instr = Instruction(
                instr.op, ra=instr.ra, imm=branch_displacement(here, target)
            )
        words.append(encode(instr))
    if needs_fallthrough_br(block, next_label):
        assert block.fallthrough is not None
        here = addr + len(words)
        target = resolve_label(block.fallthrough)
        words.append(
            encode(
                Instruction(
                    Op.BR,
                    ra=REG_ZERO,
                    imm=branch_displacement(here, target),
                )
            )
        )
    return words


def needs_fallthrough_br(block: BasicBlock, next_label: str | None) -> bool:
    """True if *block* needs an explicit ``br`` to its fallthrough."""
    return block.fallthrough is not None and block.fallthrough != next_label


def layout(program: Program, text_base: int = TEXT_BASE) -> LayoutResult:
    """Lay out *program* into a loaded image.

    Text first (functions and blocks in IR order), then data.  Returns
    the image plus the address maps.
    """
    program.validate()

    # Plan: (block, needs_br) in layout order, with per-block sizes.
    plan: list[tuple[BasicBlock, str | None]] = []
    for function in program.functions.values():
        blocks = function.block_order()
        for index, block in enumerate(blocks):
            next_label = (
                blocks[index + 1].label if index + 1 < len(blocks) else None
            )
            plan.append((block, next_label))

    block_addr: dict[str, int] = {}
    fallthrough_br_addr: dict[str, int] = {}
    addr = text_base
    inserted = 0
    for block, next_label in plan:
        block_addr[block.label] = addr
        addr += block.size
        if needs_fallthrough_br(block, next_label):
            fallthrough_br_addr[block.label] = addr
            addr += 1
            inserted += 1
    text_end = addr

    func_addr = {
        function.name: block_addr[function.entry]  # type: ignore[index]
        for function in program.functions.values()
    }

    data_addr: dict[str, int] = {}
    for obj in program.data.values():
        data_addr[obj.name] = addr
        addr += obj.size
    data_end = addr

    def resolve_label(label: str) -> int:
        return block_addr[label]

    def resolve_func(name: str) -> int:
        return func_addr[name]

    def resolve_data(name: str) -> int:
        return data_addr[name]

    memory: list[int] = []
    for block, next_label in plan:
        memory.extend(
            encode_block_words(
                block,
                block_addr[block.label],
                resolve_label,
                resolve_func,
                next_label,
                resolve_data,
            )
        )
    assert len(memory) == text_end - text_base

    for obj in program.data.values():
        for index, word in enumerate(obj.words):
            target = obj.relocs.get(index)
            if target is not None:
                if target in func_addr:
                    word = func_addr[target]
                else:
                    word = block_addr[target]
            memory.append(word & 0xFFFFFFFF)
    assert len(memory) == data_end - text_base

    symbols: dict[str, int] = {}
    symbols.update(func_addr)
    symbols.update(block_addr)
    symbols.update(data_addr)

    image = LoadedImage(
        memory=memory,
        base=text_base,
        entry_pc=func_addr[program.entry],  # type: ignore[index]
        segments=[
            Segment("text", text_base, text_end - text_base),
            Segment("data", text_end, data_end - text_end),
        ],
        symbols=symbols,
        block_heads={address: label for label, address in block_addr.items()},
    )
    return LayoutResult(
        image=image,
        block_addr=block_addr,
        func_addr=func_addr,
        data_addr=data_addr,
        inserted_jumps=inserted,
        fallthrough_br_addr=fallthrough_br_addr,
    )
