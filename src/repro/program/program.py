"""Whole-program IR and validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.isa.opcodes import REG_AT, Op, SysOp
from repro.program.blocks import BasicBlock
from repro.program.data import DataObject
from repro.program.function import Function


class ValidationError(Exception):
    """Raised when a program violates an IR invariant."""


@dataclass
class Program:
    """A whole program: functions, data objects, and an entry point.

    ``address_taken`` lists functions whose addresses escape into data
    (function-pointer tables); indirect calls are assumed to target any
    of them.  This is the conservative assumption a binary rewriter must
    make, and it feeds the buffer-safe analysis of Section 6.1.
    """

    name: str = "program"
    functions: dict[str, Function] = field(default_factory=dict)
    data: dict[str, DataObject] = field(default_factory=dict)
    entry: str | None = None
    address_taken: set[str] = field(default_factory=set)

    # -- construction -------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name!r}")
        self.functions[function.name] = function
        if self.entry is None:
            self.entry = function.name
        return function

    def add_data(self, obj: DataObject) -> DataObject:
        if obj.name in self.data:
            raise ValueError(f"duplicate data object {obj.name!r}")
        self.data[obj.name] = obj
        return obj

    # -- queries ------------------------------------------------------------

    @property
    def entry_function(self) -> Function:
        if self.entry is None:
            raise ValueError("program has no entry function")
        return self.functions[self.entry]

    def all_blocks(self) -> Iterator[tuple[Function, BasicBlock]]:
        """All (function, block) pairs in layout order."""
        for function in self.functions.values():
            for block in function.blocks.values():
                yield function, block

    def block_function(self) -> dict[str, str]:
        """Map block label -> owning function name."""
        return {
            block.label: function.name
            for function, block in self.all_blocks()
        }

    def find_block(self, label: str) -> tuple[Function, BasicBlock]:
        for function in self.functions.values():
            block = function.blocks.get(label)
            if block is not None:
                return function, block
        raise KeyError(label)

    @property
    def code_size(self) -> int:
        """Total instruction count across all functions."""
        return sum(f.size for f in self.functions.values())

    @property
    def data_size(self) -> int:
        """Total data size in words."""
        return sum(d.size for d in self.data.values())

    def copy(self) -> "Program":
        clone = Program(name=self.name)
        for function in self.functions.values():
            clone.add_function(function.copy())
        for obj in self.data.values():
            clone.add_data(obj.copy())
        clone.entry = self.entry
        clone.address_taken = set(self.address_taken)
        return clone

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check all IR invariants; raise :class:`ValidationError`."""
        if self.entry is None or self.entry not in self.functions:
            raise ValidationError(f"missing entry function {self.entry!r}")

        labels: dict[str, str] = {}
        for function in self.functions.values():
            if function.entry is None:
                raise ValidationError(f"function {function.name!r} is empty")
            for block in function.blocks.values():
                if block.label in labels:
                    raise ValidationError(
                        f"block label {block.label!r} defined in both "
                        f"{labels[block.label]!r} and {function.name!r}"
                    )
                labels[block.label] = function.name

        for function in self.functions.values():
            for block in function.blocks.values():
                self._validate_block(function, block, labels)

        for name in self.address_taken:
            if name not in self.functions:
                raise ValidationError(
                    f"address-taken function {name!r} does not exist"
                )
        for obj in self.data.values():
            for index, target in obj.relocs.items():
                if target not in labels and target not in self.functions:
                    raise ValidationError(
                        f"data {obj.name!r}[{index}] relocates to unknown "
                        f"label {target!r}"
                    )

    def _validate_block(
        self, function: Function, block: BasicBlock, labels: dict[str, str]
    ) -> None:
        where = f"block {block.label!r} in {function.name!r}"
        if not block.instrs:
            raise ValidationError(f"{where} is empty")

        for index, instr in enumerate(block.instrs):
            is_last = index == len(block.instrs) - 1
            if instr.is_control_transfer and not is_last:
                if not instr.is_call:
                    raise ValidationError(
                        f"{where}: control transfer {instr} not at block end"
                    )
            if instr.ra == REG_AT or (
                instr.format.name in ("OPR", "OPI", "JMP", "MEM", "MEMI")
                and REG_AT in (instr.rb, instr.rc)
            ):
                raise ValidationError(
                    f"{where}: register r{REG_AT} is reserved for stubs"
                )
            if instr.is_direct_call and index not in block.call_targets:
                raise ValidationError(
                    f"{where}: direct call at index {index} has no target"
                )

        for index, target in block.call_targets.items():
            if index >= len(block.instrs):
                raise ValidationError(
                    f"{where}: call target index {index} out of range"
                )
            if not block.instrs[index].is_direct_call:
                raise ValidationError(
                    f"{where}: call_targets[{index}] is not a direct call"
                )
            if target not in self.functions:
                raise ValidationError(
                    f"{where}: call to unknown function {target!r}"
                )

        for index, symbol in block.data_refs.items():
            if index >= len(block.instrs):
                raise ValidationError(
                    f"{where}: data ref index {index} out of range"
                )
            if block.instrs[index].op not in (Op.LDA, Op.LDAH):
                raise ValidationError(
                    f"{where}: data_refs[{index}] is not lda/ldah"
                )
            if symbol not in self.data:
                raise ValidationError(
                    f"{where}: data ref to unknown symbol {symbol!r}"
                )

        term = block.terminator
        assert term is not None
        if term.is_cond_branch:
            if block.branch_target is None or block.fallthrough is None:
                raise ValidationError(
                    f"{where}: conditional branch needs branch_target "
                    f"and fallthrough"
                )
        elif block.ends_in_uncond_branch:
            if block.branch_target is None or block.fallthrough is not None:
                raise ValidationError(
                    f"{where}: unconditional branch needs branch_target only"
                )
        elif block.ends_in_indirect_jump:
            if block.fallthrough is not None or block.branch_target is not None:
                raise ValidationError(
                    f"{where}: indirect jump cannot have static successors"
                )
        elif term.is_return or (
            term.op is Op.SPC
            and term.imm in (SysOp.HALT, SysOp.EXIT, SysOp.LONGJMP)
        ):
            if block.fallthrough is not None or block.branch_target is not None:
                raise ValidationError(f"{where}: terminator has no successors")
        else:
            if block.branch_target is not None:
                raise ValidationError(
                    f"{where}: branch_target without branch terminator"
                )
            if block.fallthrough is None:
                raise ValidationError(
                    f"{where}: block falls off the end without fallthrough"
                )

        for target_label in (block.fallthrough, block.branch_target):
            if target_label is None:
                continue
            if labels.get(target_label) != function.name:
                raise ValidationError(
                    f"{where}: successor {target_label!r} is not a block of "
                    f"the same function"
                )

        if block.jump_table is not None:
            obj = self.data.get(block.jump_table.data_symbol)
            if obj is None or not obj.is_jump_table:
                raise ValidationError(
                    f"{where}: jump table {block.jump_table.data_symbol!r} "
                    f"missing or not marked as a jump table"
                )
            if set(obj.relocs) != set(range(len(obj.words))):
                raise ValidationError(
                    f"{where}: jump table {obj.name!r} has non-relocated slots"
                )
