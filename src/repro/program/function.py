"""Functions: ordered collections of basic blocks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Op, SysOp
from repro.program.blocks import BasicBlock


@dataclass
class Function:
    """A function with an entry block and layout-ordered blocks.

    ``blocks`` preserves insertion order, which is also the layout order
    used by the linker.  The paper's notion of "function" for
    compression purposes is more general (arbitrary code regions,
    Section 4); those regions are built elsewhere from these blocks.
    """

    name: str
    blocks: dict[str, BasicBlock] = field(default_factory=dict)
    entry: str | None = None

    def add_block(self, block: BasicBlock) -> BasicBlock:
        """Add *block*; the first block added becomes the entry."""
        if block.label in self.blocks:
            raise ValueError(f"duplicate block label {block.label!r}")
        self.blocks[block.label] = block
        if self.entry is None:
            self.entry = block.label
        return block

    @property
    def entry_block(self) -> BasicBlock:
        if self.entry is None:
            raise ValueError(f"function {self.name!r} has no blocks")
        return self.blocks[self.entry]

    def block_order(self) -> list[BasicBlock]:
        """Blocks in layout order."""
        return list(self.blocks.values())

    @property
    def size(self) -> int:
        """Total instruction count."""
        return sum(b.size for b in self.blocks.values())

    def direct_callees(self) -> set[str]:
        """Names of functions called directly from this function."""
        callees: set[str] = set()
        for block in self.blocks.values():
            callees.update(block.call_targets.values())
        return callees

    @property
    def calls_setjmp(self) -> bool:
        """True if any instruction is a SETJMP.

        Functions that call setjmp are never compressed (Section 2.2):
        a longjmp can return past frames whose restore stubs would then
        leak or dangle.
        """
        for block in self.blocks.values():
            for instr in block.instrs:
                if instr.op is Op.SPC and instr.imm == SysOp.SETJMP:
                    return True
        return False

    @property
    def has_indirect_call(self) -> bool:
        """True if the function contains a ``jsr``."""
        return any(
            instr.is_indirect_call
            for block in self.blocks.values()
            for instr in block.instrs
        )

    def copy(self) -> "Function":
        clone = Function(self.name)
        for block in self.blocks.values():
            clone.add_block(block.copy())
        clone.entry = self.entry
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Function({self.name!r}, {len(self.blocks)} blocks, {self.size} instrs)"
