"""Control-flow and call-graph queries over the program IR."""

from __future__ import annotations

from collections import deque

from repro.program.blocks import BasicBlock
from repro.program.function import Function
from repro.program.program import Program


def block_successors(program: Program, block: BasicBlock) -> list[str]:
    """Intra-procedural successor block labels of *block*.

    Includes branch targets, fallthrough, and jump-table targets; does
    not include call targets (calls return to the fallthrough path
    within the same block).
    """
    succs: list[str] = []
    if block.branch_target is not None:
        succs.append(block.branch_target)
    if block.fallthrough is not None:
        succs.append(block.fallthrough)
    if block.jump_table is not None:
        table = program.data[block.jump_table.data_symbol]
        for index in sorted(table.relocs):
            target = table.relocs[index]
            if target not in succs:
                succs.append(target)
    return succs


def block_predecessors(program: Program) -> dict[str, list[str]]:
    """Map block label -> labels of intra-procedural predecessor blocks."""
    preds: dict[str, list[str]] = {
        block.label: [] for _, block in program.all_blocks()
    }
    for _, block in program.all_blocks():
        for succ in block_successors(program, block):
            preds[succ].append(block.label)
    return preds


def reachable_blocks(program: Program) -> set[str]:
    """Labels of blocks reachable from the program entry.

    Reachability follows intra-procedural edges, direct calls,
    jump-table targets, and treats every address-taken function as a
    potential indirect-call/branch target (the conservative assumption
    of a binary rewriter).
    """
    worklist: deque[str] = deque()
    seen: set[str] = set()

    def push_function(name: str) -> None:
        function = program.functions.get(name)
        if function is not None and function.entry is not None:
            push_block(function.entry)

    def push_block(label: str) -> None:
        if label not in seen:
            seen.add(label)
            worklist.append(label)

    if program.entry is not None:
        push_function(program.entry)
    for name in program.address_taken:
        push_function(name)

    while worklist:
        label = worklist.popleft()
        _, block = program.find_block(label)
        for succ in block_successors(program, block):
            push_block(succ)
        for target in block.call_targets.values():
            push_function(target)
    return seen


def call_graph(program: Program) -> dict[str, set[str]]:
    """Map function name -> set of possible callee names.

    Indirect calls contribute edges to every address-taken function.
    """
    graph: dict[str, set[str]] = {name: set() for name in program.functions}
    for function in program.functions.values():
        for block in function.blocks.values():
            graph[function.name].update(block.call_targets.values())
            if any(i.is_indirect_call for i in block.instrs):
                graph[function.name].update(program.address_taken)
    return graph


def cfg_to_networkx(program: Program, function: Function):
    """The CFG of *function* as a ``networkx.DiGraph`` (for analysis/plots)."""
    import networkx as nx

    graph = nx.DiGraph(name=function.name)
    for block in function.blocks.values():
        graph.add_node(block.label, size=block.size)
    for block in function.blocks.values():
        for succ in block_successors(program, block):
            if succ in function.blocks:
                graph.add_edge(block.label, succ)
    return graph
