"""Data objects: initialised words plus relocations to code labels."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class DataObject:
    """A named, contiguous run of data words.

    ``relocs`` maps word indices to code labels (block labels or
    function names); at layout time those words receive the final
    address of the label.  Jump tables and function-pointer tables are
    DataObjects whose every entry is a relocation.
    """

    name: str
    words: list[int] = field(default_factory=list)
    relocs: dict[int, str] = field(default_factory=dict)
    is_jump_table: bool = False

    def __post_init__(self) -> None:
        for index in self.relocs:
            if not 0 <= index < len(self.words):
                raise ValueError(
                    f"relocation index {index} outside data object "
                    f"{self.name!r} of {len(self.words)} words"
                )

    @property
    def size(self) -> int:
        """Size in words."""
        return len(self.words)

    def copy(self) -> "DataObject":
        return DataObject(
            name=self.name,
            words=list(self.words),
            relocs=dict(self.relocs),
            is_jump_table=self.is_jump_table,
        )
