"""Program representation: basic blocks, functions, CFGs, images.

The IR mirrors what a binary-rewriting tool like the paper's *squash*
(and its substrate *alto*/*squeeze*) works with: a whole program as a
collection of functions made of basic blocks of real machine
instructions, plus data objects, with control-transfer targets kept
symbolic until layout time.  :func:`~repro.program.layout.layout`
assigns addresses, materialises branch displacements and relocations,
and produces a :class:`~repro.program.image.LoadedImage` the VM can
execute.
"""

from repro.program.blocks import BasicBlock, JumpTableInfo
from repro.program.function import Function
from repro.program.data import DataObject
from repro.program.program import Program, ValidationError
from repro.program.cfg import (
    block_successors,
    block_predecessors,
    reachable_blocks,
    call_graph,
    cfg_to_networkx,
)
from repro.program.layout import layout, LayoutResult
from repro.program.image import LoadedImage, Segment

__all__ = [
    "BasicBlock",
    "JumpTableInfo",
    "Function",
    "DataObject",
    "Program",
    "ValidationError",
    "block_successors",
    "block_predecessors",
    "reachable_blocks",
    "call_graph",
    "cfg_to_networkx",
    "layout",
    "LayoutResult",
    "LoadedImage",
    "Segment",
]
