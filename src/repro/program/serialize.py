"""Whole-program IR serialisation (JSON-compatible dicts).

The staged sweep harness persists squeeze output across processes and
runs; this module is the faithful round-trip it relies on.  Dict
insertion order carries layout order (functions, blocks, data objects)
exactly as the in-memory IR does, so a deserialised program squashes
byte-identically to the original.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op
from repro.program.blocks import BasicBlock, JumpTableInfo
from repro.program.data import DataObject
from repro.program.function import Function
from repro.program.program import Program

__all__ = ["program_to_dict", "program_from_dict"]

FORMAT_VERSION = 1


def _instr_to_list(instr: Instruction) -> list[int]:
    return [
        int(instr.op),
        instr.ra,
        instr.rb,
        instr.rc,
        instr.func,
        instr.imm,
    ]


def _instr_from_list(row: list[int]) -> Instruction:
    op, ra, rb, rc, func, imm = row
    return Instruction(
        Op(op), ra=ra, rb=rb, rc=rc, func=func, imm=imm
    )


def _block_to_dict(block: BasicBlock) -> dict:
    out: dict = {
        "label": block.label,
        "instrs": [_instr_to_list(i) for i in block.instrs],
    }
    if block.fallthrough is not None:
        out["fallthrough"] = block.fallthrough
    if block.branch_target is not None:
        out["branch_target"] = block.branch_target
    if block.call_targets:
        out["call_targets"] = {
            str(k): v for k, v in block.call_targets.items()
        }
    if block.data_refs:
        out["data_refs"] = {str(k): v for k, v in block.data_refs.items()}
    if block.jump_table is not None:
        out["jump_table"] = {
            "data_symbol": block.jump_table.data_symbol,
            "extent_known": block.jump_table.extent_known,
        }
    return out


def _block_from_dict(obj: dict) -> BasicBlock:
    table = obj.get("jump_table")
    return BasicBlock(
        label=obj["label"],
        instrs=[_instr_from_list(row) for row in obj["instrs"]],
        fallthrough=obj.get("fallthrough"),
        branch_target=obj.get("branch_target"),
        call_targets={
            int(k): v for k, v in obj.get("call_targets", {}).items()
        },
        data_refs={
            int(k): v for k, v in obj.get("data_refs", {}).items()
        },
        jump_table=(
            JumpTableInfo(
                data_symbol=table["data_symbol"],
                extent_known=table["extent_known"],
            )
            if table is not None
            else None
        ),
    )


def program_to_dict(program: Program) -> dict:
    """A JSON-compatible dict preserving layout order everywhere."""
    return {
        "format": FORMAT_VERSION,
        "name": program.name,
        "entry": program.entry,
        "address_taken": sorted(program.address_taken),
        "functions": [
            {
                "name": function.name,
                "entry": function.entry,
                "blocks": [
                    _block_to_dict(block)
                    for block in function.blocks.values()
                ],
            }
            for function in program.functions.values()
        ],
        "data": [
            {
                "name": obj.name,
                "words": list(obj.words),
                "relocs": {str(k): v for k, v in obj.relocs.items()},
                "is_jump_table": obj.is_jump_table,
            }
            for obj in program.data.values()
        ],
    }


def program_from_dict(obj: dict) -> Program:
    """Rebuild a :class:`Program` saved by :func:`program_to_dict`."""
    version = obj.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported program format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    program = Program(name=obj["name"])
    for fn_obj in obj["functions"]:
        function = Function(name=fn_obj["name"])
        for block_obj in fn_obj["blocks"]:
            function.add_block(_block_from_dict(block_obj))
        function.entry = fn_obj["entry"]
        program.functions[function.name] = function
    program.entry = obj["entry"]
    program.address_taken = set(obj["address_taken"])
    for data_obj in obj["data"]:
        program.add_data(
            DataObject(
                name=data_obj["name"],
                words=list(data_obj["words"]),
                relocs={
                    int(k): v for k, v in data_obj["relocs"].items()
                },
                is_jump_table=data_obj["is_jump_table"],
            )
        )
    program.validate()
    return program
