"""Loaded images: the memory the VM executes."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Segment:
    """A named address range inside an image (for accounting/debug)."""

    name: str
    start: int
    size: int

    @property
    def end(self) -> int:
        return self.start + self.size

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


@dataclass
class LoadedImage:
    """A laid-out program: words in memory plus symbol metadata.

    Addresses are word addresses (the machine is word-addressed; one
    instruction per word).  ``block_heads`` maps the first address of
    every basic block to its label, which is what the basic-block
    profiler counts.
    """

    memory: list[int]
    base: int
    entry_pc: int
    segments: list[Segment] = field(default_factory=list)
    symbols: dict[str, int] = field(default_factory=dict)
    block_heads: dict[int, str] = field(default_factory=dict)
    #: Per-context codec table seals carried by image files of format
    #: version >= 3: ``(kind, ctx, start_bit, end_bit, crc)`` tuples
    #: (see :class:`repro.core.integrity.ContextIntegrity`).  Empty for
    #: freshly-laid-out programs and older image files.
    codec_contexts: list[tuple[int, int, int, int, int]] = field(
        default_factory=list
    )

    @property
    def end(self) -> int:
        """One past the last mapped address."""
        return self.base + len(self.memory)

    def segment(self, name: str) -> Segment:
        for seg in self.segments:
            if seg.name == name:
                return seg
        raise KeyError(name)

    def has_segment(self, name: str) -> bool:
        return any(seg.name == name for seg in self.segments)

    def word(self, addr: int) -> int:
        """Read the image word at *addr*."""
        index = addr - self.base
        if not 0 <= index < len(self.memory):
            raise IndexError(f"address {addr:#x} outside image")
        return self.memory[index]

    def segment_of(self, addr: int) -> Segment | None:
        for seg in self.segments:
            if seg.contains(addr):
                return seg
        return None

    @property
    def code_size_words(self) -> int:
        """Total size of all code-bearing segments, in words.

        This is the paper's notion of the program's code footprint: for
        a squashed image it includes never-compressed code, stubs, the
        function offset table, the decompressor, the compressed code,
        the runtime stub area, and the runtime buffer (Section 2.1).
        """
        return sum(
            seg.size for seg in self.segments if seg.name != "data"
        )
