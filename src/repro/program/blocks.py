"""Basic blocks with symbolic control-transfer targets."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Op


@dataclass
class JumpTableInfo:
    """Metadata for an indirect jump through a jump table.

    In a binary-rewriting setting the extent of a jump table may or may
    not be recoverable (Section 6.2); ``extent_known`` models that.  The
    ``data_symbol`` names the :class:`~repro.program.data.DataObject`
    holding the table; its relocations name the target blocks.
    """

    data_symbol: str
    extent_known: bool = True


@dataclass
class BasicBlock:
    """A straight-line sequence of instructions with one control exit.

    Control-transfer targets are symbolic:

    * ``branch_target`` -- the label targeted by a terminating
      conditional or unconditional PC-relative branch.
    * ``fallthrough`` -- the label executed when control falls off the
      end (present for conditional branches, calls and plain blocks;
      absent after ``br``/``ret``/``jmp``/``exit``).
    * ``call_targets`` -- function names for the direct calls (``bsr``)
      inside the block, keyed by instruction index.  Calls do not end a
      block.
    * ``data_refs`` -- data-symbol relocations for ``lda``/``ldah``
      instructions, keyed by instruction index: the immediate becomes
      the low/high half of the symbol's final address at layout time.
    * ``jump_table`` -- set when the terminator is an indirect ``jmp``
      through a jump table.

    The displacement/immediate fields of branch, call, and relocated
    instructions inside ``instrs`` are placeholders until
    :func:`repro.program.layout.layout` resolves them.
    """

    label: str
    instrs: list[Instruction] = field(default_factory=list)
    fallthrough: str | None = None
    branch_target: str | None = None
    call_targets: dict[int, str] = field(default_factory=dict)
    data_refs: dict[int, str] = field(default_factory=dict)
    jump_table: JumpTableInfo | None = None

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("basic block needs a non-empty label")

    @property
    def size(self) -> int:
        """Number of instructions in the block."""
        return len(self.instrs)

    @property
    def terminator(self) -> Instruction | None:
        """The last instruction, or None for an empty block."""
        if not self.instrs:
            return None
        return self.instrs[-1]

    @property
    def ends_in_cond_branch(self) -> bool:
        term = self.terminator
        return term is not None and term.is_cond_branch

    @property
    def ends_in_uncond_branch(self) -> bool:
        term = self.terminator
        return term is not None and term.op is Op.BR and term.ra == 31

    @property
    def ends_in_indirect_jump(self) -> bool:
        term = self.terminator
        return term is not None and term.op is Op.JMP

    @property
    def has_call(self) -> bool:
        """True if the block contains any call (direct or indirect)."""
        if self.call_targets:
            return True
        return any(i.is_indirect_call for i in self.instrs)

    def call_sites(self) -> list[tuple[int, str | None]]:
        """All call instructions as (index, direct target or None)."""
        sites: list[tuple[int, str | None]] = []
        for index, instr in enumerate(self.instrs):
            if instr.is_direct_call:
                sites.append((index, self.call_targets.get(index)))
            elif instr.is_indirect_call:
                sites.append((index, None))
        return sites

    def copy(self) -> "BasicBlock":
        """A deep-enough copy (instructions are immutable)."""
        return BasicBlock(
            label=self.label,
            instrs=list(self.instrs),
            fallthrough=self.fallthrough,
            branch_target=self.branch_target,
            call_targets=dict(self.call_targets),
            data_refs=dict(self.data_refs),
            jump_table=self.jump_table,
        )

    def rebuild(self, kept: list[int]) -> None:
        """Keep only the instructions at the (sorted) old indices *kept*,
        remapping ``call_targets`` and ``data_refs`` accordingly."""
        index_map = {old: new for new, old in enumerate(kept)}
        self.instrs = [self.instrs[old] for old in kept]
        self.call_targets = {
            index_map[old]: target
            for old, target in self.call_targets.items()
            if old in index_map
        }
        self.data_refs = {
            index_map[old]: symbol
            for old, symbol in self.data_refs.items()
            if old in index_map
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BasicBlock({self.label!r}, {len(self.instrs)} instrs, "
            f"ft={self.fallthrough!r}, br={self.branch_target!r})"
        )
