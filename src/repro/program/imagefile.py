"""On-disk format for loaded images (a minimal executable format).

A real `squash` emits an executable file; this module gives the
reproduction the same property.  The format is little-endian 32-bit
words::

    magic 'SQIM' | version | base | entry_pc
    n_segments | per segment: name-length, name bytes (padded), start, size
    n_symbols  | per symbol:  name-length, name bytes (padded), address
    n_heads    | per head:    address, label-length, label bytes (padded)
    n_words    | memory words
    n_contexts | per context: kind, ctx, start_bit, end_bit, crc
                                        (version >= 3)
    crc32 over all preceding bytes      (version >= 2)

Version 2 appends the CRC32 footer so a bit-flipped or truncated file
is rejected at load time; version 3 adds the codec-context section --
the per-context table seals of the image's
:class:`~repro.compress.model.CodecModel` (one record per context of
each serialized stream, empty for order-0 codecs saved without seals)
-- so a squashed image is self-describing even without its descriptor
JSON.  Version-1 (no footer) and version-2 (no context section) files
still load.  Squashed images additionally need their runtime
descriptor; see :func:`repro.core.descriptor.descriptor_to_dict` and
:meth:`repro.core.pipeline.SquashResult.save`.
"""

from __future__ import annotations

import pathlib
import struct
import zlib

from repro.errors import CorruptBlobError
from repro.program.image import LoadedImage, Segment

MAGIC = 0x5351494D  # 'SQIM'
VERSION = 3
#: Oldest format version :func:`load_image` still accepts.
MIN_VERSION = 1


class ImageFormatError(CorruptBlobError):
    """Raised on a malformed image file."""


def _pack_str(parts: list[bytes], text: str) -> None:
    data = text.encode("utf-8")
    parts.append(struct.pack("<I", len(data)))
    padded = data + b"\0" * (-len(data) % 4)
    parts.append(padded)


class _Reader:
    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def u32(self) -> int:
        if self.pos + 4 > len(self.data):
            raise ImageFormatError("truncated image file")
        (value,) = struct.unpack_from("<I", self.data, self.pos)
        self.pos += 4
        return value

    def count(self, what: str) -> int:
        """A u32 element count, sanity-bounded by the file size (a
        corrupt count must not drive a huge allocation)."""
        value = self.u32()
        if value > len(self.data) // 4:
            raise ImageFormatError(
                f"implausible {what} count {value} in a "
                f"{len(self.data)}-byte file"
            )
        return value

    def text(self) -> str:
        length = self.u32()
        end = self.pos + length
        if end > len(self.data):
            raise ImageFormatError("truncated string")
        try:
            value = self.data[self.pos : end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ImageFormatError(f"corrupt string: {exc}") from exc
        self.pos = end + (-length % 4)
        return value


def save_image(
    image: LoadedImage,
    path: str | pathlib.Path,
    contexts: object = (),
) -> None:
    """Write *image* to *path* (format version 3, with CRC footer).

    *contexts* holds the per-context codec table seals: an iterable of
    ``(kind, ctx, start_bit, end_bit, crc)`` tuples or objects with
    those attributes (:class:`~repro.core.integrity.ContextIntegrity`).
    """
    parts: list[bytes] = [
        struct.pack("<IIII", MAGIC, VERSION, image.base, image.entry_pc)
    ]
    parts.append(struct.pack("<I", len(image.segments)))
    for seg in image.segments:
        _pack_str(parts, seg.name)
        parts.append(struct.pack("<II", seg.start, seg.size))
    parts.append(struct.pack("<I", len(image.symbols)))
    for name, addr in image.symbols.items():
        _pack_str(parts, name)
        parts.append(struct.pack("<I", addr))
    parts.append(struct.pack("<I", len(image.block_heads)))
    for addr, label in image.block_heads.items():
        parts.append(struct.pack("<I", addr))
        _pack_str(parts, label)
    parts.append(struct.pack("<I", len(image.memory)))
    parts.append(struct.pack(f"<{len(image.memory)}I", *image.memory))
    records = [
        ctx
        if isinstance(ctx, tuple)
        else (ctx.kind, ctx.ctx, ctx.start_bit, ctx.end_bit, ctx.crc)
        for ctx in contexts
    ]
    parts.append(struct.pack("<I", len(records)))
    for kind, ctx_id, start_bit, end_bit, crc in records:
        parts.append(
            struct.pack(
                "<IIIII",
                kind,
                ctx_id,
                start_bit,
                end_bit,
                crc & 0xFFFFFFFF,
            )
        )
    payload = b"".join(parts)
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    pathlib.Path(path).write_bytes(payload + struct.pack("<I", crc))


def load_image(path: str | pathlib.Path) -> LoadedImage:
    """Read an image written by :func:`save_image`.

    Malformed files -- bad magic, unknown version, failed CRC footer,
    implausible counts, truncation -- raise :class:`ImageFormatError`
    (a :class:`~repro.errors.CorruptBlobError`).
    """
    data = pathlib.Path(path).read_bytes()
    if len(data) < 8:
        raise ImageFormatError("file too short for a header")
    magic, version = struct.unpack_from("<II", data, 0)
    if magic != MAGIC:
        raise ImageFormatError(f"bad magic {magic:#x}")
    if not MIN_VERSION <= version <= VERSION:
        raise ImageFormatError(f"unsupported version {version}")
    if version >= 2:
        # The last word is a CRC32 over everything before it.
        if len(data) < 12:
            raise ImageFormatError("file too short for a CRC footer")
        payload, footer = data[:-4], data[-4:]
        (expected,) = struct.unpack("<I", footer)
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        if actual != expected:
            raise ImageFormatError(
                f"image file fails its CRC "
                f"(stored {expected:#010x}, computed {actual:#010x})"
            )
        data = payload
    reader = _Reader(data)
    reader.pos = 8  # past magic + version
    base = reader.u32()
    entry_pc = reader.u32()
    segments = []
    for _ in range(reader.count("segment")):
        name = reader.text()
        start, size = reader.u32(), reader.u32()
        segments.append(Segment(name, start, size))
    symbols = {}
    for _ in range(reader.count("symbol")):
        name = reader.text()
        symbols[name] = reader.u32()
    heads = {}
    for _ in range(reader.count("block head")):
        addr = reader.u32()
        heads[addr] = reader.text()
    n_words = reader.count("memory word")
    end = reader.pos + 4 * n_words
    if end > len(reader.data):
        raise ImageFormatError("truncated memory")
    memory = list(struct.unpack_from(f"<{n_words}I", reader.data, reader.pos))
    reader.pos = end
    contexts: list[tuple[int, int, int, int, int]] = []
    if version >= 3:
        for _ in range(reader.count("codec context")):
            contexts.append(
                (
                    reader.u32(),
                    reader.u32(),
                    reader.u32(),
                    reader.u32(),
                    reader.u32(),
                )
            )
    return LoadedImage(
        memory=memory,
        base=base,
        entry_pc=entry_pc,
        segments=segments,
        symbols=symbols,
        block_heads=heads,
        codec_contexts=contexts,
    )
